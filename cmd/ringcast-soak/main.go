// Command ringcast-soak runs the distributed live soak harness: it builds
// (or reuses) a ringcast-node binary, launches N real node processes on
// this machine, bootstraps them onto one mesh per topic, then sustains a
// publish load while a scenario timeline injects partitions, loss and
// crashes, the supervisor restarts dead processes under the same -seed
// (preserving each node's deterministic ring identity so arc resolution
// stays valid across restarts), and the prober flags lagging peers. The
// run ends with a machine-readable delivery-completeness report in the
// shape of the paper's claim: every message reaches every node that was up
// and connected at publish time (Section 4's connectivity-scoped
// guarantee).
//
// Exit status is 0 only when the completeness gate holds and no process
// crash-looped, so the command doubles as a CI gate.
//
// Run with -h for the full flag reference and examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/scenario"
	"ringcast/internal/soak"
)

// usageHeader is the long-form usage text printed by -h, ahead of the
// generated flag reference. TestUsageCoversAllFlags asserts every
// registered flag appears in at least one example.
const usageHeader = `Usage: ringcast-soak [flags]

Launch N real ringcast-node processes, drive a fault scenario over them
under sustained publish load, and verify delivery completeness.

Examples:
  ringcast-soak -n 64                                   # default partition-heal-kill soak
  ringcast-soak -n 256 -topics news,sports -rate 50     # bigger fleet, two topics
  ringcast-soak -n 32 -scenario partition-heal -report soak.json
  ringcast-soak -n 64 -scenario none -duration 30s      # fault-free endurance run
  ringcast-soak -n 64 -wedge-after 4s -wedge-for 5s     # exercise the lag detector
  ringcast-soak -n 64 -interval 80ms -step 2s -guard 1500ms -fanout 4
  ringcast-soak -n 64 -seed 11 -host 127.0.0.1 -logdir /tmp/soak-logs
  ringcast-soak -n 64 -node-bin ./ringcast-node         # reuse a prebuilt node binary
  ringcast-soak -n 32 -scenario retune-interval -metrics -report bench.json  # live re-tune + /metrics trail

Scenario names: partition-heal-kill (default), retune-interval (halve the
gossip interval mid-run through the config engine), none, or any built-in
timeline (run ringcast-bench -list, e.g. partition-heal, storm, lossy).

Flags:
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "ringcast-soak:", err)
		os.Exit(1)
	}
}

// errGateFailed distinguishes a completed-but-failing soak (completeness or
// supervision verdict) from setup errors.
var errGateFailed = errors.New("soak gate failed")

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringcast-soak", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprint(out, usageHeader)
		fs.PrintDefaults()
	}
	var (
		n          = fs.Int("n", 64, "fleet size (number of node processes)")
		topicsCSV  = fs.String("topics", "alpha,beta", "comma-separated pub/sub topics (empty = plain single-overlay nodes)")
		scName     = fs.String("scenario", "partition-heal-kill", "fault timeline: partition-heal-kill, none, or a built-in name")
		duration   = fs.Duration("duration", 20*time.Second, "publish-phase length")
		rate       = fs.Int("rate", 25, "fleet-wide publishes per second")
		interval   = fs.Duration("interval", soak.DefaultGossipInterval, "per-node gossip interval")
		step       = fs.Duration("step", soak.DefaultStepInterval, "wall-clock length of one scenario step")
		guard      = fs.Duration("guard", soak.DefaultGuard, "transition guard window around fault events")
		fanout     = fs.Int("fanout", 3, "dissemination fanout F")
		seed       = fs.Int64("seed", 1, "base identity seed (node i uses seed+i)")
		nodeBin    = fs.String("node-bin", "", "prebuilt ringcast-node binary (empty = go build into a temp dir)")
		report     = fs.String("report", "soak-report.json", "write the machine-readable report here (empty = skip)")
		wedgeAfter = fs.Duration("wedge-after", 0, "wedge one consumer this long into the run (0 = never)")
		wedgeFor   = fs.Duration("wedge-for", 5*time.Second, "hold the wedge this long")
		host       = fs.String("host", "127.0.0.1", "interface the fleet binds")
		logdir     = fs.String("logdir", "", "per-process log directory (empty = discard node output)")
		metrics    = fs.Bool("metrics", false, "serve /metrics on every node and record a scrape trail in the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var topics []string
	for _, tp := range strings.Split(*topicsCSV, ",") {
		if tp = strings.TrimSpace(tp); tp != "" {
			topics = append(topics, tp)
		}
	}
	sc, err := resolveScenario(*scName, *n, *interval)
	if err != nil {
		return err
	}

	bin := *nodeBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "ringcast-soak")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Fprintln(out, "building ringcast-node...")
		if bin, err = soak.BuildNodeBin(dir); err != nil {
			return err
		}
	}

	cfg := soak.Config{
		N:              *n,
		Topics:         topics,
		Scenario:       sc,
		NodeBin:        bin,
		Host:           *host,
		LogDir:         *logdir,
		GossipInterval: *interval,
		StepInterval:   *step,
		Guard:          *guard,
		Duration:       *duration,
		PublishRate:    *rate,
		Fanout:         *fanout,
		Seed:           *seed,
		WedgeAfter:     *wedgeAfter,
		WedgeFor:       *wedgeFor,
		Metrics:        *metrics,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Fprintf(out, "soak: n=%d topics=%v scenario=%q duration=%s rate=%d/s\n",
		*n, topics, sc.Name, *duration, *rate)
	rep, err := soak.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if *report != "" {
		if err := rep.WriteFile(*report); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *report)
	}
	printSummary(out, rep)
	if !rep.CompletenessOK {
		return fmt.Errorf("%w: %d missing of %d gated pairs (completeness %.4f)",
			errGateFailed, rep.MissingPairs, rep.GatedPairs, rep.Completeness)
	}
	if len(rep.CrashLoops) > 0 {
		return fmt.Errorf("%w: crash loops on %v", errGateFailed, rep.CrashLoops)
	}
	return nil
}

// resolveScenario maps the -scenario flag onto a timeline. The default
// partition-heal-kill is the acceptance shape: a two-way split, a heal two
// steps later, then a correlated arc kill of about two nodes.
// retune-interval is the hot-reconfiguration shape: fault-free, with one
// set-param step pushing half the boot gossip interval through the config
// engine, so the report's pre/post latency split shows the effect.
func resolveScenario(name string, n int, interval time.Duration) (scenario.Scenario, error) {
	switch name {
	case "none", "":
		return scenario.Scenario{}, nil
	case "partition-heal-kill":
		return scenario.Scenario{
			Name: "partition-heal-kill",
			Events: []scenario.Event{
				scenario.Partition(1, 2),
				scenario.Heal(3),
				scenario.ArcKill(5, 2.2/float64(n), ident.Nil),
			},
		}, nil
	case "retune-interval":
		return scenario.Scenario{
			Name: "retune-interval",
			Events: []scenario.Event{
				scenario.SetParam(3, "gossip.interval", (interval / 2).String()),
			},
		}, nil
	}
	if sc, ok := scenario.Builtin(name); ok {
		return sc, nil
	}
	known := scenario.Names()
	sort.Strings(known)
	return scenario.Scenario{}, fmt.Errorf("unknown scenario %q (try partition-heal-kill, none, %s)",
		name, strings.Join(known, ", "))
}

// printSummary renders the human-readable slice of the report.
func printSummary(out io.Writer, rep *soak.Report) {
	fmt.Fprintf(out, "published %d msgs (%d gated); %d/%d gated pairs delivered, %d missing, %d unverifiable\n",
		rep.Published, rep.GatedMessages, rep.DeliveredPairs, rep.GatedPairs,
		rep.MissingPairs, rep.UnverifiablePairs)
	fmt.Fprintf(out, "throughput %.0f msgs/sec fleet-wide; publish->deliver p50=%.1fms p99=%.1fms max=%.1fms (%d samples)\n",
		rep.MsgsPerSec, rep.Latency.P50, rep.Latency.P99, rep.Latency.Max, rep.Latency.Samples)
	if rep.LatencyPreRetune != nil && rep.LatencyPostRetune != nil {
		fmt.Fprintf(out, "retune: p50 %.1fms (%d samples) -> %.1fms (%d samples) across the set-param step\n",
			rep.LatencyPreRetune.P50, rep.LatencyPreRetune.Samples,
			rep.LatencyPostRetune.P50, rep.LatencyPostRetune.Samples)
	}
	if len(rep.MetricsSamples) > 0 {
		fmt.Fprintf(out, "metrics: %d scrapes recorded in the report\n", len(rep.MetricsSamples))
	}
	fmt.Fprintf(out, "supervision: %d injected kills, %d restarts, %d crash loops; lagging=%v wedged=%v\n",
		rep.InjectedKills, rep.Restarts, len(rep.CrashLoops), rep.Lagging, rep.Wedged)
	for _, note := range rep.Notes {
		fmt.Fprintf(out, "note: %s\n", note)
	}
}
