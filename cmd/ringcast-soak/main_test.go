package main

import (
	"bytes"
	"errors"
	"flag"
	"regexp"
	"strings"
	"testing"
	"time"

	"ringcast/internal/scenario"
)

// TestUsageCoversAllFlags regenerates the -h text and asserts every
// registered flag appears in the hand-written examples section, so the
// examples cannot drift from the flag set.
func TestUsageCoversAllFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := buf.String()
	cut := strings.Index(usage, "Flags:")
	if cut < 0 {
		t.Fatalf("usage has no Flags section:\n%s", usage)
	}
	examples, flagRef := usage[:cut], usage[cut:]
	matches := regexp.MustCompile(`(?m)^  -([a-z][a-z-]*)`).FindAllStringSubmatch(flagRef, -1)
	if len(matches) < 16 {
		t.Fatalf("flag reference lists only %d flags:\n%s", len(matches), flagRef)
	}
	for _, m := range matches {
		if !strings.Contains(examples, "-"+m[1]) {
			t.Errorf("flag -%s is not shown in any usage example", m[1])
		}
	}
}

func TestResolveScenario(t *testing.T) {
	sc, err := resolveScenario("partition-heal-kill", 64, 200*time.Millisecond)
	if err != nil || len(sc.Events) != 3 {
		t.Fatalf("default scenario = %+v, %v", sc, err)
	}
	if sc, err = resolveScenario("none", 64, 200*time.Millisecond); err != nil || sc.Name != "" {
		t.Errorf("none = %+v, %v", sc, err)
	}
	if sc, err = resolveScenario("partition-heal", 64, 200*time.Millisecond); err != nil || sc.Name != "partition-heal" {
		t.Errorf("builtin lookup = %+v, %v", sc, err)
	}
	if _, err = resolveScenario("no-such-timeline", 64, 200*time.Millisecond); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestResolveRetuneScenario pins the hot-reconfiguration timeline: one
// set-param event pushing half the boot gossip interval.
func TestResolveRetuneScenario(t *testing.T) {
	sc, err := resolveScenario("retune-interval", 32, 200*time.Millisecond)
	if err != nil || len(sc.Events) != 1 {
		t.Fatalf("retune-interval = %+v, %v", sc, err)
	}
	e := sc.Events[0]
	if e.Kind != scenario.KindSetParam || e.Key != "gossip.interval" || e.Value != "100ms" {
		t.Errorf("retune event = %+v, want set-param gossip.interval=100ms", e)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "bogus"}, &buf); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}
