// Command ringcast-lint is the multichecker for ringcast's determinism and
// concurrency contracts: it loads the requested packages and runs the
// internal/lint analyzer suite — detrand (no ambient randomness or wall
// clock in ringcast:deterministic packages), maporder (map iteration order
// must not reach output unsorted), lockio (no blocking call while a sync
// mutex is held), and hotalloc (ringcast:hotpath functions must stay free of
// compiler-reported heap escapes). Findings print as file:line:col lines and
// a non-zero exit fails CI; deliberate exceptions carry justified
// `//lint:<analyzer> <why>` waivers in the source itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ringcast/internal/lint"
)

// analyzers is the AST half of the suite; hotalloc runs as a separate
// compiler-driven pass.
var analyzers = []*lint.Analyzer{lint.Detrand, lint.Maporder, lint.Lockio}

func main() {
	disable := flag.String("disable", "", "comma-separated analyzers to skip (detrand, maporder, lockio, hotalloc)")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}

	var enabled []*lint.Analyzer
	for _, a := range analyzers {
		if !disabled[a.Name] {
			enabled = append(enabled, a)
		}
	}
	var extra []lint.Diagnostic
	var extraRan []string
	if !disabled[lint.HotallocName] {
		extra, err = lint.Hotalloc(dir, pkgs)
		if err != nil {
			fatal(err)
		}
		extraRan = append(extraRan, lint.HotallocName)
	}

	diags, err := lint.RunAnalyzers(pkgs, enabled, extra, extraRan...)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ringcast-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ringcast-lint:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `ringcast-lint enforces ringcast's determinism and concurrency contracts.

Usage:

  ringcast-lint [-disable names] [packages]

With no package patterns it checks ./... . Examples:

  ringcast-lint ./...
  ringcast-lint -disable hotalloc ./internal/...

Analyzers:

`)
	for _, a := range analyzers {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-9s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "  %-9s %s\n", lint.HotallocName, lint.HotallocDoc)
	fmt.Fprintf(flag.CommandLine.Output(), `
Markers and waivers (see ARCHITECTURE.md "Enforced contracts"):

  //ringcast:deterministic   package-scope marker: detrand applies (one marked
                             file covers the whole package)
  //ringcast:hotpath         function marker: hotalloc forbids heap escapes
  //lint:<analyzer> <why>    justified waiver on the finding's line or the
                             line above; an unjustified or unused waiver is
                             itself a finding

Flags:

`)
	flag.PrintDefaults()
}
