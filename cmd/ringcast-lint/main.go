// Command ringcast-lint is the multichecker for ringcast's determinism and
// concurrency contracts: it loads the requested packages and runs the
// internal/lint analyzer suite — detrand (no ambient randomness or wall
// clock in ringcast:deterministic packages), maporder (map iteration order
// must not reach output unsorted), lockio (no blocking call while a sync
// mutex is held), hotalloc (ringcast:hotpath functions must stay free of
// compiler-reported heap escapes), and the interprocedural four built on the
// module call graph — lockorder (cross-package lock-order cycles and
// transitive blocking under a mutex), goroleak (spawned goroutines need a
// cancellation path), detflow (determinism taint through unmarked helper
// packages), and allocbudget (per-hotpath escape counts ratcheted against
// internal/lint/allocs.baseline). Findings print as file:line:col lines
// (-json for structured output, -github for CI annotations) and a non-zero
// exit fails CI; deliberate exceptions carry justified
// `//lint:<analyzer> <why>` waivers in the source itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ringcast/internal/lint"
)

// analyzers is the per-package AST half of the suite.
var analyzers = []*lint.Analyzer{lint.Detrand, lint.Maporder, lint.Lockio}

// moduleAnalyzers is the interprocedural half, run over the whole-module
// call graph; hotalloc and allocbudget run as separate compiler-driven
// passes.
var moduleAnalyzers = []*lint.ModuleAnalyzer{lint.Lockorder, lint.Goroleak, lint.Detflow}

// defaultBaseline is the checked-in allocation budget, relative to the
// module root.
const defaultBaseline = "internal/lint/allocs.baseline"

func main() {
	disable := flag.String("disable", "", "comma-separated analyzers to skip (detrand, maporder, lockio, hotalloc, lockorder, goroleak, detflow, allocbudget)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations so findings land on the PR diff")
	baseline := flag.String("baseline", defaultBaseline, "allocation-budget baseline file, relative to the module root")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the allocation-budget baseline from the current tree instead of checking it (the escape-count analogue of a golden-file -update)")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}

	baselinePath := *baseline
	if !filepath.IsAbs(baselinePath) {
		baselinePath = filepath.Join(dir, baselinePath)
	}
	if *updateBaseline {
		if _, err := lint.AllocBudget(dir, pkgs, baselinePath, true); err != nil {
			fatal(err)
		}
		fmt.Printf("ringcast-lint: wrote %s\n", *baseline)
		return
	}

	var enabled []*lint.Analyzer
	for _, a := range analyzers {
		if !disabled[a.Name] {
			enabled = append(enabled, a)
		}
	}
	var extra []lint.Diagnostic
	var extraRan []string

	var enabledModule []*lint.ModuleAnalyzer
	for _, a := range moduleAnalyzers {
		if !disabled[a.Name] {
			enabledModule = append(enabledModule, a)
		}
	}
	if len(enabledModule) > 0 {
		m := lint.NewModule(pkgs)
		moduleDiags, ran, err := lint.RunModuleAnalyzers(m, enabledModule)
		if err != nil {
			fatal(err)
		}
		extra = append(extra, moduleDiags...)
		extraRan = append(extraRan, ran...)
	}
	if !disabled[lint.HotallocName] {
		hot, err := lint.Hotalloc(dir, pkgs)
		if err != nil {
			fatal(err)
		}
		extra = append(extra, hot...)
		extraRan = append(extraRan, lint.HotallocName)
	}
	if !disabled[lint.AllocBudgetName] {
		budget, err := lint.AllocBudget(dir, pkgs, baselinePath, false)
		if err != nil {
			fatal(err)
		}
		extra = append(extra, budget...)
		extraRan = append(extraRan, lint.AllocBudgetName)
	}

	diags, err := lint.RunAnalyzers(pkgs, enabled, extra, extraRan...)
	if err != nil {
		fatal(err)
	}
	emit(dir, diags, *jsonOut, *github)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ringcast-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// emit prints the findings in the requested formats, with module-root
// relative paths.
func emit(dir string, diags []lint.Diagnostic, asJSON, github bool) {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if github {
		for _, f := range findings {
			// Workflow-command annotation: file/line place the finding on
			// the PR diff. The message must stay one line.
			msg := strings.ReplaceAll(f.Message, "\n", " ")
			fmt.Printf("::error file=%s,line=%d,col=%d,title=ringcast-lint %s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, msg)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ringcast-lint:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `ringcast-lint enforces ringcast's determinism and concurrency contracts.

Usage:

  ringcast-lint [flags] [packages]

With no package patterns it checks ./... . Examples:

  ringcast-lint ./...
  ringcast-lint -json -disable hotalloc ./internal/...
  ringcast-lint -update-baseline ./...

Per-package analyzers:

`)
	for _, a := range analyzers {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", lint.HotallocName, lint.HotallocDoc)
	fmt.Fprintf(flag.CommandLine.Output(), `
Interprocedural analyzers (whole-module call graph with per-function facts):

`)
	for _, a := range moduleAnalyzers {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", lint.AllocBudgetName, lint.AllocBudgetDoc)
	fmt.Fprintf(flag.CommandLine.Output(), `
Markers and waivers (see ARCHITECTURE.md "Enforced contracts"):

  //ringcast:deterministic   package-scope marker: detrand and detflow apply
                             (one marked file covers the whole package)
  //ringcast:hotpath         function marker: hotalloc forbids heap escapes,
                             allocbudget ratchets their raw count
  //lint:<analyzer> <why>    justified waiver on the finding's line or the
                             line above; an unjustified or unused waiver is
                             itself a finding

Flags:

`)
	flag.PrintDefaults()
}
