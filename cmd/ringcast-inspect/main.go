// Command ringcast-inspect self-organizes a network and reports structural
// properties of the resulting overlays: CYCLON's random-graph resemblance
// (Section 6) and the VICINITY ring's convergence, plus degree and path
// statistics for both layers.
//
// The "live" subcommand instead polls a running node's /metrics endpoint
// (ringcast-node -metrics) and prints selected series each interval.
//
// Usage:
//
//	ringcast-inspect -n 2000 -cycles 100
//	ringcast-inspect -n 1000 -rings 2
//	ringcast-inspect live 127.0.0.1:9100
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ringcast/internal/analysis"
	"ringcast/internal/cyclon"
	"ringcast/internal/dissem"
	"ringcast/internal/graph"
	"ringcast/internal/ident"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringcast-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "live" {
		return runLive(args[1:], out)
	}
	fs := flag.NewFlagSet("ringcast-inspect", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 1000, "node population")
		cycles  = fs.Int("cycles", 100, "gossip cycles before inspection")
		rings   = fs.Int("rings", 1, "number of rings to maintain (Section 8)")
		cycView = fs.Int("cyclon-view", 20, "CYCLON view length")
		vicView = fs.Int("vicinity-view", 20, "VICINITY view length")
		samples = fs.Int("path-samples", 20, "BFS sources for path metrics")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.Config{
		N:           *n,
		Cyclon:      cyclon.Config{ViewSize: *cycView, ShuffleLen: (*cycView + 1) / 2},
		Vicinity:    vicinity.Config{ViewSize: *vicView, GossipLen: *vicView, Balanced: true, MaxAge: 30},
		UseVicinity: true,
		Rings:       *rings,
		Seed:        *seed,
	}
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "self-organizing %d nodes for %d cycles (%d ring(s))...\n", *n, *cycles, maxInt(*rings, 1))
	nw.RunCycles(*cycles)

	o := dissem.Snapshot(nw)
	index := make(map[ident.ID]int, o.N())
	for i, id := range o.IDs() {
		index[id] = i
	}

	// CYCLON layer.
	rGraph := graph.NewDirected(o.N())
	for i := 0; i < o.N(); i++ {
		for _, tgt := range o.Links(i).R {
			if j, ok := index[tgt]; ok {
				rGraph.AddEdge(i, j)
			}
		}
	}
	rng := rand.New(rand.NewSource(*seed ^ 0x15bec7))
	rStats, err := analysis.Analyze(rGraph, *samples, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nCYCLON overlay (r-links):\n")
	printStats(out, rStats)
	fmt.Fprintf(out, "  random-graph expectations: clustering %.5f, path length %.2f\n",
		analysis.RandomGraphClustering(rStats.N, rStats.MeanOutDegree),
		analysis.RandomGraphPathLength(rStats.N, rStats.MeanOutDegree))

	// VICINITY layer.
	dGraph := o.DGraph()
	dStats, err := analysis.Analyze(dGraph, *samples, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nVICINITY overlay (d-links):\n")
	printStats(out, dStats)
	fmt.Fprintf(out, "  ring convergence: %.4f\n", nw.RingConvergence())
	fmt.Fprintf(out, "  d-link graph strongly connected: %v\n", dGraph.StronglyConnected(nil))
	return nil
}

func printStats(out io.Writer, s *analysis.OverlayStats) {
	fmt.Fprintf(out, "  nodes: %d\n", s.N)
	fmt.Fprintf(out, "  mean out-degree: %.2f, mean in-degree: %.2f (std %.2f, max %d)\n",
		s.MeanOutDegree, s.MeanInDegree, s.InDegreeStd, s.MaxInDegree)
	fmt.Fprintf(out, "  clustering coefficient: %.5f\n", s.Clustering)
	if s.AvgPathLength > 0 {
		fmt.Fprintf(out, "  avg path length: %.2f hops (diameter %d, disconnected: %v)\n",
			s.AvgPathLength, s.Diameter, s.Disconnected)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
