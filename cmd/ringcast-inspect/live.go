package main

// The "live" subcommand: a polling view over a running node's /metrics
// endpoint (ringcast-node -metrics). Each poll prints one line with the
// selected series, so re-tuning a node through the config engine is
// watchable as the values move — the interactive counterpart of the soak
// harness's scrape trail.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// liveUsage documents the subcommand (printed on -h and flag errors).
const liveUsage = `Usage: ringcast-inspect live [flags] host:port

Poll a ringcast-node /metrics endpoint and print selected series.

Examples:
  ringcast-inspect live 127.0.0.1:9100
  ringcast-inspect live -every 2s -count 10 127.0.0.1:9100
  ringcast-inspect live -series ringcast_node_delivered_total 127.0.0.1:9100

Flags:
`

// runLive polls the endpoint every -every, printing -series values (comma
// separated names; a name matches every labeled variant) until -count
// polls have run (0 = forever).
func runLive(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringcast-inspect live", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprint(out, liveUsage)
		fs.PrintDefaults()
	}
	var (
		every  = fs.Duration("every", time.Second, "poll interval")
		count  = fs.Int("count", 0, "number of polls (0 = until interrupted)")
		series = fs.String("series", "ringcast_config_version,ringcast_config_gossip_interval_seconds,ringcast_node_published_total,ringcast_node_delivered_total,ringcast_transport_frames_sent_total", "comma-separated series names to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("live: want exactly one host:port argument, got %d", fs.NArg())
	}
	addr := fs.Arg(0)
	var want []string
	for _, s := range strings.Split(*series, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want = append(want, s)
		}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	for polls := 0; *count == 0 || polls < *count; polls++ {
		if polls > 0 {
			time.Sleep(*every)
		}
		vals, err := fetchSeries(client, addr)
		if err != nil {
			fmt.Fprintf(out, "%s error: %v\n", time.Now().Format("15:04:05"), err)
			continue
		}
		parts := make([]string, 0, len(want))
		for _, name := range want {
			for _, key := range sortedSeriesKeys(vals) {
				if key == name || strings.HasPrefix(key, name+"{") {
					parts = append(parts, fmt.Sprintf("%s=%g", key, vals[key]))
				}
			}
		}
		fmt.Fprintf(out, "%s %s\n", time.Now().Format("15:04:05"), strings.Join(parts, " "))
	}
	return nil
}

// fetchSeries scrapes one exposition and returns every ringcast_ series,
// keyed by name plus label signature.
func fetchSeries(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || !strings.HasPrefix(line, "ringcast_") {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// sortedSeriesKeys returns the scrape's keys in sorted order (map-order
// determinism for the printed line).
func sortedSeriesKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
