package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestInspectSingleRing(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-cycles", "100", "-path-samples", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"CYCLON overlay", "VICINITY overlay",
		"ring convergence: 1.0000",
		"strongly connected: true",
		"random-graph expectations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestInspectMultiRing(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "150", "-cycles", "120", "-rings", "2", "-cyclon-view", "8", "-vicinity-view", "8", "-path-samples", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// With two rings every node has ~4 d-links.
	if !strings.Contains(out.String(), "mean out-degree: 4.00") {
		t.Errorf("expected 4 d-links per node:\n%s", out.String())
	}
}

func TestInspectBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-n", "1"}, &out); err == nil {
		t.Fatal("N=1 accepted")
	}
}
