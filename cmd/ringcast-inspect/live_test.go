package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLivePollsAndPrints drives one poll against a stub /metrics endpoint
// and checks the selected series (including labeled variants) land on the
// output line.
func TestLivePollsAndPrints(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("# HELP ringcast_config_version config store version\n" +
			"# TYPE ringcast_config_version gauge\n" +
			"ringcast_config_version 4\n" +
			"ringcast_node_published_total{topic=\"alpha\"} 12\n" +
			"ringcast_node_published_total{topic=\"beta\"} 3\n" +
			"unrelated_series 99\n"))
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var buf bytes.Buffer
	err := runLive([]string{"-count", "1", "-series", "ringcast_config_version,ringcast_node_published_total", addr}, &buf)
	if err != nil {
		t.Fatalf("runLive: %v", err)
	}
	line := buf.String()
	for _, want := range []string{
		"ringcast_config_version=4",
		`ringcast_node_published_total{topic="alpha"}=12`,
		`ringcast_node_published_total{topic="beta"}=3`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("output %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "unrelated_series") {
		t.Errorf("output %q includes unselected series", line)
	}
}

// TestLiveRejectsMissingTarget pins the one-argument contract.
func TestLiveRejectsMissingTarget(t *testing.T) {
	var buf bytes.Buffer
	if err := runLive([]string{"-count", "1"}, &buf); err == nil {
		t.Fatal("runLive without a target succeeded")
	}
}
