// Command ringcast-bench regenerates the paper's tables and figures, plus
// the fault-scenario comparison built on internal/scenario.
//
// Every figure of the evaluation section (Section 7) has a corresponding
// runner; by default the harness runs at a reduced scale that finishes in
// minutes. Pass -paper for the paper's full 10,000-node, 100-run setup.
// Sweeps fan their (protocol, fanout, run) work units across -parallel
// workers (one per CPU by default) with per-unit derived random streams, so
// every table is bit-identical at any parallelism; -progress shows live
// sweep status on stderr.
//
// Run with -h for the full flag reference and examples.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"path/filepath"

	"ringcast/internal/experiment"
	"ringcast/internal/plot"
	"ringcast/internal/runner"
	"ringcast/internal/scenario"
)

// usageHeader is the long-form usage text printed by -h, ahead of the
// generated flag reference. TestUsageCoversAllFlags asserts every
// registered flag appears in at least one example, so the examples cannot
// drift from the flag set again.
const usageHeader = `Usage: ringcast-bench [flags]

Regenerate the paper's evaluation tables (Section 7 figures), the design
ablations, and the fault-scenario comparison.

Examples:
  ringcast-bench -fig 6 -n 2000 -runs 30        # miss ratio + complete disseminations
  ringcast-bench -fig 9 -paper -progress        # catastrophic failures, paper scale, live status
  ringcast-bench -fig all -csv out/ -seed 42    # everything + CSV series
  ringcast-bench -fig 11 -parallel 4            # pin the worker count
  ringcast-bench -fig 6 -plot                   # ASCII charts next to the tables
  ringcast-bench -fig scenarios                 # the whole built-in scenario catalog
  ringcast-bench -fig scenarios -scenario partition-heal,lossy,storm
  ringcast-bench -fig scale -progress           # N=1e3..1e6 hops-vs-logN sweep
  ringcast-bench -fig scale -scale-ns 1000,50000 -scale-runs 5 -scale-cycles 30 -scale-fanout 5
  ringcast-bench -fig scale -scale-checkpoint .overlays     # cache frozen overlays; re-runs skip the mixing

Built-in scenarios for -scenario (see internal/scenario):
  ` + "%s" + `

Flags:
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "ringcast-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ringcast-bench", flag.ContinueOnError)
	// Parse errors surface once, via main's stderr print of the returned
	// error; the long usage goes to out only when -h explicitly asks for it
	// (never mixed into redirected table/CSV stdout on a flag typo).
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	printUsage := func() {
		fmt.Fprintf(out, usageHeader, strings.Join(scenario.Names(), ", "))
		fs.SetOutput(out)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	var (
		fig       = fs.String("fig", "all", "comma-separated figures to regenerate: 6,7,8,9,10,11,12,13,load,harary,ablation,trace,timing,domain,scenarios,scale,all")
		n         = fs.Int("n", 2000, "node population")
		runs      = fs.Int("runs", 30, "disseminations per data point")
		seed      = fs.Int64("seed", 42, "random seed")
		paper     = fs.Bool("paper", false, "use the paper's full scale (N=10000, 100 runs)")
		plots     = fs.Bool("plot", false, "render ASCII charts next to the tables")
		csvDir    = fs.String("csv", "", "directory to write CSV series into (created if needed)")
		scenarios = fs.String("scenario", "all", "comma-separated scenario names for -fig scenarios (see -h for the catalog)")
		parallel  = fs.Int("parallel", 0, "worker goroutines for the sweeps (0 = one per CPU, 1 = sequential); results are identical at any setting")
		progress  = fs.Bool("progress", false, "report live sweep progress on stderr")

		scaleNs     = fs.String("scale-ns", "1000,10000,100000,1000000", "comma-separated populations for -fig scale (which only runs when requested explicitly, never via -fig all)")
		scaleRuns   = fs.Int("scale-runs", 10, "disseminations per (N, protocol) point for -fig scale")
		scaleCycles = fs.Int("scale-cycles", 30, "gossip mixing cycles before each -fig scale freeze")
		scaleFanout = fs.Int("scale-fanout", 5, "dissemination fanout for -fig scale")
		scaleCkpt   = fs.String("scale-checkpoint", "", "directory caching -fig scale frozen overlays; matching checkpoints skip the mixing cycles, stale ones are rebuilt")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			printUsage()
		}
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = one worker per CPU), got %d", *parallel)
	}
	cfg := experiment.Scaled(*n, *runs)
	if *paper {
		cfg = experiment.PaperConfig()
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	if *progress {
		// A failing sweep leaves its \r status line unfinished; terminate it
		// so the error does not land on top of the stale progress text.
		defer func() {
			if err != nil {
				fmt.Fprintln(os.Stderr)
			}
		}()
	}
	// labeled returns cfg with a labeled live progress reporter, so each
	// long sweep of a -fig all run shows its own status line.
	labeled := func(label string) experiment.Config {
		c := cfg
		if *progress {
			c.Progress = runner.ConsoleProgress(os.Stderr, label)
		}
		return c
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	writeCSV := func(name string, emit func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		fh, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := emit(fh); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}

	requested := make(map[string]bool)
	for _, name := range strings.Split(*fig, ",") {
		requested[strings.TrimSpace(name)] = true
	}
	want := func(names ...string) bool {
		if requested["all"] {
			return true
		}
		for _, name := range names {
			if requested[name] {
				return true
			}
		}
		return false
	}

	// Figures 6, 7 and 8 share one static sweep.
	if want("6", "7", "8") {
		fmt.Fprintf(out, "== Static fail-free network (Figures 6, 7, 8) ==\n")
		res, err := experiment.RunStatic(labeled("static sweep"))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "warm-up: %d cycles, ring convergence %.4f\n\n", res.WarmupUsed, res.Convergence)
		if want("6") {
			fmt.Fprintln(out, res.MissRatioTable())
			fmt.Fprintln(out, res.CompleteTable())
			if *plots {
				plotMissRatio(out, res)
			}
		}
		if want("7") {
			fmt.Fprintln(out, res.ProgressTable(2, 3, 5, 10))
			if *plots {
				plotProgress(out, res, 3)
			}
		}
		if want("8") {
			fmt.Fprintln(out, res.OverheadTable())
		}
		if err := writeCSV("fig6-8-static.csv", res.WriteCSV); err != nil {
			return err
		}
		if err := writeCSV("fig7-progress.csv", func(w io.Writer) error {
			return res.WriteProgressCSV(w, 2, 3, 5, 10)
		}); err != nil {
			return err
		}
	}

	if want("9", "10") {
		for _, frac := range []float64{0.01, 0.02, 0.05, 0.10} {
			if frac != 0.05 && !want("9") {
				continue // figure 10 only needs the 5% case
			}
			fmt.Fprintf(out, "== Catastrophic failure of %g%% (Figures 9, 10) ==\n", frac*100)
			res, err := experiment.RunCatastrophic(labeled(fmt.Sprintf("catastrophic %g%% sweep", frac*100)), frac)
			if err != nil {
				return err
			}
			if want("9") {
				fmt.Fprintln(out, res.MissRatioTable())
				fmt.Fprintln(out, res.CompleteTable())
				if *plots {
					plotMissRatio(out, res)
				}
			}
			if frac == 0.05 && want("10") {
				fmt.Fprintln(out, res.ProgressTable(2, 3, 5, 10))
			}
			if err := writeCSV(fmt.Sprintf("fig9-catastrophic-%g.csv", frac*100), res.WriteCSV); err != nil {
				return err
			}
		}
	}

	if want("11", "12", "13") {
		fmt.Fprintf(out, "== Continuous churn 0.2%%/cycle (Figures 11, 12, 13) ==\n")
		churnCfg := labeled("churn sweep")
		// Churn needs >= 1 replacement per cycle to be meaningful.
		rate := 0.002
		if float64(churnCfg.N)*rate < 1 {
			rate = 1.5 / float64(churnCfg.N)
		}
		maxCycles := 40000
		res, err := experiment.RunChurn(churnCfg, rate, maxCycles)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "turnover after %d cycles (complete: %v), ring convergence %.4f\n\n",
			res.TurnoverCycles, res.TurnoverComplete, res.Convergence)
		if want("11") {
			fmt.Fprintln(out, res.MissRatioTable())
			fmt.Fprintln(out, res.CompleteTable())
		}
		if want("12") {
			fmt.Fprintln(out, res.LifetimeTable())
		}
		if want("13") {
			for _, f := range []int{3, 6} {
				fmt.Fprintln(out, res.MissByLifetimeTable(f))
			}
		}
		if err := writeCSV("fig11-churn.csv", res.WriteCSV); err != nil {
			return err
		}
		if err := writeCSV("fig12-13-lifetimes.csv", func(w io.Writer) error {
			return res.WriteLifetimeCSV(w, 3)
		}); err != nil {
			return err
		}
	}

	if want("load") {
		fmt.Fprintf(out, "== Load distribution (Section 7) ==\n")
		res, err := experiment.RunLoad(labeled("load sweep"), 5)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Table())
	}

	if want("harary") {
		fmt.Fprintf(out, "== Deterministic flooding baselines (Section 3) ==\n")
		bn := cfg.N
		if bn > 512 {
			bn = 512 // clique flooding is O(n^2) messages
		}
		if bn%2 == 1 {
			bn++
		}
		rows, err := experiment.RunFloodBaselines(bn, 100, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiment.FloodTable(rows))
	}

	if want("ablation") {
		fmt.Fprintf(out, "== Ablations (DESIGN.md Section 5) ==\n")
		feed, err := experiment.RunFeedAblation(minInt(cfg.N, 500), 600, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "vicinity feed:      with feed %d cycles (conv %.3f)  |  without %d cycles (conv %.3f)\n",
			feed.WithFeedCycles, feed.WithFeedConv, feed.WithoutFeedCycles, feed.WithoutFeedConv)

		sel, err := experiment.RunSelectionAblation(minInt(cfg.N, 500), 80, 0.01, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cyclon selection:   stale links oldest-first %.4f  |  random %.4f\n",
			sel.StaleFractionOldest, sel.StaleFractionRandom)

		age, err := experiment.RunMaxAgeAblation(minInt(cfg.N, 500), 80, 0.01, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "vicinity staleness: ring convergence with MaxAge %.3f  |  without %.3f\n",
			age.ConvWithMaxAge, age.ConvWithoutMaxAge)

		rings, err := experiment.RunMultiRingAblation(minInt(cfg.N, 2000), cfg.Runs, 2, []int{1, 2, 3}, 0.10, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "multi-ring (F=2, 10%% killed):")
		for _, r := range rings {
			fmt.Fprintf(out, "  k=%d miss %.5f", r.Rings, r.Agg.MeanMissRatio)
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out)
	}

	if want("timing") {
		fmt.Fprintf(out, "== Timing-model invariance (Section 7.1's unplotted check) ==\n")
		timingCfg := labeled("timing sweep")
		timingCfg.Fanouts = []int{3}
		for _, proto := range []string{"randcast", "ringcast"} {
			res, err := experiment.RunTimingInvariance(timingCfg, proto, 3)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, res.Table())
		}
	}

	if want("trace") {
		fmt.Fprintf(out, "== Heavy-tailed (trace-style) churn — DESIGN.md §3 substitution ==\n")
		traceCfg := labeled("trace-churn sweep")
		traceCfg.Fanouts = []int{3, 6}
		// Median session 360 cycles = Gnutella's ~60 min at a 10 s cycle.
		res, err := experiment.RunTraceChurn(traceCfg, 360, 1.5, 1000)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "equivalent uniform churn rate: %.5f/cycle, ring convergence %.4f\n\n",
			res.ChurnRate, res.Convergence)
		fmt.Fprintln(out, res.MissRatioTable())
		fmt.Fprintln(out, res.LifetimeTable())
	}

	if want("scenarios") {
		fmt.Fprintf(out, "== Fault scenarios (internal/scenario) ==\n")
		names := strings.Split(*scenarios, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		scs, err := scenario.ByNames(names)
		if err != nil {
			return err
		}
		results, err := experiment.RunScenarios(labeled("scenario sweeps"), scs)
		if err != nil {
			return err
		}
		for _, res := range results {
			if res.SetupKilled > 0 || res.Network.Cycles > 0 {
				fmt.Fprintf(out, "%s: killed %d at t=0; network phase %d cycles (%d joined, %d churned)\n",
					res.Scenario, res.SetupKilled, res.Network.Cycles, res.Network.Joined, res.Network.Removed)
			}
		}
		tableFanout := cfg.Fanouts[0]
		for _, f := range cfg.Fanouts {
			if f == 3 {
				tableFanout = 3
				break
			}
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, experiment.ScenariosTable(results, tableFanout))
		if err := writeCSV("scenarios.csv", func(w io.Writer) error {
			return experiment.WriteScenariosCSV(w, results)
		}); err != nil {
			return err
		}
	}

	// The scale sweep only runs when asked for by name: its default axis
	// tops out at a million nodes, a different wall-clock class than the
	// paper figures -fig all regenerates.
	if requested["scale"] {
		fmt.Fprintf(out, "== Scale sweep: hit ratio and hops vs N (paper's \"logarithmic in N\" claim) ==\n")
		scaleCfg := experiment.DefaultScaleConfig()
		scaleCfg.Ns = scaleCfg.Ns[:0]
		for _, s := range strings.Split(*scaleNs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("-scale-ns: %w", err)
			}
			scaleCfg.Ns = append(scaleCfg.Ns, n)
		}
		scaleCfg.Runs = *scaleRuns
		scaleCfg.Cycles = *scaleCycles
		scaleCfg.Fanout = *scaleFanout
		scaleCfg.Seed = *seed
		scaleCfg.Parallelism = *parallel
		scaleCfg.CheckpointDir = *scaleCkpt
		if *progress {
			scaleCfg.Progress = runner.ConsoleProgress(os.Stderr, "scale sweep")
		}
		res, err := experiment.RunScale(scaleCfg)
		if err != nil {
			return err
		}
		if *scaleCkpt != "" {
			for _, step := range res.Steps {
				switch step.Bootstrap {
				case "checkpoint":
					fmt.Fprintf(out, "checkpoint hit: N=%d overlay loaded from %s in %.1fs (mixing skipped)\n",
						step.N, *scaleCkpt, step.BuildSeconds)
				default:
					fmt.Fprintf(out, "checkpoint miss: N=%d overlay built in %.1fs and saved to %s\n",
						step.N, step.BuildSeconds, *scaleCkpt)
				}
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out, res.Table())
		fmt.Fprintln(out, res.HopsVsLogNTable())
		if err := writeCSV("scale.csv", res.WriteCSV); err != nil {
			return err
		}
	}

	if want("domain") {
		fmt.Fprintf(out, "== Domain-proximity ring (Section 8) ==\n")
		res, err := experiment.RunDomainRing(50, []string{
			"inf.ethz.ch", "few.vu.nl", "cs.cornell.edu", "dcs.gla.uk", "lip6.fr",
		}, cfg.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "N=%d over %d domains: converged=%v, contiguous domain arcs=%d (want %d)\n\n",
			res.N, res.Domains, res.Converged, res.DomainRuns, res.Domains)
	}

	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// plotMissRatio renders the two protocols' miss-ratio series on a log
// scale, mirroring the paper's log-scale bar charts.
func plotMissRatio(out io.Writer, res *experiment.Result) {
	labels := make([]string, 0, 2*len(res.Rows))
	values := make([]float64, 0, 2*len(res.Rows))
	for _, row := range res.Rows {
		labels = append(labels, fmt.Sprintf("F=%-2d Rand", row.Fanout))
		values = append(values, row.Rand.MeanMissRatio*100)
		labels = append(labels, fmt.Sprintf("F=%-2d Ring", row.Fanout))
		values = append(values, row.Ring.MeanMissRatio*100)
	}
	fmt.Fprintln(out, "miss ratio, % (log scale):")
	fmt.Fprintln(out, plot.LogBars(labels, values, 50, 1e-4))
}

// plotProgress renders the per-hop not-reached curves for one fanout.
func plotProgress(out io.Writer, res *experiment.Result, fanout int) {
	for _, row := range res.Rows {
		if row.Fanout != fanout {
			continue
		}
		fmt.Fprintf(out, "dissemination progress, fanout %d (%% not reached per hop):\n", fanout)
		fmt.Fprintln(out, plot.Curves([]plot.Series{
			{Name: "RandCast", Values: scale(row.Rand.NotReachedByHop, 100)},
			{Name: "RingCast", Values: scale(row.Ring.NotReachedByHop, 100)},
		}, 8))
	}
}

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}
