package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestUsageCoversAllFlags regenerates the -h text and asserts every
// registered flag appears in the hand-written examples section, so the
// usage examples can never again drift from the flag set (as happened when
// -parallel and -progress landed).
func TestUsageCoversAllFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := buf.String()
	cut := strings.Index(usage, "Flags:")
	if cut < 0 {
		t.Fatalf("usage has no Flags section:\n%s", usage)
	}
	examples, flagRef := usage[:cut], usage[cut:]
	matches := regexp.MustCompile(`(?m)^  -([a-z][a-z-]*)`).FindAllStringSubmatch(flagRef, -1)
	if len(matches) < 9 {
		t.Fatalf("flag reference lists only %d flags:\n%s", len(matches), flagRef)
	}
	for _, m := range matches {
		if !strings.Contains(examples, "-"+m[1]) {
			t.Errorf("flag -%s is not shown in any usage example", m[1])
		}
	}
}

func TestRunScenariosFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "scenarios", "-n", "250", "-runs", "3",
		"-scenario", "baseline, partition-heal", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Scenario comparison", "baseline", "partition-heal", "blocked"} {
		if !strings.Contains(s, want) {
			t.Errorf("scenario output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenarios.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "scenario,fanout,protocol,hit_ratio") {
		t.Fatalf("unexpected scenarios CSV header: %.80s", data)
	}
}

// TestFlagTypoDoesNotPolluteStdout pins the error-routing contract: a
// parse error must reach the caller (main prints it to stderr once), and
// nothing — no usage text, no duplicate error — may land on stdout, which
// scripts redirect for table/CSV data.
func TestFlagTypoDoesNotPolluteStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-paralel", "4"}, &out)
	if err == nil {
		t.Fatal("flag typo accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("stdout polluted on flag typo: %q", out.String())
	}
}

func TestRunScenariosDuplicateName(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "scenarios", "-n", "100", "-scenario", "partition,partition"}, &out)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate scenario names accepted: %v", err)
	}
}

func TestRunScenariosUnknownName(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "scenarios", "-n", "100", "-scenario", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "built-ins") {
		t.Fatalf("unknown scenario accepted: %v", err)
	}
}

func TestRunHararyBaselines(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "harary", "-n", "64", "-runs", "2", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"clique", "binary tree", "ring (Harary t=2)", "P(complete|1 kill)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFig6Small(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "6", "-n", "200", "-runs", "3", "-seed", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Miss ratio") || !strings.Contains(s, "Complete disseminations") {
		t.Fatalf("figure 6 tables missing:\n%s", s)
	}
	if !strings.Contains(s, "ring convergence 1.0000") {
		t.Errorf("warm-up did not converge:\n%s", s)
	}
}

func TestRunFig6WithPlot(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "6", "-n", "200", "-runs", "2", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "log scale") {
		t.Fatal("plot missing")
	}
}

func TestRunDomain(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "domain"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "contiguous domain arcs=5 (want 5)") {
		t.Fatalf("domain ring not contiguous:\n%s", out.String())
	}
}

func TestRunParallelIsDeterministic(t *testing.T) {
	outs := make([]string, 0, 3)
	for _, p := range []string{"1", "4", "0"} {
		var out bytes.Buffer
		err := run([]string{"-fig", "6", "-n", "200", "-runs", "3", "-seed", "5", "-parallel", p}, &out)
		if err != nil {
			t.Fatalf("-parallel %s: %v", p, err)
		}
		outs = append(outs, out.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("output depends on -parallel:\n--- P=1 ---\n%s\n--- P=4 ---\n%s", outs[0], outs[1])
	}
}

func TestRunProgressFlagSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-n", "200", "-runs", "2", "-progress"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Miss ratio") {
		t.Fatal("tables missing with -progress enabled")
	}
}

func TestRunNegativeParallelRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "harary", "-n", "64", "-runs", "2", "-parallel", "-3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("negative -parallel accepted: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunUnknownFigIsNoop(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "999"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unknown figure produced output: %q", out.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "6", "-n", "200", "-runs", "2", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6-8-static.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "fanout,randcast_miss_ratio") {
		t.Fatalf("unexpected CSV header: %.80s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7-progress.csv")); err != nil {
		t.Fatal("progress CSV missing")
	}
}

// TestRunScaleFigure drives -fig scale end to end at a tiny axis: table,
// hops-vs-logN series and CSV must all land, and the default million-node
// axis must NOT run as part of -fig all.
func TestRunScaleFigure(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "scale", "-scale-ns", "200,400", "-scale-runs", "3",
		"-scale-cycles", "5", "-scale-fanout", "4", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scale sweep", "hops/log2N", "ring-only", "log2(N)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scale output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "scale.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n,protocol,runs,cycles,convergence") {
		t.Fatalf("unexpected scale CSV header: %.80s", data)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n")
	if lines != 6 { // header + 2 Ns x 3 protocols, minus trailing newline
		t.Fatalf("scale CSV rows: %d", lines)
	}
}

// TestScaleNotInAll pins that -fig all skips the scale sweep (its default
// axis is a million nodes).
func TestScaleNotInAll(t *testing.T) {
	var out bytes.Buffer
	// Invalid -scale-ns would fail the run if the scale branch executed.
	if err := run([]string{"-fig", "999", "-scale-ns", "bogus"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Scale sweep") {
		t.Fatal("scale ran without being requested")
	}
}

func TestScaleBadNs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "scale", "-scale-ns", "12,x"}, &out); err == nil {
		t.Fatal("bad -scale-ns accepted")
	}
}
