package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSingleNodePublishDeliversLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test skipped in -short mode")
	}
	in, inW := io.Pipe()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-interval", "10ms",
			"-status", "0",
		}, in, &out)
	}()

	// Wait for startup, publish one line, expect local delivery echo.
	waitFor(t, &out, "listening on")
	if _, err := inW.Write([]byte("hello self\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, &out, "[sent")
	waitFor(t, &out, "hello self")

	inW.Close() // EOF terminates the loop
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit on EOF")
	}
}

func TestTwoNodeDissemination(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test skipped in -short mode")
	}
	inA, inAW := io.Pipe()
	var outA syncBuffer
	doneA := make(chan error, 1)
	go func() {
		doneA <- run([]string{"-listen", "127.0.0.1:0", "-interval", "10ms", "-status", "0"}, inA, &outA)
	}()
	waitFor(t, &outA, "listening on")
	addrA := parseListenAddr(t, outA.String())

	inB, inBW := io.Pipe()
	var outB syncBuffer
	doneB := make(chan error, 1)
	go func() {
		doneB <- run([]string{
			"-listen", "127.0.0.1:0", "-join", addrA,
			"-interval", "10ms", "-status", "0",
		}, inB, &outB)
	}()
	waitFor(t, &outB, "joined via")

	// Give gossip a moment to link the two nodes, then publish from A.
	time.Sleep(300 * time.Millisecond)
	if _, err := inAW.Write([]byte("cross-node hello\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, &outB, "cross-node hello")

	inAW.Close()
	inBW.Close()
	for _, done := range []chan error{doneA, doneB} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not exit on EOF")
		}
	}
}

func TestBadProtocolFlag(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-proto", "smoke-signals"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestBadListenAddr(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-listen", "256.0.0.1:-1"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func waitFor(t *testing.T, out *syncBuffer, substr string) {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for !strings.Contains(out.String(), substr) {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %q in output:\n%s", substr, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// parseListenAddr extracts the address from "node <id> listening on <addr> ...".
func parseListenAddr(t *testing.T, s string) string {
	t.Helper()
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, "listening on "); i >= 0 {
			rest := line[i+len("listening on "):]
			if j := strings.IndexByte(rest, ' '); j > 0 {
				return rest[:j]
			}
			return rest
		}
	}
	t.Fatalf("no listen address in output:\n%s", s)
	return ""
}

// TestUsageCoversAllFlags regenerates the -h text and asserts every
// registered flag appears in the hand-written examples section, so the
// examples cannot drift from the flag set.
func TestUsageCoversAllFlags(t *testing.T) {
	var buf syncBuffer
	err := run([]string{"-h"}, strings.NewReader(""), &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := buf.String()
	cut := strings.Index(usage, "Flags:")
	if cut < 0 {
		t.Fatalf("usage has no Flags section:\n%s", usage)
	}
	examples, flagRef := usage[:cut], usage[cut:]
	matches := regexp.MustCompile(`(?m)^  -([a-z][a-z-]*)`).FindAllStringSubmatch(flagRef, -1)
	if len(matches) < 9 {
		t.Fatalf("flag reference lists only %d flags:\n%s", len(matches), flagRef)
	}
	for _, m := range matches {
		if !strings.Contains(examples, "-"+m[1]) {
			t.Errorf("flag -%s is not shown in any usage example", m[1])
		}
	}
}
