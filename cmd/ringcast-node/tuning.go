package main

// Runtime tuning and observability wiring: the config.Store key catalog,
// the -config JSON file source, the live bindings from accepted updates to
// node and transport setters, and the /metrics telemetry registry. All of
// it is cmd-layer glue — the store itself (internal/config) stays free of
// file IO and signal handling, and the registry (internal/telemetry) knows
// nothing about which counters a node exposes.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"ringcast/internal/config"
	"ringcast/internal/node"
	"ringcast/internal/telemetry"
	"ringcast/internal/transport"
)

// buildStore registers the runtime-tunable key catalog, seeded from the
// node configuration the flags produced. Bounds mirror the setters they
// feed (SetViewSizes rejects views below the layer's exchange length, so
// the store rejects them upfront and the prior version stays current).
func buildStore(cfg node.Config) (*config.Store, error) {
	s := config.NewStore()
	defs := []config.Def{
		{Name: "gossip.interval", Type: config.TypeDuration, Default: cfg.GossipInterval.String(),
			Bounded: true, Min: float64(time.Millisecond), Max: float64(time.Hour),
			Help: "gossip cycle length T; the timer re-arms immediately"},
		{Name: "gossip.fanout", Type: config.TypeInt, Default: strconv.Itoa(cfg.Fanout),
			Bounded: true, Min: 1, Max: 128,
			Help: "dissemination fanout F; applies at the next cycle boundary"},
		{Name: "cyclon.view", Type: config.TypeInt, Default: strconv.Itoa(cfg.Cyclon.ViewSize),
			Bounded: true, Min: float64(cfg.Cyclon.ShuffleLen), Max: 1024,
			Help: "CYCLON partial-view length; applies at the next cycle boundary"},
		{Name: "vicinity.view", Type: config.TypeInt, Default: strconv.Itoa(cfg.Vicinity.ViewSize),
			Bounded: true, Min: float64(cfg.Vicinity.GossipLen), Max: 1024,
			Help: "VICINITY partial-view length; applies at the next cycle boundary"},
		{Name: "sendq.cap", Type: config.TypeInt, Default: strconv.Itoa(transport.DefaultSendQueueCap),
			Bounded: true, Min: 1, Max: 1 << 20,
			Help: "per-destination send queue capacity, frames"},
		{Name: "sendq.batch", Type: config.TypeInt, Default: strconv.Itoa(transport.DefaultMaxBatchBytes),
			Bounded: true, Min: 1, Max: 1 << 30,
			Help: "writer batch cap, bytes per write call"},
		{Name: "sendq.idle", Type: config.TypeDuration, Default: transport.DefaultWriterIdle.String(),
			Bounded: true, Min: float64(time.Millisecond), Max: float64(time.Hour),
			Help: "writer idle linger before connection teardown"},
	}
	for _, d := range defs {
		if err := s.Register(d); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// applyConfigFile reads path and applies it to the store as one two-phase
// JSON document: a single bad key rejects the whole file and the store
// keeps its prior version. Called at boot and again on every SIGHUP.
func applyConfigFile(s *config.Store, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, err = s.ApplyJSON(data)
	return err
}

// bindStore subscribes the runtime to every tunable key, translating
// accepted store updates into the node and transport setters. The initial
// snapshot each subscription delivers re-applies the current value, which
// is idempotent by construction. Setter rejections (a view shrunk below
// its exchange length between validation and delivery cannot happen — the
// bounds match — but the plumbing reports them anyway) are logged, never
// fatal: the store has already committed, and the next update supersedes.
func bindStore(s *config.Store, rt *runtime, tr *transport.TCPTransport, out io.Writer) error {
	complain := func(key string, err error) {
		if err != nil {
			fmt.Fprintf(out, "[config] %s: %v\n", key, err)
		}
	}
	eachNode := func(fn func(*node.Node) error) error {
		for _, nd := range rt.nodes() {
			if err := fn(nd); err != nil {
				return err
			}
		}
		return nil
	}
	bindings := []struct {
		key string
		fn  func(config.Update) error
	}{
		{"gossip.interval", func(u config.Update) error {
			d, err := time.ParseDuration(u.Value)
			if err != nil {
				return err
			}
			return eachNode(func(nd *node.Node) error { return nd.SetGossipInterval(d) })
		}},
		{"gossip.fanout", func(u config.Update) error {
			f, err := strconv.Atoi(u.Value)
			if err != nil {
				return err
			}
			return eachNode(func(nd *node.Node) error { return nd.SetFanout(f) })
		}},
		{"cyclon.view", func(u config.Update) error {
			v, err := strconv.Atoi(u.Value)
			if err != nil {
				return err
			}
			return eachNode(func(nd *node.Node) error { return nd.SetViewSizes(v, 0) })
		}},
		{"vicinity.view", func(u config.Update) error {
			v, err := strconv.Atoi(u.Value)
			if err != nil {
				return err
			}
			return eachNode(func(nd *node.Node) error { return nd.SetViewSizes(0, v) })
		}},
		{"sendq.cap", func(u config.Update) error {
			n, err := strconv.Atoi(u.Value)
			if err != nil {
				return err
			}
			return tr.SetSendQueueCap(n)
		}},
		{"sendq.batch", func(u config.Update) error {
			n, err := strconv.Atoi(u.Value)
			if err != nil {
				return err
			}
			return tr.SetMaxBatchBytes(n)
		}},
		{"sendq.idle", func(u config.Update) error {
			d, err := time.ParseDuration(u.Value)
			if err != nil {
				return err
			}
			return tr.SetWriterIdle(d)
		}},
	}
	for _, b := range bindings {
		b := b
		if _, err := s.Notify(b.key, func(u config.Update) { complain(b.key, b.fn(u)) }); err != nil {
			return err
		}
	}
	return nil
}

// buildRegistry wires the node's counters and the config store's current
// state into a telemetry registry for the -metrics endpoint. Node counters
// carry a topic label (the plain overlay publishes under topic "-"); the
// ringcast_transport_* family is the base-socket aggregate; in pub/sub
// mode ringcast_topic_* adds the per-topic mux attribution on top.
func buildRegistry(rt *runtime, s *config.Store, epoch uint32) *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.Describe("ringcast_node_published_total", telemetry.Counter, "messages published locally")
	r.Describe("ringcast_node_delivered_total", telemetry.Counter, "messages delivered to the application")
	r.Describe("ringcast_node_duplicates_total", telemetry.Counter, "duplicate receives suppressed by dedup")
	r.Describe("ringcast_node_forwarded_total", telemetry.Counter, "dissemination forwards sent")
	r.Describe("ringcast_node_send_errors_total", telemetry.Counter, "sends that failed or were rejected")
	r.Describe("ringcast_transport_frames_sent_total", telemetry.Counter, "frames handed to the wire, all overlays")
	r.Describe("ringcast_transport_bytes_sent_total", telemetry.Counter, "marshalled bytes sent, all overlays")
	r.Describe("ringcast_transport_drops_total", telemetry.Counter, "frames dropped by backpressure")
	r.Describe("ringcast_transport_rejects_total", telemetry.Counter, "sends rejected at a full queue")
	r.Describe("ringcast_transport_dial_failures_total", telemetry.Counter, "outbound dials that failed")
	r.Describe("ringcast_transport_queue_depth", telemetry.Gauge, "frames currently queued across writers")
	r.Describe("ringcast_transport_writers", telemetry.Gauge, "live writer goroutines")
	r.Describe("ringcast_topic_frames_sent_total", telemetry.Counter, "frames sent, attributed per topic (pub/sub)")
	r.Describe("ringcast_topic_bytes_sent_total", telemetry.Counter, "bytes sent, attributed per topic (pub/sub)")
	r.Describe("ringcast_topic_rejects_total", telemetry.Counter, "queue-full rejects, attributed per topic (pub/sub)")
	r.Describe("ringcast_stray_frames_total", telemetry.Counter, "frames for unknown topics, dropped by the mux")
	r.Describe("ringcast_config_version", telemetry.Gauge, "config store version, bumped per accepted Set")
	r.Describe("ringcast_config_gossip_interval_seconds", telemetry.Gauge, "current gossip cycle length T")
	r.Describe("ringcast_config_fanout", telemetry.Gauge, "current dissemination fanout F")
	r.Describe("ringcast_config_send_queue_cap", telemetry.Gauge, "current per-destination send queue capacity")
	r.Describe("ringcast_epoch", telemetry.Gauge, "incarnation epoch stamped into published message IDs")
	r.Collect(func() []telemetry.Sample {
		var out []telemetry.Sample
		nds := rt.nodes()
		for i, nd := range nds {
			topic := "-"
			if i < len(rt.topics) {
				topic = rt.topics[i]
			}
			st := nd.Stats()
			lbl := map[string]string{"topic": topic}
			out = append(out,
				telemetry.Sample{Name: "ringcast_node_published_total", Labels: lbl, Value: float64(st.Published)},
				telemetry.Sample{Name: "ringcast_node_delivered_total", Labels: lbl, Value: float64(st.Delivered)},
				telemetry.Sample{Name: "ringcast_node_duplicates_total", Labels: lbl, Value: float64(st.Duplicates)},
				telemetry.Sample{Name: "ringcast_node_forwarded_total", Labels: lbl, Value: float64(st.Forwarded)},
				telemetry.Sample{Name: "ringcast_node_send_errors_total", Labels: lbl, Value: float64(st.SendErrors)},
			)
		}
		ts := rt.transportStats()
		out = append(out,
			telemetry.Sample{Name: "ringcast_transport_frames_sent_total", Value: float64(ts.FramesSent)},
			telemetry.Sample{Name: "ringcast_transport_bytes_sent_total", Value: float64(ts.BytesSent)},
			telemetry.Sample{Name: "ringcast_transport_drops_total", Value: float64(ts.Drops)},
			telemetry.Sample{Name: "ringcast_transport_rejects_total", Value: float64(ts.Rejects)},
			telemetry.Sample{Name: "ringcast_transport_dial_failures_total", Value: float64(ts.DialFailures)},
			telemetry.Sample{Name: "ringcast_transport_queue_depth", Value: float64(ts.QueueDepth)},
			telemetry.Sample{Name: "ringcast_transport_writers", Value: float64(ts.Writers)},
		)
		if rt.peer != nil {
			for _, tp := range rt.topics {
				if st, ok := rt.peer.TopicStats(tp); ok {
					lbl := map[string]string{"topic": tp}
					out = append(out,
						telemetry.Sample{Name: "ringcast_topic_frames_sent_total", Labels: lbl, Value: float64(st.FramesSent)},
						telemetry.Sample{Name: "ringcast_topic_bytes_sent_total", Labels: lbl, Value: float64(st.BytesSent)},
						telemetry.Sample{Name: "ringcast_topic_rejects_total", Labels: lbl, Value: float64(st.Rejects)},
					)
				}
			}
			out = append(out, telemetry.Sample{Name: "ringcast_stray_frames_total", Value: float64(rt.peer.StrayFrames())})
		}
		fanout, interval, sendqCap := 0, time.Duration(0), int64(0)
		if len(nds) > 0 {
			fanout, interval = nds[0].Fanout(), nds[0].GossipInterval()
		}
		sendqCap = s.Int("sendq.cap")
		out = append(out,
			telemetry.Sample{Name: "ringcast_config_version", Value: float64(s.Version())},
			telemetry.Sample{Name: "ringcast_config_gossip_interval_seconds", Value: interval.Seconds()},
			telemetry.Sample{Name: "ringcast_config_fanout", Value: float64(fanout)},
			telemetry.Sample{Name: "ringcast_config_send_queue_cap", Value: float64(sendqCap)},
			telemetry.Sample{Name: "ringcast_epoch", Value: float64(epoch)},
		)
		return out
	})
	return r
}
