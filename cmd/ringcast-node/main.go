// Command ringcast-node runs a live RingCast participant over TCP.
//
// Each line read from standard input is published to the overlay; every
// message delivered from the overlay is printed to standard output. Start a
// first node, then point further nodes at it with -join. With -topics the
// node becomes a pub/sub peer running one overlay per topic (Section 8's
// topic-based publish/subscribe); with -control it additionally serves the
// soak-harness control protocol (internal/soak) for health probes, fault
// injection and delivery-ledger collection, and -seed pins the node's ring
// identity so a supervised restart rejoins under the same identifier
// (-epoch then separates the incarnations so restarted sequence numbers
// cannot collide with pre-crash message IDs).
//
// Runtime behavior is re-tunable without a restart: gossip interval,
// fanout, view sizes and send-queue settings live in a versioned config
// store fed by three sources — flags at boot, a -config JSON file
// (reloaded on SIGHUP), and the control protocol's set/get verbs. With
// -metrics the node serves its counters and current config as a
// Prometheus text-format /metrics endpoint.
//
// Run with -h for the full flag reference and examples.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ringcast/internal/config"
	"ringcast/internal/core"
	"ringcast/internal/ident"
	"ringcast/internal/node"
	"ringcast/internal/pubsub"
	"ringcast/internal/soak"
	"ringcast/internal/telemetry"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// usageHeader is the long-form usage text printed by -h, ahead of the
// generated flag reference. TestUsageCoversAllFlags asserts every
// registered flag appears in at least one example, so the examples cannot
// drift from the flag set.
const usageHeader = `Usage: ringcast-node [flags]

Run one live RingCast node. Lines on stdin are published; deliveries are
printed to stdout.

Examples:
  ringcast-node -listen 127.0.0.1:7001                      # first node
  ringcast-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001 # join the mesh
  ringcast-node -join 127.0.0.1:7001 -proto randcast -fanout 5
  ringcast-node -join 127.0.0.1:7001 -interval 100ms -status 2s
  ringcast-node -join 127.0.0.1:7001 -topics news,sports    # pub/sub peer, one overlay per topic
  ringcast-node -join 127.0.0.1:7001 -control 127.0.0.1:0 -seed 7  # soak-harness control surface
  ringcast-node -join 127.0.0.1:7001 -metrics 127.0.0.1:9100       # Prometheus /metrics endpoint
  ringcast-node -join 127.0.0.1:7001 -config tuning.json           # runtime config file, reloaded on SIGHUP
  ringcast-node -control 127.0.0.1:0 -seed 7 -epoch 1   # supervised restart: same identity, fresh incarnation

Flags:
`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "ringcast-node:", err)
		os.Exit(1)
	}
}

// runtime abstracts the two node shapes (plain single-overlay node,
// multi-topic pub/sub peer) behind the hooks the control agent and the
// stdin/status loop need.
type runtime struct {
	topics  []string // sorted; {"-"} in plain mode
	nd      *node.Node
	peer    *pubsub.Peer
	pubItem string // stdin lines publish to this topic
}

// nodes returns the per-topic nodes in topic order.
func (r *runtime) nodes() []*node.Node {
	if r.nd != nil {
		return []*node.Node{r.nd}
	}
	out := make([]*node.Node, 0, len(r.topics))
	for _, tp := range r.topics {
		if nd, ok := r.peer.Node(tp); ok {
			out = append(out, nd)
		}
	}
	return out
}

// id is the node's ring identity: the first topic's node ID, which the
// soak harness hands to the scenario driver for arc resolution.
func (r *runtime) id() ident.ID {
	nds := r.nodes()
	if len(nds) == 0 {
		return ident.Nil
	}
	return nds[0].ID()
}

func (r *runtime) addr() string {
	if r.nd != nil {
		return r.nd.Addr()
	}
	return r.peer.Addr()
}

func (r *runtime) publish(topic string, body []byte) (wire.MsgID, error) {
	if r.nd != nil {
		if topic != r.pubItem {
			return wire.MsgID{}, fmt.Errorf("plain node has no topic %q", topic)
		}
		return r.nd.Publish(body)
	}
	return r.peer.Publish(topic, body)
}

func (r *runtime) status() map[string]soak.TopicStatus {
	out := make(map[string]soak.TopicStatus, len(r.topics))
	for i, nd := range r.nodes() {
		st := soak.TopicStatus{ID: uint64(nd.ID()), View: len(nd.ViewIDs())}
		if pred, succ, ok := nd.RingNeighbors(); ok {
			st.Pred, st.Succ, st.Ring = uint64(pred.Node), uint64(succ.Node), true
		}
		out[r.topics[i]] = st
	}
	return out
}

func (r *runtime) nodeStats() node.Stats {
	var agg node.Stats
	for _, nd := range r.nodes() {
		s := nd.Stats()
		agg.Published += s.Published
		agg.Delivered += s.Delivered
		agg.Duplicates += s.Duplicates
		agg.Forwarded += s.Forwarded
		agg.SendErrors += s.SendErrors
		agg.QueueFull += s.QueueFull
		agg.Shuffles += s.Shuffles
		agg.VicExchanges += s.VicExchanges
	}
	return agg
}

func (r *runtime) transportStats() transport.Stats {
	if r.nd != nil {
		return r.nd.TransportStats()
	}
	return r.peer.TransportStats()
}

func (r *runtime) close() {
	if r.nd != nil {
		r.nd.Close()
		return
	}
	r.peer.Close()
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ringcast-node", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprint(out, usageHeader)
		fs.PrintDefaults()
	}
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		join     = fs.String("join", "", "bootstrap peer address (empty = first node)")
		fanout   = fs.Int("fanout", 3, "dissemination fanout F")
		proto    = fs.String("proto", "ringcast", "protocol: ringcast or randcast")
		interval = fs.Duration("interval", 500*time.Millisecond, "gossip cycle length")
		status   = fs.Duration("status", 10*time.Second, "status print interval (0 = off)")
		control  = fs.String("control", "", "soak control server listen address (empty = off)")
		topics   = fs.String("topics", "", "comma-separated pub/sub topics (empty = one plain overlay)")
		seed     = fs.Int64("seed", 0, "deterministic identity seed (0 = random ring IDs)")
		epoch    = fs.Uint("epoch", 0, "incarnation epoch stamped into message IDs (supervised restarts pass the restart count)")
		metrics  = fs.String("metrics", "", "Prometheus /metrics listen address (empty = off)")
		cfgFile  = fs.String("config", "", "JSON runtime-config file, applied at boot and reloaded on SIGHUP (empty = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sel, err := core.ByName(*proto)
	if err != nil {
		return err
	}

	tr, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}

	// The control agent binds before the node exists so the deliver
	// callback can feed its ledger from the very first message; the fault
	// injector sits between the node and the socket so control-programmed
	// partitions black-hole real frames.
	var agent *soak.Agent
	var faults *transport.FaultInjector
	base := transport.Transport(tr)
	if *control != "" {
		agent, err = soak.NewAgent(*control)
		if err != nil {
			tr.Close()
			return err
		}
		fseed := *seed
		if fseed == 0 {
			fseed = 1
		}
		faults = transport.WrapFaults(tr, fseed)
		base = faults
	}

	cfg := node.DefaultConfig()
	cfg.Fanout = *fanout
	cfg.Selector = sel
	cfg.GossipInterval = *interval
	cfg.Seed = *seed
	cfg.Epoch = uint32(*epoch)

	// The tunable-key store seeds from the flag values; the -config file
	// (when given) then overrides at boot through the same two-phase apply
	// the SIGHUP reload uses. The runtime below is built from the
	// post-file values, so boot-time file config reaches even settings
	// that only exist at construction.
	cleanup := func() {
		if agent != nil {
			agent.Close()
		}
		base.Close()
	}
	store, err := buildStore(cfg)
	if err != nil {
		cleanup()
		return err
	}
	defer store.Close()
	if *cfgFile != "" {
		if err := applyConfigFile(store, *cfgFile); err != nil {
			cleanup()
			return err
		}
	}
	cfg.Fanout = int(store.Int("gossip.fanout"))
	cfg.GossipInterval = store.Duration("gossip.interval")
	cfg.Cyclon.ViewSize = int(store.Int("cyclon.view"))
	cfg.Vicinity.ViewSize = int(store.Int("vicinity.view"))
	if err := tr.SetSendQueueCap(int(store.Int("sendq.cap"))); err != nil {
		cleanup()
		return err
	}
	if err := tr.SetMaxBatchBytes(int(store.Int("sendq.batch"))); err != nil {
		cleanup()
		return err
	}
	if err := tr.SetWriterIdle(store.Duration("sendq.idle")); err != nil {
		cleanup()
		return err
	}

	rt, err := buildRuntime(cfg, base, *topics, *join, out, agent)
	if err != nil {
		cleanup()
		return err
	}
	defer rt.close()
	if err := bindStore(store, rt, tr, out); err != nil {
		return err
	}

	var msrv *telemetry.Server
	if *metrics != "" {
		msrv, err = telemetry.Serve(*metrics, buildRegistry(rt, store, cfg.Epoch))
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", msrv.Addr())
	}

	fmt.Fprintf(out, "node %s listening on %s (%s, F=%d)\n", rt.id(), rt.addr(), sel.Name(), *fanout)
	if err := joinMesh(rt, *join, *interval); err != nil {
		return err
	}
	if *join != "" {
		fmt.Fprintf(out, "joined via %s\n", *join)
	}

	// quit carries the control protocol's shutdown request into the main
	// select; the Quit hook must not block, hence the once-guarded close.
	quit := make(chan struct{})
	var quitOnce sync.Once
	if agent != nil {
		defer agent.Close()
		agent.Start(soak.Hooks{
			ID:             rt.id,
			Addr:           rt.addr,
			Topics:         rt.topics,
			Publish:        rt.publish,
			Status:         rt.status,
			NodeStats:      rt.nodeStats,
			TransportStats: rt.transportStats,
			Faults:         faults,
			SetParam: func(key, value string) error {
				_, err := store.Set(key, value)
				return err
			},
			GetParam: func(key string) (string, uint64, error) {
				snap := store.Snapshot()
				v, ok := snap.Values[key]
				if !ok {
					return "", 0, config.ErrUnknownKey
				}
				return v, snap.Version, nil
			},
			Quit: func() { quitOnce.Do(func() { close(quit) }) },
		})
		// The machine-parseable handshake the soak harness scans for.
		extra := ""
		if msrv != nil {
			extra = " metrics=" + msrv.Addr()
		}
		fmt.Fprintf(out, "SOAK ready addr=%s control=%s id=%d pid=%d%s\n",
			rt.addr(), agent.Addr(), uint64(rt.id()), os.Getpid(), extra)
	}

	// stop unblocks the reader goroutine when run returns for any other
	// reason (signal, publish error): without it a line arriving after the
	// main loop exits would park the goroutine on the lines send forever.
	// readErr stays a buffered handoff — its single send cannot block.
	lines := make(chan string)
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-stop:
				return
			}
		}
		readErr <- sc.Err()
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	// SIGHUP re-reads the -config file; without one the channel stays
	// unregistered (nil reads never fire) and SIGHUP keeps its default.
	var hup chan os.Signal
	if *cfgFile != "" {
		hup = make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
	}

	var statusC <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		statusC = t.C
	}

	for {
		select {
		case line := <-lines:
			if line == "" {
				continue
			}
			mid, err := rt.publish(rt.pubItem, []byte(line))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "[sent %s]\n", mid)
		case <-statusC:
			printStatus(out, rt)
		case err := <-readErr:
			if agent != nil {
				// Control mode runs supervised with stdin on /dev/null:
				// EOF there is immediate and meaningless. Disable the
				// stdin path and keep serving until a signal or a control
				// quit (nil channels never fire).
				lines, readErr = nil, nil
				continue
			}
			return err
		case <-hup:
			if err := applyConfigFile(store, *cfgFile); err != nil {
				fmt.Fprintf(out, "[config] reload %s: %v\n", *cfgFile, err)
			} else {
				fmt.Fprintf(out, "[config] reloaded %s (version %d)\n", *cfgFile, store.Version())
			}
		case <-sigs:
			fmt.Fprintln(out, "shutting down")
			return nil
		case <-quit:
			fmt.Fprintln(out, "shutting down (control quit)")
			return nil
		}
	}
}

// buildRuntime constructs either the plain single-overlay node or the
// multi-topic pub/sub peer, wiring deliveries through the control agent's
// ledger when one is present.
func buildRuntime(cfg node.Config, base transport.Transport, topicsCSV, join string, out io.Writer, agent *soak.Agent) (*runtime, error) {
	if topicsCSV == "" {
		rt := &runtime{topics: []string{"-"}, pubItem: "-"}
		nd, err := node.New(cfg, base, func(d node.Delivery) {
			if agent != nil {
				agent.Deliver("-", d.Msg.ID)
			}
			fmt.Fprintf(out, "[recv %s from %s] %s\n", d.Msg.ID, d.From, d.Msg.Body)
		})
		if err != nil {
			return nil, err
		}
		rt.nd = nd
		return rt, nil
	}

	var topics []string
	for _, tp := range strings.Split(topicsCSV, ",") {
		if tp = strings.TrimSpace(tp); tp != "" {
			topics = append(topics, tp)
		}
	}
	if len(topics) == 0 {
		return nil, errors.New("-topics given but empty")
	}
	sort.Strings(topics)
	peer, err := pubsub.NewPeer(base, cfg)
	if err != nil {
		return nil, err
	}
	var bootstrap []string
	if join != "" {
		bootstrap = []string{join}
	}
	for _, tp := range topics {
		topic := tp
		if err := peer.Subscribe(topic, bootstrap, func(ev pubsub.Event) {
			if agent != nil {
				agent.Deliver(topic, ev.Msg.ID)
			}
			fmt.Fprintf(out, "[recv %s %s] %s\n", topic, ev.Msg.ID, ev.Msg.Body)
		}); err != nil {
			peer.Close()
			return nil, err
		}
	}
	return &runtime{topics: topics, peer: peer, pubItem: topics[0]}, nil
}

// joinMesh runs the accelerated warm-up for joiners (Section 7.3's
// optimization) on every overlay. Sends are asynchronous: a dead bootstrap
// does not fail the first Join — the dial failure surfaces on a retry — so
// keep gossiping and re-probing until the bootstrap's hello-ack lands in
// the view or the deadline expires. Plain nodes Join lazily here; pub/sub
// peers already joined in Subscribe and only need the retry loop.
func joinMesh(rt *runtime, join string, interval time.Duration) error {
	if join == "" {
		if rt.nd != nil {
			return rt.nd.Start()
		}
		return nil
	}
	if rt.nd != nil {
		if err := rt.nd.Join(join); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range rt.nodes() {
		for len(nd.ViewIDs()) == 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("join %s: no response from bootstrap", join)
			}
			nd.GossipNow()
			time.Sleep(interval / 5)
			if err := nd.Join(join); err != nil {
				return fmt.Errorf("join: %w", err)
			}
		}
	}
	if rt.nd != nil {
		return rt.nd.Start()
	}
	return nil
}

// printStatus renders the periodic status lines.
func printStatus(out io.Writer, rt *runtime) {
	s := rt.nodeStats()
	ts := rt.transportStats()
	views := make([]string, 0, len(rt.topics))
	for _, tp := range rt.topics {
		st := rt.status()[tp]
		ring := "no-ring"
		if st.Ring {
			ring = "ring"
		}
		views = append(views, fmt.Sprintf("%s:view=%d,%s", tp, st.View, ring))
	}
	fmt.Fprintf(out, "[status] %s | delivered=%d dup=%d fwd=%d errs=%d busy=%d\n",
		strings.Join(views, " "), s.Delivered, s.Duplicates, s.Forwarded, s.SendErrors, s.QueueFull)
	fmt.Fprintf(out, "[transport] sent=%d frames/%d bytes queued=%d writers=%d drops=%d rejects=%d dialfail=%d\n",
		ts.FramesSent, ts.BytesSent, ts.QueueDepth, ts.Writers, ts.Drops, ts.Rejects, ts.DialFailures)
}
