// Command ringcast-node runs a live RingCast participant over TCP.
//
// Each line read from standard input is published to the overlay; every
// message delivered from the overlay is printed to standard output. Start a
// first node, then point further nodes at it with -join:
//
//	ringcast-node -listen 127.0.0.1:7001
//	ringcast-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	ringcast-node -listen 127.0.0.1:7003 -join 127.0.0.1:7001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringcast/internal/core"
	"ringcast/internal/node"
	"ringcast/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringcast-node:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ringcast-node", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		join     = fs.String("join", "", "bootstrap peer address (empty = first node)")
		fanout   = fs.Int("fanout", 3, "dissemination fanout F")
		proto    = fs.String("proto", "ringcast", "protocol: ringcast or randcast")
		interval = fs.Duration("interval", 500*time.Millisecond, "gossip cycle length")
		status   = fs.Duration("status", 10*time.Second, "status print interval (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sel, err := core.ByName(*proto)
	if err != nil {
		return err
	}

	tr, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}
	cfg := node.DefaultConfig()
	cfg.Fanout = *fanout
	cfg.Selector = sel
	cfg.GossipInterval = *interval

	nd, err := node.New(cfg, tr, func(d node.Delivery) {
		fmt.Fprintf(out, "[recv %s from %s] %s\n", d.Msg.ID, d.From, d.Msg.Body)
	})
	if err != nil {
		tr.Close()
		return err
	}
	defer nd.Close()

	fmt.Fprintf(out, "node %s listening on %s (%s, F=%d)\n", nd.ID(), nd.Addr(), sel.Name(), *fanout)
	if *join != "" {
		if err := nd.Join(*join); err != nil {
			return err
		}
		// Accelerated warm-up for joiners (Section 7.3's optimization).
		// Sends are asynchronous: a dead bootstrap does not fail the first
		// Join — the dial failure surfaces on a retry — so keep gossiping
		// and re-probing until the bootstrap's hello-ack lands in the view
		// or the transport reports the failure.
		deadline := time.Now().Add(10 * time.Second)
		for len(nd.ViewIDs()) == 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("join %s: no response from bootstrap", *join)
			}
			nd.GossipNow()
			time.Sleep(*interval / 5)
			if err := nd.Join(*join); err != nil {
				return fmt.Errorf("join: %w", err)
			}
		}
		fmt.Fprintf(out, "joined via %s\n", *join)
	}
	if err := nd.Start(); err != nil {
		return err
	}

	// stop unblocks the reader goroutine when run returns for any other
	// reason (signal, publish error): without it a line arriving after the
	// main loop exits would park the goroutine on the lines send forever.
	// readErr stays a buffered handoff — its single send cannot block.
	lines := make(chan string)
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-stop:
				return
			}
		}
		readErr <- sc.Err()
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var statusC <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		statusC = t.C
	}

	for {
		select {
		case line := <-lines:
			if line == "" {
				continue
			}
			mid, err := nd.Publish([]byte(line))
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "[sent %s]\n", mid)
		case <-statusC:
			s := nd.Stats()
			ts := nd.TransportStats()
			pred, succ, ok := nd.RingNeighbors()
			ring := "ring: not yet formed"
			if ok {
				ring = fmt.Sprintf("ring: %s <- self -> %s", pred.Node, succ.Node)
			}
			fmt.Fprintf(out, "[status] view=%d %s | delivered=%d dup=%d fwd=%d errs=%d busy=%d\n",
				len(nd.ViewIDs()), ring, s.Delivered, s.Duplicates, s.Forwarded, s.SendErrors, s.QueueFull)
			fmt.Fprintf(out, "[transport] sent=%d frames/%d bytes queued=%d writers=%d drops=%d rejects=%d dialfail=%d\n",
				ts.FramesSent, ts.BytesSent, ts.QueueDepth, ts.Writers, ts.Drops, ts.Rejects, ts.DialFailures)
		case err := <-readErr:
			return err
		case <-sigs:
			fmt.Fprintln(out, "shutting down")
			return nil
		}
	}
}
