// Command ringcast-sim runs a single dissemination scenario and prints a
// summary — a quick way to poke at the protocols without the full figure
// harness.
//
// Usage:
//
//	ringcast-sim -n 10000 -proto ringcast -fanout 3
//	ringcast-sim -n 10000 -proto randcast -fanout 5 -fail 0.05
//	ringcast-sim -n 2000  -proto ringcast -fanout 3 -churn 0.002 -churn-cycles 2000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ringcast/internal/churn"
	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/metrics"
	"ringcast/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringcast-sim", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 10000, "node population")
		proto       = fs.String("proto", "ringcast", "protocol: ringcast, randcast, flood")
		fanout      = fs.Int("fanout", 3, "dissemination fanout F")
		runs        = fs.Int("runs", 100, "number of disseminations")
		warmup      = fs.Int("warmup", 100, "warm-up cycles before freezing")
		fail        = fs.Float64("fail", 0, "catastrophic failure fraction applied after freeze")
		churnRate   = fs.Float64("churn", 0, "per-cycle churn rate before freezing")
		churnCycles = fs.Int("churn-cycles", 1000, "churn cycles to run when -churn > 0")
		seed        = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sel, err := core.ByName(*proto)
	if err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*n)
	cfg.Seed = *seed
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "self-organizing %d nodes...\n", *n)
	cycles, conv := nw.WarmUp(*warmup, 10*(*warmup))
	fmt.Fprintf(out, "warm-up: %d cycles, ring convergence %.4f\n", cycles, conv)

	if *churnRate > 0 {
		model := churn.Model{Rate: *churnRate}
		if err := model.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(out, "churning %.3g%%/cycle for %d cycles...\n", *churnRate*100, *churnCycles)
		model.Run(nw, *churnCycles)
		fmt.Fprintf(out, "after churn: %d alive, ring convergence %.4f\n", nw.AliveCount(), nw.RingConvergence())
	}

	o := dissem.Snapshot(nw)
	if *fail > 0 {
		killed := o.KillFraction(*fail, nw.Rand())
		fmt.Fprintf(out, "catastrophic failure: killed %d nodes (no self-healing)\n", killed)
	}

	var acc metrics.Accumulator
	for r := 0; r < *runs; r++ {
		origin, err := o.RandomAliveOrigin(nw.Rand())
		if err != nil {
			return err
		}
		d, err := dissem.RunOpts(o, origin, sel, *fanout, nw.Rand(), dissem.Options{SkipLoad: true})
		if err != nil {
			return err
		}
		acc.Add(d)
	}
	agg := acc.Finalize()

	fmt.Fprintf(out, "\n%s, F=%d, %d runs over %d live nodes:\n", sel.Name(), *fanout, *runs, o.AliveCount())
	fmt.Fprintf(out, "  miss ratio:              %.6f (%.4f%%)\n", agg.MeanMissRatio, agg.MeanMissRatio*100)
	fmt.Fprintf(out, "  complete disseminations: %.0f%%\n", agg.CompleteFraction*100)
	fmt.Fprintf(out, "  mean hops:               %.2f (max %d)\n", agg.MeanHops, agg.MaxHops)
	fmt.Fprintf(out, "  msgs/dissemination:      %.0f virgin + %.0f redundant + %.0f lost\n",
		agg.MeanVirgin, agg.MeanRedundant, agg.MeanLost)
	return nil
}
