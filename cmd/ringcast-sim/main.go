// Command ringcast-sim runs a single dissemination scenario and prints a
// summary — a quick way to poke at the protocols without the full figure
// harness. The dissemination runs fan out across -parallel workers (one per
// CPU by default) with per-run derived random streams, so the summary is
// identical at any parallelism; -progress shows live status on stderr.
//
// Run with -h for the full flag reference and examples.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ringcast/internal/churn"
	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/metrics"
	"ringcast/internal/runner"
	"ringcast/internal/scenario"
	"ringcast/internal/sim"
)

// Seed-derivation tags for the per-run random streams (origin draw and
// dissemination), kept distinct so the streams never collide.
const (
	tagOrigin int64 = iota + 1
	tagDissem
)

// usageHeader is the long-form usage text printed by -h, ahead of the
// generated flag reference. TestUsageCoversAllFlags asserts every
// registered flag appears in at least one example, so the examples cannot
// drift from the flag set again.
const usageHeader = `Usage: ringcast-sim [flags]

Run one dissemination experiment — self-organize a network, optionally
damage it, disseminate, summarize — without the full figure harness.

Examples:
  ringcast-sim -n 10000 -proto ringcast -fanout 3
  ringcast-sim -n 10000 -proto randcast -fanout 5 -fail 0.05 -warmup 100
  ringcast-sim -n 2000  -proto ringcast -churn 0.002 -churn-cycles 2000
  ringcast-sim -n 2000  -scenario partition-heal -seed 7
  ringcast-sim -n 10000 -runs 1000 -parallel 8 -progress

Built-in scenarios for -scenario (see internal/scenario):
  ` + "%s" + `

Flags:
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "ringcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ringcast-sim", flag.ContinueOnError)
	// Parse errors surface once, via main's stderr print of the returned
	// error; the long usage goes to out only when -h explicitly asks for it
	// (never mixed into a redirected summary on a flag typo).
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	printUsage := func() {
		fmt.Fprintf(out, usageHeader, strings.Join(scenario.Names(), ", "))
		fs.SetOutput(out)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	var (
		n            = fs.Int("n", 10000, "node population")
		proto        = fs.String("proto", "ringcast", "protocol: ringcast, randcast, flood")
		fanout       = fs.Int("fanout", 3, "dissemination fanout F")
		runs         = fs.Int("runs", 100, "number of disseminations")
		warmup       = fs.Int("warmup", 100, "warm-up cycles before freezing")
		fail         = fs.Float64("fail", 0, "catastrophic failure fraction applied after freeze")
		churnRate    = fs.Float64("churn", 0, "per-cycle churn rate before freezing")
		churnCycles  = fs.Int("churn-cycles", 1000, "churn cycles to run when -churn > 0")
		scenarioName = fs.String("scenario", "", "run a named fault scenario (see -h for the catalog); excludes -fail and -churn")
		seed         = fs.Int64("seed", 1, "random seed")
		parallel     = fs.Int("parallel", 0, "worker goroutines for the dissemination runs (0 = one per CPU, 1 = sequential); results are identical at any setting")
		progress     = fs.Bool("progress", false, "report live dissemination progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			printUsage()
		}
		return err
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = one worker per CPU), got %d", *parallel)
	}
	if *scenarioName != "" && (*fail > 0 || *churnRate > 0) {
		return fmt.Errorf("-scenario cannot be combined with -fail or -churn (fold them into the scenario timeline instead)")
	}
	var sc scenario.Scenario
	haveScenario := false
	if *scenarioName != "" {
		var ok bool
		if sc, ok = scenario.Builtin(*scenarioName); !ok {
			return fmt.Errorf("unknown scenario %q (built-ins: %s)", *scenarioName, strings.Join(scenario.Names(), ", "))
		}
		haveScenario = true
	}
	if *progress {
		// A failing run leaves its \r status line unfinished; terminate it
		// so the error does not land on top of the stale progress text.
		defer func() {
			if err != nil {
				fmt.Fprintln(os.Stderr)
			}
		}()
	}
	sel, err := core.ByName(*proto)
	if err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*n)
	cfg.Seed = *seed
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "self-organizing %d nodes...\n", *n)
	cycles, conv := nw.WarmUp(*warmup, 10*(*warmup))
	fmt.Fprintf(out, "warm-up: %d cycles, ring convergence %.4f\n", cycles, conv)

	if *churnRate > 0 {
		model := churn.Model{Rate: *churnRate}
		if err := model.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(out, "churning %.3g%%/cycle for %d cycles...\n", *churnRate*100, *churnCycles)
		model.Run(nw, *churnCycles)
		fmt.Fprintf(out, "after churn: %d alive, ring convergence %.4f\n", nw.AliveCount(), nw.RingConvergence())
	}
	if haveScenario {
		if rep := scenario.RunNetworkPhase(nw, sc); rep.Cycles > 0 {
			fmt.Fprintf(out, "scenario %s network phase: %d cycles, %d joined, %d churned out; %d alive, ring convergence %.4f\n",
				sc.Name, rep.Cycles, rep.Joined, rep.Removed, nw.AliveCount(), nw.RingConvergence())
		}
	}

	o := dissem.Snapshot(nw)
	if *fail > 0 {
		killed := o.KillFraction(*fail, nw.Rand())
		fmt.Fprintf(out, "catastrophic failure: killed %d nodes (no self-healing)\n", killed)
	}
	var comp *scenario.Compiled
	if haveScenario {
		comp, err = scenario.Compile(sc, o)
		if err != nil {
			return err
		}
		if killed := comp.ApplySetup(o, nw.Rand()); killed > 0 {
			fmt.Fprintf(out, "scenario %s: killed %d nodes at time zero\n", sc.Name, killed)
		}
	}
	withFaults := comp != nil && comp.NeedsRuntime()

	// Fan the independent dissemination runs across the worker pool; each
	// run derives its own random streams from the master seed and its index,
	// and the fold below walks runs in order, so the summary does not depend
	// on -parallel.
	var prog runner.Progress
	if *progress {
		prog = runner.ConsoleProgress(os.Stderr, "disseminating")
	}
	results := make([]*metrics.Dissemination, *runs)
	err = runner.Map(*parallel, *runs, prog, func(r int) error {
		origin, err := o.RandomAliveOrigin(runner.UnitRand(*seed, tagOrigin, int64(r)))
		if err != nil {
			return err
		}
		rng := runner.UnitRand(*seed, tagDissem, int64(r))
		opts := dissem.Options{SkipLoad: true}
		var st *scenario.State
		if withFaults {
			st = comp.Get()
			opts.Faults = st
		}
		d, err := dissem.RunOpts(o, origin, sel, *fanout, rng, opts)
		if st != nil {
			comp.Put(st)
		}
		if err != nil {
			return err
		}
		results[r] = d
		return nil
	})
	if err != nil {
		return err
	}
	var acc metrics.Accumulator
	for _, d := range results {
		acc.Add(d)
	}
	agg := acc.Finalize()

	fmt.Fprintf(out, "\n%s, F=%d, %d runs over %d live nodes:\n", sel.Name(), *fanout, *runs, o.AliveCount())
	fmt.Fprintf(out, "  miss ratio:              %.6f (%.4f%%)\n", agg.MeanMissRatio, agg.MeanMissRatio*100)
	fmt.Fprintf(out, "  complete disseminations: %.0f%%\n", agg.CompleteFraction*100)
	fmt.Fprintf(out, "  mean hops:               %.2f (max %d)\n", agg.MeanHops, agg.MaxHops)
	fmt.Fprintf(out, "  msgs/dissemination:      %.0f virgin + %.0f redundant + %.0f lost\n",
		agg.MeanVirgin, agg.MeanRedundant, agg.MeanLost)
	if withFaults {
		fmt.Fprintf(out, "  blocked by faults:       %.0f msgs/dissemination\n", agg.MeanBlocked)
	}
	return nil
}
