package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStaticRingCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "3", "-proto", "ringcast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "complete disseminations: 100%") {
		t.Fatalf("RingCast not complete on static network:\n%s", s)
	}
	if !strings.Contains(s, "miss ratio:              0.000000") {
		t.Fatalf("RingCast missed nodes:\n%s", s)
	}
}

func TestRunCatastrophicRandCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "2", "-proto", "randcast", "-fail", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "catastrophic failure: killed 30 nodes") {
		t.Fatalf("kill count wrong:\n%s", s)
	}
	if !strings.Contains(s, "RandCast, F=2") {
		t.Fatalf("summary header missing:\n%s", s)
	}
}

func TestRunChurnScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "200", "-runs", "3", "-churn", "0.01", "-churn-cycles", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "after churn: 200 alive") {
		t.Fatalf("churn phase missing:\n%s", out.String())
	}
}

func TestRunParallelIsDeterministic(t *testing.T) {
	outs := make([]string, 0, 3)
	for _, p := range []string{"1", "4", "0"} {
		var out bytes.Buffer
		err := run([]string{"-n", "300", "-runs", "6", "-fanout", "2", "-proto", "randcast", "-parallel", p}, &out)
		if err != nil {
			t.Fatalf("-parallel %s: %v", p, err)
		}
		outs = append(outs, out.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("summary depends on -parallel:\n--- P=1 ---\n%s\n--- P=4 ---\n%s", outs[0], outs[1])
	}
}

func TestRunProgressFlagSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "200", "-runs", "3", "-progress"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "miss ratio") {
		t.Fatal("summary missing with -progress enabled")
	}
}

func TestRunNegativeParallelRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "50", "-runs", "1", "-parallel", "-3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("negative -parallel accepted: %v", err)
	}
}

func TestRunBadProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-proto", "carrier-pigeon"}, &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadChurnRate(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "50", "-churn", "2.0"}, &out); err == nil {
		t.Fatal("churn rate > 1 accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
