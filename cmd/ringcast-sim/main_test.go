package main

import (
	"bytes"
	"errors"
	"flag"
	"regexp"
	"strings"
	"testing"
)

// TestUsageCoversAllFlags regenerates the -h text and asserts every
// registered flag appears in the hand-written examples section, so the
// usage examples can never again drift from the flag set (as happened when
// -parallel and -progress landed).
func TestUsageCoversAllFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := buf.String()
	cut := strings.Index(usage, "Flags:")
	if cut < 0 {
		t.Fatalf("usage has no Flags section:\n%s", usage)
	}
	examples, flagRef := usage[:cut], usage[cut:]
	matches := regexp.MustCompile(`(?m)^  -([a-z][a-z-]*)`).FindAllStringSubmatch(flagRef, -1)
	if len(matches) < 10 {
		t.Fatalf("flag reference lists only %d flags:\n%s", len(matches), flagRef)
	}
	for _, m := range matches {
		if !strings.Contains(examples, "-"+m[1]) {
			t.Errorf("flag -%s is not shown in any usage example", m[1])
		}
	}
}

// TestFlagTypoDoesNotPolluteStdout pins the error-routing contract: a
// parse error must reach the caller (main prints it to stderr once), and
// nothing — no usage text, no duplicate error — may land on stdout, which
// scripts redirect for the summary.
func TestFlagTypoDoesNotPolluteStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-paralel", "4"}, &out)
	if err == nil {
		t.Fatal("flag typo accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("stdout polluted on flag typo: %q", out.String())
	}
}

func TestRunScenarioFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "4", "-scenario", "partition"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "blocked by faults:") {
		t.Fatalf("scenario summary missing blocked line:\n%s", s)
	}
	if strings.Contains(s, "complete disseminations: 100%") {
		t.Fatalf("partitioned dissemination reported complete:\n%s", s)
	}
}

func TestRunScenarioUnknown(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "100", "-scenario", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "built-ins") {
		t.Fatalf("unknown scenario accepted: %v", err)
	}
}

func TestRunScenarioConflictsWithFail(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "100", "-scenario", "lossy", "-fail", "0.1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("conflicting flags accepted: %v", err)
	}
}

func TestRunStaticRingCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "3", "-proto", "ringcast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "complete disseminations: 100%") {
		t.Fatalf("RingCast not complete on static network:\n%s", s)
	}
	if !strings.Contains(s, "miss ratio:              0.000000") {
		t.Fatalf("RingCast missed nodes:\n%s", s)
	}
}

func TestRunCatastrophicRandCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "2", "-proto", "randcast", "-fail", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "catastrophic failure: killed 30 nodes") {
		t.Fatalf("kill count wrong:\n%s", s)
	}
	if !strings.Contains(s, "RandCast, F=2") {
		t.Fatalf("summary header missing:\n%s", s)
	}
}

func TestRunChurnScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "200", "-runs", "3", "-churn", "0.01", "-churn-cycles", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "after churn: 200 alive") {
		t.Fatalf("churn phase missing:\n%s", out.String())
	}
}

func TestRunParallelIsDeterministic(t *testing.T) {
	outs := make([]string, 0, 3)
	for _, p := range []string{"1", "4", "0"} {
		var out bytes.Buffer
		err := run([]string{"-n", "300", "-runs", "6", "-fanout", "2", "-proto", "randcast", "-parallel", p}, &out)
		if err != nil {
			t.Fatalf("-parallel %s: %v", p, err)
		}
		outs = append(outs, out.String())
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("summary depends on -parallel:\n--- P=1 ---\n%s\n--- P=4 ---\n%s", outs[0], outs[1])
	}
}

func TestRunProgressFlagSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "200", "-runs", "3", "-progress"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "miss ratio") {
		t.Fatal("summary missing with -progress enabled")
	}
}

func TestRunNegativeParallelRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "50", "-runs", "1", "-parallel", "-3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("negative -parallel accepted: %v", err)
	}
}

func TestRunBadProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-proto", "carrier-pigeon"}, &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadChurnRate(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "50", "-churn", "2.0"}, &out); err == nil {
		t.Fatal("churn rate > 1 accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
