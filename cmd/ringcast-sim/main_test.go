package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStaticRingCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "3", "-proto", "ringcast"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "complete disseminations: 100%") {
		t.Fatalf("RingCast not complete on static network:\n%s", s)
	}
	if !strings.Contains(s, "miss ratio:              0.000000") {
		t.Fatalf("RingCast missed nodes:\n%s", s)
	}
}

func TestRunCatastrophicRandCast(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "300", "-runs", "5", "-fanout", "2", "-proto", "randcast", "-fail", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "catastrophic failure: killed 30 nodes") {
		t.Fatalf("kill count wrong:\n%s", s)
	}
	if !strings.Contains(s, "RandCast, F=2") {
		t.Fatalf("summary header missing:\n%s", s)
	}
}

func TestRunChurnScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "200", "-runs", "3", "-churn", "0.01", "-churn-cycles", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "after churn: 200 alive") {
		t.Fatalf("churn phase missing:\n%s", out.String())
	}
}

func TestRunBadProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-proto", "carrier-pigeon"}, &out); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadChurnRate(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "50", "-churn", "2.0"}, &out); err == nil {
		t.Fatal("churn rate > 1 accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
