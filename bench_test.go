// Benchmark harness: one benchmark per table/figure of the paper, plus
// ablation and micro benchmarks. Each figure benchmark measures the cost of
// the experiment's unit of work (a dissemination over the scenario's
// overlay) and reports the figure's headline metric via b.ReportMetric, so
// `go test -bench=.` regenerates both performance and result shape. The
// full paper-scale tables come from `go run ./cmd/ringcast-bench`.
package ringcast_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringcast/internal/churn"
	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/dissem"
	"ringcast/internal/experiment"
	"ringcast/internal/ident"
	"ringcast/internal/lint"
	"ringcast/internal/metrics"
	"ringcast/internal/node"
	"ringcast/internal/pubsub"
	"ringcast/internal/sim"
	"ringcast/internal/stats"
	"ringcast/internal/transport"
	"ringcast/internal/vicinity"
	"ringcast/internal/view"
	"ringcast/internal/wire"
)

// benchN is the population used by the figure benchmarks: large enough for
// the paper's shapes, small enough for -bench runs.
const benchN = 2000

var (
	staticOnce sync.Once
	staticNet  *sim.Network
	staticSnap *dissem.Overlay

	churnOnce sync.Once
	churnNet  *sim.Network
	churnSnap *dissem.Overlay
)

// staticOverlay lazily builds one warmed static network shared by benches.
func staticOverlay(b *testing.B) (*sim.Network, *dissem.Overlay) {
	b.Helper()
	staticOnce.Do(func() {
		cfg := sim.DefaultConfig(benchN)
		cfg.Seed = 42
		staticNet = sim.MustNew(cfg)
		staticNet.WarmUp(100, 1000)
		staticSnap = dissem.Snapshot(staticNet)
	})
	return staticNet, staticSnap
}

// churnedOverlay lazily builds one fully turned-over churned network.
func churnedOverlay(b *testing.B) (*sim.Network, *dissem.Overlay) {
	b.Helper()
	churnOnce.Do(func() {
		cfg := sim.DefaultConfig(600)
		cfg.Seed = 17
		churnNet = sim.MustNew(cfg)
		churnNet.RunCycles(100)
		model := churn.Model{Rate: 0.005} // 3 nodes per cycle at N=600
		model.RunUntilTurnover(churnNet, 20000)
		churnSnap = dissem.Snapshot(churnNet)
	})
	return churnNet, churnSnap
}

// disseminate runs one dissemination and returns it.
func disseminate(b *testing.B, o *dissem.Overlay, sel core.Selector, f int, rng *rand.Rand) *metrics.Dissemination {
	b.Helper()
	origin, err := o.RandomAliveOrigin(rng)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dissem.RunOpts(o, origin, sel, f, rng, dissem.Options{SkipLoad: true})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkFig6MissRatio regenerates Figure 6 (miss ratio and complete
// disseminations vs fanout) in the static fail-free network.
func BenchmarkFig6MissRatio(b *testing.B) {
	_, o := staticOverlay(b)
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=1", core.RandCast{}, 1},
		{"RandCast/F=3", core.RandCast{}, 3},
		{"RandCast/F=5", core.RandCast{}, 5},
		{"RandCast/F=10", core.RandCast{}, 10},
		{"RingCast/F=1", core.RingCast{}, 1},
		{"RingCast/F=3", core.RingCast{}, 3},
		{"RingCast/F=5", core.RingCast{}, 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			var acc metrics.Accumulator
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.Add(disseminate(b, o, tc.sel, tc.f, rng))
			}
			agg := acc.Finalize()
			b.ReportMetric(agg.MeanMissRatio*100, "miss%")
			b.ReportMetric(agg.CompleteFraction*100, "complete%")
		})
	}
}

// BenchmarkFig7Progress regenerates Figure 7 (dissemination progress per
// hop): the reported metric is dissemination latency in hops.
func BenchmarkFig7Progress(b *testing.B) {
	_, o := staticOverlay(b)
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=2", core.RandCast{}, 2},
		{"RingCast/F=2", core.RingCast{}, 2},
		{"RandCast/F=10", core.RandCast{}, 10},
		{"RingCast/F=10", core.RingCast{}, 10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			totalHops := 0
			for i := 0; i < b.N; i++ {
				d := disseminate(b, o, tc.sel, tc.f, rng)
				totalHops += d.Hops()
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops")
		})
	}
}

// BenchmarkFig8Overhead regenerates Figure 8 (messages to virgin vs
// already-notified nodes).
func BenchmarkFig8Overhead(b *testing.B) {
	_, o := staticOverlay(b)
	for _, tc := range []struct {
		name string
		sel  core.Selector
	}{
		{"RandCast/F=5", core.RandCast{}},
		{"RingCast/F=5", core.RingCast{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			var virgin, redundant float64
			for i := 0; i < b.N; i++ {
				d := disseminate(b, o, tc.sel, 5, rng)
				virgin += float64(d.Virgin)
				redundant += float64(d.Redundant)
			}
			b.ReportMetric(virgin/float64(b.N), "virgin-msgs")
			b.ReportMetric(redundant/float64(b.N), "redundant-msgs")
		})
	}
}

// BenchmarkFig9Catastrophic regenerates Figure 9 (miss ratio after a
// catastrophic failure of 5% of the nodes).
func BenchmarkFig9Catastrophic(b *testing.B) {
	_, base := staticOverlay(b)
	damaged := base.Clone()
	damaged.KillFraction(0.05, rand.New(rand.NewSource(9)))
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=3", core.RandCast{}, 3},
		{"RingCast/F=3", core.RingCast{}, 3},
		{"RandCast/F=6", core.RandCast{}, 6},
		{"RingCast/F=6", core.RingCast{}, 6},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			var acc metrics.Accumulator
			for i := 0; i < b.N; i++ {
				acc.Add(disseminate(b, damaged, tc.sel, tc.f, rng))
			}
			agg := acc.Finalize()
			b.ReportMetric(agg.MeanMissRatio*100, "miss%")
			b.ReportMetric(agg.MeanLost, "lost-msgs")
		})
	}
}

// BenchmarkFig10ProgressFailure regenerates Figure 10 (progress per hop
// after a 5% catastrophic failure): reported metric is hops to completion.
func BenchmarkFig10ProgressFailure(b *testing.B) {
	_, base := staticOverlay(b)
	damaged := base.Clone()
	damaged.KillFraction(0.05, rand.New(rand.NewSource(10)))
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=5", core.RandCast{}, 5},
		{"RingCast/F=5", core.RingCast{}, 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			totalHops := 0
			for i := 0; i < b.N; i++ {
				totalHops += disseminate(b, damaged, tc.sel, tc.f, rng).Hops()
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops")
		})
	}
}

// BenchmarkFig11Churn regenerates Figure 11 (miss ratio under continuous
// churn after full population turnover).
func BenchmarkFig11Churn(b *testing.B) {
	_, o := churnedOverlay(b)
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=3", core.RandCast{}, 3},
		{"RingCast/F=3", core.RingCast{}, 3},
		{"RandCast/F=6", core.RandCast{}, 6},
		{"RingCast/F=6", core.RingCast{}, 6},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			var acc metrics.Accumulator
			for i := 0; i < b.N; i++ {
				acc.Add(disseminate(b, o, tc.sel, tc.f, rng))
			}
			agg := acc.Finalize()
			b.ReportMetric(agg.MeanMissRatio*100, "miss%")
		})
	}
}

// BenchmarkFig12Lifetimes regenerates Figure 12 (node lifetime
// distribution): measures histogram construction over the churned network
// and reports the population's median lifetime.
func BenchmarkFig12Lifetimes(b *testing.B) {
	nw, _ := churnedOverlay(b)
	b.ReportAllocs()
	var median float64
	for i := 0; i < b.N; i++ {
		lts := churn.Lifetimes(nw)
		h := stats.NewIntHistogram()
		h.AddAll(lts)
		fs := make([]float64, len(lts))
		for j, v := range lts {
			fs[j] = float64(v)
		}
		median = stats.Percentile(fs, 50)
	}
	b.ReportMetric(median, "median-lifetime")
}

// BenchmarkFig13MissByLifetime regenerates Figure 13 (lifetime distribution
// of non-notified nodes): reports the share of RingCast misses younger than
// 20 cycles — the paper's key qualitative claim.
func BenchmarkFig13MissByLifetime(b *testing.B) {
	nw, o := churnedOverlay(b)
	byID := churn.LifetimeByID(nw)
	for _, tc := range []struct {
		name string
		sel  core.Selector
		f    int
	}{
		{"RandCast/F=3", core.RandCast{}, 3},
		{"RingCast/F=3", core.RingCast{}, 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			young, total := 0, 0
			for i := 0; i < b.N; i++ {
				origin, err := o.RandomAliveOrigin(rng)
				if err != nil {
					b.Fatal(err)
				}
				d, err := dissem.RunOpts(o, origin, tc.sel, tc.f, rng,
					dissem.Options{SkipLoad: true, RecordMissed: true})
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range d.Missed {
					total++
					if byID[id] <= 20 {
						young++
					}
				}
			}
			if total > 0 {
				b.ReportMetric(float64(young)/float64(total)*100, "young-miss%")
			}
		})
	}
}

// BenchmarkLoadDistribution regenerates the Section 7 uniform-load claim:
// reported metric is the Gini coefficient of per-node sent messages.
func BenchmarkLoadDistribution(b *testing.B) {
	_, o := staticOverlay(b)
	for _, tc := range []struct {
		name string
		sel  core.Selector
	}{
		{"RandCast/F=5", core.RandCast{}},
		{"RingCast/F=5", core.RingCast{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			sent := make([]int, o.N())
			for i := 0; i < b.N; i++ {
				origin, err := o.RandomAliveOrigin(rng)
				if err != nil {
					b.Fatal(err)
				}
				d, err := dissem.Run(o, origin, tc.sel, 5, rng)
				if err != nil {
					b.Fatal(err)
				}
				for j, s := range d.SentPerNode {
					sent[j] += s
				}
			}
			g, err := stats.Gini(sent)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(g, "gini")
		})
	}
}

// BenchmarkHararyBaselines regenerates the Section 3 flooding-overlay
// comparison (one full baseline table per iteration).
func BenchmarkHararyBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFloodBaselines(128, 20, int64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVicinityFeed measures ring construction with and without
// the CYCLON candidate feed (DESIGN.md ablation); metric is cycles to
// convergence with the feed enabled.
func BenchmarkAblationVicinityFeed(b *testing.B) {
	var cyclesWith float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFeedAblation(300, 400, int64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		cyclesWith += float64(res.WithFeedCycles)
	}
	b.ReportMetric(cyclesWith/float64(b.N), "cycles-to-ring")
}

// BenchmarkAblationCyclonSelection measures stale-link pollution under
// churn for age-based vs random peer selection.
func BenchmarkAblationCyclonSelection(b *testing.B) {
	var stale float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSelectionAblation(300, 40, 0.01, int64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		stale += res.StaleFractionOldest
	}
	b.ReportMetric(stale/float64(b.N)*100, "stale-links%")
}

// BenchmarkAblationMultiRing measures RINGCAST reliability with k=1..3
// rings after a 10% catastrophic failure (Section 8 extension).
func BenchmarkAblationMultiRing(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "k=1", 2: "k=2", 3: "k=3"}[k], func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunMultiRingAblation(1000, 5, 2, []int{k}, 0.10, int64(i+1), 0)
				if err != nil {
					b.Fatal(err)
				}
				miss += rows[0].Agg.MeanMissRatio
			}
			b.ReportMetric(miss/float64(b.N)*100, "miss%")
		})
	}
}

// BenchmarkRunStaticParallel measures the parallel sweep engine over one
// pre-warmed frozen overlay: the full (protocol, fanout, run) unit grid of
// a static experiment at each parallelism level. P=1 is the reference
// sequential path; the engine's work units are independent and lock-free on
// the hot path, so wall-clock should shrink near-linearly up to the
// physical core count (>= 2x on >= 4 cores). Results are bit-identical
// across levels (see TestStaticParallelDeterminism).
func BenchmarkRunStaticParallel(b *testing.B) {
	_, o := staticOverlay(b)
	cfg := experiment.Scaled(benchN, 20)
	cfg.Fanouts = []int{1, 2, 3, 5, 8}
	levels := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		levels = append(levels, n)
	}
	for _, p := range levels {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			c := cfg
			c.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiment.SweepOverlay(o, c)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(c.Fanouts) {
					b.Fatalf("sweep returned %d rows, want %d", len(rows), len(c.Fanouts))
				}
			}
		})
	}
}

// --- micro benchmarks for the substrates ---

// BenchmarkGossipCycle measures one full simulator cycle (CYCLON +
// VICINITY for every node) at N=2000.
func BenchmarkGossipCycle(b *testing.B) {
	nw, _ := staticOverlay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Cycle()
	}
}

// BenchmarkCyclonShuffle measures a single CYCLON shuffle round trip.
func BenchmarkCyclonShuffle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := cyclon.DefaultConfig()
	p := cyclon.MustNew(1, "", cfg)
	q := cyclon.MustNew(2, "", cfg)
	for i := 0; i < 40; i++ {
		p.AddContact(ident.ID(i+3), "")
		q.AddContact(ident.ID(i+50), "")
	}
	p.AddContact(2, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh, ok := p.StartShuffle(rng)
		if !ok {
			b.Fatal("empty view")
		}
		reply := q.HandleRequest(sh.Sent, rng)
		p.HandleReply(sh, reply)
		p.AddContact(sh.Peer.Node, "") // keep the view populated
	}
}

// BenchmarkVicinityMerge measures one VICINITY merge with a full candidate
// pool (own view + exchange payload + CYCLON feed).
func BenchmarkVicinityMerge(b *testing.B) {
	v := vicinity.MustNew(1<<32, "", vicinity.DefaultConfig(), vicinity.RingDistance)
	cands := make([]view.Entry, 20)
	feed := make([]view.Entry, 20)
	for i := range cands {
		cands[i] = view.Entry{Node: ident.ID(i*7919 + 13)}
		feed[i] = view.Entry{Node: ident.ID(i*104729 + 7)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Merge(cands, feed)
	}
}

// BenchmarkWireMarshal measures frame encoding.
func BenchmarkWireMarshal(b *testing.B) {
	f := &wire.Frame{
		Kind:     wire.KindShuffleRequest,
		From:     12345,
		FromAddr: "10.0.0.1:7000",
		Seq:      99,
	}
	for i := 0; i < 8; i++ {
		f.Entries = append(f.Entries, view.Entry{Node: ident.ID(i + 1), Addr: "10.0.0.2:7000", Age: uint32(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireUnmarshal measures frame decoding.
func BenchmarkWireUnmarshal(b *testing.B) {
	f := &wire.Frame{
		Kind:     wire.KindGossip,
		From:     12345,
		FromAddr: "10.0.0.1:7000",
		Msg:      &wire.Message{ID: wire.MsgID{Origin: 12345, Seq: 1}, Body: make([]byte, 256)},
	}
	buf, err := wire.Marshal(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisseminationRun measures one RINGCAST dissemination over the
// shared 2000-node snapshot.
func BenchmarkDisseminationRun(b *testing.B) {
	_, o := staticOverlay(b)
	rng := rand.New(rand.NewSource(11))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disseminate(b, o, core.RingCast{}, 3, rng)
	}
}

// BenchmarkDisseminationRunScratch is BenchmarkDisseminationRun on the
// engine's pooled-scratch path — the configuration the parallel sweep
// actually runs, where the per-run buffers (notified bitmap, frontier
// queues, selection pools) are reused across every run of a sweep unit.
func BenchmarkDisseminationRunScratch(b *testing.B) {
	_, o := staticOverlay(b)
	rng := rand.New(rand.NewSource(11))
	sc := dissem.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin, err := o.RandomAliveOrigin(rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dissem.RunScratch(o, origin, core.RingCast{}, 3, rng,
			dissem.Options{SkipLoad: true}, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Live soak benchmarks (PR 3): the deployable runtime under a deliberately
// slow subscriber. N peers x T topics over a real fabric, every peer
// subscribed to every topic, one peer's delivery callback wedged. The
// headline metrics are the publisher's worst-case Publish latency (which the
// async per-peer send pipeline keeps bounded — the old synchronous transport
// blocked it for multiples of the 10s write timeout once the slow peer's
// buffers filled) and the backpressure drops accounted in transport.Stats.
// Results are archived in BENCH_PR3.json.

// soakTopics and soakSlowIdx parameterize the soak population.
const (
	soakPeers   = 6
	soakSlowIdx = 5
	soakBody    = 4 << 10
	soakRounds  = 40 // publishes per topic per iteration
)

var soakTopicNames = []string{"alpha", "beta", "gamma"}

// buildSoakPeers assembles the soak population on the chosen fabric. The
// slow peer's deliver callback stalls hard; healthy deliveries are counted.
func buildSoakPeers(b *testing.B, useTCP bool, counts []atomic.Int64, release chan struct{}) []*pubsub.Peer {
	b.Helper()
	var fabric *transport.InMemNetwork
	if !useTCP {
		fabric = transport.NewInMemNetwork()
	}
	peers := make([]*pubsub.Peer, soakPeers)
	for i := 0; i < soakPeers; i++ {
		var base transport.Transport
		if useTCP {
			tr, err := transport.ListenTCP("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			base = tr
		} else {
			ep, err := fabric.Endpoint(fmt.Sprintf("soak%02d", i))
			if err != nil {
				b.Fatal(err)
			}
			base = ep
		}
		cfg := node.DefaultConfig()
		cfg.GossipInterval = time.Hour // views are warmed manually below
		cfg.Fanout = 3
		cfg.Seed = int64(i + 1)
		p, err := pubsub.NewPeer(base, cfg)
		if err != nil {
			b.Fatal(err)
		}
		peers[i] = p
	}
	bootstrap := make([]string, soakPeers)
	for i, p := range peers {
		bootstrap[i] = p.Addr()
	}
	for i, p := range peers {
		i := i
		deliver := func(pubsub.Event) {
			if i == soakSlowIdx {
				<-release // the wedged subscriber: consumes nothing until released
				return
			}
			counts[i].Add(1)
		}
		for _, topic := range soakTopicNames {
			if err := p.Subscribe(topic, bootstrap, deliver); err != nil {
				b.Fatal(err)
			}
		}
	}
	for cycle := 0; cycle < 30; cycle++ {
		for _, p := range peers {
			p.GossipNow()
		}
		time.Sleep(2 * time.Millisecond)
	}
	return peers
}

// benchmarkSoak runs b.N iterations of soakRounds publishes per topic from a
// healthy peer, waiting each iteration for every healthy subscriber to
// deliver everything published so far. Reported metrics: worst-case Publish
// latency, frames shed under backpressure (transport.Stats.Drops +
// .Rejects), and local-congestion refusals observed by the nodes.
func benchmarkSoak(b *testing.B, useTCP bool) {
	counts := make([]atomic.Int64, soakPeers)
	release := make(chan struct{})
	peers := buildSoakPeers(b, useTCP, counts, release)
	defer func() {
		close(release) // unwedge the slow peer so Close can drain
		for _, p := range peers {
			p.Close()
		}
	}()

	body := make([]byte, soakBody)
	published := int64(0)
	var maxPub time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for r := 0; r < soakRounds; r++ {
			for _, topic := range soakTopicNames {
				begin := time.Now()
				_, err := peers[0].Publish(topic, body)
				if d := time.Since(begin); d > maxPub {
					maxPub = d
				}
				if err != nil {
					b.Fatalf("publish: %v", err)
				}
				published++
			}
		}
		// Every healthy subscriber must see every message despite the wedged
		// peer; the origin delivers locally, so it is counted too.
		deadline := time.Now().Add(30 * time.Second)
		for i := 0; i < soakPeers; i++ {
			if i == soakSlowIdx {
				continue
			}
			for counts[i].Load() < published {
				if time.Now().After(deadline) {
					b.Fatalf("healthy peer %d delivered %d/%d — slow peer stalled the overlay",
						i, counts[i].Load(), published)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	b.StopTimer()
	var shed, queued int64
	var busy uint64
	for _, p := range peers {
		st := p.TransportStats()
		shed += st.Drops + st.Rejects
		queued += st.QueueDepth
		for _, topic := range soakTopicNames {
			if nd, ok := p.Node(topic); ok {
				busy += nd.Stats().QueueFull
			}
		}
	}
	b.ReportMetric(float64(maxPub.Microseconds())/1e3, "maxpub_ms")
	b.ReportMetric(float64(shed), "shed_frames")
	b.ReportMetric(float64(queued), "queued_frames")
	b.ReportMetric(float64(busy), "node_queuefull")
}

// BenchmarkSoakPubSubInMem is the soak over the in-memory fabric: the slow
// peer's inbox overflows and sends to it are shed, while healthy delivery
// latency stays flat.
func BenchmarkSoakPubSubInMem(b *testing.B) { benchmarkSoak(b, false) }

// BenchmarkSoakPubSubTCP is the soak over real TCP loopback: the slow
// peer's kernel buffers fill, its per-peer outbound queues absorb and then
// shed traffic, and — the point of the pipeline — Publish latency at the
// healthy origin stays bounded instead of stalling on the 10s write timeout.
func BenchmarkSoakPubSubTCP(b *testing.B) { benchmarkSoak(b, true) }

// BenchmarkConvergedBootstrap pins the scale axis's bootstrap cost at
// N=1e5, 30 mixing cycles: the reference object-graph path (sim.NewConverged
// + RunCycles + Snapshot, what the scale figure ran through PR 5) against
// the compact shard-parallel engine (sim.BuildConverged) it runs now. Both
// halves produce a frozen arena from the same master seed; the curated
// before/after numbers live in BENCH_PR6.json.
func BenchmarkConvergedBootstrap(b *testing.B) {
	const n = 100_000
	const cycles = 30
	b.Run("engine=reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig(n)
			cfg.Seed = 42
			nw, err := sim.NewConverged(cfg)
			if err != nil {
				b.Fatal(err)
			}
			nw.RunCycles(cycles)
			o := dissem.Snapshot(nw)
			if o.Arena().LinkCount() == 0 {
				b.Fatal("empty arena")
			}
		}
	})
	b.Run("engine=compact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultMixConfig(n)
			cfg.Seed = 42
			cfg.Cycles = cycles
			res, err := sim.BuildConverged(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Convergence != 1 {
				b.Fatalf("ring convergence %v, want 1.0", res.Convergence)
			}
		}
	})
}

// BenchmarkRunScale measures one small scale step end to end: converged
// bootstrap, mixing cycles, arena freeze (compacted snapshot), and the
// three-protocol dissemination sweep. It is the bench-smoke sentinel for
// the million-node engine — the curated large-N numbers live in
// BENCH_PR5.json; this keeps the path exercised and its allocation count
// on the public record every CI run.
func BenchmarkRunScale(b *testing.B) {
	cfg := experiment.ScaleConfig{
		Ns:     []int{2000},
		Fanout: 5,
		Runs:   5,
		Cycles: 10,
		Seed:   42,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ring := res.Steps[0].Points[0]
		if ring.HitRatio != 1 {
			b.Fatalf("ringcast hit ratio %v at N=2000", ring.HitRatio)
		}
		b.ReportMetric(ring.Hops.Mean, "hops")
		b.ReportMetric(float64(res.Steps[0].HeapBytes)/(1<<20), "heapMB")
	}
}

// BenchmarkLintModule measures the static-analysis suite's interprocedural
// pass over this repository end to end: module load and typecheck, call
// graph construction, the fact fixpoint, the three module analyzers, and
// the per-package analyzers through the waiver filter. It is the
// bench-smoke sentinel for the lint layer — the fixpoint and the interface
// dispatch resolution are the superlinear risks as the tree grows, and one
// archived iteration per CI run keeps their wall clock on the public
// record. The escape-analysis gates (hotalloc, allocbudget) are excluded:
// they shell out to `go build` and would measure the build cache, not the
// analysis.
func BenchmarkLintModule(b *testing.B) {
	root, err := filepath.Abs(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load(root, "./...")
		if err != nil {
			b.Fatal(err)
		}
		m := lint.NewModule(pkgs)
		raw, ran, err := lint.RunModuleAnalyzers(m,
			[]*lint.ModuleAnalyzer{lint.Lockorder, lint.Goroleak, lint.Detflow})
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkgs,
			[]*lint.Analyzer{lint.Detrand, lint.Maporder, lint.Lockio}, raw, ran...)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("lint findings during benchmark: %v", diags)
		}
		b.ReportMetric(float64(len(pkgs)), "pkgs")
		b.ReportMetric(float64(len(m.Graph.Nodes)), "funcs")
	}
}
