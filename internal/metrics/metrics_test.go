package metrics

import (
	"math"
	"testing"
)

func TestDisseminationRatios(t *testing.T) {
	d := &Dissemination{AliveTotal: 100, Reached: 99}
	if got := d.HitRatio(); got != 0.99 {
		t.Errorf("HitRatio = %v, want 0.99", got)
	}
	if got := d.MissRatio(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("MissRatio = %v, want 0.01", got)
	}
	if d.Complete() {
		t.Error("99/100 reported complete")
	}
	d.Reached = 100
	if !d.Complete() {
		t.Error("100/100 not complete")
	}
}

func TestZeroPopulation(t *testing.T) {
	d := &Dissemination{}
	if d.HitRatio() != 0 {
		t.Error("zero-population hit ratio should be 0")
	}
	if d.Hops() != 0 {
		t.Error("no hops recorded should yield 0")
	}
}

func TestHopsAndTotal(t *testing.T) {
	d := &Dissemination{
		CumNotified: []int{1, 4, 9},
		Virgin:      9, Redundant: 3, Lost: 2,
	}
	if d.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", d.Hops())
	}
	if d.TotalMsgs() != 14 {
		t.Errorf("TotalMsgs = %d, want 14", d.TotalMsgs())
	}
}

func TestAggregateEmpty(t *testing.T) {
	a := Aggregate(nil)
	if a.Runs != 0 || a.MeanMissRatio != 0 {
		t.Errorf("empty aggregate = %+v", a)
	}
}

func TestAggregate(t *testing.T) {
	runs := []*Dissemination{
		{AliveTotal: 10, Reached: 10, Virgin: 10, Redundant: 5, CumNotified: []int{1, 5, 10}},
		{AliveTotal: 10, Reached: 8, Virgin: 8, Redundant: 3, Lost: 1, CumNotified: []int{1, 8}},
	}
	a := Aggregate(runs)
	if a.Runs != 2 {
		t.Fatalf("Runs = %d", a.Runs)
	}
	if math.Abs(a.MeanMissRatio-0.1) > 1e-12 {
		t.Errorf("MeanMissRatio = %v, want 0.1", a.MeanMissRatio)
	}
	if a.CompleteFraction != 0.5 {
		t.Errorf("CompleteFraction = %v, want 0.5", a.CompleteFraction)
	}
	if a.MeanVirgin != 9 || a.MeanRedundant != 4 || a.MeanLost != 0.5 {
		t.Errorf("overhead means = %v/%v/%v", a.MeanVirgin, a.MeanRedundant, a.MeanLost)
	}
	if a.MaxHops != 2 || a.MeanHops != 1.5 {
		t.Errorf("hops = max %d mean %v", a.MaxHops, a.MeanHops)
	}
	// Hop 0: both runs have 1 notified -> mean not-reached = 0.9.
	if math.Abs(a.NotReachedByHop[0]-0.9) > 1e-12 {
		t.Errorf("NotReachedByHop[0] = %v, want 0.9", a.NotReachedByHop[0])
	}
	// Hop 2: run 1 has 10/10, run 2 padded at 8/10 -> mean 0.1.
	if math.Abs(a.NotReachedByHop[2]-0.1) > 1e-12 {
		t.Errorf("NotReachedByHop[2] = %v, want 0.1", a.NotReachedByHop[2])
	}
}

func TestAggregatePaddingUsesFinalReach(t *testing.T) {
	// A run that stops early must contribute its final miss fraction to all
	// later hops, not zero.
	runs := []*Dissemination{
		{AliveTotal: 4, Reached: 2, CumNotified: []int{1, 2}},
		{AliveTotal: 4, Reached: 4, CumNotified: []int{1, 2, 3, 4}},
	}
	a := Aggregate(runs)
	want := (0.5 + 0.0) / 2
	if math.Abs(a.NotReachedByHop[3]-want) > 1e-12 {
		t.Errorf("NotReachedByHop[3] = %v, want %v", a.NotReachedByHop[3], want)
	}
}

func TestAccumulatorMatchesAggregate(t *testing.T) {
	runs := []*Dissemination{
		{AliveTotal: 10, Reached: 10, Virgin: 9, Redundant: 5, CumNotified: []int{1, 5, 10}},
		{AliveTotal: 10, Reached: 8, Virgin: 7, Redundant: 3, Lost: 1, CumNotified: []int{1, 8}},
		{AliveTotal: 10, Reached: 1, CumNotified: []int{1}},
	}
	var acc Accumulator
	for _, d := range runs {
		acc.Add(d)
	}
	a, b := acc.Finalize(), Aggregate(runs)
	if a.Runs != b.Runs || a.MeanMissRatio != b.MeanMissRatio ||
		a.CompleteFraction != b.CompleteFraction || a.MeanVirgin != b.MeanVirgin ||
		a.MaxHops != b.MaxHops || a.MeanHops != b.MeanHops {
		t.Fatalf("accumulator diverged from aggregate:\n%+v\n%+v", a, b)
	}
	if len(a.NotReachedByHop) != len(b.NotReachedByHop) {
		t.Fatal("progress curve lengths differ")
	}
	for h := range a.NotReachedByHop {
		if math.Abs(a.NotReachedByHop[h]-b.NotReachedByHop[h]) > 1e-12 {
			t.Fatalf("curve differs at hop %d", h)
		}
	}
}

func TestAccumulatorIncremental(t *testing.T) {
	var acc Accumulator
	acc.Add(&Dissemination{AliveTotal: 4, Reached: 4, CumNotified: []int{1, 4}})
	first := acc.Finalize()
	if first.Runs != 1 || first.CompleteFraction != 1 {
		t.Fatalf("first = %+v", first)
	}
	acc.Add(&Dissemination{AliveTotal: 4, Reached: 2, CumNotified: []int{1, 2}})
	second := acc.Finalize()
	if second.Runs != 2 || second.CompleteFraction != 0.5 {
		t.Fatalf("second = %+v", second)
	}
}

func TestAccumulatorCopiesCumNotified(t *testing.T) {
	var acc Accumulator
	d := &Dissemination{AliveTotal: 2, Reached: 2, CumNotified: []int{1, 2}}
	acc.Add(d)
	d.CumNotified[1] = 99 // caller reuses the slice
	a := acc.Finalize()
	if a.NotReachedByHop[1] != 0 {
		t.Fatalf("accumulator aliased caller slice: %v", a.NotReachedByHop)
	}
}
