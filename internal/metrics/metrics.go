// Package metrics defines the measurements the paper evaluates
// disseminations by (Section 2): hit/miss ratio, dissemination speed in
// hops, message overhead split into virgin and redundant deliveries, and
// load distribution, plus aggregation across repeated experiments.
//
//ringcast:deterministic
package metrics

import "ringcast/internal/ident"

// Dissemination records everything measured about a single message's spread.
type Dissemination struct {
	// AliveTotal is the live population when the message was posted — the
	// denominator of the hit ratio.
	AliveTotal int
	// Reached is how many live nodes received the message at least once.
	Reached int
	// Virgin counts messages delivered to nodes that had not seen the
	// message before ("msgs to virgin nodes" in Figure 8).
	Virgin int
	// Redundant counts messages delivered to already-notified nodes — pure
	// waste of network resources (Figure 8's striped segments).
	Redundant int
	// Lost counts messages sent to dead nodes (catastrophic-failure and
	// churn scenarios).
	Lost int
	// Blocked counts messages dropped in flight by an injected fault — a
	// network partition or per-link loss from a scenario timeline
	// (internal/scenario). Blocked copies never reach their destination, so
	// they appear in no other counter. Zero outside fault scenarios.
	Blocked int
	// CumNotified[h] is the cumulative number of notified nodes after hop h;
	// CumNotified[0] == 1 (the origin).
	CumNotified []int
	// SentPerNode and RecvPerNode index per-node load by overlay position,
	// for the load-distribution analysis. They are nil when the run was
	// executed with load recording disabled.
	SentPerNode []int
	RecvPerNode []int
	// Missed lists the live nodes never notified, when the run was executed
	// with miss recording enabled (Figure 13's lifetime analysis).
	Missed []ident.ID
	// Origin is the node that generated the message.
	Origin ident.ID
}

// HitRatio is the fraction of live nodes reached.
func (d *Dissemination) HitRatio() float64 {
	if d.AliveTotal == 0 {
		return 0
	}
	return float64(d.Reached) / float64(d.AliveTotal)
}

// MissRatio is 1 - HitRatio (the paper plots miss ratio in log scale).
func (d *Dissemination) MissRatio() float64 { return 1 - d.HitRatio() }

// Complete reports whether every live node was reached.
func (d *Dissemination) Complete() bool { return d.Reached == d.AliveTotal }

// Hops is the number of hops until the last node was notified.
func (d *Dissemination) Hops() int {
	if len(d.CumNotified) == 0 {
		return 0
	}
	return len(d.CumNotified) - 1
}

// TotalMsgs is the total number of point-to-point messages sent.
func (d *Dissemination) TotalMsgs() int { return d.Virgin + d.Redundant + d.Lost + d.Blocked }

// Agg aggregates repeated dissemination experiments for one configuration —
// one data point of a paper figure.
type Agg struct {
	// Runs is how many experiments were aggregated.
	Runs int
	// MeanMissRatio averages the miss ratio over runs (Figure 6a/9/11 left).
	MeanMissRatio float64
	// CompleteFraction is the share of runs reaching every node (Figure 6b/9/11 right).
	CompleteFraction float64
	// MeanVirgin, MeanRedundant and MeanLost average the message overhead
	// split (Figure 8).
	MeanVirgin, MeanRedundant, MeanLost float64
	// MeanBlocked averages the copies dropped in flight by injected faults
	// (partitions, loss). Zero outside scenario experiments.
	MeanBlocked float64
	// MeanHops averages dissemination latency in hops.
	MeanHops float64
	// MaxHops is the worst dissemination latency observed.
	MaxHops int
	// NotReachedByHop[h] is the mean fraction of live nodes not yet reached
	// after hop h (Figures 7 and 10), averaged over runs. Shorter runs are
	// padded with their final value, mirroring how the paper's curves
	// flatten once a dissemination dies out.
	NotReachedByHop []float64
}

// Aggregate folds per-run results into an Agg. It returns a zero Agg when
// runs is empty.
func Aggregate(runs []*Dissemination) Agg {
	var acc Accumulator
	for _, d := range runs {
		acc.Add(d)
	}
	return acc.Finalize()
}

// Accumulator aggregates disseminations one at a time, streaming: every
// counter is a running sum and the padded progress curve is maintained
// online, so state is O(max hops) regardless of how many runs are folded —
// the previous implementation retained every run's cumulative-notified
// array, O(runs x hops), which at scale-sweep sizes dominated the heap.
// Use it instead of Aggregate when running large experiment sweeps. The
// zero value is ready to use.
//
// Determinism: the streaming curve performs exactly the same float64
// additions in exactly the same order as the retained-runs implementation
// did (per hop, in run order; runs shorter than the current longest are
// padded with their final not-reached fraction), so Finalize's output is
// bit-identical to the old code's for any Add sequence.
type Accumulator struct {
	agg Agg
	// curve[h] is the sum over added runs of the (padded) not-reached
	// fraction after hop h; its length tracks the longest run seen so far.
	curve []float64
	// tailSum is the sum over added runs of their final not-reached
	// fraction — the value each of them contributes at hops beyond its own
	// length, used to extend curve when a longer run arrives.
	tailSum float64
}

// notReached returns the not-reached fraction after hop h of run d, padded
// with the final fraction beyond the run's own length.
func notReached(d *Dissemination, h int) float64 {
	cum := d.Reached
	if h < len(d.CumNotified) {
		cum = d.CumNotified[h]
	}
	if d.AliveTotal > 0 {
		return 1 - float64(cum)/float64(d.AliveTotal)
	}
	return 1.0
}

// Add folds one dissemination into the accumulator. The caller may discard
// d afterwards — nothing of it is retained.
//
//ringcast:hotpath
func (a *Accumulator) Add(d *Dissemination) {
	a.agg.Runs++
	a.agg.MeanMissRatio += d.MissRatio()
	if d.Complete() {
		a.agg.CompleteFraction++
	}
	a.agg.MeanVirgin += float64(d.Virgin)
	a.agg.MeanRedundant += float64(d.Redundant)
	a.agg.MeanLost += float64(d.Lost)
	a.agg.MeanBlocked += float64(d.Blocked)
	a.agg.MeanHops += float64(d.Hops())
	if h := d.Hops(); h > a.agg.MaxHops {
		a.agg.MaxHops = h
	}
	// A longer run than any seen before: positions the earlier runs never
	// reached start from the sum of their final (padded) fractions. Every
	// run occupies at least the hop-0 slot, even a hand-built record with
	// no progress curve at all.
	runLen := len(d.CumNotified)
	if runLen == 0 {
		runLen = 1
	}
	for len(a.curve) < runLen {
		a.curve = append(a.curve, a.tailSum)
	}
	for h := range a.curve {
		a.curve[h] += notReached(d, h)
	}
	a.tailSum += notReached(d, runLen-1)
}

// Finalize computes the aggregate. The accumulator remains usable (further
// Adds extend the same aggregate).
func (a *Accumulator) Finalize() Agg {
	out := a.agg
	n := float64(out.Runs)
	if out.Runs == 0 {
		return out
	}
	out.MeanMissRatio /= n
	out.CompleteFraction /= n
	out.MeanVirgin /= n
	out.MeanRedundant /= n
	out.MeanLost /= n
	out.MeanBlocked /= n
	out.MeanHops /= n
	out.NotReachedByHop = make([]float64, out.MaxHops+1)
	for h := range out.NotReachedByHop {
		out.NotReachedByHop[h] = a.curve[h] / n
	}
	return out
}
