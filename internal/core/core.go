// Package core implements the paper's primary contribution: push-based
// gossip-target selection policies for message dissemination.
//
// The generic dissemination algorithm (paper, Figure 1a) is the same for
// every protocol: a node that generates a message or receives it for the
// first time forwards it to the targets chosen by selectGossipTargets; later
// duplicates are ignored, and a message is never forwarded back to the node
// it was just received from. The protocols differ only in target selection:
//
//   - Flood (Figure 1b): all outgoing links — deterministic dissemination.
//   - RandCast (Figure 2): F uniform-random view members — the purely
//     probabilistic model of Kermarrec et al.
//   - RingCast (Figure 5): the hybrid protocol — both ring neighbours
//     (d-links) always, plus random links (r-links) up to the fanout F.
//
// Selectors are pure: they depend only on the node's links, the sender, the
// fanout, and the supplied randomness, so the same implementations drive the
// hop-synchronous simulator and the live runtime.
package core

import (
	"fmt"
	"math/rand"

	"ringcast/internal/ident"
)

// Links is a node's outgoing neighbourhood at dissemination time.
type Links struct {
	// R holds the random links (the node's peer-sampling view).
	R []ident.ID
	// D holds the deterministic links (ring neighbours; 2k entries when k
	// rings are maintained). Empty for purely probabilistic protocols.
	D []ident.ID
}

// Selector chooses gossip targets for a node presented with a fresh message.
type Selector interface {
	// Name identifies the protocol in tables and logs.
	Name() string
	// Select returns the targets to forward to. from is the node the message
	// was just received from (ident.Nil when the node is the origin); it must
	// never be among the returned targets. fanout is the system-wide F.
	Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID
}

// RandCast is the purely probabilistic dissemination protocol: forward to
// up to F random peer-sampling neighbours, excluding the sender.
type RandCast struct{}

// Name implements Selector.
func (RandCast) Name() string { return "RandCast" }

// Select implements Selector (paper, Figure 2).
func (RandCast) Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	return sampleExcluding(links.R, fanout, rng, from, nil)
}

// RingCast is the hybrid dissemination protocol: always forward across all
// d-links (except back to the sender), then fill up to the fanout with
// random r-links.
type RingCast struct{}

// Name implements Selector.
func (RingCast) Name() string { return "RingCast" }

// Select implements Selector (paper, Figure 5). Note that the d-links are
// not capped by the fanout: with F=1 a node still forwards to both ring
// neighbours, which is what guarantees complete dissemination for any F in
// fail-free networks.
func (RingCast) Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, fanout+len(links.D))
	seen := make(map[ident.ID]struct{}, fanout+len(links.D))
	for _, d := range links.D {
		if d == from || d.IsNil() {
			continue
		}
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		targets = append(targets, d)
	}
	if remaining := fanout - len(targets); remaining > 0 {
		targets = append(targets, sampleExcluding(links.R, remaining, rng, from, seen)...)
	}
	return targets
}

// Flood is deterministic dissemination (paper, Figure 1b): forward across
// every outgoing link. The fanout parameter is ignored.
type Flood struct{}

// Name implements Selector.
func (Flood) Name() string { return "Flood" }

// Select implements Selector.
func (Flood) Select(links Links, from ident.ID, _ int, _ *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, len(links.R)+len(links.D))
	seen := make(map[ident.ID]struct{}, len(links.R)+len(links.D))
	for _, set := range [2][]ident.ID{links.D, links.R} {
		for _, id := range set {
			if id == from || id.IsNil() {
				continue
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			targets = append(targets, id)
		}
	}
	return targets
}

// DFlood floods only the deterministic links, reproducing the Section 3
// baselines (flooding over ring/tree/star/clique/Harary overlays).
type DFlood struct{}

// Name implements Selector.
func (DFlood) Name() string { return "DFlood" }

// Select implements Selector.
func (DFlood) Select(links Links, from ident.ID, _ int, _ *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, len(links.D))
	seen := make(map[ident.ID]struct{}, len(links.D))
	for _, id := range links.D {
		if id == from || id.IsNil() {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		targets = append(targets, id)
	}
	return targets
}

// ByName returns the selector registered under name. Recognized names are
// "randcast", "ringcast", "flood" and "dflood" (case-sensitive, lower case).
func ByName(name string) (Selector, error) {
	switch name {
	case "randcast":
		return RandCast{}, nil
	case "ringcast":
		return RingCast{}, nil
	case "flood":
		return Flood{}, nil
	case "dflood":
		return DFlood{}, nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// sampleExcluding returns up to n distinct IDs drawn uniformly without
// replacement from pool, excluding `from`, ident.Nil, and anything in skip.
func sampleExcluding(pool []ident.ID, n int, rng *rand.Rand, from ident.ID, skip map[ident.ID]struct{}) []ident.ID {
	if n <= 0 || len(pool) == 0 {
		return nil
	}
	candidates := make([]ident.ID, 0, len(pool))
	uniq := make(map[ident.ID]struct{}, len(pool))
	for _, id := range pool {
		if id == from || id.IsNil() {
			continue
		}
		if _, dup := uniq[id]; dup {
			continue
		}
		if skip != nil {
			if _, dup := skip[id]; dup {
				continue
			}
		}
		uniq[id] = struct{}{}
		candidates = append(candidates, id)
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	return candidates[:n:n]
}
