// Package core implements the paper's primary contribution: push-based
// gossip-target selection policies for message dissemination.
//
// The generic dissemination algorithm (paper, Figure 1a) is the same for
// every protocol: a node that generates a message or receives it for the
// first time forwards it to the targets chosen by selectGossipTargets; later
// duplicates are ignored, and a message is never forwarded back to the node
// it was just received from. The protocols differ only in target selection:
//
//   - Flood (Figure 1b): all outgoing links — deterministic dissemination.
//   - RandCast (Figure 2): F uniform-random view members — the purely
//     probabilistic model of Kermarrec et al.
//   - RingCast (Figure 5): the hybrid protocol — both ring neighbours
//     (d-links) always, plus random links (r-links) up to the fanout F.
//
// Selectors are pure: they depend only on the node's links, the sender, the
// fanout, and the supplied randomness, so the same implementations drive the
// hop-synchronous simulator and the live runtime.
//
//ringcast:deterministic
package core

import (
	"fmt"
	"math/rand"

	"ringcast/internal/ident"
)

// Links is a node's outgoing neighbourhood at dissemination time.
type Links struct {
	// R holds the random links (the node's peer-sampling view).
	R []ident.ID
	// D holds the deterministic links (ring neighbours; 2k entries when k
	// rings are maintained). Empty for purely probabilistic protocols.
	D []ident.ID
}

// Selector chooses gossip targets for a node presented with a fresh message.
type Selector interface {
	// Name identifies the protocol in tables and logs.
	Name() string
	// Select returns the targets to forward to. from is the node the message
	// was just received from (ident.Nil when the node is the origin); it must
	// never be among the returned targets. fanout is the system-wide F.
	Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID
}

// RandCast is the purely probabilistic dissemination protocol: forward to
// up to F random peer-sampling neighbours, excluding the sender.
type RandCast struct{}

// Name implements Selector.
func (RandCast) Name() string { return "RandCast" }

// Select implements Selector (paper, Figure 2).
func (RandCast) Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	return sampleExcluding(links.R, fanout, rng, from, nil)
}

// RingCast is the hybrid dissemination protocol: always forward across all
// d-links (except back to the sender), then fill up to the fanout with
// random r-links.
type RingCast struct{}

// Name implements Selector.
func (RingCast) Name() string { return "RingCast" }

// Select implements Selector (paper, Figure 5). Note that the d-links are
// not capped by the fanout: with F=1 a node still forwards to both ring
// neighbours, which is what guarantees complete dissemination for any F in
// fail-free networks.
func (RingCast) Select(links Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, fanout+len(links.D))
	seen := make(map[ident.ID]struct{}, fanout+len(links.D))
	for _, d := range links.D {
		if d == from || d.IsNil() {
			continue
		}
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		targets = append(targets, d)
	}
	if remaining := fanout - len(targets); remaining > 0 {
		targets = append(targets, sampleExcluding(links.R, remaining, rng, from, seen)...)
	}
	return targets
}

// Flood is deterministic dissemination (paper, Figure 1b): forward across
// every outgoing link. The fanout parameter is ignored.
type Flood struct{}

// Name implements Selector.
func (Flood) Name() string { return "Flood" }

// Select implements Selector.
func (Flood) Select(links Links, from ident.ID, _ int, _ *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, len(links.R)+len(links.D))
	seen := make(map[ident.ID]struct{}, len(links.R)+len(links.D))
	for _, set := range [2][]ident.ID{links.D, links.R} {
		for _, id := range set {
			if id == from || id.IsNil() {
				continue
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			targets = append(targets, id)
		}
	}
	return targets
}

// DFlood floods only the deterministic links, reproducing the Section 3
// baselines (flooding over ring/tree/star/clique/Harary overlays).
type DFlood struct{}

// Name implements Selector.
func (DFlood) Name() string { return "DFlood" }

// Select implements Selector.
func (DFlood) Select(links Links, from ident.ID, _ int, _ *rand.Rand) []ident.ID {
	targets := make([]ident.ID, 0, len(links.D))
	seen := make(map[ident.ID]struct{}, len(links.D))
	for _, id := range links.D {
		if id == from || id.IsNil() {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		targets = append(targets, id)
	}
	return targets
}

// ByName returns the selector registered under name. Recognized names are
// "randcast", "ringcast", "flood" and "dflood" (case-sensitive, lower case).
func ByName(name string) (Selector, error) {
	switch name {
	case "randcast":
		return RandCast{}, nil
	case "ringcast":
		return RingCast{}, nil
	case "flood":
		return Flood{}, nil
	case "dflood":
		return DFlood{}, nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
}

// PosLinks is a node's outgoing neighbourhood with every ID resolved to a
// dense overlay position (see dissem.Overlay). Positions >= 0 index the
// overlay's node table; NilPos marks links whose ID was nil; values <= -2 are
// per-ID placeholders for links pointing at IDs absent from the overlay —
// each distinct unknown ID resolves to a distinct placeholder, so duplicate
// suppression over positions behaves exactly as it does over IDs. Selecting
// over positions replaces the per-target map lookup of the ID path with
// array indexing on the dissemination hot path.
type PosLinks struct {
	// R holds the random links, aligned with the Links.R they were resolved
	// from.
	R []int32
	// D holds the deterministic links, aligned with Links.D.
	D []int32
}

// NilPos is the resolved position of a nil ID. It is skipped during
// selection, exactly as nil IDs are on the ID path.
const NilPos int32 = -1

// PosScratch carries reusable buffers for SelectPos so that repeated
// selections allocate nothing. The zero value is ready to use; a scratch
// must not be shared between concurrent selections.
type PosScratch struct {
	cand []int32
}

// PosSelector is implemented by selectors that can choose targets directly
// over resolved positions. SelectPos appends the chosen positions to dst and
// returns the extended slice (it never inspects dst below its initial
// length). Implementations MUST consume exactly the same randomness as
// Select does on the equivalent ID links, so that the position path and the
// ID path produce identical disseminations. All selectors in this package
// satisfy PosSelector.
type PosSelector interface {
	SelectPos(dst []int32, s *PosScratch, links PosLinks, from int32, fanout int, rng *rand.Rand) []int32
}

var (
	_ PosSelector = RandCast{}
	_ PosSelector = RingCast{}
	_ PosSelector = Flood{}
	_ PosSelector = DFlood{}
)

// SelectPos implements PosSelector, mirroring Select.
//
//ringcast:hotpath
func (RandCast) SelectPos(dst []int32, s *PosScratch, links PosLinks, from int32, fanout int, rng *rand.Rand) []int32 {
	return samplePosExcluding(dst, s, links.R, fanout, rng, from, nil)
}

// SelectPos implements PosSelector, mirroring Select.
//
//ringcast:hotpath
func (RingCast) SelectPos(dst []int32, s *PosScratch, links PosLinks, from int32, fanout int, rng *rand.Rand) []int32 {
	base := len(dst)
	for _, d := range links.D {
		if d == from || d == NilPos || containsPos(dst[base:], d) {
			continue
		}
		dst = append(dst, d)
	}
	if remaining := fanout - (len(dst) - base); remaining > 0 {
		dst = samplePosExcluding(dst, s, links.R, remaining, rng, from, dst[base:])
	}
	return dst
}

// SelectPos implements PosSelector, mirroring Select.
//
//ringcast:hotpath
func (Flood) SelectPos(dst []int32, _ *PosScratch, links PosLinks, from int32, _ int, _ *rand.Rand) []int32 {
	base := len(dst)
	for _, set := range [2][]int32{links.D, links.R} {
		for _, p := range set {
			if p == from || p == NilPos || containsPos(dst[base:], p) {
				continue
			}
			dst = append(dst, p)
		}
	}
	return dst
}

// SelectPos implements PosSelector, mirroring Select.
//
//ringcast:hotpath
func (DFlood) SelectPos(dst []int32, _ *PosScratch, links PosLinks, from int32, _ int, _ *rand.Rand) []int32 {
	base := len(dst)
	for _, p := range links.D {
		if p == from || p == NilPos || containsPos(dst[base:], p) {
			continue
		}
		dst = append(dst, p)
	}
	return dst
}

// samplePosExcluding is sampleExcluding over positions: up to n distinct
// positions drawn uniformly without replacement from pool, excluding from,
// NilPos, and anything in skip, appended to dst. The candidate pool is built
// in the same order and the same number of rng draws are made as on the ID
// path, so both paths pick the same targets. Linear-scan dedup replaces the
// ID path's maps: link sets are small (tens of entries), where scanning
// beats hashing and allocates nothing.
//
//ringcast:hotpath
func samplePosExcluding(dst []int32, s *PosScratch, pool []int32, n int, rng *rand.Rand, from int32, skip []int32) []int32 {
	if n <= 0 || len(pool) == 0 {
		return dst
	}
	cand := s.cand[:0]
	for _, p := range pool {
		if p == from || p == NilPos || containsPos(cand, p) || containsPos(skip, p) {
			continue
		}
		cand = append(cand, p)
	}
	s.cand = cand
	if n > len(cand) {
		n = len(cand)
	}
	// Partial Fisher-Yates: shuffle only the prefix we take.
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return append(dst, cand[:n]...)
}

//
//ringcast:hotpath
func containsPos(s []int32, p int32) bool {
	for _, q := range s {
		if q == p {
			return true
		}
	}
	return false
}

// sampleExcluding returns up to n distinct IDs drawn uniformly without
// replacement from pool, excluding `from`, ident.Nil, and anything in skip.
func sampleExcluding(pool []ident.ID, n int, rng *rand.Rand, from ident.ID, skip map[ident.ID]struct{}) []ident.ID {
	if n <= 0 || len(pool) == 0 {
		return nil
	}
	candidates := make([]ident.ID, 0, len(pool))
	uniq := make(map[ident.ID]struct{}, len(pool))
	for _, id := range pool {
		if id == from || id.IsNil() {
			continue
		}
		if _, dup := uniq[id]; dup {
			continue
		}
		if skip != nil {
			if _, dup := skip[id]; dup {
				continue
			}
		}
		uniq[id] = struct{}{}
		candidates = append(candidates, id)
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	return candidates[:n:n]
}
