package core

import "testing"

// TestArenaLayout pins the offset arithmetic: per-node R/D blocks are
// contiguous, disjoint, and writable through the builder slots.
func TestArenaLayout(t *testing.T) {
	a := NewPosArena([]int{2, 0, 3}, []int{1, 2, 0})
	if a.N() != 3 {
		t.Fatalf("N=%d", a.N())
	}
	if a.LinkCount() != 8 {
		t.Fatalf("LinkCount=%d", a.LinkCount())
	}
	// Fill every slot with a distinct value via the builder accessors.
	next := int32(10)
	for i := 0; i < a.N(); i++ {
		for k, s := 0, a.RSlot(i); k < len(s); k++ {
			s[k] = next
			next++
		}
		for k, s := 0, a.DSlot(i); k < len(s); k++ {
			s[k] = next
			next++
		}
	}
	wantR := [][]int32{{10, 11}, {}, {15, 16, 17}}
	wantD := [][]int32{{12}, {13, 14}, {}}
	for i := 0; i < a.N(); i++ {
		l := a.Links(i)
		if len(l.R) != len(wantR[i]) || len(l.D) != len(wantD[i]) {
			t.Fatalf("node %d lens: R %d D %d", i, len(l.R), len(l.D))
		}
		for k, v := range wantR[i] {
			if l.R[k] != v {
				t.Fatalf("node %d R[%d]=%d want %d", i, k, l.R[k], v)
			}
		}
		for k, v := range wantD[i] {
			if l.D[k] != v {
				t.Fatalf("node %d D[%d]=%d want %d", i, k, l.D[k], v)
			}
		}
	}
	// Views must not allow appends to bleed into the neighbour's block.
	r0 := a.Links(0).R
	r0 = append(r0, 99)
	if a.Links(0).D[0] != 12 {
		t.Fatalf("append through view corrupted the next block: %v", a.Links(0).D)
	}
	_ = r0
}

// TestArenaPatch pins the deferred-patch path builders use for dangling
// links: SlotBase + offset addressing hits the intended slot.
func TestArenaPatch(t *testing.T) {
	a := NewPosArena([]int{1, 2}, []int{1, 1})
	base1 := a.SlotBase(1)
	a.Patch(base1+1, -5) // node 1's second R slot
	if got := a.Links(1).R[1]; got != -5 {
		t.Fatalf("patched slot reads %d", got)
	}
	a.Patch(base1+2, -7) // node 1's D slot follows its R block
	if got := a.Links(1).D[0]; got != -7 {
		t.Fatalf("patched D slot reads %d", got)
	}
}

// TestArenaEmpty covers the degenerate shapes.
func TestArenaEmpty(t *testing.T) {
	a := NewPosArena(nil, nil)
	if a.N() != 0 || a.LinkCount() != 0 {
		t.Fatalf("empty arena N=%d links=%d", a.N(), a.LinkCount())
	}
	b := NewPosArena([]int{0}, []int{0})
	l := b.Links(0)
	if len(l.R) != 0 || len(l.D) != 0 {
		t.Fatalf("zero-link node has links %v", l)
	}
}

// TestArenaPanics pins the builder misuse guards.
func TestArenaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("mismatched counts", func() { NewPosArena([]int{1}, []int{1, 2}) })
	mustPanic("offset overflow", func() { NewPosArena([]int{1 << 30, 1 << 30, 1 << 30}, []int{0, 0, 0}) })
}
