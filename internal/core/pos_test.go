package core

import (
	"math/rand"
	"testing"

	"ringcast/internal/ident"
)

// resolveForTest mirrors the overlay's link resolution: known IDs map to
// their dense position, nil maps to NilPos, unknown IDs map to distinct
// placeholders <= -2.
func resolveForTest(ids []ident.ID, index map[ident.ID]int32, unknown map[ident.ID]int32) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		switch {
		case id.IsNil():
			out[i] = NilPos
		default:
			if p, ok := index[id]; ok {
				out[i] = p
			} else {
				p, ok := unknown[id]
				if !ok {
					p = int32(-2 - len(unknown))
					unknown[id] = p
				}
				out[i] = p
			}
		}
	}
	return out
}

// TestSelectPosMatchesSelect drives every selector over randomized link sets
// with both the ID path and the position path from identical rng states and
// requires the chosen targets to agree exactly — the invariant the
// dissemination engine's byte-identical-output guarantee rests on.
func TestSelectPosMatchesSelect(t *testing.T) {
	selectors := []Selector{RandCast{}, RingCast{}, Flood{}, DFlood{}}
	seedRng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		// A small universe with some IDs unknown to the "overlay".
		universe := make([]ident.ID, 12)
		index := make(map[ident.ID]int32)
		for i := range universe {
			universe[i] = ident.ID(seedRng.Intn(9) + 1) // collisions on purpose
			if seedRng.Intn(4) == 0 {
				universe[i] = ident.Nil
			}
		}
		for i, id := range universe {
			if !id.IsNil() && seedRng.Intn(3) != 0 {
				if _, dup := index[id]; !dup {
					index[id] = int32(i)
				}
			}
		}
		links := Links{
			R: universe[:seedRng.Intn(len(universe)+1)],
			D: universe[seedRng.Intn(len(universe)):],
		}
		unknown := make(map[ident.ID]int32)
		pos := PosLinks{
			R: resolveForTest(links.R, index, unknown),
			D: resolveForTest(links.D, index, unknown),
		}
		from := ident.Nil
		fromPos := NilPos
		if seedRng.Intn(2) == 0 && len(links.R) > 0 {
			from = links.R[seedRng.Intn(len(links.R))]
			if from.IsNil() {
				fromPos = NilPos
			} else if p, ok := index[from]; ok {
				fromPos = p
			} else {
				fromPos = unknown[from]
			}
		}
		fanout := seedRng.Intn(6) + 1
		seed := seedRng.Int63()
		for _, sel := range selectors {
			idTargets := sel.Select(links, from, fanout, rand.New(rand.NewSource(seed)))
			var scratch PosScratch
			posTargets := sel.(PosSelector).SelectPos(nil, &scratch, pos, fromPos, fanout, rand.New(rand.NewSource(seed)))
			if len(idTargets) != len(posTargets) {
				t.Fatalf("trial %d %s: %d ID targets vs %d pos targets", trial, sel.Name(), len(idTargets), len(posTargets))
			}
			for i, id := range idTargets {
				want, known := index[id]
				if !known {
					want = unknown[id]
				}
				if posTargets[i] != want {
					t.Fatalf("trial %d %s target %d: pos %d, want %d (id %v)",
						trial, sel.Name(), i, posTargets[i], want, id)
				}
			}
		}
	}
}
