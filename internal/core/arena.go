// Compact overlay arena: the struct-of-arrays representation of a whole
// overlay's resolved links. Prior to it, every node carried a PosLinks value
// (two slice headers, 48 bytes) pointing into two shared backing arrays;
// at a million nodes those headers alone cost ~48 MB and doubled the
// pointer-chasing of the hop loop. The arena keeps one flat []int32 buffer
// holding every node's links (R-block then D-block, per node, contiguous)
// plus a 2n+1 offset table, so per-node overhead is exactly two int32
// offsets and PosLinks views are materialized on demand for free.
//
// The arena is deterministic: its contents are a pure function of the
// links it was built from — builders that fill it in parallel (see
// dissem's shard-parallel construction) must produce the same bytes at any
// worker count, so random target selections over arena views stay
// rng-identical to the ID path at any parallelism.
package core

import "fmt"

// PosArena is the compact storage for all nodes' resolved links: one flat
// []int32 buffer plus per-node offsets. Node i's random links occupy
// buf[off[2i]:off[2i+1]] and its deterministic links buf[off[2i+1]:off[2i+2]],
// so a node's whole neighbourhood is one contiguous block and the arena
// carries no per-node slice headers (SoA layout). Values follow the PosLinks
// conventions: >= 0 are overlay positions, NilPos marks nil links, <= -2 are
// distinct-per-ID placeholders for links whose target is absent from the
// overlay.
//
// An arena is immutable after construction (the writable RSlot/DSlot
// accessors exist only for builders) and therefore safe to share across
// concurrent readers — clones of an overlay all read the same arena.
type PosArena struct {
	off []int32
	buf []int32
}

// NewPosArena allocates an arena for len(rLens) nodes whose node i reserves
// rLens[i] random-link slots and dLens[i] deterministic-link slots. Slots are
// zero-filled; builders fill them through RSlot/DSlot. It panics when the
// length of the two count slices differs or the total link count overflows
// the int32 offset space (2^31-1 links — at the paper's view lengths that is
// tens of millions of nodes, beyond any single-process simulation).
func NewPosArena(rLens, dLens []int) *PosArena {
	if len(rLens) != len(dLens) {
		panic(fmt.Sprintf("core: arena count slices disagree (%d vs %d nodes)", len(rLens), len(dLens)))
	}
	n := len(rLens)
	off := make([]int32, 2*n+1)
	total := 0
	for i := 0; i < n; i++ {
		total += rLens[i]
		if total < 0 || int64(total) > int64(1<<31-1) {
			panic("core: arena link count overflows int32 offsets")
		}
		off[2*i+1] = int32(total)
		total += dLens[i]
		if total < 0 || int64(total) > int64(1<<31-1) {
			panic("core: arena link count overflows int32 offsets")
		}
		off[2*i+2] = int32(total)
	}
	return &PosArena{off: off, buf: make([]int32, total)}
}

// N returns the number of nodes the arena holds links for.
func (a *PosArena) N() int { return (len(a.off) - 1) / 2 }

// LinkCount returns the total number of link slots in the arena.
func (a *PosArena) LinkCount() int { return len(a.buf) }

// Links returns node i's resolved links as a PosLinks view into the arena.
// The view is valid as long as the arena lives; callers must not mutate it.
func (a *PosArena) Links(i int) PosLinks {
	r0, r1, d1 := a.off[2*i], a.off[2*i+1], a.off[2*i+2]
	return PosLinks{R: a.buf[r0:r1:r1], D: a.buf[r1:d1:d1]}
}

// RSlot returns the writable random-link block of node i. It exists for
// arena builders only (shards fill disjoint node ranges concurrently);
// mutating an arena that is already being read is a data race.
func (a *PosArena) RSlot(i int) []int32 {
	r0, r1 := a.off[2*i], a.off[2*i+1]
	return a.buf[r0:r1:r1]
}

// DSlot returns the writable deterministic-link block of node i, under the
// same builder-only contract as RSlot.
func (a *PosArena) DSlot(i int) []int32 {
	r1, d1 := a.off[2*i+1], a.off[2*i+2]
	return a.buf[r1:d1:d1]
}

// Patch overwrites the arena slot at flat index slot (an index into the
// arena's buffer, as recovered by builders from a slice returned by
// RSlot/DSlot). Builder-only, like RSlot.
func (a *PosArena) Patch(slot int, p int32) { a.buf[slot] = p }

// SlotBase returns the flat buffer index of the first slot of node i's
// random block — the base builders add link offsets to when recording slots
// for deferred patching.
func (a *PosArena) SlotBase(i int) int { return int(a.off[2*i]) }
