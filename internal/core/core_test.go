package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
)

func ids(xs ...uint64) []ident.ID {
	out := make([]ident.ID, len(xs))
	for i, x := range xs {
		out[i] = ident.ID(x)
	}
	return out
}

func TestRandCastBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	links := Links{R: ids(1, 2, 3, 4, 5)}
	got := RandCast{}.Select(links, 3, 3, rng)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	seen := map[ident.ID]bool{}
	for _, id := range got {
		if id == 3 {
			t.Fatal("sender included in targets")
		}
		if seen[id] {
			t.Fatal("duplicate target")
		}
		seen[id] = true
	}
}

func TestRandCastUpToF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	links := Links{R: ids(1, 2)}
	if got := (RandCast{}).Select(links, 2, 10, rng); len(got) != 1 {
		t.Fatalf("want only node 1 available, got %v", got)
	}
	if got := (RandCast{}).Select(Links{}, ident.Nil, 5, rng); got != nil {
		t.Fatalf("empty links should yield nil, got %v", got)
	}
}

func TestRingCastAlwaysIncludesBothNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	links := Links{R: ids(10, 11, 12, 13), D: ids(1, 2)}
	got := RingCast{}.Select(links, ident.Nil, 4, rng)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("d-links must come first: %v", got)
	}
	for _, id := range got[2:] {
		if id == 1 || id == 2 {
			t.Fatal("r-link fill duplicated a d-link")
		}
	}
}

func TestRingCastFromNeighbor(t *testing.T) {
	// Received from ring neighbour 1: forward to other neighbour + F-1 r-links.
	rng := rand.New(rand.NewSource(3))
	links := Links{R: ids(10, 11, 12, 13), D: ids(1, 2)}
	got := RingCast{}.Select(links, 1, 3, rng)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3 (1 d-link + 2 r-links)", len(got))
	}
	if got[0] != 2 {
		t.Fatalf("first target = %v, want other neighbour 2", got[0])
	}
	for _, id := range got {
		if id == 1 {
			t.Fatal("message forwarded back to sender")
		}
	}
}

func TestRingCastFanoutBelowDegree(t *testing.T) {
	// F=1 still forwards to both ring neighbours (paper: miss ratio is zero
	// for ANY fanout, including 1).
	rng := rand.New(rand.NewSource(4))
	links := Links{R: ids(10, 11), D: ids(1, 2)}
	got := RingCast{}.Select(links, ident.Nil, 1, rng)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("F=1 targets = %v, want exactly the two d-links", got)
	}
}

func TestRingCastDedupesRAndD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// r-links contain the ring neighbours too; they must not be re-selected.
	links := Links{R: ids(1, 2, 3), D: ids(1, 2)}
	got := RingCast{}.Select(links, ident.Nil, 3, rng)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	count := map[ident.ID]int{}
	for _, id := range got {
		count[id]++
		if count[id] > 1 {
			t.Fatalf("duplicate target %v in %v", id, got)
		}
	}
	if got[2] != 3 {
		t.Fatalf("fill target = %v, want 3 (only non-dup r-link)", got[2])
	}
}

func TestRingCastDegenerateRing(t *testing.T) {
	// Two-node network: pred == succ; the duplicate d-link collapses.
	rng := rand.New(rand.NewSource(6))
	links := Links{D: ids(7, 7)}
	got := RingCast{}.Select(links, ident.Nil, 2, rng)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("targets = %v, want [7]", got)
	}
}

func TestFloodUsesAllLinks(t *testing.T) {
	got := Flood{}.Select(Links{R: ids(1, 2, 3), D: ids(3, 4)}, 2, 0, nil)
	want := map[ident.ID]bool{1: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want keys of %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected target %v", id)
		}
	}
}

func TestDFloodUsesOnlyDLinks(t *testing.T) {
	got := DFlood{}.Select(Links{R: ids(1, 2), D: ids(3, 4)}, 4, 0, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("targets = %v, want [3]", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"randcast", "ringcast", "flood", "dflood"} {
		s, err := ByName(name)
		if err != nil || s == nil {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("selector %q has empty name", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("accepted unknown protocol")
	}
}

// Property: no selector ever returns the sender, nil IDs, or duplicates, and
// RandCast never exceeds the fanout.
func TestSelectorsSafetyProperty(t *testing.T) {
	f := func(seed int64, rRaw, dRaw []uint16, fromRaw uint16, fanRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		links := Links{}
		for _, x := range rRaw {
			links.R = append(links.R, ident.ID(x%50))
		}
		for _, x := range dRaw {
			links.D = append(links.D, ident.ID(x%50))
		}
		from := ident.ID(fromRaw % 50)
		fanout := int(fanRaw%21) + 1
		for _, sel := range []Selector{RandCast{}, RingCast{}, Flood{}, DFlood{}} {
			got := sel.Select(links, from, fanout, rng)
			seen := map[ident.ID]bool{}
			for _, id := range got {
				if id == from || id.IsNil() || seen[id] {
					return false
				}
				seen[id] = true
			}
			if _, isRand := sel.(RandCast); isRand && len(got) > fanout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RingCast target count equals max(|D'|, F) capped by available
// distinct links, where D' is d-links excluding the sender.
func TestRingCastCountProperty(t *testing.T) {
	f := func(seed int64, rCount, fanRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		links := Links{D: ids(1, 2)}
		for i := 0; i < int(rCount%30); i++ {
			links.R = append(links.R, ident.ID(100+i))
		}
		fanout := int(fanRaw%10) + 1
		got := RingCast{}.Select(links, ident.Nil, fanout, rng)
		want := fanout
		if want < 2 {
			want = 2
		}
		avail := 2 + len(links.R)
		if want > avail {
			want = avail
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
