// Package config is the hot-reconfiguration engine: a typed, watchable
// key/value store that lets every protocol parameter the paper sweeps
// (fanout F, view sizes, the gossip period T of Section 6) and every
// operational knob layered on since (send-queue caps, batch bytes, writer
// idle) be re-tuned on a live node without a restart. The store is
// deterministic by construction: versions are assigned by a seedless
// monotonic counter under one mutex, no wall clock or randomness is
// consulted anywhere, and watchers observe each key's accepted updates in
// exact version order — so a given sequence of Set calls produces an
// identical update stream on every run.
//
// Sources layer on top: command-line flags seed the registered defaults at
// boot, the soak control protocol's set/get verbs call Set at runtime, and
// a JSON file is re-applied (two-phase: validate everything, then commit)
// on SIGHUP. Validation hooks run per key; a rejected Set leaves the store
// at its prior version with no watcher notified.
//
//ringcast:deterministic
package config

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Type enumerates the value types a key can be registered with.
type Type int

// Registered key types. The canonical string form stored for each type is
// the one its formatter produces (strconv / time.Duration.String), so Get
// always returns a string the matching parser round-trips exactly.
const (
	// TypeString stores the raw string unmodified.
	TypeString Type = iota
	// TypeInt stores a base-10 signed integer.
	TypeInt
	// TypeFloat stores a float64 in strconv 'g' form.
	TypeFloat
	// TypeBool stores "true" or "false".
	TypeBool
	// TypeDuration stores a time.Duration in its String() form.
	TypeDuration
)

// String names the type for error messages.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeDuration:
		return "duration"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Def registers one key: its type, default, optional numeric bounds and an
// optional custom validation hook.
type Def struct {
	// Name is the key ("gossip.interval", "sendq.cap", ...).
	Name string
	// Type selects parsing, canonicalization and range semantics.
	Type Type
	// Default is the initial value, validated at Register time.
	Default string
	// Bounded enables the [Min, Max] range check for numeric types
	// (TypeInt, TypeFloat, TypeDuration — durations compare in nanoseconds).
	Bounded  bool
	Min, Max float64
	// Check, when non-nil, runs after type and range validation with the
	// canonical value; a non-nil error rejects the Set.
	Check func(canonical string) error
	// Help is a one-line description for catalogs and usage text.
	Help string
}

// Update is one accepted change delivered to watchers of a key.
type Update struct {
	// Key is the updated key.
	Key string
	// Value is the canonical value after the update.
	Value string
	// Version is the store version at which this value was committed. The
	// initial snapshot delivered on Watch carries the version current at
	// subscribe time.
	Version uint64
}

// Snapshot is a consistent copy of the whole store at one version.
type Snapshot struct {
	// Version is the store version the values were read at.
	Version uint64
	// Values maps every registered key to its canonical value.
	Values map[string]string
}

// Store errors.
var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("config: store closed")
	// ErrUnknownKey is returned for keys that were never registered.
	ErrUnknownKey = errors.New("config: unknown key")
)

// Store is a versioned, watchable key/value store. All methods are safe for
// concurrent use. Create with NewStore, define keys with Register, mutate
// with Set, observe with Watch.
type Store struct {
	mu      sync.Mutex
	defs    map[string]Def
	vals    map[string]string
	version uint64
	subs    map[string][]*Sub
	closed  bool
}

// NewStore returns an empty store at version 0.
func NewStore() *Store {
	return &Store{
		defs: make(map[string]Def),
		vals: make(map[string]string),
		subs: make(map[string][]*Sub),
	}
}

// Register defines a key. The default is validated like any Set but does
// not bump the version or notify anyone (nothing can be watching an
// unregistered key). Re-registering a name is an error.
func (s *Store) Register(d Def) error {
	if d.Name == "" {
		return errors.New("config: empty key name")
	}
	canonical, err := canonicalize(d, d.Default)
	if err != nil {
		return fmt.Errorf("config: default for %s: %w", d.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.defs[d.Name]; dup {
		return fmt.Errorf("config: key %s already registered", d.Name)
	}
	s.defs[d.Name] = d
	s.vals[d.Name] = canonical
	return nil
}

// MustRegister is Register for static catalogs; it panics on error.
func (s *Store) MustRegister(d Def) {
	if err := s.Register(d); err != nil {
		panic(err)
	}
}

// canonicalize validates raw against the def and returns the canonical
// string form. It holds no locks and consults no clocks.
func canonicalize(d Def, raw string) (string, error) {
	var canonical string
	var num float64
	switch d.Type {
	case TypeString:
		canonical = raw
	case TypeInt:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not an int", raw)
		}
		canonical, num = strconv.FormatInt(v, 10), float64(v)
	case TypeFloat:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not a float", raw)
		}
		canonical, num = strconv.FormatFloat(v, 'g', -1, 64), v
	case TypeBool:
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return "", fmt.Errorf("%q is not a bool", raw)
		}
		canonical = strconv.FormatBool(v)
	case TypeDuration:
		v, err := time.ParseDuration(raw)
		if err != nil {
			return "", fmt.Errorf("%q is not a duration", raw)
		}
		canonical, num = v.String(), float64(v)
	default:
		return "", fmt.Errorf("unknown type %v", d.Type)
	}
	if d.Bounded && d.Type != TypeString && d.Type != TypeBool {
		if num < d.Min || num > d.Max {
			return "", fmt.Errorf("%s out of range [%s, %s]", canonical,
				boundString(d.Type, d.Min), boundString(d.Type, d.Max))
		}
	}
	if d.Check != nil {
		if err := d.Check(canonical); err != nil {
			return "", err
		}
	}
	return canonical, nil
}

// boundString renders a numeric bound in the key's own unit for errors.
func boundString(t Type, v float64) string {
	if t == TypeDuration {
		return time.Duration(v).String()
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Set validates raw against key's definition and, if accepted, commits the
// canonical value at a fresh version and notifies the key's watchers in
// version order. A rejected Set leaves the store version and value
// untouched and notifies nobody. It returns the version the value was
// committed at.
func (s *Store) Set(key, raw string) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	d, ok := s.defs[key]
	if !ok {
		v := s.version
		s.mu.Unlock()
		return v, fmt.Errorf("%w: %s", ErrUnknownKey, key)
	}
	canonical, err := canonicalize(d, raw)
	if err != nil {
		v := s.version
		s.mu.Unlock()
		return v, fmt.Errorf("config: set %s: %w", key, err)
	}
	s.version++
	version := s.version
	s.vals[key] = canonical
	// Enqueue under s.mu so concurrent Sets notify in version order; the
	// actual channel delivery happens on each sub's pump goroutine.
	woken := s.enqueueLocked(key, Update{Key: key, Value: canonical, Version: version})
	s.mu.Unlock()
	for _, sub := range woken {
		sub.wakeup()
	}
	return version, nil
}

// enqueueLocked appends u to every subscriber of key and returns the subs
// to wake after s.mu is released. Caller holds s.mu.
func (s *Store) enqueueLocked(key string, u Update) []*Sub {
	subs := s.subs[key]
	for _, sub := range subs {
		sub.qmu.Lock()
		sub.queue = append(sub.queue, u)
		sub.qmu.Unlock()
	}
	return subs
}

// Get returns key's canonical value.
func (s *Store) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[key]
	return v, ok
}

// Version returns the store version: the count of accepted Sets.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Snapshot returns a consistent copy of every value at one version.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	vals := make(map[string]string, len(s.vals))
	for k, v := range s.vals {
		vals[k] = v
	}
	return Snapshot{Version: s.version, Values: vals}
}

// Keys returns the registered key names, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.defs))
	for k := range s.defs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Defs returns the registered definitions in sorted name order, for key
// catalogs and usage text.
func (s *Store) Defs() []Def {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.defs))
	for k := range s.defs {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]Def, 0, len(names))
	for _, k := range names {
		out = append(out, s.defs[k])
	}
	return out
}

// Int returns key's value as an integer (0 for unregistered keys). The
// canonical form is validated at Set time, so the parse cannot fail.
func (s *Store) Int(key string) int64 {
	v, ok := s.Get(key)
	if !ok {
		return 0
	}
	n, _ := strconv.ParseInt(v, 10, 64)
	return n
}

// Duration returns key's value as a time.Duration (0 for unregistered keys).
func (s *Store) Duration(key string) time.Duration {
	v, ok := s.Get(key)
	if !ok {
		return 0
	}
	d, _ := time.ParseDuration(v)
	return d
}

// Float returns key's value as a float64 (0 for unregistered keys).
func (s *Store) Float(key string) float64 {
	v, ok := s.Get(key)
	if !ok {
		return 0
	}
	f, _ := strconv.ParseFloat(v, 64)
	return f
}

// Bool returns key's value as a bool (false for unregistered keys).
func (s *Store) Bool(key string) bool {
	v, ok := s.Get(key)
	if !ok {
		return false
	}
	b, _ := strconv.ParseBool(v)
	return b
}

// Watch subscribes to key. The subscription's channel first delivers the
// key's current value (stamped with the version current at subscribe time),
// then every accepted Set in version order, with no gaps and no reordering.
// The channel closes when the subscription or the store closes. Callers
// that fall behind do not block writers: updates queue without bound on the
// subscription until its pump can deliver them.
func (s *Store) Watch(key string) (*Sub, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	val, ok := s.vals[key]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownKey, key)
	}
	sub := &Sub{
		store: s,
		key:   key,
		wake:  make(chan struct{}, 1),
		out:   make(chan Update),
		done:  make(chan struct{}),
	}
	sub.queue = append(sub.queue, Update{Key: key, Value: val, Version: s.version})
	s.subs[key] = append(s.subs[key], sub)
	s.mu.Unlock()
	go sub.pump()
	return sub, nil
}

// Notify is Watch plus a delivery goroutine: fn runs (on a dedicated
// goroutine, one update at a time, in order) for the current value and
// every subsequent accepted Set, until the subscription or store closes.
// This is the binding helper live runtimes use to push re-tunes into node
// and transport setters.
func (s *Store) Notify(key string, fn func(Update)) (*Sub, error) {
	sub, err := s.Watch(key)
	if err != nil {
		return nil, err
	}
	go func() {
		// The range terminates when pump closes out (sub or store close),
		// so this goroutine cannot outlive the subscription.
		for u := range sub.out {
			fn(u)
		}
	}()
	return sub, nil
}

// Close closes the store: every subscription channel closes after draining
// nothing further, and subsequent Sets and Watches fail with ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	keys := make([]string, 0, len(s.subs))
	for k := range s.subs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var all []*Sub
	for _, k := range keys {
		all = append(all, s.subs[k]...)
	}
	s.subs = make(map[string][]*Sub)
	s.mu.Unlock()
	for _, sub := range all {
		sub.close()
	}
}

// Sub is one Watch subscription. Close it when done; abandoned
// subscriptions accumulate queued updates until the store closes.
type Sub struct {
	store *Store
	key   string

	qmu   sync.Mutex
	queue []Update

	wake chan struct{} // buffered(1): "queue went non-empty"
	out  chan Update
	done chan struct{}
	once sync.Once
}

// C returns the ordered update channel. It closes when the subscription or
// its store closes.
func (sub *Sub) C() <-chan Update { return sub.out }

// Key returns the watched key.
func (sub *Sub) Key() string { return sub.key }

// Close detaches the subscription from the store and closes its channel.
// Safe to call multiple times and concurrently with deliveries.
func (sub *Sub) Close() {
	s := sub.store
	s.mu.Lock()
	subs := s.subs[sub.key]
	for i, candidate := range subs {
		if candidate == sub {
			s.subs[sub.key] = append(subs[:i:i], subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	sub.close()
}

// close signals the pump to exit; the pump owns closing out.
func (sub *Sub) close() {
	sub.once.Do(func() { close(sub.done) })
}

// wakeup nudges the pump after new updates were queued. Non-blocking by
// construction (buffered, capacity 1).
func (sub *Sub) wakeup() {
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// pump delivers queued updates on out, in order, one at a time. It exits
// (closing out) when the subscription closes. All channel operations happen
// with no mutex held.
func (sub *Sub) pump() {
	defer close(sub.out)
	for {
		sub.qmu.Lock()
		var u Update
		have := len(sub.queue) > 0
		if have {
			u = sub.queue[0]
			sub.queue = sub.queue[1:]
		}
		sub.qmu.Unlock()
		if !have {
			select {
			case <-sub.wake:
				continue
			case <-sub.done:
				return
			}
		}
		select {
		case sub.out <- u:
		case <-sub.done:
			return
		}
	}
}
