package config

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestStore registers a small catalog mirroring the live node's keys.
func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	defs := []Def{
		{Name: "gossip.interval", Type: TypeDuration, Default: "50ms",
			Bounded: true, Min: float64(time.Millisecond), Max: float64(time.Hour)},
		{Name: "gossip.fanout", Type: TypeInt, Default: "3", Bounded: true, Min: 1, Max: 128},
		{Name: "sendq.cap", Type: TypeInt, Default: "512", Bounded: true, Min: 1, Max: 1 << 20},
		{Name: "debug.label", Type: TypeString, Default: ""},
		{Name: "probe.enabled", Type: TypeBool, Default: "true"},
		{Name: "loss.rate", Type: TypeFloat, Default: "0", Bounded: true, Min: 0, Max: 1},
	}
	for _, d := range defs {
		if err := s.Register(d); err != nil {
			t.Fatalf("register %s: %v", d.Name, err)
		}
	}
	return s
}

func TestRegisterDefaultsAndTypedGetters(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	if got := s.Duration("gossip.interval"); got != 50*time.Millisecond {
		t.Fatalf("interval = %v, want 50ms", got)
	}
	if got := s.Int("gossip.fanout"); got != 3 {
		t.Fatalf("fanout = %d, want 3", got)
	}
	if !s.Bool("probe.enabled") {
		t.Fatal("probe.enabled should default true")
	}
	if got := s.Float("loss.rate"); got != 0 {
		t.Fatalf("loss.rate = %v, want 0", got)
	}
	if v := s.Version(); v != 0 {
		t.Fatalf("registration must not bump version, got %d", v)
	}
	want := []string{"debug.label", "gossip.fanout", "gossip.interval", "loss.rate", "probe.enabled", "sendq.cap"}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSetCanonicalizesAndBumpsVersion(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	v, err := s.Set("gossip.interval", "1500ms")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	if got, _ := s.Get("gossip.interval"); got != "1.5s" {
		t.Fatalf("canonical value = %q, want 1.5s", got)
	}
	if got := s.Duration("gossip.interval"); got != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", got)
	}
}

// Validation rejection must leave the store at the prior version with the
// prior value, and watchers must see nothing.
func TestRejectionLeavesPriorVersion(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	if _, err := s.Set("gossip.fanout", "7"); err != nil {
		t.Fatal(err)
	}
	sub, err := s.Watch("gossip.fanout")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if u := <-sub.C(); u.Value != "7" || u.Version != 1 {
		t.Fatalf("initial update = %+v", u)
	}

	cases := []struct{ key, raw string }{
		{"gossip.fanout", "0"},          // below Min
		{"gossip.fanout", "1000"},       // above Max
		{"gossip.fanout", "three"},      // not an int
		{"gossip.interval", "-5ms"},     // below Min
		{"loss.rate", "1.5"},            // above Max
		{"probe.enabled", "definitely"}, // not a bool
		{"no.such.key", "1"},            // unregistered
	}
	for _, tc := range cases {
		v, err := s.Set(tc.key, tc.raw)
		if err == nil {
			t.Fatalf("Set(%s, %q) unexpectedly accepted", tc.key, tc.raw)
		}
		if v != 1 {
			t.Fatalf("Set(%s, %q): version moved to %d on rejection", tc.key, tc.raw, v)
		}
	}
	if got, _ := s.Get("gossip.fanout"); got != "7" {
		t.Fatalf("value changed on rejection: %q", got)
	}
	select {
	case u := <-sub.C():
		t.Fatalf("watcher notified on rejection: %+v", u)
	default:
	}
}

func TestCheckHookRuns(t *testing.T) {
	s := NewStore()
	defer s.Close()
	err := s.Register(Def{Name: "proto", Type: TypeString, Default: "both",
		Check: func(v string) error {
			switch v {
			case "cyclon", "vicinity", "both":
				return nil
			}
			return fmt.Errorf("unknown proto %q", v)
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("proto", "cyclon"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("proto", "udp"); err == nil {
		t.Fatal("check hook did not reject")
	}
	if got, _ := s.Get("proto"); got != "cyclon" {
		t.Fatalf("value = %q after rejected set", got)
	}
}

// Watch delivers the current value first, then every accepted Set in exact
// version order with no gaps.
func TestWatchOrderedDelivery(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	sub, err := s.Watch("sendq.cap")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const n = 100
	for i := 1; i <= n; i++ {
		if _, err := s.Set("sendq.cap", fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	u := <-sub.C()
	if u.Value != "512" || u.Version != 0 {
		t.Fatalf("initial update = %+v, want value 512 at version 0", u)
	}
	for i := 1; i <= n; i++ {
		u = <-sub.C()
		if u.Value != fmt.Sprint(i) || u.Version != uint64(i) {
			t.Fatalf("update %d = %+v", i, u)
		}
	}
}

func TestWatchUnknownKey(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	if _, err := s.Watch("no.such.key"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v, want ErrUnknownKey", err)
	}
}

func TestSubCloseStopsDelivery(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	sub, err := s.Watch("gossip.fanout")
	if err != nil {
		t.Fatal(err)
	}
	<-sub.C()
	sub.Close()
	for range sub.C() { // drains anything in flight, then the channel closes
	}
	if _, err := s.Set("gossip.fanout", "9"); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.C(); open {
		t.Fatal("closed sub channel still open")
	}
}

func TestStoreCloseClosesSubsAndRejectsOps(t *testing.T) {
	s := newTestStore(t)
	sub, err := s.Watch("gossip.fanout")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for range sub.C() {
	}
	if _, err := s.Set("gossip.fanout", "4"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set after close: %v", err)
	}
	if _, err := s.Watch("gossip.fanout"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Watch after close: %v", err)
	}
	if err := s.Register(Def{Name: "late", Type: TypeString}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after close: %v", err)
	}
	s.Close() // idempotent
}

// Notify runs the callback for the initial value and each accepted Set, and
// the delivery goroutine exits when the subscription closes.
func TestNotifyCallback(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	got := make(chan Update, 8)
	sub, err := s.Notify("gossip.interval", func(u Update) { got <- u })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if u := <-got; u.Value != "50ms" {
		t.Fatalf("initial callback = %+v", u)
	}
	if _, err := s.Set("gossip.interval", "25ms"); err != nil {
		t.Fatal(err)
	}
	if u := <-got; u.Value != "25ms" || u.Version != 1 {
		t.Fatalf("callback = %+v", u)
	}
}

// Concurrent Watch/Set/Close storm: run under -race. Each watcher must
// observe strictly increasing versions; closes racing deliveries must not
// deadlock or panic.
func TestConcurrentWatchSetCloseStorm(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	const (
		setters       = 8
		setsPerSetter = 200
		watchers      = 8
		churners      = 4
	)
	var wg sync.WaitGroup

	for w := 0; w < watchers; w++ {
		sub, err := s.Watch("sendq.cap")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sub *Sub) {
			defer wg.Done()
			defer sub.Close()
			var last uint64
			first := true
			for u := range sub.C() {
				if !first && u.Version <= last {
					panic(fmt.Sprintf("version went backwards: %d after %d", u.Version, last))
				}
				first, last = false, u.Version
				if last >= setters*setsPerSetter {
					return
				}
			}
		}(sub)
	}
	// Churners subscribe and close repeatedly while the storm runs.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub, err := s.Watch("sendq.cap")
				if err != nil {
					return
				}
				<-sub.C()
				sub.Close()
			}
		}()
	}
	for g := 0; g < setters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < setsPerSetter; i++ {
				if _, err := s.Set("sendq.cap", fmt.Sprint(1+i%1000)); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if v := s.Version(); v != setters*setsPerSetter {
		t.Fatalf("final version = %d, want %d", v, setters*setsPerSetter)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	if _, err := s.Set("gossip.fanout", "5"); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Version != 1 {
		t.Fatalf("snapshot version = %d", snap.Version)
	}
	if snap.Values["gossip.fanout"] != "5" || snap.Values["sendq.cap"] != "512" {
		t.Fatalf("snapshot values = %v", snap.Values)
	}
	// Mutating the snapshot must not leak back into the store.
	snap.Values["gossip.fanout"] = "99"
	if got, _ := s.Get("gossip.fanout"); got != "5" {
		t.Fatalf("snapshot aliases store: %q", got)
	}
}

// ApplyJSON commits everything or nothing: a single bad key rejects the
// whole document at the prior version.
func TestApplyJSONAtomic(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	v, err := s.ApplyJSON([]byte(`{"gossip.fanout": 6, "gossip.interval": "20ms", "probe.enabled": false}`))
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("version = %d, want 3 (one per key)", v)
	}
	if got := s.Int("gossip.fanout"); got != 6 {
		t.Fatalf("fanout = %d", got)
	}
	if got := s.Duration("gossip.interval"); got != 20*time.Millisecond {
		t.Fatalf("interval = %v", got)
	}
	if s.Bool("probe.enabled") {
		t.Fatal("probe.enabled should be false")
	}

	// Bad document: one invalid value rejects all of it.
	_, err = s.ApplyJSON([]byte(`{"gossip.fanout": 2, "gossip.interval": "bogus"}`))
	if err == nil {
		t.Fatal("bad document accepted")
	}
	if got := s.Int("gossip.fanout"); got != 6 {
		t.Fatalf("half-applied document: fanout = %d", got)
	}
	if got := s.Version(); got != 3 {
		t.Fatalf("version moved on rejected document: %d", got)
	}

	// Unknown key rejects the document too.
	if _, err := s.ApplyJSON([]byte(`{"mystery": 1}`)); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key: %v", err)
	}
	// Nested values are not config.
	if _, err := s.ApplyJSON([]byte(`{"debug.label": {"a": 1}}`)); err == nil ||
		!strings.Contains(err.Error(), "nested") {
		t.Fatalf("nested value: %v", err)
	}
}

func TestApplyJSONNotifiesInOrder(t *testing.T) {
	s := newTestStore(t)
	defer s.Close()
	sub, err := s.Watch("gossip.fanout")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	<-sub.C() // initial
	if _, err := s.ApplyJSON([]byte(`{"gossip.fanout": 8, "sendq.cap": 64}`)); err != nil {
		t.Fatal(err)
	}
	u := <-sub.C()
	if u.Value != "8" || u.Version != 1 {
		t.Fatalf("update = %+v (sorted key order puts gossip.fanout first)", u)
	}
}

func TestRegisterRejectsBadDefaultAndDuplicates(t *testing.T) {
	s := NewStore()
	defer s.Close()
	if err := s.Register(Def{Name: "k", Type: TypeInt, Default: "nope"}); err == nil {
		t.Fatal("bad default accepted")
	}
	if err := s.Register(Def{Name: "", Type: TypeInt, Default: "1"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Register(Def{Name: "k", Type: TypeInt, Default: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Def{Name: "k", Type: TypeInt, Default: "2"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
