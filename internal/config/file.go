// JSON re-apply source for the store: the cmd layer reads the -config file
// (at boot and again on SIGHUP) and hands the raw bytes here, keeping all
// file IO and signal wiring outside this deterministic package.
package config

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// ApplyJSON parses data as a flat JSON object of key -> value (strings,
// numbers and booleans accepted; numbers and booleans are stringified
// before validation) and applies it two-phase: first every key is checked
// against its registered definition — an unknown key or a value that fails
// validation rejects the whole document and the store is untouched — then
// all values are committed in sorted key order, each at its own version.
// It returns the store version after the last commit.
func (s *Store) ApplyJSON(data []byte) (uint64, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return s.Version(), fmt.Errorf("config: parse: %w", err)
	}
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	raws := make(map[string]string, len(doc))
	for _, k := range keys {
		raw, err := jsonScalar(doc[k])
		if err != nil {
			return s.Version(), fmt.Errorf("config: key %s: %w", k, err)
		}
		raws[k] = raw
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	// Phase 1: validate the whole document against the registered defs
	// before touching any value, so a bad reload cannot half-apply.
	canon := make(map[string]string, len(raws))
	for _, k := range keys {
		d, ok := s.defs[k]
		if !ok {
			v := s.version
			s.mu.Unlock()
			return v, fmt.Errorf("%w: %s", ErrUnknownKey, k)
		}
		c, err := canonicalize(d, raws[k])
		if err != nil {
			v := s.version
			s.mu.Unlock()
			return v, fmt.Errorf("config: key %s: %w", k, err)
		}
		canon[k] = c
	}
	// Phase 2: commit in sorted key order, one version per key, enqueueing
	// watcher updates under s.mu so the stream stays version-ordered.
	var woken []*Sub
	for _, k := range keys {
		s.version++
		s.vals[k] = canon[k]
		woken = append(woken, s.enqueueLocked(k, Update{Key: k, Value: canon[k], Version: s.version})...)
	}
	version := s.version
	s.mu.Unlock()
	for _, sub := range woken {
		sub.wakeup()
	}
	return version, nil
}

// jsonScalar renders a decoded JSON value as the raw string Set would
// accept. Objects and arrays are rejected: the config file is flat.
func jsonScalar(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		return strconv.FormatBool(x), nil
	case nil:
		return "", fmt.Errorf("null is not a config value")
	default:
		return "", fmt.Errorf("nested values are not allowed")
	}
}
