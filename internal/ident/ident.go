// Package ident defines node identities and the circular identifier space
// used to organize nodes into a ring.
//
// Every node carries a 64-bit sequence ID drawn uniformly at random
// (paper, Section 6: "proximity refers to the distance between — arbitrarily
// chosen — sequence IDs, which determine the organization of nodes in a
// ring structure"). The ID space is circular: arithmetic wraps modulo 2^64.
package ident

import (
	"fmt"
	"math/rand"
	"strings"
)

// ID is a node identifier in the circular 64-bit identifier space.
// The zero ID is reserved as a sentinel meaning "no node"; generators
// never produce it.
type ID uint64

// Nil is the sentinel ID meaning "no node" (e.g. the sender of a
// locally generated message).
const Nil ID = 0

// String renders the ID as fixed-width hexadecimal.
func (id ID) String() string {
	return fmt.Sprintf("%016x", uint64(id))
}

// IsNil reports whether the ID is the reserved sentinel.
func (id ID) IsNil() bool { return id == Nil }

// Clockwise returns the clockwise (increasing-ID, wrapping) distance from a
// to b in the circular ID space. Clockwise(a, a) == 0.
func Clockwise(a, b ID) uint64 {
	return uint64(b) - uint64(a) // wraps modulo 2^64 by construction
}

// Dist returns the circular distance between a and b: the minimum of the
// clockwise and counterclockwise distances. It is symmetric and satisfies
// Dist(a, a) == 0.
func Dist(a, b ID) uint64 {
	cw := Clockwise(a, b)
	ccw := Clockwise(b, a)
	if cw < ccw {
		return cw
	}
	return ccw
}

// Generator produces unique, non-nil random IDs. It is not safe for
// concurrent use; callers in concurrent contexts must synchronize.
type Generator struct {
	rng  *rand.Rand
	used map[ID]struct{}
}

// NewGenerator returns a Generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		used: make(map[ID]struct{}),
	}
}

// Next returns a fresh ID never returned before by this generator.
func (g *Generator) Next() ID {
	for {
		id := ID(g.rng.Uint64())
		if id == Nil {
			continue
		}
		if _, dup := g.used[id]; dup {
			continue
		}
		g.used[id] = struct{}{}
		return id
	}
}

// Count returns how many IDs the generator has handed out.
func (g *Generator) Count() int { return len(g.used) }

// ReverseDomain reverses the dot-separated labels of a DNS name, so that
// "inf.ethz.ch" becomes "ch.ethz.inf". The paper (Section 8) uses reversed
// domain names to build proximity-aware ring IDs in which nodes of the same
// domain become ring neighbours.
func ReverseDomain(domain string) string {
	if domain == "" {
		return ""
	}
	labels := strings.Split(domain, ".")
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return strings.Join(labels, ".")
}

// domainPrefixBytes is how many leading bytes of the reversed domain are
// packed, order-preserving, into the top bits of a domain-proximity ID.
const domainPrefixBytes = 5

// DomainID builds a proximity-aware ring ID from a DNS domain name plus a
// random disambiguator, as sketched in Section 8 of the paper: the node "forms
// its ID by reversing its domain name (country domain first) and appending a
// randomly chosen number".
//
// The top 40 bits hold the first five bytes of the reversed domain name
// (order-preserving, so lexicographic domain order matches ring order for
// domains that differ within that prefix); the low 24 bits hold the random
// disambiguator. The result is never Nil.
func DomainID(domain string, random uint32) ID {
	rev := ReverseDomain(domain)
	var hi uint64
	for i := 0; i < domainPrefixBytes; i++ {
		var b byte
		if i < len(rev) {
			b = rev[i]
		}
		hi = hi<<8 | uint64(b)
	}
	id := ID(hi<<24 | uint64(random&0xFFFFFF))
	if id == Nil {
		id = 1
	}
	return id
}

// DomainOf extracts the order-preserving reversed-domain prefix encoded in a
// DomainID. It is primarily useful in tests and diagnostics.
func DomainOf(id ID) string {
	raw := uint64(id) >> 24
	buf := make([]byte, 0, domainPrefixBytes)
	for i := domainPrefixBytes - 1; i >= 0; i-- {
		b := byte(raw >> (uint(i) * 8))
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf)
}
