package ident

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockwiseBasics(t *testing.T) {
	cases := []struct {
		a, b ID
		want uint64
	}{
		{0, 0, 0},
		{1, 5, 4},
		{5, 1, math.MaxUint64 - 3}, // wraps
		{math.MaxUint64, 0, 1},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := Clockwise(c.a, c.b); got != c.want {
			t.Errorf("Clockwise(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(a, b uint64) bool {
		return Dist(ID(a), ID(b)) == Dist(ID(b), ID(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistIdentityAndBound(t *testing.T) {
	f := func(a, b uint64) bool {
		d := Dist(ID(a), ID(b))
		if a == b && d != 0 {
			return false
		}
		// circular distance can never exceed half the ring
		return d <= math.MaxUint64/2+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistClockwiseConsistency(t *testing.T) {
	f := func(a, b uint64) bool {
		cw := Clockwise(ID(a), ID(b))
		ccw := Clockwise(ID(b), ID(a))
		d := Dist(ID(a), ID(b))
		return d == cw || d == ccw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(42)
	seen := make(map[ID]struct{})
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if id.IsNil() {
			t.Fatal("generator produced nil ID")
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate ID %v", id)
		}
		seen[id] = struct{}{}
	}
	if g.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", g.Count())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestReverseDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"inf.ethz.ch", "ch.ethz.inf"},
		{"few.vu.nl", "nl.vu.few"},
		{"localhost", "localhost"},
		{"", ""},
		{"a.b", "b.a"},
	}
	for _, c := range cases {
		if got := ReverseDomain(c.in); got != c.want {
			t.Errorf("ReverseDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDomainIDOrdering(t *testing.T) {
	// Nodes of the same country/institution must be contiguous on the ring:
	// IDs sort by reversed domain first.
	ch1 := DomainID("inf.ethz.ch", 1)
	ch2 := DomainID("inf.ethz.ch", 99999)
	nl := DomainID("few.vu.nl", 5)
	if !(ch1 < ch2) {
		t.Errorf("same-domain IDs must order by disambiguator: %v !< %v", ch1, ch2)
	}
	if !(ch1 < nl && ch2 < nl) {
		t.Errorf("ch.* domains must precede nl.*: %v %v vs %v", ch1, ch2, nl)
	}
}

func TestDomainIDNeverNil(t *testing.T) {
	if DomainID("", 0).IsNil() {
		t.Error("DomainID produced nil sentinel")
	}
}

func TestDomainOfRoundTrip(t *testing.T) {
	id := DomainID("few.vu.nl", 123)
	if got := DomainOf(id); got != "nl.vu" {
		t.Errorf("DomainOf = %q, want %q (5-byte prefix of nl.vu.few)", got, "nl.vu")
	}
}

func TestStringFixedWidth(t *testing.T) {
	if s := ID(1).String(); len(s) != 16 {
		t.Errorf("String length = %d, want 16", len(s))
	}
}
