package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func aliveAll(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestRingProperties(t *testing.T) {
	g := Ring(12)
	if !g.StronglyConnected(nil) {
		t.Fatal("ring not strongly connected")
	}
	for _, d := range g.OutDegrees() {
		if d != 2 {
			t.Fatalf("ring out-degree = %d, want 2", d)
		}
	}
}

func TestRingTiny(t *testing.T) {
	if g := Ring(1); len(g.Out(0)) != 0 {
		t.Fatal("1-ring should have no links")
	}
	g := Ring(2)
	// two nodes: both directions collapse onto the same neighbour
	if !g.StronglyConnected(nil) {
		t.Fatal("2-ring must be strongly connected")
	}
}

func TestStarProperties(t *testing.T) {
	g := Star(10)
	if !g.StronglyConnected(nil) {
		t.Fatal("star not strongly connected")
	}
	// Server failure disconnects everything (paper: single point of failure).
	alive := aliveAll(10)
	alive[0] = false
	if g.SCCCount(alive) != 9 {
		t.Fatalf("star without server: SCCs = %d, want 9 isolated", g.SCCCount(alive))
	}
	// Leaf failure is harmless.
	alive = aliveAll(10)
	alive[5] = false
	if !g.StronglyConnected(alive) {
		t.Fatal("star with one leaf dead must stay connected")
	}
}

func TestTreeProperties(t *testing.T) {
	g, err := Tree(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.StronglyConnected(nil) {
		t.Fatal("tree not strongly connected")
	}
	// Total directed edges = 2(n-1): message-overhead optimality.
	total := 0
	for _, d := range g.OutDegrees() {
		total += d
	}
	if total != 2*14 {
		t.Fatalf("tree edges = %d, want 28", total)
	}
	// Internal node failure disconnects its subtree.
	alive := aliveAll(15)
	alive[1] = false
	if g.StronglyConnected(alive) {
		t.Fatal("tree with internal node dead must disconnect")
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := Tree(5, 0); err == nil {
		t.Fatal("accepted zero arity")
	}
}

func TestCliqueMaxReliability(t *testing.T) {
	g := Clique(8)
	// Kill any 6 of 8: remaining 2 still connected.
	alive := aliveAll(8)
	for i := 1; i < 7; i++ {
		alive[i] = false
	}
	if !g.StronglyConnected(alive) {
		t.Fatal("clique survivors must stay connected")
	}
	for _, d := range g.OutDegrees() {
		if d != 7 {
			t.Fatalf("clique out-degree = %d, want 7", d)
		}
	}
}

func TestHararyValidation(t *testing.T) {
	if _, err := Harary(1, 10); err == nil {
		t.Error("accepted t < 2")
	}
	if _, err := Harary(10, 10); err == nil {
		t.Error("accepted t >= n")
	}
	if _, err := Harary(3, 9); err == nil {
		t.Error("accepted odd t with odd n")
	}
}

func TestHararyDegreeMinimality(t *testing.T) {
	// H(t, n) has degree exactly t for even t, and for odd t with even n:
	// minimal for connectivity t.
	for _, tc := range []struct{ t, n, wantDeg int }{
		{2, 11, 2}, {4, 12, 4}, {3, 12, 3}, {6, 20, 6},
	} {
		g, err := Harary(tc.t, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range g.OutDegrees() {
			if d != tc.wantDeg {
				t.Fatalf("H(%d,%d) node %d degree = %d, want %d", tc.t, tc.n, i, d, tc.wantDeg)
			}
		}
	}
}

// The defining Harary property: H(t, n) survives any t-1 node failures.
func TestHararySurvivesFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, conn := range []int{2, 3, 4, 5} {
		n := 24
		g, err := Harary(conn, n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			alive := aliveAll(n)
			killed := 0
			for killed < conn-1 {
				k := rng.Intn(n)
				if alive[k] {
					alive[k] = false
					killed++
				}
			}
			if !g.StronglyConnected(alive) {
				t.Fatalf("H(%d,%d) disconnected after %d failures", conn, n, conn-1)
			}
		}
	}
}

// And the sharpness: connectivity-2 ring splits under the right 2 failures.
func TestHararySharpness(t *testing.T) {
	g, err := Harary(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	alive := aliveAll(10)
	alive[0], alive[5] = false, false
	if g.StronglyConnected(alive) {
		t.Fatal("H(2,10) should split after two opposite failures")
	}
}

func TestKRingsResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	g2, err := KRings(2, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.StronglyConnected(nil) {
		t.Fatal("2-ring overlay not strongly connected")
	}
	// Each node's degree should be >= 2 (ring 0) and typically 4.
	for _, d := range g2.OutDegrees() {
		if d < 2 {
			t.Fatalf("k-rings degree = %d, want >= 2", d)
		}
	}
	// With 2 independent rings, two random failures almost never partition.
	fails := 0
	for trial := 0; trial < 100; trial++ {
		alive := aliveAll(n)
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		alive[a], alive[b] = false, false
		if !g2.StronglyConnected(alive) {
			fails++
		}
	}
	if fails > 0 {
		t.Fatalf("2-ring overlay partitioned in %d/100 double-failure trials", fails)
	}
}

func TestKRingsValidation(t *testing.T) {
	if _, err := KRings(0, 5, nil); err == nil {
		t.Error("accepted k < 1")
	}
	if _, err := KRings(2, 5, nil); err == nil {
		t.Error("accepted nil rng with k > 1")
	}
	if g, err := KRings(1, 1, nil); err != nil || g.N() != 1 {
		t.Error("single-node single ring should be fine")
	}
}

func TestRandomOutDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomOutDegree(50, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u, d := range g.OutDegrees() {
		if d != 8 {
			t.Fatalf("node %d out-degree = %d, want 8", u, d)
		}
		seen := map[int]bool{u: true}
		for _, v := range g.Out(u) {
			if seen[v] {
				t.Fatalf("node %d has duplicate/self link to %d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestRandomOutDegreeClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomOutDegree(4, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g.OutDegrees() {
		if d != 3 {
			t.Fatalf("clamped out-degree = %d, want 3", d)
		}
	}
	if _, err := RandomOutDegree(4, -1, rng); err == nil {
		t.Error("accepted negative out-degree")
	}
	if _, err := RandomOutDegree(4, 2, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

// Property: Harary graphs of even connectivity are strongly connected for
// arbitrary valid (t, n).
func TestHararyConnectedProperty(t *testing.T) {
	f := func(tRaw, nRaw uint8) bool {
		tt := int(tRaw%4)*2 + 2 // 2,4,6,8
		n := int(nRaw%40) + tt + 1
		g, err := Harary(tt, n)
		if err != nil {
			return false
		}
		return g.StronglyConnected(nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
