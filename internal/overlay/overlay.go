// Package overlay builds the static dissemination overlays discussed in
// Section 3 of the paper (deterministic dissemination by flooding): rings,
// stars, trees, cliques, and Harary graphs, plus the multi-ring extension
// of Section 8 and random graphs used as an idealized peer-sampling
// snapshot.
//
// All builders return a graph.Directed whose node indices are positions in
// the caller-supplied ordering.
package overlay

import (
	"fmt"
	"math/rand"

	"ringcast/internal/graph"
)

// Ring returns a bidirectional ring over n nodes: the Harary graph of
// connectivity 2, the structure RINGCAST maintains with its d-links.
func Ring(n int) *graph.Directed {
	g := graph.NewDirected(n)
	if n < 2 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		g.AddEdge(i, (i-1+n)%n)
	}
	return g
}

// Star returns a server-based overlay: node 0 is the relay with
// bidirectional links to every other node (paper §3: worst possible load
// distribution, single point of failure).
func Star(n int) *graph.Directed {
	g := graph.NewDirected(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
		g.AddEdge(i, 0)
	}
	return g
}

// Tree returns a balanced k-ary tree with bidirectional links, rooted at
// node 0. Trees are optimal in message overhead (N-1 point-to-point sends)
// but any non-leaf failure disconnects a branch (paper §3).
func Tree(n, arity int) (*graph.Directed, error) {
	if arity < 1 {
		return nil, fmt.Errorf("overlay: tree arity must be >= 1, got %d", arity)
	}
	g := graph.NewDirected(n)
	for i := 1; i < n; i++ {
		parent := (i - 1) / arity
		g.AddEdge(parent, i)
		g.AddEdge(i, parent)
	}
	return g, nil
}

// Clique returns the complete graph: maximum reliability, impractical
// maintenance (paper §3).
func Clique(n int) *graph.Directed {
	g := graph.NewDirected(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Harary returns the Harary graph H(t, n): the minimal-link graph over n
// nodes that remains connected when up to t-1 nodes or links fail (Harary
// 1962; applied to flooding by Lin et al., see paper §3). Construction is
// the classic circulant one:
//
//   - t = 2k:   connect every node to its k nearest neighbours on each side;
//   - t = 2k+1: additionally connect each node to the diametrically opposite
//     node (requires even n).
//
// Links are emitted in both directions, matching the bidirectional links of
// the paper's discussion.
func Harary(t, n int) (*graph.Directed, error) {
	if t < 2 {
		return nil, fmt.Errorf("overlay: Harary connectivity must be >= 2, got %d", t)
	}
	if t >= n {
		return nil, fmt.Errorf("overlay: Harary requires t < n, got t=%d n=%d", t, n)
	}
	if t%2 == 1 && n%2 == 1 {
		return nil, fmt.Errorf("overlay: odd-connectivity Harary graph requires even n, got n=%d", n)
	}
	g := graph.NewDirected(n)
	k := t / 2
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			g.AddEdge(i, (i+d)%n)
			g.AddEdge(i, (i-d+n)%n)
		}
	}
	if t%2 == 1 {
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+n/2)%n)
		}
	}
	return g, nil
}

// KRings returns the union of k independent bidirectional rings over n
// nodes, each under an independent random permutation — the Section 8
// extension ("organize nodes in multiple rings, assigning them a different
// random ID per ring"). The minimal cut grows with k, improving resilience
// at the cost of more gossip traffic. Ring 0 uses the identity permutation
// so that single-ring behaviour is a special case.
func KRings(k, n int, rng *rand.Rand) (*graph.Directed, error) {
	if k < 1 {
		return nil, fmt.Errorf("overlay: ring count must be >= 1, got %d", k)
	}
	if rng == nil && k > 1 {
		return nil, fmt.Errorf("overlay: rng required for k > 1")
	}
	g := graph.NewDirected(n)
	if n < 2 {
		return g, nil
	}
	for r := 0; r < k; r++ {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		if r > 0 {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		for i := 0; i < n; i++ {
			u, v := perm[i], perm[(i+1)%n]
			g.AddEdge(u, v)
			g.AddEdge(v, u)
		}
	}
	return g, nil
}

// RandomOutDegree returns a directed graph in which every node has exactly
// min(outDeg, n-1) distinct random out-links — an idealized snapshot of a
// converged peer-sampling view, useful for isolating protocol behaviour
// from gossip convergence in tests and ablations.
func RandomOutDegree(n, outDeg int, rng *rand.Rand) (*graph.Directed, error) {
	if rng == nil {
		return nil, fmt.Errorf("overlay: rng must not be nil")
	}
	if outDeg < 0 {
		return nil, fmt.Errorf("overlay: out-degree must be >= 0, got %d", outDeg)
	}
	g := graph.NewDirected(n)
	if outDeg > n-1 {
		outDeg = n - 1
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for u := 0; u < n; u++ {
		// Partial shuffle of candidate targets, skipping self.
		for i := 0; i < outDeg; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		taken := 0
		for i := 0; i < n && taken < outDeg; i++ {
			if perm[i] == u {
				continue
			}
			g.AddEdge(u, perm[i])
			taken++
		}
	}
	return g, nil
}
