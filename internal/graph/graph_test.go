package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int) *Directed {
	g := NewDirected(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		g.AddEdge(i, (i-1+n)%n)
	}
	return g
}

func TestStronglyConnectedRing(t *testing.T) {
	g := ring(10)
	if !g.StronglyConnected(nil) {
		t.Fatal("bidirectional ring must be strongly connected")
	}
}

func TestDirectedCycleIsStronglyConnected(t *testing.T) {
	g := NewDirected(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	if !g.StronglyConnected(nil) {
		t.Fatal("directed cycle must be strongly connected")
	}
}

func TestChainIsNotStronglyConnected(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.StronglyConnected(nil) {
		t.Fatal("chain reported strongly connected")
	}
	if got := g.SCCCount(nil); got != 4 {
		t.Fatalf("SCCCount = %d, want 4", got)
	}
}

func TestSCCCountMixed(t *testing.T) {
	// Two 2-cycles joined by a one-way edge: 2 SCCs.
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(1, 2)
	if got := g.SCCCount(nil); got != 2 {
		t.Fatalf("SCCCount = %d, want 2", got)
	}
}

func TestRingSurvivesSingleFailureNotDouble(t *testing.T) {
	// Bidirectional ring = Harary graph of connectivity 2 (paper §5.1):
	// one failure keeps the rest connected; two non-adjacent failures split it.
	g := ring(10)
	alive := make([]bool, 10)
	for i := range alive {
		alive[i] = true
	}
	alive[3] = false
	if !g.StronglyConnected(alive) {
		t.Fatal("ring with one failure must stay connected")
	}
	alive[7] = false // non-adjacent to 3
	if g.StronglyConnected(alive) {
		t.Fatal("ring with two non-adjacent failures must partition")
	}
	if got := g.WeaklyConnectedComponents(alive); got != 2 {
		t.Fatalf("partitions = %d, want 2", got)
	}
}

func TestReachableFrom(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	seen := g.ReachableFrom(0, nil)
	want := []bool{true, true, true, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
	if got := g.CountReachable(0, nil); got != 3 {
		t.Fatalf("CountReachable = %d, want 3", got)
	}
}

func TestReachableFromDeadOrInvalidSource(t *testing.T) {
	g := ring(4)
	alive := []bool{false, true, true, true}
	if got := g.CountReachable(0, alive); got != 0 {
		t.Fatalf("reachable from dead source = %d, want 0", got)
	}
	if got := g.CountReachable(-1, nil); got != 0 {
		t.Fatalf("reachable from invalid source = %d, want 0", got)
	}
}

func TestReachabilitySkipsDeadNodes(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	alive := []bool{true, false, true}
	if got := g.CountReachable(0, alive); got != 1 {
		t.Fatalf("reachable through dead relay = %d, want 1", got)
	}
}

func TestDegrees(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	out := g.OutDegrees()
	in := g.InDegrees()
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("out = %v", out)
	}
	if in[0] != 0 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("in = %v", in)
	}
}

func TestAddEdgeIgnoresOutOfRange(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(-1, 0)
	g.AddEdge(0, 5)
	if len(g.Out(0)) != 0 {
		t.Fatal("out-of-range edge was added")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !NewDirected(0).StronglyConnected(nil) {
		t.Error("empty graph should count as strongly connected")
	}
	if !NewDirected(1).StronglyConnected(nil) {
		t.Error("singleton should be strongly connected")
	}
	if NewDirected(-5).N() != 0 {
		t.Error("negative size not clamped")
	}
}

// Property: for random graphs, SCCCount is consistent with pairwise
// reachability checked by brute force.
func TestSCCConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		g := NewDirected(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		strong := g.StronglyConnected(nil)
		// brute force: strongly connected iff node 0 reaches all and all reach 0
		bruteStrong := true
		for u := 0; u < n && bruteStrong; u++ {
			seen := g.ReachableFrom(u, nil)
			for v := 0; v < n; v++ {
				if !seen[v] {
					bruteStrong = false
					break
				}
			}
		}
		return strong == bruteStrong
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
