// Package graph provides directed-graph algorithms used to analyse
// dissemination overlays: strong connectivity (the requirement for
// deterministic complete dissemination, paper Section 3), reachability,
// degree statistics, and partition counting after failures.
//
// Every algorithm is a pure, deterministic function of its input graph —
// no randomness, no iteration-order dependence — so analyses are safe to
// run from parallel experiment workers without perturbing results.
package graph

// Directed is a directed graph over nodes 0..N-1 in adjacency-list form.
type Directed struct {
	adj [][]int
}

// NewDirected returns an empty directed graph with n nodes.
func NewDirected(n int) *Directed {
	if n < 0 {
		n = 0
	}
	return &Directed{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Directed) N() int { return len(g.adj) }

// AddEdge adds the directed edge u -> v. Out-of-range endpoints are ignored
// so that callers can translate sparse overlays without pre-filtering.
func (g *Directed) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return
	}
	g.adj[u] = append(g.adj[u], v)
}

// Out returns the out-neighbours of u. The returned slice is internal
// storage; callers must not mutate it.
func (g *Directed) Out(u int) []int { return g.adj[u] }

// OutDegrees returns the out-degree of every node.
func (g *Directed) OutDegrees() []int {
	out := make([]int, len(g.adj))
	for u := range g.adj {
		out[u] = len(g.adj[u])
	}
	return out
}

// InDegrees returns the in-degree of every node.
func (g *Directed) InDegrees() []int {
	in := make([]int, len(g.adj))
	for u := range g.adj {
		for _, v := range g.adj[u] {
			in[v]++
		}
	}
	return in
}

// ReachableFrom returns the set of nodes reachable from src (including src)
// as a boolean slice, considering only nodes for which alive is true. A nil
// alive slice treats every node as alive. If src is dead or out of range the
// result is all-false.
func (g *Directed) ReachableFrom(src int, alive []bool) []bool {
	seen := make([]bool, len(g.adj))
	if src < 0 || src >= len(g.adj) {
		return seen
	}
	isAlive := func(u int) bool { return alive == nil || alive[u] }
	if !isAlive(src) {
		return seen
	}
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] && isAlive(v) {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CountReachable returns how many alive nodes are reachable from src.
func (g *Directed) CountReachable(src int, alive []bool) int {
	seen := g.ReachableFrom(src, alive)
	n := 0
	for _, s := range seen {
		if s {
			n++
		}
	}
	return n
}

// StronglyConnected reports whether the graph restricted to alive nodes is
// strongly connected (a directed path exists between every ordered pair of
// alive nodes). An empty or single-node graph is strongly connected.
func (g *Directed) StronglyConnected(alive []bool) bool {
	return g.SCCCount(alive) <= 1
}

// SCCCount returns the number of strongly connected components among alive
// nodes, using Tarjan's algorithm (iterative, safe for large graphs).
func (g *Directed) SCCCount(alive []bool) int {
	n := len(g.adj)
	isAlive := func(u int) bool { return alive == nil || alive[u] }

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		sccs    int
		stack   []int
	)

	type frame struct {
		u    int
		next int // index into adj[u] of next edge to explore
	}

	for root := 0; root < n; root++ {
		if !isAlive(root) || index[root] != unvisited {
			continue
		}
		work := []frame{{u: root}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			u := f.u
			advanced := false
			for f.next < len(g.adj[u]) {
				v := g.adj[u][f.next]
				f.next++
				if !isAlive(v) {
					continue
				}
				if index[v] == unvisited {
					index[v], low[v] = counter, counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					work = append(work, frame{u: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			// u is finished.
			if low[u] == index[u] {
				sccs++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					if w == u {
						break
					}
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].u
				if low[u] < low[parent] {
					low[parent] = low[u]
				}
			}
		}
	}
	return sccs
}

// WeaklyConnectedComponents returns the number of weakly connected
// components among alive nodes (edges treated as undirected). Useful for
// counting ring partitions after failures (paper, Section 5.1).
func (g *Directed) WeaklyConnectedComponents(alive []bool) int {
	n := len(g.adj)
	isAlive := func(u int) bool { return alive == nil || alive[u] }
	und := make([][]int, n)
	for u := range g.adj {
		if !isAlive(u) {
			continue
		}
		for _, v := range g.adj[u] {
			if !isAlive(v) {
				continue
			}
			und[u] = append(und[u], v)
			und[v] = append(und[v], u)
		}
	}
	seen := make([]bool, n)
	comps := 0
	for s := 0; s < n; s++ {
		if !isAlive(s) || seen[s] {
			continue
		}
		comps++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range und[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return comps
}
