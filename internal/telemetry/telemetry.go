// Package telemetry exposes a live node's counters — node.Stats,
// transport.Stats, pub/sub and config-engine state — as a Prometheus
// text-format /metrics HTTP endpoint, the observability half of the
// hot-reconfiguration engine: re-tuning the paper's parameters (fanout F,
// the gossip period T of Section 6) is only useful when the effect is
// visible in scraped series. Rendering is deterministic for a fixed set of
// samples: families sort by name and series by their label signature, so
// two scrapes of identical state are byte-identical. The package itself
// samples no randomness; timestamps are the scraper's business.
package telemetry

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one metric observation: a family name, an optional label set
// and a value.
type Sample struct {
	// Name is the metric family, e.g. "ringcast_node_published_total".
	Name string
	// Labels attach dimensions ({topic="alpha"}); may be nil.
	Labels map[string]string
	// Value is the observation. Counters are cumulative; gauges are levels.
	Value float64
}

// Counter and Gauge are the metric types Describe accepts.
const (
	// Counter marks a cumulative, monotonically increasing family.
	Counter = "counter"
	// Gauge marks a family whose value can go up and down.
	Gauge = "gauge"
)

// Registry gathers samples from registered collectors and renders them in
// the Prometheus text exposition format. All methods are safe for
// concurrent use.
type Registry struct {
	mu         sync.Mutex
	descs      map[string]desc
	collectors []func() []Sample
}

type desc struct {
	typ  string
	help string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{descs: make(map[string]desc)}
}

// Describe records TYPE and HELP metadata for a metric family. Optional:
// undescribed families render without header comments.
func (r *Registry) Describe(name, typ, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.descs[name] = desc{typ: typ, help: help}
}

// Collect registers a sample source, called on every render. Collectors
// must be fast and non-blocking — they run while a scrape request waits.
func (r *Registry) Collect(fn func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Render gathers every collector and returns the Prometheus text
// exposition: families sorted by name, series within a family sorted by
// label signature, HELP/TYPE comments for described families.
func (r *Registry) Render() string {
	r.mu.Lock()
	collectors := append([]func() []Sample(nil), r.collectors...)
	descs := make(map[string]desc, len(r.descs))
	for k, v := range r.descs {
		descs[k] = v
	}
	r.mu.Unlock()

	byName := make(map[string][]Sample)
	for _, fn := range collectors {
		for _, s := range fn() {
			byName[s.Name] = append(byName[s.Name], s)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		if d, ok := descs[name]; ok {
			if d.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(d.help))
			}
			if d.typ != "" {
				fmt.Fprintf(&b, "# TYPE %s %s\n", name, d.typ)
			}
		}
		series := byName[name]
		lines := make([]string, 0, len(series))
		for _, s := range series {
			lines = append(lines, name+labelString(s.Labels)+" "+
				strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
		sort.Strings(lines)
		for _, line := range lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// labelString renders a label set as {k="v",...} with sorted keys, or ""
// for an empty set.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Handler returns an http.Handler serving the rendered registry at any
// path, with the text-exposition content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		body := r.Render()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(body))
	})
}

// Server is a minimal HTTP server bound to one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
	// serveErr is written by the serve goroutine before it closes done;
	// Close reads it only after receiving from done, so the channel close
	// orders the accesses.
	serveErr error
	done     chan struct{}
	once     sync.Once
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0") answering every
// request — conventionally scraped at /metrics — from the registry.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		s.serveErr = srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the bound listen address, for the ready line and scrapers.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		<-s.done
		if err == nil && s.serveErr != nil && !errors.Is(s.serveErr, http.ErrServerClosed) {
			err = s.serveErr
		}
	})
	return err
}
