package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestRenderSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Describe("zeta_total", Counter, "last family\nwith newline")
	r.Describe("alpha_total", Counter, "first family")
	r.Collect(func() []Sample {
		return []Sample{
			{Name: "zeta_total", Value: 3},
			{Name: "alpha_total", Labels: map[string]string{"topic": "beta"}, Value: 2},
			{Name: "alpha_total", Labels: map[string]string{"topic": `a"b\c`}, Value: 1},
		}
	})
	out := r.Render()
	if !strings.Contains(out, "# HELP alpha_total first family\n# TYPE alpha_total counter\n") {
		t.Fatalf("missing alpha header:\n%s", out)
	}
	if !strings.Contains(out, `alpha_total{topic="a\"b\\c"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "# HELP zeta_total last family\\nwith newline\n") {
		t.Fatalf("help escaping wrong:\n%s", out)
	}
	if strings.Index(out, "alpha_total") > strings.Index(out, "zeta_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Series within a family sort by label signature.
	esc := strings.Index(out, `topic="a\"b\\c"`)
	beta := strings.Index(out, `topic="beta"`)
	if esc < 0 || beta < 0 || esc > beta {
		t.Fatalf("series not sorted:\n%s", out)
	}
	// Deterministic: a second render of identical state is byte-identical.
	if out2 := r.Render(); out2 != out {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", out, out2)
	}
}

func TestRenderMultipleCollectors(t *testing.T) {
	r := NewRegistry()
	r.Collect(func() []Sample { return []Sample{{Name: "a_total", Value: 1}} })
	r.Collect(func() []Sample { return []Sample{{Name: "b_total", Value: 2}} })
	out := r.Render()
	if !strings.Contains(out, "a_total 1\n") || !strings.Contains(out, "b_total 2\n") {
		t.Fatalf("collector output missing:\n%s", out)
	}
}

func TestServeAndScrape(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	published := 0
	r.Describe("ringcast_node_published_total", Counter, "messages published")
	r.Collect(func() []Sample {
		mu.Lock()
		defer mu.Unlock()
		return []Sample{{Name: "ringcast_node_published_total", Value: float64(published)}}
	})
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() string {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := scrape(); !strings.Contains(out, "ringcast_node_published_total 0\n") {
		t.Fatalf("scrape missing series:\n%s", out)
	}
	mu.Lock()
	published = 7
	mu.Unlock()
	if out := scrape(); !strings.Contains(out, "ringcast_node_published_total 7\n") {
		t.Fatalf("scrape did not reflect live state:\n%s", out)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv.Close() // idempotent
}
