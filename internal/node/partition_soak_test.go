package node_test

// Live partition soak: the promotion of the examples/partition 16-node
// cluster demo into a proper integration test, so a regression fails CI
// with a test name and an assertion message instead of a demo timeout.
// It drives a full in-process cluster over fault-injecting transports
// through a partition/heal timeline and asserts the three contracts the
// demo only printed: complete delivery when healthy, exact confinement to
// the origin's arc under a two-way split (with the injected drops visible
// through the transport.Stats plumbing), and complete delivery again after
// the heal.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/node"
	"ringcast/internal/scenario"
	"ringcast/internal/transport"
)

const soakClusterSize = 16

// soakCluster is the 16-node in-process cluster under scenario control.
type soakCluster struct {
	nodes     []*node.Node
	members   []scenario.Member
	injectors []*transport.FaultInjector
	mu        sync.Mutex
	delivered map[string]int
}

// startSoakCluster boots the cluster over an in-memory fabric with
// fault-injecting transports, joins everyone through node 0, starts
// gossip, and waits for the ring to form.
func startSoakCluster(t *testing.T) *soakCluster {
	t.Helper()
	fabric := transport.NewInMemNetwork()
	c := &soakCluster{delivered: make(map[string]int)}
	for i := 0; i < soakClusterSize; i++ {
		ep, err := fabric.Endpoint(fmt.Sprintf("node-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		fi := transport.WrapFaults(ep, int64(i+1))
		cfg := node.DefaultConfig()
		cfg.GossipInterval = 10 * time.Millisecond
		cfg.Seed = int64(i + 1)
		nd, err := node.New(cfg, fi, func(d node.Delivery) {
			c.mu.Lock()
			c.delivered[string(d.Msg.Body)]++
			c.mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, nd)
		c.injectors = append(c.injectors, fi)
		c.members = append(c.members, scenario.Member{Addr: nd.Addr(), ID: nd.ID(), Faults: fi})
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Close()
		}
	})
	for _, nd := range c.nodes[1:] {
		if err := nd.Join(c.nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range c.nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.waitForRing(10 * time.Second) {
		t.Fatal("ring did not converge within 10s")
	}
	return c
}

// count returns how many nodes delivered the given message body.
func (c *soakCluster) count(body string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered[body]
}

// publishAndSettle publishes body from node 0 and waits until the
// delivery count has been stable for settle (or deadline passes), so
// confinement assertions do not race in-flight copies.
func (c *soakCluster) publishAndSettle(t *testing.T, body string, deadline, settle time.Duration) int {
	t.Helper()
	if _, err := c.nodes[0].Publish([]byte(body)); err != nil {
		t.Fatalf("publish %q: %v", body, err)
	}
	until := time.Now().Add(deadline)
	last, lastChange := c.count(body), time.Now()
	for time.Now().Before(until) {
		if n := c.count(body); n != last {
			last, lastChange = n, time.Now()
		} else if last == soakClusterSize || time.Since(lastChange) > settle {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c.count(body)
}

// waitForRing blocks until every node's pred/succ links match the global
// sorted ring or the deadline passes.
func (c *soakCluster) waitForRing(limit time.Duration) bool {
	ids := make([]ident.ID, len(c.nodes))
	for i, nd := range c.nodes {
		ids[i] = nd.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pos := make(map[ident.ID]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		converged := true
		for _, nd := range c.nodes {
			pred, succ, ok := nd.RingNeighbors()
			i := pos[nd.ID()]
			if !ok ||
				succ.Node != ids[(i+1)%len(ids)] ||
				pred.Node != ids[(i-1+len(ids))%len(ids)] {
				converged = false
				break
			}
		}
		if converged {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestLivePartitionSoak asserts delivery, confinement, drop accounting and
// heal on the live 16-node cluster.
func TestLivePartitionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak is not -short")
	}
	c := startSoakCluster(t)

	// Healthy: everyone delivers.
	if got := c.publishAndSettle(t, "healthy", 5*time.Second, 300*time.Millisecond); got != soakClusterSize {
		t.Fatalf("healthy publish reached %d/%d", got, soakClusterSize)
	}

	// Split into two ring arcs; node 0's arc holds exactly half the
	// cluster (16 mod 2 == 0, arcs are contiguous in sorted-ID order).
	drv, err := scenario.NewDriver(scenario.Scenario{
		Name:   "live-split",
		Events: []scenario.Event{scenario.Partition(0, 2), scenario.Heal(1)},
	}, c.members)
	if err != nil {
		t.Fatal(err)
	}
	drv.Advance(0)
	got := c.publishAndSettle(t, "under-partition", 3*time.Second, 400*time.Millisecond)
	if want := soakClusterSize / 2; got != want {
		t.Errorf("partitioned publish reached %d nodes, want exact arc confinement of %d", got, want)
	}

	// The black-holed frames must be visible through the transport.Stats
	// plumbing: the injector counts them as drops, per member and in sum.
	var injected, statsDrops int64
	for _, fi := range c.injectors {
		injected += fi.InjectedDrops()
		statsDrops += fi.Stats().Drops
	}
	if injected == 0 {
		t.Error("partition produced zero injected drops")
	}
	if statsDrops < injected {
		t.Errorf("Stats().Drops %d does not account for %d injected drops", statsDrops, injected)
	}

	// Heal, let the ring re-form, and verify delivery is complete again.
	drv.Advance(1)
	if !c.waitForRing(10 * time.Second) {
		t.Fatal("ring did not re-form after heal")
	}
	if got := c.publishAndSettle(t, "after-heal", 8*time.Second, 300*time.Millisecond); got != soakClusterSize {
		t.Fatalf("healed publish reached %d/%d", got, soakClusterSize)
	}
}
