// Package node is the live, asynchronous RingCast runtime: the deployable
// counterpart of the cycle-driven simulator. Each Node runs the CYCLON and
// VICINITY state machines behind a mutex, gossips on an independent periodic
// timer (the protocol "cycle" of Section 6), and disseminates application
// messages with the configured selection policy (RINGCAST by default).
//
// A Node is wired to a transport.Transport; everything else — peer
// discovery, ring construction, dissemination, failure healing — is
// emergent from the gossip protocols, exactly as in the paper.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/transport"
	"ringcast/internal/vicinity"
	"ringcast/internal/view"
	"ringcast/internal/wire"
)

// Config parameterizes a live node.
type Config struct {
	// ID is the node's ring sequence ID; 0 draws a random one from Seed.
	ID ident.ID
	// Fanout is the dissemination fanout F.
	Fanout int
	// Selector is the dissemination policy; nil defaults to core.RingCast.
	Selector core.Selector
	// Cyclon and Vicinity carry the gossip-layer parameters; zero values
	// default to the paper's settings.
	Cyclon   cyclon.Config
	Vicinity vicinity.Config
	// GossipInterval is the cycle length T (10s in the paper's churn
	// discussion; tests use milliseconds).
	GossipInterval time.Duration
	// DedupCapacity bounds the duplicate-suppression cache.
	DedupCapacity int
	// Seed drives the node's private randomness; 0 derives one from the ID.
	Seed int64
	// Epoch is the node's incarnation number, stamped into every published
	// MsgID. A supervisor that restarts a node under the same seed (and
	// therefore the same ring identity) must supply a fresh epoch, or the
	// relaunched pubSeq counter reproduces pre-crash MsgIDs and remote dedup
	// caches silently swallow every post-restart publish. 0 is the first
	// incarnation and encodes exactly as the pre-epoch wire format.
	Epoch uint32
}

// DefaultConfig returns the paper's protocol parameters with a 10-second
// gossip cycle.
func DefaultConfig() Config {
	return Config{
		Fanout:         3,
		Selector:       core.RingCast{},
		Cyclon:         cyclon.DefaultConfig(),
		Vicinity:       vicinity.DefaultConfig(),
		GossipInterval: 10 * time.Second,
		DedupCapacity:  4096,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Fanout == 0 {
		c.Fanout = d.Fanout
	}
	if c.Selector == nil {
		c.Selector = d.Selector
	}
	if c.Cyclon.ViewSize == 0 {
		c.Cyclon = d.Cyclon
	}
	if c.Vicinity.ViewSize == 0 {
		c.Vicinity = d.Vicinity
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = d.GossipInterval
	}
	if c.DedupCapacity == 0 {
		c.DedupCapacity = d.DedupCapacity
	}
}

// Delivery is an application message handed to the delivery callback.
type Delivery struct {
	// Msg is the disseminated message.
	Msg wire.Message
	// From is the node the message arrived from (Nil for local publishes).
	From ident.ID
}

// DeliverFunc consumes delivered messages. It is called from the node's
// receive path and must not block for long.
type DeliverFunc func(Delivery)

// Stats is a snapshot of a node's counters.
type Stats struct {
	Published    uint64 // messages originated locally
	Delivered    uint64 // first-time receptions handed to the application
	Duplicates   uint64 // receptions suppressed by the dedup cache
	Forwarded    uint64 // gossip messages sent onward
	SendErrors   uint64 // transport failures (evidence of dead peers)
	QueueFull    uint64 // forwards refused by local backpressure (peer NOT evicted)
	Shuffles     uint64 // CYCLON exchanges initiated
	VicExchanges uint64 // VICINITY exchanges initiated
}

// Node is a live protocol participant. Create with New, wire with Start,
// stop with Close.
type Node struct {
	cfg Config
	id  ident.ID
	tr  transport.Transport

	deliver DeliverFunc

	mu      sync.Mutex
	cyc     *cyclon.Cyclon
	vic     *vicinity.Vicinity
	rng     *rand.Rand
	seen    *dedupCache
	pending map[uint64]cyclon.Shuffle
	seq     uint64
	pubSeq  uint64
	stats   Stats
	started bool
	closed  bool

	// Staged re-tunes, applied under mu at the next cycle boundary
	// (gossipOnce) so a change arriving mid-cycle cannot alter the fanout or
	// view sizes of an exchange already in flight. 0 = nothing staged.
	nextFanout  int
	nextCycView int
	nextVicView int

	rearm chan struct{} // buffered(1): GossipInterval changed, restart the timer
	done  chan struct{}
	wg    sync.WaitGroup
}

// New creates a node bound to the transport. The transport's handler is
// installed immediately; gossip timers start with Start.
func New(cfg Config, tr transport.Transport, deliver DeliverFunc) (*Node, error) {
	if tr == nil {
		return nil, errors.New("node: transport must not be nil")
	}
	cfg.fillDefaults()
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("node: fanout must be >= 1, got %d", cfg.Fanout)
	}
	id := cfg.ID
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(id) ^ time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	if id.IsNil() {
		for id.IsNil() {
			id = ident.ID(rng.Uint64())
		}
	}
	cyc, err := cyclon.New(id, tr.Addr(), cfg.Cyclon)
	if err != nil {
		return nil, err
	}
	vic, err := vicinity.New(id, tr.Addr(), cfg.Vicinity, vicinity.RingDistance)
	if err != nil {
		return nil, err
	}
	if deliver == nil {
		deliver = func(Delivery) {}
	}
	n := &Node{
		cfg:     cfg,
		id:      id,
		tr:      tr,
		deliver: deliver,
		cyc:     cyc,
		vic:     vic,
		rng:     rng,
		seen:    newDedupCache(cfg.DedupCapacity),
		pending: make(map[uint64]cyclon.Shuffle),
		rearm:   make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	tr.SetHandler(n.handle)
	return n, nil
}

// ID returns the node's ring identifier.
func (n *Node) ID() ident.ID { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.tr.Addr() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// TransportStats returns the underlying transport's counters: outbound
// queue depth, drops, dial failures, frames/bytes sent.
func (n *Node) TransportStats() transport.Stats { return n.tr.Stats() }

// Join introduces the node to an existing overlay member. It sends a Hello
// and can be called any time, including before Start.
//
// Transports send asynchronously, so a nil return means the Hello was
// accepted for delivery, not that the peer answered: an unreachable
// bootstrap surfaces as an error on a subsequent Join to the same address
// (the transport parks the dial failure for the next send). Callers that
// must confirm the join should retry Join until the view is non-empty —
// see cmd/ringcast-node.
func (n *Node) Join(addr string) error {
	f := &wire.Frame{Kind: wire.KindHello, From: n.id, FromAddr: n.tr.Addr()}
	if err := n.tr.Send(addr, f); err != nil {
		return fmt.Errorf("node: join %s: %w", addr, err)
	}
	return nil
}

// Start launches the periodic gossip loop. It is an error to start twice or
// after Close.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("node: closed")
	}
	if n.started {
		return errors.New("node: already started")
	}
	n.started = true
	n.wg.Add(1)
	go n.gossipLoop()
	return nil
}

// Close stops gossiping and closes the transport.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	return n.tr.Close()
}

// gossipLoop fires one gossip cycle every GossipInterval, jittered ±10% so
// populations started together do not phase-lock (the paper's timers are
// "independent, non-synchronized"). A SetGossipInterval re-arms the timer
// immediately via the rearm channel, so halving a long interval takes
// effect now rather than after one last full-length sleep.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		interval := n.cfg.GossipInterval
		jitter := time.Duration(n.rng.Int63n(int64(interval)/5+1)) - interval/10
		n.mu.Unlock()
		select {
		case <-time.After(interval + jitter):
			n.gossipOnce()
		case <-n.rearm:
			continue
		case <-n.done:
			return
		}
	}
}

// gossipOnce runs one protocol cycle: staged re-tunes are applied at this
// cycle boundary, then a CYCLON shuffle and a VICINITY exchange run exactly
// as the simulator does synchronously.
func (n *Node) gossipOnce() {
	n.mu.Lock()
	n.applyStagedLocked()
	n.mu.Unlock()
	n.cyclonStep()
	n.vicinityStep()
}

// applyStagedLocked commits staged fanout/view-size changes. Caller holds
// n.mu; gossipOnce calls it first so re-tunes land on cycle boundaries.
func (n *Node) applyStagedLocked() {
	if n.nextFanout > 0 {
		n.cfg.Fanout = n.nextFanout
		n.nextFanout = 0
	}
	if n.nextCycView > 0 {
		if err := n.cyc.Resize(n.nextCycView); err == nil {
			n.cfg.Cyclon.ViewSize = n.nextCycView
		}
		n.nextCycView = 0
	}
	if n.nextVicView > 0 {
		if err := n.vic.Resize(n.nextVicView); err == nil {
			n.cfg.Vicinity.ViewSize = n.nextVicView
		}
		n.nextVicView = 0
	}
}

// SetGossipInterval re-tunes the cycle length T at runtime. The gossip
// timer re-arms immediately with the new interval; the cycle cadence
// changes without a restart (the config engine's primary use).
func (n *Node) SetGossipInterval(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("node: gossip interval must be positive, got %v", d)
	}
	n.mu.Lock()
	n.cfg.GossipInterval = d
	n.mu.Unlock()
	select {
	case n.rearm <- struct{}{}:
	default:
	}
	return nil
}

// SetFanout stages a new dissemination fanout F, applied at the next cycle
// boundary: forwards within the current cycle keep the fanout they started
// with, so a mid-cycle re-tune cannot skew an exchange in flight.
func (n *Node) SetFanout(f int) error {
	if f < 1 {
		return fmt.Errorf("node: fanout must be >= 1, got %d", f)
	}
	n.mu.Lock()
	n.nextFanout = f
	n.mu.Unlock()
	return nil
}

// SetViewSizes stages new CYCLON and VICINITY view lengths (0 leaves a
// layer unchanged), applied at the next cycle boundary. Values below the
// layer's exchange length are rejected.
func (n *Node) SetViewSizes(cyclonView, vicinityView int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cyclonView > 0 && cyclonView < n.cfg.Cyclon.ShuffleLen {
		return fmt.Errorf("node: cyclon view %d below shuffle length %d", cyclonView, n.cfg.Cyclon.ShuffleLen)
	}
	if vicinityView > 0 && vicinityView < n.cfg.Vicinity.GossipLen {
		return fmt.Errorf("node: vicinity view %d below gossip length %d", vicinityView, n.cfg.Vicinity.GossipLen)
	}
	if cyclonView > 0 {
		n.nextCycView = cyclonView
	}
	if vicinityView > 0 {
		n.nextVicView = vicinityView
	}
	return nil
}

// Fanout returns the currently applied dissemination fanout (staged
// re-tunes not yet at a cycle boundary are excluded).
func (n *Node) Fanout() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Fanout
}

// GossipInterval returns the current cycle length T.
func (n *Node) GossipInterval() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.GossipInterval
}

func (n *Node) cyclonStep() {
	n.mu.Lock()
	sh, ok := n.cyc.StartShuffle(n.rng)
	if ok {
		n.stats.Shuffles++
		n.seq++
		n.pending[n.seq] = sh
		n.prunePending()
	}
	seq := n.seq
	n.mu.Unlock()
	if !ok {
		return
	}
	f := &wire.Frame{
		Kind:     wire.KindShuffleRequest,
		From:     n.id,
		FromAddr: n.tr.Addr(),
		Seq:      seq,
		Entries:  sh.Sent,
	}
	if err := n.tr.Send(sh.Peer.Addr, f); err != nil {
		n.mu.Lock()
		n.stats.SendErrors++
		delete(n.pending, seq)
		// The dead peer's entry was already removed by StartShuffle; also
		// purge it from the vicinity view.
		n.vic.Remove(sh.Peer.Node)
		n.mu.Unlock()
	}
}

func (n *Node) vicinityStep() {
	n.mu.Lock()
	n.vic.AgeAll()
	peer, ok := n.vic.SelectPeer(n.rng, n.cyc.View().All())
	var payload []view.Entry
	if ok {
		n.stats.VicExchanges++
		payload = n.vic.Payload()
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	f := &wire.Frame{
		Kind:     wire.KindVicinityRequest,
		From:     n.id,
		FromAddr: n.tr.Addr(),
		Entries:  payload,
	}
	if err := n.tr.Send(peer.Addr, f); err != nil {
		n.mu.Lock()
		n.stats.SendErrors++
		n.vic.Remove(peer.Node)
		n.cyc.Remove(peer.Node)
		n.mu.Unlock()
	}
}

// prunePending caps the in-flight shuffle table; replies to pruned shuffles
// are ignored, which is safe (the merge simply never happens).
func (n *Node) prunePending() {
	const maxPending = 64
	if len(n.pending) <= maxPending {
		return
	}
	oldest := n.seq
	for s := range n.pending {
		if s < oldest {
			oldest = s
		}
	}
	delete(n.pending, oldest)
}

// Publish originates a message and disseminates it. The message is also
// delivered locally (the origin trivially "receives" it).
func (n *Node) Publish(body []byte) (wire.MsgID, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return wire.MsgID{}, errors.New("node: closed")
	}
	n.pubSeq++
	msg := wire.Message{ID: wire.MsgID{Origin: n.id, Epoch: n.cfg.Epoch, Seq: n.pubSeq}, Hop: 0, Body: body}
	n.seen.Add(msg.ID)
	n.stats.Published++
	n.mu.Unlock()

	n.deliver(Delivery{Msg: msg, From: ident.Nil})
	n.forward(msg, ident.Nil)
	return msg.ID, nil
}

// handle is the transport inbound path.
func (n *Node) handle(remote string, f *wire.Frame) {
	switch f.Kind {
	case wire.KindHello:
		n.handleHello(f)
	case wire.KindHelloAck:
		n.handleHelloAck(f)
	case wire.KindShuffleRequest:
		n.handleShuffleRequest(f)
	case wire.KindShuffleReply:
		n.handleShuffleReply(f)
	case wire.KindVicinityRequest:
		n.handleVicinityRequest(f)
	case wire.KindVicinityReply:
		n.handleVicinityReply(f)
	case wire.KindGossip:
		n.handleGossip(f)
	}
}

func (n *Node) handleHello(f *wire.Frame) {
	n.mu.Lock()
	n.cyc.AddContact(f.From, f.FromAddr)
	n.vic.Merge([]view.Entry{{Node: f.From, Addr: f.FromAddr, Age: 0}}, nil)
	// Seed the joiner with a sample of our view plus ourselves.
	entries := n.cyc.View().RandomEntries(n.cfg.Cyclon.ShuffleLen, n.rng, f.From)
	entries = append(entries, view.Entry{Node: n.id, Addr: n.tr.Addr(), Age: 0})
	n.mu.Unlock()
	ack := &wire.Frame{
		Kind:     wire.KindHelloAck,
		From:     n.id,
		FromAddr: n.tr.Addr(),
		Entries:  entries,
	}
	if err := n.tr.Send(f.FromAddr, ack); err != nil {
		n.mu.Lock()
		n.stats.SendErrors++
		n.mu.Unlock()
	}
}

func (n *Node) handleHelloAck(f *wire.Frame) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range f.Entries {
		n.cyc.AddContact(e.Node, e.Addr)
	}
	n.vic.Merge(f.Entries, n.cyc.View().All())
}

func (n *Node) handleShuffleRequest(f *wire.Frame) {
	n.mu.Lock()
	reply := n.cyc.HandleRequest(f.Entries, n.rng)
	n.mu.Unlock()
	out := &wire.Frame{
		Kind:     wire.KindShuffleReply,
		From:     n.id,
		FromAddr: n.tr.Addr(),
		Seq:      f.Seq,
		Entries:  reply,
	}
	if err := n.tr.Send(f.FromAddr, out); err != nil {
		n.mu.Lock()
		n.stats.SendErrors++
		n.mu.Unlock()
	}
}

func (n *Node) handleShuffleReply(f *wire.Frame) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.pending[f.Seq]
	if !ok {
		return // pruned or spurious
	}
	delete(n.pending, f.Seq)
	n.cyc.HandleReply(sh, f.Entries)
}

func (n *Node) handleVicinityRequest(f *wire.Frame) {
	n.mu.Lock()
	reply := n.vic.Payload()
	n.vic.Merge(f.Entries, n.cyc.View().All())
	n.mu.Unlock()
	out := &wire.Frame{
		Kind:     wire.KindVicinityReply,
		From:     n.id,
		FromAddr: n.tr.Addr(),
		Entries:  reply,
	}
	if err := n.tr.Send(f.FromAddr, out); err != nil {
		n.mu.Lock()
		n.stats.SendErrors++
		n.mu.Unlock()
	}
}

func (n *Node) handleVicinityReply(f *wire.Frame) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.vic.Merge(f.Entries, n.cyc.View().All())
}

func (n *Node) handleGossip(f *wire.Frame) {
	if f.Msg == nil {
		return
	}
	msg := *f.Msg
	n.mu.Lock()
	fresh := n.seen.Add(msg.ID)
	if !fresh {
		n.stats.Duplicates++
		n.mu.Unlock()
		return
	}
	n.stats.Delivered++
	n.mu.Unlock()

	n.deliver(Delivery{Msg: msg, From: f.From})
	n.forward(msg, f.From)
}

// forward applies the dissemination policy (paper, Figure 1a) and ships the
// message to the selected targets. The hop count is incremented BEFORE the
// send: hop h is "how many hops this copy has travelled", so the origin
// delivers locally at hop 0 and first-hop receivers deliver at hop 1.
// (Incrementing after delivery, as this used to, under-reported every remote
// delivery by one and made first-hop receivers indistinguishable from the
// origin.)
func (n *Node) forward(msg wire.Message, from ident.ID) {
	msg.Hop++
	n.mu.Lock()
	links, addrs := n.linksLocked()
	targets := n.cfg.Selector.Select(links, from, n.cfg.Fanout, n.rng)
	n.mu.Unlock()

	for _, tgt := range targets {
		addr, ok := addrs[tgt]
		if !ok {
			continue
		}
		f := &wire.Frame{
			Kind:     wire.KindGossip,
			From:     n.id,
			FromAddr: n.tr.Addr(),
			Msg:      &msg,
		}
		if err := n.tr.Send(addr, f); err != nil {
			n.mu.Lock()
			if errors.Is(err, transport.ErrQueueFull) {
				// Local congestion toward tgt, not evidence of its death:
				// count it, keep the peer. Evicting a healthy peer because
				// our own outbound queue is full would shred the ring under
				// load.
				n.stats.QueueFull++
			} else {
				n.stats.SendErrors++
				n.cyc.Remove(tgt)
				n.vic.Remove(tgt)
			}
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		n.stats.Forwarded++
		n.mu.Unlock()
	}
}

// linksLocked snapshots the node's current r-links and d-links plus an
// ID-to-address map. Caller holds n.mu.
func (n *Node) linksLocked() (core.Links, map[ident.ID]string) {
	cycEntries := n.cyc.View().All()
	links := core.Links{R: make([]ident.ID, 0, len(cycEntries))}
	addrs := make(map[ident.ID]string, len(cycEntries)+2)
	for _, e := range cycEntries {
		links.R = append(links.R, e.Node)
		addrs[e.Node] = e.Addr
	}
	if pred, succ, ok := n.vic.RingNeighbors(); ok {
		links.D = []ident.ID{pred.Node, succ.Node}
		addrs[pred.Node] = pred.Addr
		addrs[succ.Node] = succ.Addr
	}
	return links, addrs
}

// RingNeighbors exposes the node's current d-links for diagnostics.
func (n *Node) RingNeighbors() (pred, succ view.Entry, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.vic.RingNeighbors()
}

// ViewIDs exposes the node's current r-link targets for diagnostics.
func (n *Node) ViewIDs() []ident.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cyc.View().IDs()
}

// GossipNow runs one synchronous gossip cycle immediately — useful for
// tests and for accelerating a joiner's warm-up, the optimization sketched
// in Section 7.3 ("new nodes can gossip at an arbitrarily higher rate for
// the first few cycles").
func (n *Node) GossipNow() { n.gossipOnce() }
