package node

import "ringcast/internal/wire"

// dedupCache remembers recently seen message IDs with bounded memory: a map
// for O(1) lookup plus a FIFO ring for eviction. The generic dissemination
// algorithm (paper, Figure 1a) requires exactly this "already seen" check.
type dedupCache struct {
	cap   int
	seen  map[wire.MsgID]struct{}
	order []wire.MsgID
	head  int
}

// newDedupCache returns a cache remembering up to capacity IDs.
func newDedupCache(capacity int) *dedupCache {
	if capacity < 1 {
		capacity = 1
	}
	return &dedupCache{
		cap:   capacity,
		seen:  make(map[wire.MsgID]struct{}, capacity),
		order: make([]wire.MsgID, 0, capacity),
	}
}

// Add records the ID, reporting whether it was new. When full, the oldest
// remembered ID is evicted.
func (c *dedupCache) Add(id wire.MsgID) bool {
	if _, dup := c.seen[id]; dup {
		return false
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, id)
	} else {
		delete(c.seen, c.order[c.head])
		c.order[c.head] = id
		c.head = (c.head + 1) % c.cap
	}
	c.seen[id] = struct{}{}
	return true
}

// Contains reports whether the ID is remembered.
func (c *dedupCache) Contains(id wire.MsgID) bool {
	_, ok := c.seen[id]
	return ok
}

// Len returns the number of remembered IDs.
func (c *dedupCache) Len() int { return len(c.seen) }
