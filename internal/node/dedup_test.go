package node

import (
	"testing"
	"testing/quick"

	"ringcast/internal/wire"
)

func TestDedupBasics(t *testing.T) {
	c := newDedupCache(4)
	a := wire.MsgID{Origin: 1, Seq: 1}
	if !c.Add(a) {
		t.Fatal("first add not new")
	}
	if c.Add(a) {
		t.Fatal("duplicate add reported new")
	}
	if !c.Contains(a) || c.Len() != 1 {
		t.Fatal("contains/len wrong")
	}
}

func TestDedupEvictionFIFO(t *testing.T) {
	c := newDedupCache(3)
	ids := []wire.MsgID{
		{Origin: 1, Seq: 1}, {Origin: 1, Seq: 2}, {Origin: 1, Seq: 3}, {Origin: 1, Seq: 4},
	}
	for _, i := range ids {
		c.Add(i)
	}
	if c.Contains(ids[0]) {
		t.Fatal("oldest not evicted")
	}
	for _, i := range ids[1:] {
		if !c.Contains(i) {
			t.Fatalf("recent ID %v evicted", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestDedupMinimumCapacity(t *testing.T) {
	c := newDedupCache(0)
	if !c.Add(wire.MsgID{Origin: 1, Seq: 1}) {
		t.Fatal("add failed")
	}
	if !c.Add(wire.MsgID{Origin: 1, Seq: 2}) {
		t.Fatal("second add failed")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamped)", c.Len())
	}
}

// Property: Len never exceeds capacity and Add is consistent with Contains.
func TestDedupInvariantProperty(t *testing.T) {
	f := func(seqs []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		c := newDedupCache(capacity)
		for _, s := range seqs {
			mid := wire.MsgID{Origin: 1, Seq: uint64(s % 16)}
			had := c.Contains(mid)
			fresh := c.Add(mid)
			if had == fresh {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
