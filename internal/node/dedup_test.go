package node

import (
	"testing"
	"testing/quick"

	"ringcast/internal/wire"
)

func TestDedupBasics(t *testing.T) {
	c := newDedupCache(4)
	a := wire.MsgID{Origin: 1, Seq: 1}
	if !c.Add(a) {
		t.Fatal("first add not new")
	}
	if c.Add(a) {
		t.Fatal("duplicate add reported new")
	}
	if !c.Contains(a) || c.Len() != 1 {
		t.Fatal("contains/len wrong")
	}
}

func TestDedupEvictionFIFO(t *testing.T) {
	c := newDedupCache(3)
	ids := []wire.MsgID{
		{Origin: 1, Seq: 1}, {Origin: 1, Seq: 2}, {Origin: 1, Seq: 3}, {Origin: 1, Seq: 4},
	}
	for _, i := range ids {
		c.Add(i)
	}
	if c.Contains(ids[0]) {
		t.Fatal("oldest not evicted")
	}
	for _, i := range ids[1:] {
		if !c.Contains(i) {
			t.Fatalf("recent ID %v evicted", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestDedupMinimumCapacity(t *testing.T) {
	c := newDedupCache(0)
	if !c.Add(wire.MsgID{Origin: 1, Seq: 1}) {
		t.Fatal("add failed")
	}
	if !c.Add(wire.MsgID{Origin: 1, Seq: 2}) {
		t.Fatal("second add failed")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamped)", c.Len())
	}
}

// Property: Len never exceeds capacity and Add is consistent with Contains.
func TestDedupInvariantProperty(t *testing.T) {
	f := func(seqs []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		c := newDedupCache(capacity)
		for _, s := range seqs {
			mid := wire.MsgID{Origin: 1, Seq: uint64(s % 16)}
			had := c.Contains(mid)
			fresh := c.Add(mid)
			if had == fresh {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// mid is shorthand for a message ID in the eviction-order tests.
func mid(seq int) wire.MsgID { return wire.MsgID{Origin: 1, Seq: uint64(seq)} }

// TestDedupEvictionOrderAcrossWraparound pins FIFO semantics across the
// growth phase, the first eviction (exactly cap, then cap+1 insertions) and
// repeated ring wraparound (2*cap insertions): after k evictions, exactly
// the first k inserted IDs are gone and the most recent cap survive.
func TestDedupEvictionOrderAcrossWraparound(t *testing.T) {
	const capacity = 5
	check := func(t *testing.T, c *dedupCache, inserted int) {
		t.Helper()
		evicted := inserted - capacity
		if evicted < 0 {
			evicted = 0
		}
		if c.Len() != min(inserted, capacity) {
			t.Fatalf("after %d inserts Len = %d, want %d", inserted, c.Len(), min(inserted, capacity))
		}
		for s := 0; s < inserted; s++ {
			want := s >= evicted // only the newest `capacity` IDs survive
			if got := c.Contains(mid(s)); got != want {
				t.Fatalf("after %d inserts Contains(%d) = %v, want %v", inserted, s, got, want)
			}
		}
	}

	t.Run("exactly cap", func(t *testing.T) {
		c := newDedupCache(capacity)
		for s := 0; s < capacity; s++ {
			if !c.Add(mid(s)) {
				t.Fatalf("insert %d not fresh", s)
			}
		}
		check(t, c, capacity) // growth phase: nothing evicted yet
	})

	t.Run("cap plus one", func(t *testing.T) {
		c := newDedupCache(capacity)
		for s := 0; s <= capacity; s++ {
			c.Add(mid(s))
		}
		check(t, c, capacity+1) // first eviction: ID 0 and only ID 0
	})

	t.Run("two cap", func(t *testing.T) {
		c := newDedupCache(capacity)
		for s := 0; s < 2*capacity; s++ {
			c.Add(mid(s))
			check(t, c, s+1) // FIFO order must hold after EVERY insert
		}
	})
}
