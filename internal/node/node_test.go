package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/transport"
	"ringcast/internal/vicinity"
	"ringcast/internal/view"
	"ringcast/internal/wire"
)

// testCluster spins up n in-memory nodes joined in a chain and gossiped to
// convergence.
type testCluster struct {
	net   *transport.InMemNetwork
	nodes []*Node
	mu    sync.Mutex
	got   map[ident.ID][]wire.MsgID // deliveries per node
}

func testNodeConfig(i int) Config {
	return Config{
		ID:             ident.ID(1000 * (i + 1)),
		Fanout:         3,
		Selector:       core.RingCast{},
		Cyclon:         cyclon.Config{ViewSize: 8, ShuffleLen: 4},
		Vicinity:       vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		GossipInterval: time.Hour, // ticker effectively off; tests drive GossipNow
		DedupCapacity:  128,
		Seed:           int64(i + 1),
	}
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{
		net: transport.NewInMemNetwork(),
		got: make(map[ident.ID][]wire.MsgID),
	}
	for i := 0; i < n; i++ {
		ep, err := c.net.Endpoint(fmt.Sprintf("n%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := testNodeConfig(i)
		nd, err := New(cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodeID := nd.ID()
		// installed after New: rebind delivery to the cluster recorder
		nd.deliver = func(d Delivery) {
			c.mu.Lock()
			c.got[nodeID] = append(c.got[nodeID], d.Msg.ID)
			c.mu.Unlock()
		}
		c.nodes = append(c.nodes, nd)
	}
	// Join each node via node 0 and warm up.
	for i := 1; i < n; i++ {
		if err := c.nodes[i].Join(c.nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	c.settle()
	for cycle := 0; cycle < 60; cycle++ {
		for _, nd := range c.nodes {
			nd.GossipNow()
		}
		c.settle()
		if c.ringConverged() {
			return c
		}
	}
	if !c.ringConverged() {
		t.Fatal("live cluster ring did not converge")
	}
	return c
}

// settle waits for the in-memory pumps to drain.
func (c *testCluster) settle() { time.Sleep(5 * time.Millisecond) }

// ringConverged verifies every node's pred/succ match the global sorted ring.
func (c *testCluster) ringConverged() bool {
	n := len(c.nodes)
	ids := make([]ident.ID, n)
	for i, nd := range c.nodes {
		ids[i] = nd.ID()
	}
	// test IDs are constructed ascending: 1000, 2000, ...
	for i, nd := range c.nodes {
		pred, succ, ok := nd.RingNeighbors()
		if !ok {
			return false
		}
		if succ.Node != ids[(i+1)%n] || pred.Node != ids[(i-1+n)%n] {
			return false
		}
	}
	return true
}

func (c *testCluster) deliveredCount(mid wire.MsgID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	count := 0
	for _, mids := range c.got {
		for _, m := range mids {
			if m == mid {
				count++
				break
			}
		}
	}
	return count
}

func (c *testCluster) close() {
	for _, nd := range c.nodes {
		nd.Close()
	}
}

func TestLiveClusterDisseminatesToAll(t *testing.T) {
	c := newTestCluster(t, 24)
	defer c.close()
	mid, err := c.nodes[5].Publish([]byte("hello overlay"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for c.deliveredCount(mid) < len(c.nodes) {
		select {
		case <-deadline:
			t.Fatalf("delivered to %d/%d nodes", c.deliveredCount(mid), len(c.nodes))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestLiveClusterEveryOriginReachesAll(t *testing.T) {
	c := newTestCluster(t, 12)
	defer c.close()
	for i := range c.nodes {
		mid, err := c.nodes[i].Publish([]byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.After(5 * time.Second)
		for c.deliveredCount(mid) < len(c.nodes) {
			select {
			case <-deadline:
				t.Fatalf("origin %d: delivered to %d/%d", i, c.deliveredCount(mid), len(c.nodes))
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	c := newTestCluster(t, 16)
	defer c.close()
	mid, _ := c.nodes[0].Publish([]byte("x"))
	deadline := time.After(5 * time.Second)
	for c.deliveredCount(mid) < len(c.nodes) {
		select {
		case <-deadline:
			t.Fatal("dissemination incomplete")
		case <-time.After(5 * time.Millisecond):
		}
	}
	c.settle()
	// Each node must have delivered the message exactly once.
	c.mu.Lock()
	defer c.mu.Unlock()
	for nid, mids := range c.got {
		n := 0
		for _, m := range mids {
			if m == mid {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("node %v delivered message %d times", nid, n)
		}
	}
}

func TestNodeSurvivesPeerCrash(t *testing.T) {
	c := newTestCluster(t, 16)
	defer c.close()
	// Crash three nodes abruptly (transport gone, no goodbye).
	for _, i := range []int{3, 7, 11} {
		c.nodes[i].Close()
	}
	// Keep gossiping: the survivors must heal and still disseminate.
	alive := make([]*Node, 0, 13)
	for i, nd := range c.nodes {
		if i != 3 && i != 7 && i != 11 {
			alive = append(alive, nd)
		}
	}
	for cycle := 0; cycle < 40; cycle++ {
		for _, nd := range alive {
			nd.GossipNow()
		}
		c.settle()
	}
	mid, err := alive[0].Publish([]byte("after crash"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for c.deliveredCount(mid) < len(alive) {
		select {
		case <-deadline:
			t.Fatalf("delivered to %d/%d survivors", c.deliveredCount(mid), len(alive))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestNewValidation(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("x")
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Error("accepted nil transport")
	}
	if _, err := New(Config{Fanout: -1}, ep, nil); err == nil {
		t.Error("accepted negative fanout")
	}
}

func TestDefaultsFilled(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("x")
	nd, err := New(Config{}, ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if nd.cfg.Fanout != 3 || nd.cfg.Selector == nil || nd.cfg.DedupCapacity != 4096 {
		t.Fatalf("defaults not filled: %+v", nd.cfg)
	}
	if nd.ID().IsNil() {
		t.Fatal("node ID not drawn")
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("x")
	cfg := testNodeConfig(0)
	cfg.GossipInterval = 5 * time.Millisecond
	nd, err := New(cfg, ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	time.Sleep(30 * time.Millisecond) // let the ticker fire a few times
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
	if _, err := nd.Publish([]byte("x")); err == nil {
		t.Fatal("publish after close accepted")
	}
	if err := nd.Start(); err == nil {
		t.Fatal("start after close accepted")
	}
}

func TestTimerDrivenConvergence(t *testing.T) {
	// Nodes driven purely by their own tickers (no GossipNow): the real
	// asynchronous mode of operation.
	net := transport.NewInMemNetwork()
	const n = 10
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("t%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := testNodeConfig(i)
		cfg.GossipInterval = 3 * time.Millisecond
		nd, err := New(cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		converged := true
		for i, nd := range nodes {
			pred, succ, ok := nd.RingNeighbors()
			if !ok ||
				succ.Node != nodes[(i+1)%n].ID() ||
				pred.Node != nodes[(i-1+n)%n].ID() {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		select {
		case <-deadline:
			t.Fatal("timer-driven cluster did not converge")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestStatsProgress(t *testing.T) {
	c := newTestCluster(t, 8)
	defer c.close()
	mid, _ := c.nodes[0].Publish([]byte("s"))
	deadline := time.After(5 * time.Second)
	for c.deliveredCount(mid) < len(c.nodes) {
		select {
		case <-deadline:
			t.Fatal("incomplete")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s0 := c.nodes[0].Stats()
	if s0.Published != 1 {
		t.Fatalf("Published = %d, want 1", s0.Published)
	}
	if s0.Forwarded == 0 {
		t.Fatal("origin forwarded nothing")
	}
	if s0.Shuffles == 0 || s0.VicExchanges == 0 {
		t.Fatalf("gossip counters did not move: %+v", s0)
	}
}

func TestJoinUnreachableBootstrap(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("x")
	nd, err := New(testNodeConfig(0), ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.Join("nowhere"); err == nil {
		t.Fatal("join to unreachable bootstrap succeeded")
	}
}

// The overlay must keep working when a fifth of all gossip and data
// messages are silently lost: push gossip's redundancy is the reliability
// mechanism (paper, Section 1).
func TestClusterToleratesMessageLoss(t *testing.T) {
	c := newTestCluster(t, 16)
	defer c.close()
	c.net.SetLoss(0.2, 99)
	// Gossip keeps running under loss.
	for cycle := 0; cycle < 20; cycle++ {
		for _, nd := range c.nodes {
			nd.GossipNow()
		}
		c.settle()
	}
	// With F=3 + ring redundancy, 20% loss still reaches nearly everyone;
	// require at least 14/16. Which copies the seeded loss model drops
	// depends on send interleaving, so under heavy scheduler contention
	// (the full-module -race run) a single message can occasionally strand
	// a few extra nodes and then die out — a fresh publish draws a fresh
	// drop pattern, so retry up to three messages before declaring the
	// redundancy mechanism broken.
	const attempts = 3
	best := 0
	for attempt := 0; attempt < attempts; attempt++ {
		mid, err := c.nodes[0].Publish([]byte(fmt.Sprintf("lossy-%d", attempt)))
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.After(5 * time.Second)
		for c.deliveredCount(mid) < 14 {
			select {
			case <-deadline:
				if n := c.deliveredCount(mid); n > best {
					best = n
				}
				goto next
			case <-time.After(10 * time.Millisecond):
			}
		}
		return
	next:
	}
	t.Fatalf("only %d/16 deliveries under 20%% loss (best of %d messages)", best, attempts)
}

// BenchmarkNodeGossipCycle measures one live-node gossip cycle including
// codec and in-memory transport overhead.
func BenchmarkNodeGossipCycle(b *testing.B) {
	net := transport.NewInMemNetwork()
	nodes := make([]*Node, 0, 16)
	for i := 0; i < 16; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("b%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		nd, err := New(testNodeConfig(i), ep, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		for _, nd := range nodes {
			nd.GossipNow()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].GossipNow()
	}
}

// BenchmarkNodePublish measures publishing into a warmed 16-node cluster.
func BenchmarkNodePublish(b *testing.B) {
	net := transport.NewInMemNetwork()
	nodes := make([]*Node, 0, 16)
	for i := 0; i < 16; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("p%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		cfg := testNodeConfig(i)
		cfg.DedupCapacity = 1 << 16
		nd, err := New(cfg, ep, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		for _, nd := range nodes {
			nd.GossipNow()
		}
	}
	body := []byte("benchmark message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%len(nodes)].Publish(body); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeliveredHopCounts pins the wire-visible hop semantics over a manually
// wired 3-node chain A-B-C: the origin delivers locally at hop 0, the
// first-hop receiver at hop 1, the second-hop receiver at hop 2. Before the
// increment moved into forward (it used to happen only after delivery),
// every remote delivery under-reported by one and B's delivery was
// indistinguishable from the origin's.
func TestDeliveredHopCounts(t *testing.T) {
	net := transport.NewInMemNetwork()
	var (
		mu   sync.Mutex
		hops = map[ident.ID]uint16{}
	)
	mk := func(i int) *Node {
		ep, err := net.Endpoint(fmt.Sprintf("chain%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := testNodeConfig(i)
		cfg.Selector = core.Flood{} // forward on every link except the sender
		nd, err := New(cfg, ep, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := nd.ID()
		nd.deliver = func(d Delivery) {
			mu.Lock()
			hops[id] = d.Msg.Hop
			mu.Unlock()
		}
		return nd
	}
	a, b, c := mk(0), mk(1), mk(2)
	defer a.Close()
	defer b.Close()
	defer c.Close()
	// Wire the chain directly (no gossip): A<->B<->C.
	a.cyc.AddContact(b.ID(), b.Addr())
	b.cyc.AddContact(a.ID(), a.Addr())
	b.cyc.AddContact(c.ID(), c.Addr())
	c.cyc.AddContact(b.ID(), b.Addr())

	if _, err := a.Publish([]byte("hop check")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := len(hops) == 3
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[ident.ID]uint16{a.ID(): 0, b.ID(): 1, c.ID(): 2}
	for id, wantHop := range want {
		got, ok := hops[id]
		if !ok {
			t.Fatalf("node %v never got the message (hops=%v)", id, hops)
		}
		if got != wantHop {
			t.Errorf("node %v delivered at hop %d, want %d", id, got, wantHop)
		}
	}
}

// queueFullTransport accepts gossip-exchange frames but refuses every
// dissemination payload with ErrQueueFull, simulating a saturated outbound
// queue toward every peer.
type queueFullTransport struct {
	handler transport.Handler
}

func (q *queueFullTransport) Addr() string                   { return "qf" }
func (q *queueFullTransport) SetHandler(h transport.Handler) { q.handler = h }
func (q *queueFullTransport) Stats() transport.Stats         { return transport.Stats{} }
func (q *queueFullTransport) Close() error                   { return nil }
func (q *queueFullTransport) Send(to string, f *wire.Frame) error {
	if f.Kind == wire.KindGossip {
		return fmt.Errorf("%w: %s", transport.ErrQueueFull, to)
	}
	return nil
}

// TestQueueFullDoesNotEvictPeer verifies backpressure is not mistaken for
// peer death: a forward refused with ErrQueueFull must leave the target in
// the CYCLON and VICINITY views and be counted separately from SendErrors.
func TestQueueFullDoesNotEvictPeer(t *testing.T) {
	tr := &queueFullTransport{}
	cfg := testNodeConfig(1)
	nd, err := New(cfg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	// Seed the views with one peer via the hello-ack path.
	peer := view.Entry{Node: ident.ID(0xbeef), Addr: "peer-addr", Age: 0}
	nd.handle("peer-addr", &wire.Frame{
		Kind: wire.KindHelloAck, From: peer.Node, FromAddr: peer.Addr,
		Entries: []view.Entry{peer},
	})
	if _, err := nd.Publish([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	s := nd.Stats()
	if s.QueueFull == 0 {
		t.Fatalf("QueueFull not counted: %+v", s)
	}
	if s.SendErrors != 0 {
		t.Fatalf("backpressure counted as SendErrors: %+v", s)
	}
	found := false
	for _, id := range nd.ViewIDs() {
		if id == peer.Node {
			found = true
		}
	}
	if !found {
		t.Fatal("peer evicted from CYCLON view on ErrQueueFull")
	}
}

// TestRestartEpochDistinguishesPublishes is the restart-identity regression:
// a supervised restart reuses the node's seed and ring ID, so its fresh
// pubSeq restarts at 1 and — without an incarnation epoch — reproduces the
// pre-crash MsgIDs exactly, and every peer's dedup cache silently swallows
// the post-restart publishes. The epoch stamped into MsgIDs is what breaks
// the collision.
func TestRestartEpochDistinguishesPublishes(t *testing.T) {
	c := newTestCluster(t, 8)
	defer c.close()

	preCrash, err := c.nodes[0].Publish([]byte("pre-crash"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for c.deliveredCount(preCrash) < len(c.nodes) {
		select {
		case <-deadline:
			t.Fatalf("pre-crash delivered to %d/%d", c.deliveredCount(preCrash), len(c.nodes))
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Crash node 0 and restart it exactly as the soak supervisor does:
	// same ID, same seed, same address — but a bumped incarnation epoch.
	c.nodes[0].Close()
	c.settle()
	ep, err := c.net.Endpoint("n000")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testNodeConfig(0)
	cfg.Epoch = 1
	restarted, err := New(cfg, ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodeID := restarted.ID()
	restarted.deliver = func(d Delivery) {
		c.mu.Lock()
		c.got[nodeID] = append(c.got[nodeID], d.Msg.ID)
		c.mu.Unlock()
	}
	c.nodes[0] = restarted
	if err := restarted.Join(c.nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 40; cycle++ {
		for _, nd := range c.nodes {
			nd.GossipNow()
		}
		c.settle()
	}

	postCrash, err := restarted.Publish([]byte("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	// Without the epoch this publish would reproduce the pre-crash MsgID
	// bit-for-bit — same origin, same seq — and dedup would swallow it.
	collision := wire.MsgID{Origin: postCrash.Origin, Epoch: 0, Seq: postCrash.Seq}
	if collision != preCrash {
		t.Fatalf("test premise broken: epoch-0 restart ID %v does not collide with pre-crash %v",
			collision, preCrash)
	}
	if postCrash == preCrash {
		t.Fatalf("restarted publish reused pre-crash MsgID %v", preCrash)
	}
	if postCrash.Epoch != 1 {
		t.Fatalf("restarted publish epoch = %d, want 1", postCrash.Epoch)
	}
	deadline = time.After(5 * time.Second)
	for c.deliveredCount(postCrash) < len(c.nodes) {
		select {
		case <-deadline:
			t.Fatalf("post-restart delivered to %d/%d nodes — dedup swallowed it?",
				c.deliveredCount(postCrash), len(c.nodes))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestSetFanoutAppliesAtCycleBoundary pins the staged-commit contract: a
// mid-cycle fanout change is invisible until the next cycle boundary, then
// takes effect exactly there.
func TestSetFanoutAppliesAtCycleBoundary(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, err := net.Endpoint("solo")
	if err != nil {
		t.Fatal(err)
	}
	nd, err := New(testNodeConfig(0), ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	if got := nd.Fanout(); got != 3 {
		t.Fatalf("initial fanout = %d", got)
	}
	if err := nd.SetFanout(0); err == nil {
		t.Fatal("SetFanout(0) accepted")
	}
	if err := nd.SetFanout(7); err != nil {
		t.Fatal(err)
	}
	if got := nd.Fanout(); got != 3 {
		t.Fatalf("fanout changed mid-cycle: %d", got)
	}
	nd.GossipNow()
	if got := nd.Fanout(); got != 7 {
		t.Fatalf("fanout after cycle boundary = %d, want 7", got)
	}
}

// TestSetViewSizesStagedResize pins view-size re-tuning: invalid sizes are
// rejected against the shuffle/gossip lengths, zero means "leave alone",
// and a shrink is applied (with eviction) at the next cycle boundary.
func TestSetViewSizesStagedResize(t *testing.T) {
	c := newTestCluster(t, 12)
	defer c.close()
	nd := c.nodes[5]

	if err := nd.SetViewSizes(2, 0); err == nil {
		t.Fatal("cyclon view below shuffle length accepted")
	}
	if err := nd.SetViewSizes(0, 4); err == nil {
		t.Fatal("vicinity view below gossip length accepted")
	}
	if err := nd.SetViewSizes(0, 0); err != nil {
		t.Fatalf("no-op resize rejected: %v", err)
	}
	before := len(nd.ViewIDs())
	if before <= 4 {
		t.Fatalf("test premise broken: converged cyclon view has %d entries", before)
	}
	if err := nd.SetViewSizes(4, 8); err != nil {
		t.Fatal(err)
	}
	if got := len(nd.ViewIDs()); got != before {
		t.Fatalf("view resized mid-cycle: %d entries, had %d", got, before)
	}
	nd.GossipNow()
	c.settle()
	if got := len(nd.ViewIDs()); got > 4 {
		t.Fatalf("cyclon view holds %d entries after shrink to 4", got)
	}
}

// TestSetGossipIntervalRearms pins the live re-tune of the gossip period:
// a node started with an effectively-off ticker (an hour) begins cycling
// promptly once the interval is lowered, without waiting out the old timer.
func TestSetGossipIntervalRearms(t *testing.T) {
	net := transport.NewInMemNetwork()
	epA, err := net.Endpoint("ra")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Endpoint("rb")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(testNodeConfig(0), epA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(testNodeConfig(1), epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.SetGossipInterval(0); err == nil {
		t.Fatal("SetGossipInterval(0) accepted")
	}
	time.Sleep(30 * time.Millisecond)
	base := a.TransportStats().FramesSent // join traffic only; ticker is off
	if err := a.SetGossipInterval(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := a.GossipInterval(); got != 5*time.Millisecond {
		t.Fatalf("GossipInterval() = %v", got)
	}
	deadline := time.After(5 * time.Second)
	for a.TransportStats().FramesSent <= base {
		select {
		case <-deadline:
			t.Fatal("no gossip traffic after interval re-arm")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
