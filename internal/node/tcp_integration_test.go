package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// TestTCPClusterEndToEnd runs a real 8-node cluster over loopback TCP:
// join, converge, disseminate, crash a node, heal, disseminate again.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration test skipped in -short mode")
	}
	const n = 8
	var (
		mu        sync.Mutex
		delivered = map[ident.ID]map[wire.MsgID]int{}
	)
	record := func(id ident.ID) DeliverFunc {
		return func(d Delivery) {
			mu.Lock()
			defer mu.Unlock()
			if delivered[id] == nil {
				delivered[id] = map[wire.MsgID]int{}
			}
			delivered[id][d.Msg.ID]++
		}
	}

	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := testNodeConfig(i)
		cfg.GossipInterval = 20 * time.Millisecond
		nd, err := New(cfg, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		nd.deliver = record(nd.ID())
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for full ring convergence over real sockets.
	waitRing := func(members []*Node) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			if tcpRingConverged(members) {
				return
			}
			select {
			case <-deadline:
				t.Fatal("TCP cluster did not converge")
			case <-time.After(25 * time.Millisecond):
			}
		}
	}
	waitRing(nodes)

	countReached := func(mid wire.MsgID, members []*Node) int {
		mu.Lock()
		defer mu.Unlock()
		c := 0
		for _, nd := range members {
			if delivered[nd.ID()][mid] > 0 {
				c++
			}
		}
		return c
	}

	mid, err := nodes[3].Publish([]byte("over real tcp"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for countReached(mid, nodes) < n {
		select {
		case <-deadline:
			t.Fatalf("delivered to %d/%d TCP nodes", countReached(mid, nodes), n)
		case <-time.After(20 * time.Millisecond):
		}
	}

	// No node may have delivered the message more than once.
	mu.Lock()
	for id, msgs := range delivered {
		if msgs[mid] != 1 {
			mu.Unlock()
			t.Fatalf("node %v delivered %d times", id, msgs[mid])
		}
	}
	mu.Unlock()

	// Crash two nodes (close their transports abruptly) and verify the
	// survivors heal and disseminate.
	nodes[2].Close()
	nodes[6].Close()
	survivors := []*Node{nodes[0], nodes[1], nodes[3], nodes[4], nodes[5], nodes[7]}
	waitRing(survivors)

	mid2, err := survivors[0].Publish([]byte("after the crash"))
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.After(15 * time.Second)
	for countReached(mid2, survivors) < len(survivors) {
		select {
		case <-deadline:
			t.Fatalf("post-crash: delivered to %d/%d survivors",
				countReached(mid2, survivors), len(survivors))
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// tcpRingConverged checks pred/succ of every member against the sorted ring.
func tcpRingConverged(members []*Node) bool {
	ids := make([]ident.ID, len(members))
	for i, nd := range members {
		ids[i] = nd.ID()
	}
	// insertion sort: tiny n
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	pos := make(map[ident.ID]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	for _, nd := range members {
		pred, succ, ok := nd.RingNeighbors()
		if !ok {
			return false
		}
		i := pos[nd.ID()]
		if succ.Node != ids[(i+1)%len(ids)] || pred.Node != ids[(i-1+len(ids))%len(ids)] {
			return false
		}
	}
	return true
}

// TestTCPPubSubSmoke verifies the pubsub mux over real TCP endpoints.
func TestTCPGossipFrameExchange(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test skipped in -short mode")
	}
	trA, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trB, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfgA := testNodeConfig(0)
	cfgB := testNodeConfig(1)
	got := make(chan Delivery, 1)
	a, err := New(cfgA, trA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfgB, trB, func(d Delivery) { got <- d })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	// Run a few synchronous cycles so both learn each other.
	for i := 0; i < 6; i++ {
		a.GossipNow()
		b.GossipNow()
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := a.Publish([]byte(fmt.Sprintf("ping %d", 1))); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if string(d.Msg.Body) != "ping 1" {
			t.Fatalf("body = %q", d.Msg.Body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("message never crossed the TCP link")
	}
}
