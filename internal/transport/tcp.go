package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ringcast/internal/wire"
)

// TCP transport constants.
const (
	dialTimeout  = 5 * time.Second
	writeTimeout = 10 * time.Second
	// acceptBackoffMin/Max bound the exponential backoff applied to
	// repeated Accept errors. Without it a persistent error (EMFILE being
	// the classic) turns the accept loop into a 100%-CPU busy-spin.
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 500 * time.Millisecond
)

// TCPTransport moves frames over TCP connections. Each frame is prefixed
// with a 4-byte big-endian length. Inbound connections are served until EOF.
//
// The outbound half is an asynchronous per-peer pipeline (sendq.go): Send
// marshals the frame, queues it on the destination's bounded queue and
// returns — it never blocks on a dial or a slow receiver's write. Each
// destination gets a dedicated writer goroutine, spawned on first use and
// evicted after an idle period, which coalesces queued frames into batched
// writes. A writer failure is surfaced to the next Send to that peer — the
// liveness signal gossip protocols expect — and pending frames are shed and
// counted in Stats.
type TCPTransport struct {
	ln net.Listener

	// Live pipeline tunables, re-tunable through the config engine while
	// writers run: per-peer queue cap (frames), batch coalescing limit
	// (bytes) and writer idle eviction (nanoseconds). Reads are lock-free
	// on the send and writer hot paths.
	queueCap   atomic.Int64
	batchBytes atomic.Int64
	idleNanos  atomic.Int64

	hmu     sync.RWMutex
	handler Handler

	cmu    sync.Mutex
	conns  map[string]*peerQueue
	closed bool

	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	dropped atomic.Int64

	// Outbound pipeline counters (see Stats).
	framesSent   atomic.Int64
	bytesSent    atomic.Int64
	queueDepth   atomic.Int64
	writers      atomic.Int64
	drops        atomic.Int64
	rejects      atomic.Int64
	dialFailures atomic.Int64
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP starts a transport listening on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return newTCPWithListener(ln), nil
}

// newTCPWithListener wraps an existing listener — split from ListenTCP so
// tests can inject failing listener stubs into the accept loop.
func newTCPWithListener(ln net.Listener) *TCPTransport {
	t := &TCPTransport{
		ln:    ln,
		conns: make(map[string]*peerQueue),
		done:  make(chan struct{}),
	}
	t.queueCap.Store(DefaultSendQueueCap)
	t.batchBytes.Store(DefaultMaxBatchBytes)
	t.idleNanos.Store(int64(DefaultWriterIdle))
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	var backoff expBackoff
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error: keep serving, but back off
			// exponentially while the error persists so a stuck listener
			// (EMFILE, closed fd) doesn't busy-spin the CPU.
			if !backoff.sleep(t.done) {
				return
			}
			continue
		}
		backoff.reset()
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve reads frames from one inbound connection until EOF or close.
func (t *TCPTransport) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// Tear the connection down when the transport closes so Close unblocks
	// pending reads.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-t.done:
			conn.Close()
		case <-stop:
		}
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > wire.MaxFrameSize {
			return // protocol violation: drop the connection
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		f, err := wire.Unmarshal(buf)
		if err != nil {
			return
		}
		t.hmu.RLock()
		h := t.handler
		t.hmu.RUnlock()
		if h == nil {
			t.dropped.Add(1)
			continue
		}
		h(f.FromAddr, f)
	}
}

// Send implements Transport: marshal, queue on the destination's outbound
// queue and return. Overflow policy: droppable gossip frames evict the
// oldest queued droppable frame; dissemination payloads get ErrQueueFull.
func (t *TCPTransport) Send(to string, f *wire.Frame) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	msg, err := frameBytes(f)
	if err != nil {
		return err
	}
	return t.enqueue(to, outFrame{buf: msg, droppable: Droppable(f)})
}

// SetSendQueueCap re-tunes the per-destination outbound queue bound.
// Frames already queued beyond a lowered cap drain normally; only new
// enqueues see the new limit. Values below 1 are rejected.
func (t *TCPTransport) SetSendQueueCap(frames int) error {
	if frames < 1 {
		return fmt.Errorf("transport: send queue cap must be >= 1, got %d", frames)
	}
	t.queueCap.Store(int64(frames))
	return nil
}

// SetMaxBatchBytes re-tunes the byte limit one coalesced Write may carry.
// A batch always admits at least one frame regardless of the limit, so a
// value below the frame size degrades to unbatched writes, never a stall.
func (t *TCPTransport) SetMaxBatchBytes(n int) error {
	if n < 1 {
		return fmt.Errorf("transport: max batch bytes must be >= 1, got %d", n)
	}
	t.batchBytes.Store(int64(n))
	return nil
}

// SetWriterIdle re-tunes how long an idle writer keeps its connection warm
// before evicting itself. Running writers pick the new period up on their
// next drain cycle.
func (t *TCPTransport) SetWriterIdle(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("transport: writer idle must be positive, got %v", d)
	}
	t.idleNanos.Store(int64(d))
	return nil
}

// Stats implements Transport.
func (t *TCPTransport) Stats() Stats {
	return Stats{
		FramesSent:   t.framesSent.Load(),
		BytesSent:    t.bytesSent.Load(),
		QueueDepth:   t.queueDepth.Load(),
		Writers:      t.writers.Load(),
		Drops:        t.drops.Load(),
		Rejects:      t.rejects.Load(),
		DialFailures: t.dialFailures.Load(),
	}
}

// Close implements Transport: stops accepting, terminates every writer,
// sheds their queues and waits for all goroutines to drain.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.cmu.Lock()
		t.closed = true
		for addr, pq := range t.conns {
			pq.mu.Lock()
			pq.terminated = true
			if n := len(pq.q); n > 0 {
				pq.q = nil
				t.drops.Add(int64(n))
				t.queueDepth.Add(int64(-n))
			}
			if pq.conn != nil {
				pq.conn.Close() // unblock a writer stuck in Write
			}
			pq.mu.Unlock()
			delete(t.conns, addr)
		}
		t.cmu.Unlock()
	})
	t.wg.Wait()
	return nil
}
