package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ringcast/internal/wire"
)

// TCP transport constants.
const (
	dialTimeout  = 5 * time.Second
	writeTimeout = 10 * time.Second
	// acceptBackoffMin/Max bound the exponential backoff applied to
	// repeated Accept errors. Without it a persistent error (EMFILE being
	// the classic) turns the accept loop into a 100%-CPU busy-spin.
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 500 * time.Millisecond
)

// TCPTransport moves frames over TCP connections. Each frame is prefixed
// with a 4-byte big-endian length. Outbound connections are cached per
// destination and re-dialed on failure; inbound connections are served until
// EOF. A send error is the liveness signal gossip protocols expect.
type TCPTransport struct {
	ln net.Listener

	hmu     sync.RWMutex
	handler Handler

	cmu   sync.Mutex
	conns map[string]*sendConn

	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	dropped atomic.Int64
}

var _ Transport = (*TCPTransport)(nil)

// sendConn serializes writes on one outbound connection.
type sendConn struct {
	mu sync.Mutex
	c  net.Conn
}

// ListenTCP starts a transport listening on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return newTCPWithListener(ln), nil
}

// newTCPWithListener wraps an existing listener — split from ListenTCP so
// tests can inject failing listener stubs into the accept loop.
func newTCPWithListener(ln net.Listener) *TCPTransport {
	t := &TCPTransport{
		ln:    ln,
		conns: make(map[string]*sendConn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	var backoff time.Duration
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error: keep serving, but back off
			// exponentially while the error persists so a stuck listener
			// (EMFILE, closed fd) doesn't busy-spin the CPU.
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff < acceptBackoffMax {
				backoff *= 2
				if backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
			}
			select {
			case <-time.After(backoff):
			case <-t.done:
				return
			}
			continue
		}
		backoff = 0
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve reads frames from one inbound connection until EOF or close.
func (t *TCPTransport) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// Tear the connection down when the transport closes so Close unblocks
	// pending reads.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-t.done:
			conn.Close()
		case <-stop:
		}
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > wire.MaxFrameSize {
			return // protocol violation: drop the connection
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		f, err := wire.Unmarshal(buf)
		if err != nil {
			return
		}
		t.hmu.RLock()
		h := t.handler
		t.hmu.RUnlock()
		if h == nil {
			t.dropped.Add(1)
			continue
		}
		h(f.FromAddr, f)
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(to string, f *wire.Frame) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	buf, err := wire.Marshal(f)
	if err != nil {
		return err
	}
	msg := make([]byte, 4+len(buf))
	binary.BigEndian.PutUint32(msg, uint32(len(buf)))
	copy(msg[4:], buf)

	sc, err := t.conn(to)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := sc.c.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		t.dropConn(to, sc)
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	if _, err := sc.c.Write(msg); err != nil {
		t.dropConn(to, sc)
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	return nil
}

// conn returns a cached outbound connection to addr, dialing if needed.
func (t *TCPTransport) conn(addr string) (*sendConn, error) {
	t.cmu.Lock()
	if sc, ok := t.conns[addr]; ok {
		t.cmu.Unlock()
		return sc, nil
	}
	t.cmu.Unlock()

	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	sc := &sendConn{c: c}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	if existing, ok := t.conns[addr]; ok {
		// Lost the race: keep the existing connection.
		c.Close()
		return existing, nil
	}
	t.conns[addr] = sc
	return sc, nil
}

// dropConn evicts a broken cached connection.
func (t *TCPTransport) dropConn(addr string, sc *sendConn) {
	sc.c.Close()
	t.cmu.Lock()
	defer t.cmu.Unlock()
	if t.conns[addr] == sc {
		delete(t.conns, addr)
	}
}

// Close implements Transport: stops accepting, closes every connection and
// waits for serving goroutines to drain.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.cmu.Lock()
		for addr, sc := range t.conns {
			sc.c.Close()
			delete(t.conns, addr)
		}
		t.cmu.Unlock()
	})
	t.wg.Wait()
	return nil
}
