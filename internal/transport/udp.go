package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ringcast/internal/wire"
)

// MaxDatagram is the largest frame a UDP transport will send. Gossip
// exchanges fit in a couple of KB; dissemination payloads must stay under
// this bound when UDP is chosen (use TCP for larger bodies).
const MaxDatagram = 60 * 1024

// ErrFrameTooLarge is returned when an encoded frame exceeds MaxDatagram.
var ErrFrameTooLarge = errors.New("transport: frame exceeds UDP datagram limit")

// UDPTransport moves frames as single datagrams — the natural fit for push
// gossip, where losing an occasional shuffle or forward is already part of
// the protocols' failure model. Unlike TCP, a Send succeeds as long as the
// datagram leaves the socket: peer death is detected by the absence of
// replies (handled by the protocols' age-based eviction) rather than by
// send errors.
type UDPTransport struct {
	conn udpPacketConn

	hmu     sync.RWMutex
	handler Handler

	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	dropped atomic.Int64

	framesSent atomic.Int64
	bytesSent  atomic.Int64
}

var _ Transport = (*UDPTransport)(nil)

// udpPacketConn is the slice of *net.UDPConn the transport uses — an
// interface so tests can inject failing read stubs into the read loop.
type udpPacketConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	LocalAddr() net.Addr
	Close() error
}

// ListenUDP starts a UDP transport on addr (e.g. "127.0.0.1:0").
func ListenUDP(addr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	return newUDPWithConn(conn), nil
}

// newUDPWithConn wraps an existing packet connection — split from ListenUDP
// so tests can inject failing conn stubs into the read loop.
func newUDPWithConn(conn udpPacketConn) *UDPTransport {
	t := &UDPTransport{conn: conn, done: make(chan struct{})}
	t.wg.Add(1)
	go t.readLoop()
	return t
}

// Addr implements Transport.
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// SetHandler implements Transport.
func (t *UDPTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, MaxDatagram)
	var backoff expBackoff
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient read error (ICMP port-unreachable, momentary fd
			// trouble): keep reading, but back off exponentially while the
			// error persists so a wedged socket doesn't busy-spin the CPU —
			// the same policy as the TCP accept loop.
			if !backoff.sleep(t.done) {
				return
			}
			continue
		}
		backoff.reset()
		f, err := wire.Unmarshal(buf[:n])
		if err != nil {
			continue // malformed datagram: drop
		}
		t.hmu.RLock()
		h := t.handler
		t.hmu.RUnlock()
		if h == nil {
			t.dropped.Add(1)
			continue
		}
		h(f.FromAddr, f)
	}
}

// Send implements Transport. Delivery is fire-and-forget: only local
// failures (closed socket, unresolvable address, oversized frame) surface
// as errors.
func (t *UDPTransport) Send(to string, f *wire.Frame) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	buf, err := wire.Marshal(f)
	if err != nil {
		return err
	}
	if len(buf) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(buf))
	}
	ua, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	if _, err := t.conn.WriteToUDP(buf, ua); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	t.framesSent.Add(1)
	t.bytesSent.Add(int64(len(buf)))
	return nil
}

// Stats implements Transport. UDP has no outbound queue: a Send either
// reaches the kernel or errors, so the queue and drop gauges stay zero.
func (t *UDPTransport) Stats() Stats {
	return Stats{
		FramesSent: t.framesSent.Load(),
		BytesSent:  t.bytesSent.Load(),
	}
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.conn.Close()
	})
	t.wg.Wait()
	return nil
}
