package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ringcast/internal/wire"
)

// InMemNetwork is a process-local fabric of endpoints, used by tests,
// examples and single-process clusters. Frames are marshalled and
// unmarshalled on every send, so the in-memory path exercises the same codec
// as TCP. The network supports fault injection: message loss, pairwise
// partitions, and endpoint crashes.
type InMemNetwork struct {
	mu        sync.RWMutex
	endpoints map[string]*InMemEndpoint
	loss      float64
	rng       *rand.Rand
	parts     map[[2]string]bool
}

// NewInMemNetwork returns an empty fabric.
func NewInMemNetwork() *InMemNetwork {
	return &InMemNetwork{
		endpoints: make(map[string]*InMemEndpoint),
		rng:       rand.New(rand.NewSource(1)),
		parts:     make(map[[2]string]bool),
	}
}

// SetLoss makes every delivery fail independently with the given
// probability, deterministic under seed.
func (n *InMemNetwork) SetLoss(rate float64, seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = rate
	n.rng = rand.New(rand.NewSource(seed))
}

// Partition severs connectivity between a and b in both directions.
func (n *InMemNetwork) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[pairKey(a, b)] = true
}

// Heal restores connectivity between a and b.
func (n *InMemNetwork) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, pairKey(a, b))
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// inboxSize bounds queued frames per endpoint. When an inbox is full the
// frame is dropped silently, like a saturated UDP socket buffer: blocking
// instead would let a cycle of mutually full inboxes deadlock the fabric
// under extreme load, which no real network does.
const inboxSize = 256

// Endpoint creates and registers a new endpoint with the given address.
func (n *InMemNetwork) Endpoint(addr string) (*InMemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	if _, dup := n.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already registered", addr)
	}
	ep := &InMemEndpoint{
		net:   n,
		addr:  addr,
		inbox: make(chan inboundFrame, inboxSize),
		done:  make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.pump()
	n.endpoints[addr] = ep
	return ep, nil
}

// lookup returns the live endpoint at addr, honouring loss and partitions.
func (n *InMemNetwork) lookup(from, to string) (*InMemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.parts[pairKey(from, to)] {
		return nil, fmt.Errorf("%w: %s is partitioned from %s", ErrUnreachable, to, from)
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		return nil, fmt.Errorf("%w: %s (injected loss)", ErrUnreachable, to)
	}
	ep, ok := n.endpoints[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return ep, nil
}

// Crash abruptly removes the endpoint at addr, simulating a node failure:
// subsequent sends to it fail, and its pending inbox is discarded.
func (n *InMemNetwork) Crash(addr string) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	if ok {
		delete(n.endpoints, addr)
	}
	n.mu.Unlock()
	if ok {
		ep.stop()
	}
}

type inboundFrame struct {
	remote string
	frame  *wire.Frame
}

// InMemEndpoint is one endpoint of an InMemNetwork.
type InMemEndpoint struct {
	net  *InMemNetwork
	addr string

	hmu     sync.RWMutex
	handler Handler

	inbox chan inboundFrame
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	dropped  atomic.Int64 // frames discarded because no handler was installed
	overflow atomic.Int64 // inbound frames dropped because our inbox was full

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	sendDrops  atomic.Int64 // sends swallowed by a full destination inbox
}

var _ Transport = (*InMemEndpoint)(nil)

// Addr implements Transport.
func (e *InMemEndpoint) Addr() string { return e.addr }

// SetHandler implements Transport.
func (e *InMemEndpoint) SetHandler(h Handler) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	e.handler = h
}

// Send implements Transport. The frame is codec round-tripped so in-memory
// tests exercise exactly the bytes TCP would carry.
func (e *InMemEndpoint) Send(to string, f *wire.Frame) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	buf, err := wire.Marshal(f)
	if err != nil {
		return err
	}
	decoded, err := wire.Unmarshal(buf)
	if err != nil {
		return fmt.Errorf("transport: codec round trip failed: %w", err)
	}
	dst, err := e.net.lookup(e.addr, to)
	if err != nil {
		return err
	}
	select {
	case dst.inbox <- inboundFrame{remote: f.FromAddr, frame: decoded}:
		e.framesSent.Add(1)
		e.bytesSent.Add(int64(len(buf)))
		return nil
	case <-dst.done:
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	default:
		// Inbox full: drop like an overflowing socket buffer. The sender
		// sees success — loss, not peer death — but the drop is visible in
		// both endpoints' counters.
		dst.overflow.Add(1)
		e.sendDrops.Add(1)
		return nil
	}
}

// Stats implements Transport.
func (e *InMemEndpoint) Stats() Stats {
	return Stats{
		FramesSent: e.framesSent.Load(),
		BytesSent:  e.bytesSent.Load(),
		Drops:      e.sendDrops.Load(),
	}
}

// Overflow reports how many inbound frames were dropped because the inbox
// was full.
func (e *InMemEndpoint) Overflow() int64 { return e.overflow.Load() }

// pump delivers queued frames to the handler sequentially.
func (e *InMemEndpoint) pump() {
	defer e.wg.Done()
	for {
		select {
		case in := <-e.inbox:
			e.hmu.RLock()
			h := e.handler
			e.hmu.RUnlock()
			if h == nil {
				e.dropped.Add(1)
				continue
			}
			h(in.remote, in.frame)
		case <-e.done:
			return
		}
	}
}

func (e *InMemEndpoint) stop() {
	e.once.Do(func() { close(e.done) })
	e.wg.Wait()
}

// Dropped reports how many frames were discarded because no handler was
// installed yet.
func (e *InMemEndpoint) Dropped() int64 { return e.dropped.Load() }

// Close implements Transport.
func (e *InMemEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	e.stop()
	return nil
}
