package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/view"
	"ringcast/internal/wire"
)

func benchFrame() *wire.Frame {
	f := &wire.Frame{Kind: wire.KindShuffleRequest, From: 1, FromAddr: "a", Seq: 1}
	for i := 0; i < 8; i++ {
		f.Entries = append(f.Entries, view.Entry{Node: ident.ID(i + 2), Addr: "10.0.0.9:7000", Age: uint32(i)})
	}
	return f
}

// BenchmarkInMemSend measures one in-memory send including the codec round
// trip (the fixed cost every simulated frame pays).
func BenchmarkInMemSend(b *testing.B) {
	net := NewInMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	dst, err := net.Endpoint("b")
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	dst.SetHandler(func(string, *wire.Frame) {})
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("b", f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPSend measures framed sends over a loopback TCP connection.
// Sends are async (queue + dedicated writer); under pressure the overflow
// policy may shed gossip frames, so completion is frames received plus
// frames dropped, with the drop count reported as a metric.
func BenchmarkTCPSend(b *testing.B) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	var received atomic.Int64
	dst.SetHandler(func(string, *wire.Frame) {
		received.Add(1)
	})
	f := benchFrame()
	f.FromAddr = src.Addr()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.Addr(), f); err != nil {
			b.Fatal(err)
		}
	}
	for received.Load()+src.Stats().Drops < int64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(src.Stats().Drops), "drops")
}

// BenchmarkUDPSend measures datagram sends over loopback.
func BenchmarkUDPSend(b *testing.B) {
	src, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	dst.SetHandler(func(string, *wire.Frame) {})
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.Addr(), f); err != nil {
			b.Fatal(err)
		}
	}
}
