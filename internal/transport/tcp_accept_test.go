package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// failingListener simulates a listener whose fd has gone bad: every Accept
// fails immediately with EMFILE, the canonical persistent accept error.
type failingListener struct {
	accepts atomic.Int64
	closed  atomic.Bool
}

func (l *failingListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	if l.closed.Load() {
		return nil, net.ErrClosed
	}
	return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE}
}

func (l *failingListener) Close() error {
	l.closed.Store(true)
	return nil
}

func (l *failingListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopBacksOffOnPersistentError verifies the accept loop does not
// busy-spin when Accept fails persistently: with exponential backoff a
// 200ms window admits only a handful of attempts (5+10+20+40+80+... ms),
// where the unthrottled loop would make millions.
func TestAcceptLoopBacksOffOnPersistentError(t *testing.T) {
	ln := &failingListener{}
	tr := newTCPWithListener(ln)
	defer tr.Close()

	time.Sleep(200 * time.Millisecond)
	attempts := ln.accepts.Load()
	if attempts == 0 {
		t.Fatal("accept loop never ran")
	}
	// Backoff schedule admits ~7 attempts in 200ms; allow generous slack
	// for scheduling jitter. A busy-spin would be orders of magnitude more.
	if attempts > 50 {
		t.Fatalf("accept loop made %d attempts in 200ms — busy-spinning, backoff broken", attempts)
	}
}

// TestAcceptLoopBackoffUnblocksOnClose verifies Close doesn't have to wait
// out a pending backoff sleep.
func TestAcceptLoopBackoffUnblocksOnClose(t *testing.T) {
	ln := &failingListener{}
	tr := newTCPWithListener(ln)
	time.Sleep(150 * time.Millisecond) // let the backoff grow

	done := make(chan struct{})
	go func() {
		tr.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on accept-loop backoff")
	}
}

// flakyListener fails a fixed number of Accepts, succeeds exactly once
// (handing out one pipe connection), then fails forever — the sequence that
// distinguishes a backoff that resets on success from one that keeps
// growing.
type flakyListener struct {
	mu          sync.Mutex
	failsLeft   int
	succeededAt atomic.Int64 // unix nanos of the successful accept, 0 = not yet
	postSuccess atomic.Int64 // accept attempts after the success
	closed      atomic.Bool
	peer        net.Conn // our end of the handed-out pipe
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.closed.Load() {
		return nil, net.ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failsLeft > 0 {
		l.failsLeft--
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE}
	}
	if l.succeededAt.Load() == 0 {
		server, client := net.Pipe()
		l.peer = client
		l.succeededAt.Store(time.Now().UnixNano())
		return server, nil
	}
	l.postSuccess.Add(1)
	return nil, &net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE}
}

func (l *flakyListener) Close() error {
	l.closed.Store(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.peer != nil {
		l.peer.Close()
	}
	return nil
}

func (l *flakyListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopBackoffResetsAfterSuccess verifies the backoff restarts
// from the minimum once an Accept succeeds. After 5 failures the delay has
// grown to 80ms; with the reset, the post-success failures sleep
// 5+10+20+40+80+160ms, admitting ~6 attempts within the 500ms observation
// window — without the reset they would continue at 160+320ms and admit
// only ~2.
func TestAcceptLoopBackoffResetsAfterSuccess(t *testing.T) {
	ln := &flakyListener{failsLeft: 5}
	tr := newTCPWithListener(ln)
	defer tr.Close()

	deadline := time.Now().Add(2 * time.Second)
	for ln.succeededAt.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("accept loop never reached the successful accept")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	attempts := ln.postSuccess.Load()
	if attempts < 4 {
		t.Fatalf("only %d accept attempts in 500ms after a success — backoff did not reset", attempts)
	}
	if attempts > 100 {
		t.Fatalf("%d accept attempts in 500ms after a success — backoff not applied at all", attempts)
	}
}
