package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ringcast/internal/wire"
)

// Mux multiplexes several logical overlays over one base transport by
// routing frames on their Topic field. Each topic behaves as an independent
// Transport, which is how topic-based publish/subscribe works (paper,
// Section 8: "each topic forms its own, separate dissemination overlay").
type Mux struct {
	base Transport

	mu     sync.RWMutex
	routes map[string]*topicTransport
	closed bool
	// strayFrames counts frames for unregistered topics (dropped). Atomic:
	// dispatch is the receive hot path and must not take the write lock.
	strayFrames atomic.Int64
}

// NewMux wraps base. The mux installs itself as the base handler; callers
// must not call base.SetHandler afterwards.
func NewMux(base Transport) *Mux {
	m := &Mux{base: base, routes: make(map[string]*topicTransport)}
	base.SetHandler(m.dispatch)
	return m
}

func (m *Mux) dispatch(remote string, f *wire.Frame) {
	m.mu.RLock()
	tt := m.routes[f.Topic]
	m.mu.RUnlock()
	if tt == nil {
		m.strayFrames.Add(1)
		return
	}
	tt.hmu.RLock()
	h := tt.handler
	tt.hmu.RUnlock()
	if h != nil {
		h(remote, f)
	}
}

// Addr returns the base transport's address; all topics share it.
func (m *Mux) Addr() string { return m.base.Addr() }

// Stats returns the base transport's counters; all topics share them.
func (m *Mux) Stats() Stats { return m.base.Stats() }

// StrayFrames reports how many frames arrived for topics with no route
// (never registered, or already closed) and were dropped.
func (m *Mux) StrayFrames() int64 { return m.strayFrames.Load() }

// Topic returns the Transport for one topic, creating it on first use.
func (m *Mux) Topic(topic string) (Transport, error) {
	if len(topic) > wire.MaxTopicLen {
		return nil, fmt.Errorf("transport: topic %d bytes exceeds limit", len(topic))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if tt, ok := m.routes[topic]; ok {
		return tt, nil
	}
	tt := &topicTransport{mux: m, topic: topic}
	m.routes[topic] = tt
	return tt, nil
}

// CloseTopic detaches one topic without touching the base transport. The
// topic's Transport is marked closed: further Sends on it fail with
// ErrClosed instead of silently forwarding to the base.
func (m *Mux) CloseTopic(topic string) {
	m.mu.Lock()
	tt := m.routes[topic]
	delete(m.routes, topic)
	m.mu.Unlock()
	if tt != nil {
		tt.closed.Store(true)
	}
}

// Close detaches all topics and closes the base transport.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	for topic, tt := range m.routes {
		tt.closed.Store(true)
		delete(m.routes, topic)
	}
	m.mu.Unlock()
	return m.base.Close()
}

// topicTransport stamps outgoing frames with its topic.
type topicTransport struct {
	mux    *Mux
	topic  string
	closed atomic.Bool

	hmu     sync.RWMutex
	handler Handler
}

var _ Transport = (*topicTransport)(nil)

// Addr implements Transport: topics share the base address.
func (t *topicTransport) Addr() string { return t.mux.base.Addr() }

// Stats implements Transport: topics share the base counters.
func (t *topicTransport) Stats() Stats { return t.mux.base.Stats() }

// SetHandler implements Transport.
func (t *topicTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

// Send implements Transport, stamping the topic. A detached topic (its own
// Close, CloseTopic, or Mux.Close) fails with ErrClosed — it must not keep
// stamping frames onto the base transport.
func (t *topicTransport) Send(to string, f *wire.Frame) error {
	if t.closed.Load() {
		return ErrClosed
	}
	stamped := *f
	stamped.Topic = t.topic
	return t.mux.base.Send(to, &stamped)
}

// Close implements Transport: detaches this topic only.
func (t *topicTransport) Close() error {
	t.mux.CloseTopic(t.topic)
	return nil
}
