package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ringcast/internal/wire"
)

// Mux multiplexes several logical overlays over one base transport by
// routing frames on their Topic field. Each topic behaves as an independent
// Transport, which is how topic-based publish/subscribe works (paper,
// Section 8: "each topic forms its own, separate dissemination overlay").
type Mux struct {
	base Transport

	mu     sync.RWMutex
	routes map[string]*topicTransport
	closed bool
	// strayFrames counts frames for unregistered topics (dropped). Atomic:
	// dispatch is the receive hot path and must not take the write lock.
	strayFrames atomic.Int64
}

// NewMux wraps base. The mux installs itself as the base handler; callers
// must not call base.SetHandler afterwards.
func NewMux(base Transport) *Mux {
	m := &Mux{base: base, routes: make(map[string]*topicTransport)}
	base.SetHandler(m.dispatch)
	return m
}

func (m *Mux) dispatch(remote string, f *wire.Frame) {
	m.mu.RLock()
	tt := m.routes[f.Topic]
	m.mu.RUnlock()
	if tt == nil {
		m.strayFrames.Add(1)
		return
	}
	tt.hmu.RLock()
	h := tt.handler
	tt.hmu.RUnlock()
	if h != nil {
		h(remote, f)
	}
}

// Addr returns the base transport's address; all topics share it.
func (m *Mux) Addr() string { return m.base.Addr() }

// Stats returns the sum of the per-topic counters: frames/bytes attributed
// to the topic that sent them, not the shared base aggregate. (This used to
// return the base transport's counters, so every topic reported mux-wide
// totals as its own and summing per-topic stats overcounted by the topic
// count.) The base aggregate — which additionally sees queue depth, drops,
// framing overhead and any traffic sent on the base directly — is Base().
func (m *Mux) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var sum Stats
	for _, tt := range m.routes {
		st := tt.Stats()
		sum.FramesSent += st.FramesSent
		sum.BytesSent += st.BytesSent
		sum.Rejects += st.Rejects
	}
	return sum
}

// Base returns the underlying transport's aggregate counters, including
// state only the base observes: queue depth, live writers, drops and dial
// failures.
func (m *Mux) Base() Stats { return m.base.Stats() }

// StrayFrames reports how many frames arrived for topics with no route
// (never registered, or already closed) and were dropped.
func (m *Mux) StrayFrames() int64 { return m.strayFrames.Load() }

// Topic returns the Transport for one topic, creating it on first use.
func (m *Mux) Topic(topic string) (Transport, error) {
	if len(topic) > wire.MaxTopicLen {
		return nil, fmt.Errorf("transport: topic %d bytes exceeds limit", len(topic))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if tt, ok := m.routes[topic]; ok {
		return tt, nil
	}
	tt := &topicTransport{mux: m, topic: topic}
	m.routes[topic] = tt
	return tt, nil
}

// CloseTopic detaches one topic without touching the base transport. The
// topic's Transport is marked closed: further Sends on it fail with
// ErrClosed instead of silently forwarding to the base.
func (m *Mux) CloseTopic(topic string) {
	m.mu.Lock()
	tt := m.routes[topic]
	delete(m.routes, topic)
	m.mu.Unlock()
	if tt != nil {
		tt.closed.Store(true)
	}
}

// Close detaches all topics and closes the base transport.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	for topic, tt := range m.routes {
		tt.closed.Store(true)
		delete(m.routes, topic)
	}
	m.mu.Unlock()
	return m.base.Close()
}

// topicTransport stamps outgoing frames with its topic and attributes
// send-side counters to it.
type topicTransport struct {
	mux    *Mux
	topic  string
	closed atomic.Bool

	// Per-topic send accounting. Bytes count the marshalled frame size
	// (wire.EncodedSize) of accepted sends — the same unit the in-memory
	// transport's BytesSent uses; stream transports additionally frame each
	// send with a length prefix that only the base aggregate observes.
	framesSent atomic.Int64
	bytesSent  atomic.Int64
	rejects    atomic.Int64

	hmu     sync.RWMutex
	handler Handler
}

var _ Transport = (*topicTransport)(nil)

// Addr implements Transport: topics share the base address.
func (t *topicTransport) Addr() string { return t.mux.base.Addr() }

// Stats implements Transport, reporting only this topic's send counters.
// Queue depth, drops and dial failures live at the base (Mux.Base): the
// shared pipeline cannot attribute them to a topic after the fact.
func (t *topicTransport) Stats() Stats {
	return Stats{
		FramesSent: t.framesSent.Load(),
		BytesSent:  t.bytesSent.Load(),
		Rejects:    t.rejects.Load(),
	}
}

// SetHandler implements Transport.
func (t *topicTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

// Send implements Transport, stamping the topic. A detached topic (its own
// Close, CloseTopic, or Mux.Close) fails with ErrClosed — it must not keep
// stamping frames onto the base transport.
func (t *topicTransport) Send(to string, f *wire.Frame) error {
	if t.closed.Load() {
		return ErrClosed
	}
	stamped := *f
	stamped.Topic = t.topic
	err := t.mux.base.Send(to, &stamped)
	switch {
	case err == nil:
		t.framesSent.Add(1)
		t.bytesSent.Add(int64(wire.EncodedSize(&stamped)))
	case errors.Is(err, ErrQueueFull):
		t.rejects.Add(1)
	}
	return err
}

// Close implements Transport: detaches this topic only.
func (t *topicTransport) Close() error {
	t.mux.CloseTopic(t.topic)
	return nil
}
