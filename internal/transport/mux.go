package transport

import (
	"fmt"
	"sync"

	"ringcast/internal/wire"
)

// Mux multiplexes several logical overlays over one base transport by
// routing frames on their Topic field. Each topic behaves as an independent
// Transport, which is how topic-based publish/subscribe works (paper,
// Section 8: "each topic forms its own, separate dissemination overlay").
type Mux struct {
	base Transport

	mu     sync.RWMutex
	routes map[string]*topicTransport
	closed bool
	// strayFrames counts frames for unregistered topics (dropped).
	strayFrames int
}

// NewMux wraps base. The mux installs itself as the base handler; callers
// must not call base.SetHandler afterwards.
func NewMux(base Transport) *Mux {
	m := &Mux{base: base, routes: make(map[string]*topicTransport)}
	base.SetHandler(m.dispatch)
	return m
}

func (m *Mux) dispatch(remote string, f *wire.Frame) {
	m.mu.RLock()
	tt := m.routes[f.Topic]
	m.mu.RUnlock()
	if tt == nil {
		m.mu.Lock()
		m.strayFrames++
		m.mu.Unlock()
		return
	}
	tt.hmu.RLock()
	h := tt.handler
	tt.hmu.RUnlock()
	if h != nil {
		h(remote, f)
	}
}

// Addr returns the base transport's address; all topics share it.
func (m *Mux) Addr() string { return m.base.Addr() }

// Topic returns the Transport for one topic, creating it on first use.
func (m *Mux) Topic(topic string) (Transport, error) {
	if len(topic) > wire.MaxTopicLen {
		return nil, fmt.Errorf("transport: topic %d bytes exceeds limit", len(topic))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if tt, ok := m.routes[topic]; ok {
		return tt, nil
	}
	tt := &topicTransport{mux: m, topic: topic}
	m.routes[topic] = tt
	return tt, nil
}

// CloseTopic detaches one topic without touching the base transport.
func (m *Mux) CloseTopic(topic string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.routes, topic)
}

// Close detaches all topics and closes the base transport.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	m.routes = make(map[string]*topicTransport)
	m.mu.Unlock()
	return m.base.Close()
}

// topicTransport stamps outgoing frames with its topic.
type topicTransport struct {
	mux   *Mux
	topic string

	hmu     sync.RWMutex
	handler Handler
}

var _ Transport = (*topicTransport)(nil)

// Addr implements Transport: topics share the base address.
func (t *topicTransport) Addr() string { return t.mux.base.Addr() }

// SetHandler implements Transport.
func (t *topicTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

// Send implements Transport, stamping the topic.
func (t *topicTransport) Send(to string, f *wire.Frame) error {
	stamped := *f
	stamped.Topic = t.topic
	return t.mux.base.Send(to, &stamped)
}

// Close implements Transport: detaches this topic only.
func (t *topicTransport) Close() error {
	t.mux.CloseTopic(t.topic)
	return nil
}
