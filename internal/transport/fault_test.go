package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"ringcast/internal/wire"
)

func faultPair(t *testing.T) (*FaultInjector, *FaultInjector, *InMemNetwork) {
	t.Helper()
	net := NewInMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	return WrapFaults(a, 1), WrapFaults(b, 2), net
}

func testFrame(from string) *wire.Frame {
	return &wire.Frame{Kind: wire.KindGossip, From: 1, FromAddr: from,
		Msg: &wire.Message{ID: wire.MsgID{Origin: 1, Seq: 7}, Body: []byte("x")}}
}

func TestFaultInjectorPassThrough(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fa.Close()
	defer fb.Close()
	var got atomic.Int64
	fb.SetHandler(func(remote string, f *wire.Frame) { got.Add(1) })
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", testFrame("a")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.Load() == 10 })
	if fa.InjectedDrops() != 0 {
		t.Errorf("injected drops on a clean link: %d", fa.InjectedDrops())
	}
	if fa.Stats().FramesSent != 10 {
		t.Errorf("frames sent %d, want 10", fa.Stats().FramesSent)
	}
}

func TestFaultInjectorBlockCountsInjectedDrops(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fa.Close()
	defer fb.Close()
	var got atomic.Int64
	fb.SetHandler(func(remote string, f *wire.Frame) { got.Add(1) })

	fa.Block("b")
	for i := 0; i < 5; i++ {
		if err := fa.Send("b", testFrame("a")); err != nil {
			t.Fatalf("partitioned send must black-hole, not error: %v", err)
		}
	}
	if drops := fa.InjectedDrops(); drops != 5 {
		t.Errorf("injected drops %d, want 5", drops)
	}
	if s := fa.Stats(); s.Drops != 5 {
		t.Errorf("Stats().Drops %d, want 5 (PR 3 stats plumbing must see injected drops)", s.Drops)
	}
	if s := fa.Stats(); s.FramesSent != 0 {
		t.Errorf("blocked frames reached the wire: %d", s.FramesSent)
	}

	fa.Unblock("b")
	if err := fa.Send("b", testFrame("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	if drops := fa.InjectedDrops(); drops != 5 {
		t.Errorf("unblocked send counted as drop: %d", drops)
	}
}

func TestFaultInjectorLoss(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fa.Close()
	defer fb.Close()
	var got atomic.Int64
	fb.SetHandler(func(remote string, f *wire.Frame) { got.Add(1) })

	fa.SetLoss(1)
	for i := 0; i < 20; i++ {
		if err := fa.Send("b", testFrame("a")); err != nil {
			t.Fatal(err)
		}
	}
	if drops := fa.InjectedDrops(); drops != 20 {
		t.Errorf("full loss dropped %d/20", drops)
	}
	fa.SetLoss(0)
	if err := fa.Send("b", testFrame("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestFaultInjectorHealAll(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fa.Close()
	defer fb.Close()
	var got atomic.Int64
	fb.SetHandler(func(remote string, f *wire.Frame) { got.Add(1) })
	fa.Block("b", "c", "d")
	fa.HealAll()
	if err := fa.Send("b", testFrame("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	if fa.InjectedDrops() != 0 {
		t.Errorf("healed link still dropping: %d", fa.InjectedDrops())
	}
}

func TestFaultInjectorDelay(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fa.Close()
	defer fb.Close()
	var gotAt atomic.Int64
	fb.SetHandler(func(remote string, f *wire.Frame) { gotAt.Store(time.Now().UnixNano()) })
	fa.SetDelay(50 * time.Millisecond)
	start := time.Now()
	if err := fa.Send("b", testFrame("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return gotAt.Load() != 0 })
	if elapsed := time.Duration(gotAt.Load() - start.UnixNano()); elapsed < 40*time.Millisecond {
		t.Errorf("delayed frame arrived after %v, want >= ~50ms", elapsed)
	}
}

func TestFaultInjectorClosed(t *testing.T) {
	fa, fb, _ := faultPair(t)
	defer fb.Close()
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send("b", testFrame("a")); err != ErrClosed {
		t.Errorf("send on closed injector: %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
