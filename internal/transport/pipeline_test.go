package transport

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/view"
	"ringcast/internal/wire"
)

// slowPeer is a TCP listener that accepts connections and never reads from
// them: the pathological subscriber that used to stall every sender once the
// kernel buffers filled.
type slowPeer struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newSlowPeer(t *testing.T) *slowPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &slowPeer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *slowPeer) addr() string { return s.ln.Addr().String() }

func (s *slowPeer) close() {
	s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
}

func gossipFrame(fromAddr string, seq uint64, body []byte) *wire.Frame {
	return &wire.Frame{
		Kind: wire.KindGossip, From: 1, FromAddr: fromAddr,
		Msg: &wire.Message{ID: wire.MsgID{Origin: 1, Seq: seq}, Body: body},
	}
}

// bulkyShuffle builds a droppable gossip-class frame padded with view
// entries so a handful of frames saturate kernel socket buffers.
func bulkyShuffle(fromAddr string, seq uint64) *wire.Frame {
	f := &wire.Frame{Kind: wire.KindShuffleRequest, From: 1, FromAddr: fromAddr, Seq: seq}
	addr := strings.Repeat("x", 250)
	for i := 0; i < 64; i++ {
		f.Entries = append(f.Entries, view.Entry{Node: ident.ID(i + 2), Addr: addr, Age: uint32(i)})
	}
	return f
}

// TestTCPSlowPeerDoesNotBlockSend floods a never-reading peer with droppable
// gossip frames: every Send must return promptly (queue + drop-oldest), and
// the overflow must be visible in Stats. Under the old synchronous path this
// test would block for multiples of the 10s write timeout.
func TestTCPSlowPeerDoesNotBlockSend(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	slow := newSlowPeer(t)

	const sends = 3 * DefaultSendQueueCap
	start := time.Now()
	for i := 0; i < sends; i++ {
		if err := src.Send(slow.addr(), bulkyShuffle(src.Addr(), uint64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("%d sends to a stuck peer took %v — Send is blocking", sends, elapsed)
	}
	st := src.Stats()
	if st.Drops == 0 {
		t.Fatalf("no drops recorded after %d sends into a %d-frame queue: %+v", sends, DefaultSendQueueCap, st)
	}
	if st.QueueDepth > DefaultSendQueueCap {
		t.Fatalf("queue depth %d exceeds cap %d", st.QueueDepth, DefaultSendQueueCap)
	}
}

// TestTCPSlowPeerDoesNotDelayHealthyPeer interleaves sends to a stuck peer
// and a healthy peer: the healthy peer's frames must all arrive, and no
// single healthy Send may stall — the head-of-line blocking the pipeline
// removes.
func TestTCPSlowPeerDoesNotDelayHealthyPeer(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	healthy, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	col := newCollector()
	healthy.SetHandler(col.handle)
	slow := newSlowPeer(t)

	const rounds = 200
	var worst time.Duration
	for i := 0; i < rounds; i++ {
		f := helloFrame(src.Addr())
		f.Seq = uint64(i)
		_ = src.Send(slow.addr(), f) // may drop; must not block
		begin := time.Now()
		if err := src.Send(healthy.Addr(), f); err != nil {
			t.Fatalf("healthy send %d: %v", i, err)
		}
		if d := time.Since(begin); d > worst {
			worst = d
		}
	}
	if worst > time.Second {
		t.Fatalf("worst healthy Send latency %v — slow peer is stalling healthy sends", worst)
	}
	col.waitFor(t, rounds)
}

// TestTCPQueueFullRejectsDisseminationPayload verifies the overflow policy's
// other half: dissemination payloads are never silently shed — once the
// queue to a stuck peer fills, Send fails fast with ErrQueueFull and the
// reject is counted.
func TestTCPQueueFullRejectsDisseminationPayload(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	slow := newSlowPeer(t)

	body := make([]byte, 16<<10)
	sawReject := false
	deadline := time.Now().Add(10 * time.Second)
	for seq := uint64(0); time.Now().Before(deadline); seq++ {
		begin := time.Now()
		err := src.Send(slow.addr(), gossipFrame(src.Addr(), seq, body))
		if d := time.Since(begin); d > 2*time.Second {
			t.Fatalf("Send took %v — blocking on a stuck peer", d)
		}
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("err = %v, want ErrQueueFull", err)
			}
			sawReject = true
			break
		}
	}
	if !sawReject {
		t.Fatal("queue to a never-reading peer never filled — backpressure broken")
	}
	if src.Stats().Rejects == 0 {
		t.Fatal("ErrQueueFull not counted in Stats.Rejects")
	}
}

// TestTCPDropOldestKeepsNewestGossip fills a queue with droppable frames and
// checks the overflow policy evicts from the head: the last-queued frames
// survive and are eventually delivered once the peer unfreezes. Uses an
// initially-blocked real transport as the receiver.
func TestTCPDropOldestKeepsNewestGossip(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src.idleNanos.Store(int64(time.Hour)) // keep the writer pinned for the test
	defer src.Close()
	dst, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	col := newCollector()
	release := make(chan struct{})
	dst.SetHandler(func(remote string, f *wire.Frame) {
		<-release // hold the serve goroutine: receiver "slow", then healed
		col.handle(remote, f)
	})

	// Bulky frames so the kernel buffers saturate quickly and the queue
	// actually overflows.
	total := 0
	for src.Stats().Drops == 0 {
		if err := src.Send(dst.Addr(), bulkyShuffle(src.Addr(), uint64(total))); err != nil {
			t.Fatalf("send %d: %v", total, err)
		}
		total++
		if total > 100*DefaultSendQueueCap {
			t.Fatal("queue never overflowed")
		}
	}
	lastSeq := uint64(total - 1)
	close(release)
	// The newest frame must survive the drop-oldest policy.
	deadline := time.After(10 * time.Second)
	for {
		col.mu.Lock()
		var found bool
		for _, f := range col.frames {
			if f.Seq == lastSeq {
				found = true
			}
		}
		col.mu.Unlock()
		if found {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("newest frame (seq %d) was dropped; drop-oldest policy broken", lastSeq)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestTCPWriterIdleEviction verifies writers are lazily spawned and evicted
// after the idle timeout, and that a later Send transparently respawns one.
func TestTCPWriterIdleEviction(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src.idleNanos.Store(int64(50 * time.Millisecond))
	defer src.Close()
	dst, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	col := newCollector()
	dst.SetHandler(col.handle)

	if got := src.Stats().Writers; got != 0 {
		t.Fatalf("writers before any send = %d", got)
	}
	if err := src.Send(dst.Addr(), helloFrame(src.Addr())); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1)
	if got := src.Stats().Writers; got != 1 {
		t.Fatalf("writers after send = %d, want 1", got)
	}
	deadline := time.After(5 * time.Second)
	for src.Stats().Writers != 0 {
		select {
		case <-deadline:
			t.Fatalf("writer not evicted after idle timeout; writers = %d", src.Stats().Writers)
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Respawn on demand.
	if err := src.Send(dst.Addr(), helloFrame(src.Addr())); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 2)
}

// TestTCPStatsCountSends verifies the frames/bytes counters move on the
// happy path.
func TestTCPStatsCountSends(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	col := newCollector()
	dst.SetHandler(col.handle)
	const n = 20
	for i := 0; i < n; i++ {
		f := helloFrame(src.Addr())
		f.Seq = uint64(i)
		if err := src.Send(dst.Addr(), f); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, n)
	deadline := time.After(5 * time.Second)
	for {
		st := src.Stats()
		if st.FramesSent == n && st.BytesSent > 0 && st.QueueDepth == 0 {
			if st.Drops != 0 || st.Rejects != 0 || st.DialFailures != 0 {
				t.Fatalf("unexpected failure counters on happy path: %+v", st)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats never converged: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestTCPCloseShedsQueuedFrames verifies Close terminates writers promptly
// even with a full queue to a stuck peer, accounting abandoned frames.
func TestTCPCloseShedsQueuedFrames(t *testing.T) {
	src, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := newSlowPeer(t)
	body := make([]byte, 8<<10)
	for i := 0; i < DefaultSendQueueCap; i++ {
		if err := src.Send(slow.addr(), gossipFrame(src.Addr(), uint64(i), body)); err != nil {
			break // queue full is fine; we just want a backlog
		}
	}
	done := make(chan struct{})
	go func() {
		src.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a stuck writer")
	}
	st := src.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after Close, want 0", st.QueueDepth)
	}
	if st.Writers != 0 {
		t.Fatalf("writers %d after Close, want 0", st.Writers)
	}
}

// TestTopicSendAfterClose covers both detach paths: a topic transport must
// fail Sends with ErrClosed after its own Close and after Mux.Close, rather
// than silently stamping frames onto the (possibly closed) base.
func TestTopicSendAfterClose(t *testing.T) {
	net1 := NewInMemNetwork()
	baseA, _ := net1.Endpoint("a")
	baseB, _ := net1.Endpoint("b")
	defer baseB.Close()
	muxA := NewMux(baseA)
	muxB := NewMux(baseB)
	defer muxB.Close()

	tp, err := muxA.Topic("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Send("b", helloFrame("a")); err != nil {
		t.Fatalf("send on live topic: %v", err)
	}
	tp.Close()
	if err := tp.Send("b", helloFrame("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after topic Close = %v, want ErrClosed", err)
	}

	// Second path: Mux.Close must detach topics created before it.
	tp2, err := muxA.Topic("y")
	if err != nil {
		t.Fatal(err)
	}
	muxA.Close()
	if err := tp2.Send("b", helloFrame("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after Mux.Close = %v, want ErrClosed", err)
	}
}

// TestCloseTopicDetachesSend covers the third detach path, CloseTopic
// called directly on the mux.
func TestCloseTopicDetachesSend(t *testing.T) {
	net1 := NewInMemNetwork()
	base, _ := net1.Endpoint("a")
	mux := NewMux(base)
	defer mux.Close()
	tp, err := mux.Topic("x")
	if err != nil {
		t.Fatal(err)
	}
	mux.CloseTopic("x")
	if err := tp.Send("b", helloFrame("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after CloseTopic = %v, want ErrClosed", err)
	}
	// A re-created topic is a fresh, usable transport.
	tp2, err := mux.Topic("x")
	if err != nil {
		t.Fatal(err)
	}
	if tp2 == tp {
		t.Fatal("closed topic transport was reused")
	}
}
