package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"ringcast/internal/wire"
)

// Send-pipeline tuning defaults. The live values are per-transport atomics
// (TCPTransport.queueCap / batchBytes / idleNanos) so the config engine can
// re-tune a running pipeline; these exported constants seed them and give
// the config layer its registered defaults.
const (
	// DefaultSendQueueCap bounds the frames queued per destination. At
	// gossip frame sizes (~100 bytes) a full queue is ~50 KB; at the 1 MB
	// body limit the byte batching below still keeps single writes bounded.
	DefaultSendQueueCap = 512
	// DefaultMaxBatchBytes caps the bytes coalesced into one Write call so
	// a backlog of large dissemination payloads cannot produce a write that
	// outlives the write deadline.
	DefaultMaxBatchBytes = 256 << 10
	// DefaultWriterIdle is how long a writer with an empty queue keeps its
	// connection warm before evicting itself. Three paper-scale gossip
	// cycles (10 s each) comfortably fit, so steady-state neighbors reuse
	// one connection.
	DefaultWriterIdle = 30 * time.Second
)

// outFrame is one queued outbound frame, already length-prefixed.
type outFrame struct {
	buf       []byte
	droppable bool
}

// peerQueue is one destination's bounded outbound queue plus the state of
// its lazily spawned writer goroutine. Send enqueues under mu and returns;
// the writer dials, drains the queue in coalesced batches, and evicts
// itself after the transport's writer-idle period of silence.
type peerQueue struct {
	addr string
	wake chan struct{} // buffered(1): "queue went non-empty"

	mu         sync.Mutex
	q          []outFrame
	running    bool     // writer goroutine alive
	retired    bool     // idle-evicted and removed from the map: do not reuse
	terminated bool     // transport closed: writer must exit, Sends fail
	err        error    // sticky failure from the last writer, surfaced to one Send
	conn       net.Conn // owned by the writer; closed by Close to unblock writes
}

// peer returns the queue for addr, creating it if needed.
func (t *TCPTransport) peer(addr string) (*peerQueue, error) {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	pq, ok := t.conns[addr]
	if !ok {
		pq = &peerQueue{addr: addr, wake: make(chan struct{}, 1)}
		t.conns[addr] = pq
	}
	return pq, nil
}

// enqueue applies the overflow policy and hands the frame to addr's writer,
// spawning one if none is running. It never blocks on the network.
func (t *TCPTransport) enqueue(to string, of outFrame) error {
	var pq *peerQueue
	for {
		var err error
		pq, err = t.peer(to)
		if err != nil {
			return err
		}
		pq.mu.Lock()
		if !pq.retired {
			break
		}
		// Lost a race with idle eviction: this queue was already removed
		// from the map. Loop to create (or find) its replacement — spawning
		// a writer on the orphan would escape Close's termination sweep.
		pq.mu.Unlock()
	}
	if pq.terminated {
		pq.mu.Unlock()
		return ErrClosed
	}
	if err := pq.err; err != nil {
		// The previous writer died trying to reach this peer. Surface the
		// failure to exactly one Send — the liveness signal gossip protocols
		// expect — and let the next Send redial.
		pq.err = nil
		pq.mu.Unlock()
		return err
	}
	if len(pq.q) >= int(t.queueCap.Load()) {
		if !of.droppable {
			pq.mu.Unlock()
			t.rejects.Add(1)
			return fmt.Errorf("%w: %s", ErrQueueFull, to)
		}
		if !dropOldestDroppable(pq) {
			// Queue is entirely dissemination payloads; shed the new gossip
			// frame instead — the next cycle supersedes it anyway.
			pq.mu.Unlock()
			t.drops.Add(1)
			return nil
		}
		t.drops.Add(1)
		t.queueDepth.Add(-1)
	}
	pq.q = append(pq.q, of)
	t.queueDepth.Add(1)
	spawn := !pq.running
	if spawn {
		pq.running = true
		// wg.Add under pq.mu: Close marks terminated under the same lock, so
		// either this writer is registered before Close's Wait, or enqueue
		// observed terminated above and never got here.
		t.wg.Add(1)
		t.writers.Add(1)
	}
	pq.mu.Unlock()
	if spawn {
		go t.runWriter(pq)
	} else {
		select {
		case pq.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// dropOldestDroppable evicts the oldest droppable frame. Caller holds pq.mu.
func dropOldestDroppable(pq *peerQueue) bool {
	for i, of := range pq.q {
		if of.droppable {
			copy(pq.q[i:], pq.q[i+1:])
			pq.q[len(pq.q)-1] = outFrame{} // release the buffer reference
			pq.q = pq.q[:len(pq.q)-1]
			return true
		}
	}
	return false
}

// runWriter is the dedicated writer goroutine for one destination: dial,
// then drain the queue in coalesced batches until failure, transport close,
// or idle eviction.
func (t *TCPTransport) runWriter(pq *peerQueue) {
	defer t.wg.Done()
	defer t.writers.Add(-1)
	d := net.Dialer{Timeout: dialTimeout, Cancel: t.done}
	c, err := d.Dial("tcp", pq.addr)
	if err != nil {
		t.dialFailures.Add(1)
		t.failWriter(pq, fmt.Errorf("%w: %s: %v", ErrUnreachable, pq.addr, err))
		return
	}
	pq.mu.Lock()
	if pq.terminated {
		pq.mu.Unlock()
		c.Close()
		return
	}
	pq.conn = c
	pq.mu.Unlock()

	idle := time.NewTimer(time.Duration(t.idleNanos.Load()))
	defer idle.Stop()
	var batch []byte
	for {
		batch = batch[:0]
		n := 0
		maxBatch := int(t.batchBytes.Load())
		pq.mu.Lock()
		for _, of := range pq.q {
			if n > 0 && len(batch)+len(of.buf) > maxBatch {
				break
			}
			batch = append(batch, of.buf...)
			n++
		}
		if n > 0 {
			rem := copy(pq.q, pq.q[n:])
			clear(pq.q[rem:]) // release sent-buffer references in the tail
			pq.q = pq.q[:rem]
			t.queueDepth.Add(int64(-n))
		}
		term := pq.terminated
		pq.mu.Unlock()
		if term {
			c.Close()
			return
		}
		if n == 0 {
			// One reusable timer per writer: a time.After here would park a
			// fresh 30s timer in the runtime heap on every drain cycle.
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(time.Duration(t.idleNanos.Load()))
			select {
			case <-pq.wake:
				continue
			case <-idle.C:
				if t.retireIfIdle(pq) {
					c.Close()
					return
				}
				continue
			case <-t.done:
				c.Close()
				return
			}
		}
		c.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := c.Write(batch); err != nil {
			c.Close()
			// The batch was consumed from the queue but never arrived.
			t.drops.Add(int64(n))
			t.failWriter(pq, fmt.Errorf("%w: %s: %v", ErrUnreachable, pq.addr, err))
			return
		}
		t.framesSent.Add(int64(n))
		t.bytesSent.Add(int64(len(batch)))
	}
}

// failWriter records a writer's death: pending frames are shed (counted as
// drops) and the error is parked for the next Send to report.
func (t *TCPTransport) failWriter(pq *peerQueue, err error) {
	pq.mu.Lock()
	dropped := len(pq.q)
	pq.q = nil
	pq.conn = nil
	pq.running = false
	if !pq.terminated {
		pq.err = err
	}
	pq.mu.Unlock()
	if dropped > 0 {
		t.drops.Add(int64(dropped))
		t.queueDepth.Add(int64(-dropped))
	}
}

// retireIfIdle removes an idle writer and its map entry so a quiet peer
// costs nothing. Lock order: cmu then pq.mu, matching peer creation.
func (t *TCPTransport) retireIfIdle(pq *peerQueue) bool {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.terminated {
		return true
	}
	if len(pq.q) > 0 {
		return false
	}
	pq.running = false
	pq.retired = true
	pq.conn = nil
	if t.conns[pq.addr] == pq {
		delete(t.conns, pq.addr)
	}
	return true
}

// frameBytes length-prefixes a marshalled frame for the TCP stream.
func frameBytes(f *wire.Frame) ([]byte, error) {
	buf, err := wire.Marshal(f)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 4+len(buf))
	binary.BigEndian.PutUint32(msg, uint32(len(buf)))
	copy(msg[4:], buf)
	return msg, nil
}
