package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ringcast/internal/wire"
)

// collector is a Handler that records frames.
type collector struct {
	mu     sync.Mutex
	frames []*wire.Frame
	remote []string
	signal chan struct{}
}

func newCollector() *collector {
	return &collector{signal: make(chan struct{}, 64)}
}

func (c *collector) handle(remote string, f *wire.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.remote = append(c.remote, remote)
	c.mu.Unlock()
	select {
	case c.signal <- struct{}{}:
	default:
	}
}

func (c *collector) waitFor(t *testing.T, n int) []*wire.Frame {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.frames) >= n {
			out := append([]*wire.Frame(nil), c.frames...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.signal:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames", n)
		}
	}
}

func helloFrame(fromAddr string) *wire.Frame {
	return &wire.Frame{Kind: wire.KindHello, From: 1, FromAddr: fromAddr}
}

func TestInMemDelivery(t *testing.T) {
	net := NewInMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	col := newCollector()
	b.SetHandler(col.handle)
	if err := a.Send("b", helloFrame("a")); err != nil {
		t.Fatal(err)
	}
	frames := col.waitFor(t, 1)
	if frames[0].Kind != wire.KindHello || frames[0].FromAddr != "a" {
		t.Fatalf("got %+v", frames[0])
	}
}

func TestInMemUnknownDestination(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	defer a.Close()
	err := a.Send("ghost", helloFrame("a"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestInMemDuplicateAddress(t *testing.T) {
	net := NewInMemNetwork()
	_, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if _, err := net.Endpoint(""); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestInMemCrashAndClose(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(func(string, *wire.Frame) {})
	net.Crash("b")
	if err := a.Send("b", helloFrame("a")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send to crashed = %v, want ErrUnreachable", err)
	}
	a.Close()
	if err := a.Send("b", helloFrame("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}

func TestInMemLossInjection(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	b.SetHandler(func(string, *wire.Frame) {})
	net.SetLoss(1.0, 7)
	if err := a.Send("b", helloFrame("a")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("total loss: err = %v, want ErrUnreachable", err)
	}
	net.SetLoss(0, 7)
	if err := a.Send("b", helloFrame("a")); err != nil {
		t.Fatalf("no loss: err = %v", err)
	}
}

func TestInMemPartitionAndHeal(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	b.SetHandler(func(string, *wire.Frame) {})
	a.SetHandler(func(string, *wire.Frame) {})
	net.Partition("a", "b")
	if err := a.Send("b", helloFrame("a")); !errors.Is(err, ErrUnreachable) {
		t.Fatal("partition not enforced a->b")
	}
	if err := b.Send("a", helloFrame("b")); !errors.Is(err, ErrUnreachable) {
		t.Fatal("partition not enforced b->a")
	}
	net.Heal("a", "b")
	if err := a.Send("b", helloFrame("a")); err != nil {
		t.Fatalf("heal failed: %v", err)
	}
}

func TestInMemCodecEnforced(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	b.SetHandler(func(string, *wire.Frame) {})
	bad := &wire.Frame{Kind: 0} // unencodable
	if err := a.Send("b", bad); err == nil {
		t.Fatal("invalid frame accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	colA, colB := newCollector(), newCollector()
	a.SetHandler(colA.handle)
	b.SetHandler(colB.handle)

	f := &wire.Frame{Kind: wire.KindGossip, From: 9, FromAddr: a.Addr(),
		Msg: &wire.Message{ID: wire.MsgID{Origin: 9, Seq: 1}, Body: []byte("hi")}}
	if err := a.Send(b.Addr(), f); err != nil {
		t.Fatal(err)
	}
	frames := colB.waitFor(t, 1)
	if string(frames[0].Msg.Body) != "hi" {
		t.Fatalf("body = %q", frames[0].Msg.Body)
	}
	// Reply using the announced address.
	reply := &wire.Frame{Kind: wire.KindHelloAck, From: 10, FromAddr: b.Addr()}
	if err := b.Send(frames[0].FromAddr, reply); err != nil {
		t.Fatal(err)
	}
	got := colA.waitFor(t, 1)
	if got[0].Kind != wire.KindHelloAck {
		t.Fatalf("reply kind = %v", got[0].Kind)
	}
}

func TestTCPManyFramesOneConnection(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	b, _ := ListenTCP("127.0.0.1:0")
	defer b.Close()
	col := newCollector()
	b.SetHandler(col.handle)
	const n = 200
	for i := 0; i < n; i++ {
		f := helloFrame(a.Addr())
		f.Seq = uint64(i)
		if err := a.Send(b.Addr(), f); err != nil {
			t.Fatal(err)
		}
	}
	frames := col.waitFor(t, n)
	seen := map[uint64]bool{}
	for _, f := range frames[:n] {
		seen[f.Seq] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct seqs = %d, want %d", len(seen), n)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	dst, _ := ListenTCP("127.0.0.1:0")
	defer dst.Close()
	col := newCollector()
	dst.SetHandler(col.handle)
	src, _ := ListenTCP("127.0.0.1:0")
	defer src.Close()
	src.SetHandler(func(string, *wire.Frame) {})
	var wg sync.WaitGroup
	const workers, per = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f := helloFrame(src.Addr())
				f.Seq = uint64(w*1000 + i)
				if err := src.Send(dst.Addr(), f); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	col.waitFor(t, workers*per)
}

func TestTCPSendToDeadPeer(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	defer a.Close()
	b, _ := ListenTCP("127.0.0.1:0")
	baddr := b.Addr()
	b.Close()
	// Sends are async: the first Send queues and spawns a writer whose dial
	// fails; the failure is surfaced on a subsequent Send. Keep probing until
	// the liveness signal arrives.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(baddr, helloFrame(a.Addr())); err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("err = %v, want ErrUnreachable", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no send to a dead peer ever reported an error")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if a.Stats().DialFailures == 0 {
		t.Fatal("dial failure not counted in Stats")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _ := ListenTCP("127.0.0.1:0")
	a.Close()
	if err := a.Send("127.0.0.1:1", helloFrame("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMuxRoutesByTopic(t *testing.T) {
	net := NewInMemNetwork()
	baseA, _ := net.Endpoint("a")
	baseB, _ := net.Endpoint("b")
	muxA, muxB := NewMux(baseA), NewMux(baseB)
	defer muxA.Close()
	defer muxB.Close()

	newsA, err := muxA.Topic("news")
	if err != nil {
		t.Fatal(err)
	}
	newsB, _ := muxB.Topic("news")
	sportB, _ := muxB.Topic("sport")

	colNews, colSport := newCollector(), newCollector()
	newsB.SetHandler(colNews.handle)
	sportB.SetHandler(colSport.handle)

	if err := newsA.Send("b", helloFrame("a")); err != nil {
		t.Fatal(err)
	}
	frames := colNews.waitFor(t, 1)
	if frames[0].Topic != "news" {
		t.Fatalf("topic = %q, want news", frames[0].Topic)
	}
	colSport.mu.Lock()
	sportCount := len(colSport.frames)
	colSport.mu.Unlock()
	if sportCount != 0 {
		t.Fatal("frame leaked to wrong topic")
	}
}

func TestMuxStrayTopicDropped(t *testing.T) {
	net := NewInMemNetwork()
	baseA, _ := net.Endpoint("a")
	baseB, _ := net.Endpoint("b")
	muxA, muxB := NewMux(baseA), NewMux(baseB)
	defer muxA.Close()
	defer muxB.Close()
	ghost, _ := muxA.Topic("ghost")
	if err := ghost.Send("b", helloFrame("a")); err != nil {
		t.Fatal(err) // delivery succeeds; receiver drops silently
	}
	// The send is async end to end now: poll until the stray counter moves.
	deadline := time.After(2 * time.Second)
	for muxB.StrayFrames() != 1 {
		select {
		case <-deadline:
			t.Fatalf("StrayFrames = %d, want 1", muxB.StrayFrames())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestMuxTopicLifecycle(t *testing.T) {
	net := NewInMemNetwork()
	base, _ := net.Endpoint("a")
	mux := NewMux(base)
	tp, err := mux.Topic("x")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Addr() != "a" {
		t.Fatalf("topic addr = %q", tp.Addr())
	}
	tp2, _ := mux.Topic("x")
	if tp != tp2 {
		t.Fatal("same topic returned different transports")
	}
	tp.Close()
	tp3, _ := mux.Topic("x")
	if tp3 == tp {
		t.Fatal("closed topic transport was reused")
	}
	mux.Close()
	if _, err := mux.Topic("y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Topic after Close = %v, want ErrClosed", err)
	}
}

func TestMuxRejectsHugeTopic(t *testing.T) {
	net := NewInMemNetwork()
	base, _ := net.Endpoint("a")
	mux := NewMux(base)
	defer mux.Close()
	long := make([]byte, wire.MaxTopicLen+1)
	if _, err := mux.Topic(string(long)); err == nil {
		t.Fatal("oversized topic accepted")
	}
}

// Regression for the per-topic stats misattribution: topicTransport.Stats
// and Mux.Stats used to return the shared base aggregate, so each topic
// reported mux-wide counters as its own and summing per-topic stats
// overcounted by the topic count. Now two topics' counters must sum exactly
// to the base aggregate (the in-memory transport counts marshalled frame
// bytes with no framing overhead, so equality is exact).
func TestMuxPerTopicStatsSumToBase(t *testing.T) {
	net := NewInMemNetwork()
	baseA, _ := net.Endpoint("a")
	baseB, _ := net.Endpoint("b")
	muxA, muxB := NewMux(baseA), NewMux(baseB)
	defer muxA.Close()
	defer muxB.Close()
	news, err := muxA.Topic("news")
	if err != nil {
		t.Fatal(err)
	}
	sport, err := muxA.Topic("sport")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []string{"news", "sport"} {
		if _, err := muxB.Topic(tp); err != nil {
			t.Fatal(err)
		}
	}

	const newsSends, sportSends = 7, 3
	for i := 0; i < newsSends; i++ {
		if err := news.Send("b", helloFrame("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sportSends; i++ {
		if err := sport.Send("b", helloFrame("a")); err != nil {
			t.Fatal(err)
		}
	}

	stNews, stSport := news.Stats(), sport.Stats()
	if stNews.FramesSent != newsSends || stSport.FramesSent != sportSends {
		t.Fatalf("per-topic frames = %d/%d, want %d/%d",
			stNews.FramesSent, stSport.FramesSent, newsSends, sportSends)
	}
	if stNews.BytesSent == stSport.BytesSent {
		t.Fatal("different send counts should yield different byte counters")
	}
	base := muxA.Base()
	if got := stNews.FramesSent + stSport.FramesSent; got != base.FramesSent {
		t.Fatalf("topic frames %d do not sum to base %d", got, base.FramesSent)
	}
	if got := stNews.BytesSent + stSport.BytesSent; got != base.BytesSent {
		t.Fatalf("topic bytes %d do not sum to base %d", got, base.BytesSent)
	}
	sum := muxA.Stats()
	if sum.FramesSent != base.FramesSent || sum.BytesSent != base.BytesSent {
		t.Fatalf("Mux.Stats %+v disagrees with base %+v", sum, base)
	}
}

func TestInMemHandlerlessDrop(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	// no handler on b
	if err := a.Send("b", helloFrame("a")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		if b.Dropped() >= 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("frame not counted as dropped")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestErrorsAreDistinguishable(t *testing.T) {
	if errors.Is(ErrClosed, ErrUnreachable) {
		t.Fatal("sentinel errors must be distinct")
	}
	wrapped := fmt.Errorf("%w: somewhere", ErrUnreachable)
	if !errors.Is(wrapped, ErrUnreachable) {
		t.Fatal("wrapping broken")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	col := newCollector()
	b.SetHandler(col.handle)
	f := helloFrame(a.Addr())
	f.Seq = 77
	if err := a.Send(b.Addr(), f); err != nil {
		t.Fatal(err)
	}
	frames := col.waitFor(t, 1)
	if frames[0].Seq != 77 || frames[0].FromAddr != a.Addr() {
		t.Fatalf("got %+v", frames[0])
	}
	// Reply path via announced address.
	colA := newCollector()
	a.SetHandler(colA.handle)
	if err := b.Send(frames[0].FromAddr, helloFrame(b.Addr())); err != nil {
		t.Fatal(err)
	}
	colA.waitFor(t, 1)
}

func TestUDPFrameTooLarge(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	f := &wire.Frame{Kind: wire.KindGossip, From: 1,
		Msg: &wire.Message{ID: wire.MsgID{Origin: 1, Seq: 1}, Body: make([]byte, MaxDatagram+1)}}
	if err := a.Send("127.0.0.1:9", f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	a, _ := ListenUDP("127.0.0.1:0")
	a.Close()
	if err := a.Send("127.0.0.1:9", helloFrame("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestUDPBadDestination(t *testing.T) {
	a, _ := ListenUDP("127.0.0.1:0")
	defer a.Close()
	if err := a.Send("not-an-address", helloFrame("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestUDPNodesGossipAndDisseminate(t *testing.T) {
	// A tiny live cluster over UDP datagrams: the gossip protocols do not
	// care about the transport's reliability class.
	if testing.Short() {
		t.Skip("UDP cluster test skipped in -short mode")
	}
	// Use the node package indirectly: just verify frames flow both ways
	// and the mux works over UDP too.
	base, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := NewMux(base)
	defer mux.Close()
	topicTr, err := mux.Topic("t")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerMux := NewMux(peer)
	defer peerMux.Close()
	peerTopic, _ := peerMux.Topic("t")
	col := newCollector()
	peerTopic.SetHandler(col.handle)
	if err := topicTr.Send(peer.Addr(), helloFrame(base.Addr())); err != nil {
		t.Fatal(err)
	}
	frames := col.waitFor(t, 1)
	if frames[0].Topic != "t" {
		t.Fatalf("topic = %q", frames[0].Topic)
	}
}

func TestInMemOverflowDropsInsteadOfBlocking(t *testing.T) {
	net := NewInMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	defer a.Close()
	defer b.Close()
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	b.SetHandler(func(string, *wire.Frame) {
		once.Do(func() { close(blocked) })
		<-release
	})
	// Saturate: 1 frame stuck in the handler + inboxSize queued + overflow.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < inboxSize+50; i++ {
			if err := a.Send("b", helloFrame("a")); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	<-blocked
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender blocked on a full inbox")
	}
	if b.Overflow() == 0 {
		t.Fatal("no overflow recorded despite saturation")
	}
	close(release)
}
