// Package transport abstracts how live nodes exchange wire frames — the
// socket layer under the paper's deployment story (Section 8's topic-based
// middleware, one overlay per topic). Implementations: an in-memory fabric
// for tests, examples and single-process clusters, TCP and UDP endpoints
// for real deployments, a topic Mux that layers pub/sub routing on top of
// any base transport, and a FaultInjector wrapper that black-holes,
// degrades or delays links under control of the scenario engine
// (internal/scenario).
//
// Determinism contract: live transports are inherently asynchronous —
// frame interleaving depends on goroutine and kernel scheduling, unlike the
// simulators — but every injected fault is reproducible: the FaultInjector
// draws loss from its own seeded stream, and the InMemNetwork's injected
// loss is seeded the same way. Counters (Stats) are monotonic and safe to
// read concurrently.
package transport

import (
	"errors"

	"ringcast/internal/wire"
)

// Handler consumes an inbound frame. remote is the sender's listen address
// as announced in the frame, suitable for replying via Send. Handlers are
// invoked sequentially per endpoint; implementations must not block
// indefinitely.
type Handler func(remote string, f *wire.Frame)

// Transport moves frames between named endpoints.
type Transport interface {
	// Addr returns this endpoint's stable address, usable by peers in Send.
	Addr() string
	// SetHandler installs the inbound frame handler. It must be called
	// exactly once, before any frame is expected; frames arriving earlier
	// are dropped.
	SetHandler(h Handler)
	// Send hands one frame to the transport for delivery to the endpoint at
	// addr. Send must not block on a slow destination: implementations either
	// queue the frame (TCP), hand it to the kernel (UDP), or drop under
	// overload. An error means the frame was NOT accepted — unreachable
	// destinations (evidence of peer death for gossip protocols), a closed
	// endpoint, or local backpressure (ErrQueueFull, which signals congestion
	// rather than peer death).
	Send(to string, f *wire.Frame) error
	// Stats returns a snapshot of the endpoint's runtime counters.
	Stats() Stats
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// Common transport errors.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable is returned when the destination does not exist or
	// refuses delivery.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrQueueFull is returned when a non-droppable frame cannot be queued
	// because the destination's outbound queue is at capacity. It signals
	// local congestion, not peer death: callers should NOT evict the peer.
	ErrQueueFull = errors.New("transport: outbound queue full")
)

// Stats is a snapshot of a transport endpoint's counters. All fields are
// cumulative except QueueDepth and Writers, which are instantaneous gauges.
type Stats struct {
	// FramesSent counts frames actually written to the network.
	FramesSent int64
	// BytesSent counts wire bytes written (including length prefixes).
	BytesSent int64
	// QueueDepth is the number of frames currently queued across all peers.
	QueueDepth int64
	// Writers is the number of live per-peer writer goroutines.
	Writers int64
	// Drops counts frames accepted by Send but later discarded: overflow
	// drop-oldest evictions, frames flushed when a peer's connection failed,
	// and frames abandoned at Close.
	Drops int64
	// Rejects counts Send calls refused with ErrQueueFull (non-droppable
	// frame, full queue). The caller saw the error, so these are accounted
	// separately from silent Drops.
	Rejects int64
	// DialFailures counts outbound connection attempts that failed.
	DialFailures int64
}

// Droppable reports whether a frame may be silently discarded under
// backpressure. Periodic gossip exchanges (shuffles, vicinity trades,
// handshakes) are — the next cycle supersedes them, and dropping the oldest
// keeps the freshest view data flowing. Dissemination payloads (KindGossip)
// are not: the application message would be lost silently, so Send reports
// ErrQueueFull instead and lets the caller fail over to another target.
func Droppable(f *wire.Frame) bool { return f.Kind != wire.KindGossip }
