// Package transport abstracts how live nodes exchange wire frames. Two
// implementations ship with the library: an in-memory transport for tests,
// examples and single-process clusters (with fault injection for failure
// experiments), and a TCP transport for real deployments. A topic Mux layers
// pub/sub routing on top of any base transport.
package transport

import (
	"errors"

	"ringcast/internal/wire"
)

// Handler consumes an inbound frame. remote is the sender's listen address
// as announced in the frame, suitable for replying via Send. Handlers are
// invoked sequentially per endpoint; implementations must not block
// indefinitely.
type Handler func(remote string, f *wire.Frame)

// Transport moves frames between named endpoints.
type Transport interface {
	// Addr returns this endpoint's stable address, usable by peers in Send.
	Addr() string
	// SetHandler installs the inbound frame handler. It must be called
	// exactly once, before any frame is expected; frames arriving earlier
	// are dropped.
	SetHandler(h Handler)
	// Send delivers one frame to the endpoint at addr. It returns an error
	// when the destination is unreachable — which gossip protocols treat as
	// evidence of peer death.
	Send(to string, f *wire.Frame) error
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// Common transport errors.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable is returned when the destination does not exist or
	// refuses delivery.
	ErrUnreachable = errors.New("transport: destination unreachable")
)
