package transport

import (
	"net"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ringcast/internal/wire"
)

// failingUDPConn simulates a UDP socket whose fd has gone bad: every read
// fails immediately with a transient error.
type failingUDPConn struct {
	reads  atomic.Int64
	closed atomic.Bool
}

func (c *failingUDPConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	c.reads.Add(1)
	if c.closed.Load() {
		return 0, nil, net.ErrClosed
	}
	return 0, nil, &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
}

func (c *failingUDPConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return len(b), nil
}

func (c *failingUDPConn) LocalAddr() net.Addr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

func (c *failingUDPConn) Close() error {
	c.closed.Store(true)
	return nil
}

// TestUDPReadLoopBacksOffOnPersistentError verifies the read loop does not
// hot-spin when reads fail persistently: with exponential backoff a 200ms
// window admits only a handful of attempts (5+10+20+40+80+... ms), where the
// unthrottled `continue` made millions.
func TestUDPReadLoopBacksOffOnPersistentError(t *testing.T) {
	conn := &failingUDPConn{}
	tr := newUDPWithConn(conn)
	defer tr.Close()

	time.Sleep(200 * time.Millisecond)
	attempts := conn.reads.Load()
	if attempts == 0 {
		t.Fatal("read loop never ran")
	}
	if attempts > 50 {
		t.Fatalf("read loop made %d attempts in 200ms — hot-spinning, backoff broken", attempts)
	}
}

// TestUDPReadLoopBackoffUnblocksOnClose verifies Close doesn't have to wait
// out a pending backoff sleep.
func TestUDPReadLoopBackoffUnblocksOnClose(t *testing.T) {
	conn := &failingUDPConn{}
	tr := newUDPWithConn(conn)
	time.Sleep(150 * time.Millisecond) // let the backoff grow

	done := make(chan struct{})
	go func() {
		tr.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on read-loop backoff")
	}
}

// flakyUDPConn fails a fixed number of reads, succeeds once, then fails
// forever — distinguishing a backoff that resets on success from one that
// keeps growing.
type flakyUDPConn struct {
	failingUDPConn
	failsLeft   atomic.Int64
	succeeded   atomic.Bool
	postSuccess atomic.Int64
}

func (c *flakyUDPConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	if c.closed.Load() {
		return 0, nil, net.ErrClosed
	}
	if c.failsLeft.Add(-1) >= 0 {
		return 0, nil, &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
	}
	if c.succeeded.CompareAndSwap(false, true) {
		// One well-formed datagram: an encoded hello frame.
		f, err := frameBytes(helloFrame("127.0.0.1:9"))
		if err != nil {
			return 0, nil, err
		}
		n := copy(b, f[4:]) // strip the TCP length prefix; UDP frames are bare
		return n, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}, nil
	}
	c.postSuccess.Add(1)
	return 0, nil, &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNREFUSED}
}

// TestUDPReadLoopBackoffResetsAfterSuccess verifies the backoff restarts
// from the minimum once a read succeeds, mirroring the TCP accept loop.
func TestUDPReadLoopBackoffResetsAfterSuccess(t *testing.T) {
	conn := &flakyUDPConn{}
	conn.failsLeft.Store(5)
	tr := newUDPWithConn(conn)
	tr.SetHandler(func(string, *wire.Frame) {})
	defer tr.Close()

	deadline := time.Now().Add(2 * time.Second)
	for !conn.succeeded.Load() {
		if time.Now().After(deadline) {
			t.Fatal("read loop never reached the successful read")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	attempts := conn.postSuccess.Load()
	if attempts < 4 {
		t.Fatalf("only %d read attempts in 500ms after a success — backoff did not reset", attempts)
	}
	if attempts > 100 {
		t.Fatalf("%d read attempts in 500ms after a success — backoff not applied at all", attempts)
	}
}
