package transport

import "time"

// expBackoff throttles a loop that is failing persistently (accept or read
// errors on a wedged socket): successive sleeps grow exponentially from
// acceptBackoffMin to acceptBackoffMax, and a success resets the schedule.
type expBackoff struct {
	d time.Duration
}

// sleep waits out the next backoff step. It returns false when done closes
// first, so callers can exit promptly on shutdown.
func (b *expBackoff) sleep(done <-chan struct{}) bool {
	if b.d == 0 {
		b.d = acceptBackoffMin
	} else if b.d < acceptBackoffMax {
		b.d *= 2
		if b.d > acceptBackoffMax {
			b.d = acceptBackoffMax
		}
	}
	select {
	case <-time.After(b.d):
		return true
	case <-done:
		return false
	}
}

// reset restarts the schedule from the minimum; call it after a success.
func (b *expBackoff) reset() { b.d = 0 }
