package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ringcast/internal/wire"
)

// FaultInjector wraps a Transport with scenario-driven fault injection
// between real nodes: pairwise partitions (black-holed destinations),
// per-copy message loss, and added delivery delay. It is the live runtime's
// injection surface of the scenario engine — the counterpart of the
// simulators' FaultModel hooks.
//
// Faults are injected on the outbound path, before the inner transport sees
// the frame, so they compose with any base transport (TCP, UDP, in-memory,
// mux topics). A blocked or lost frame is swallowed silently — like a
// black-holed route or a congested switch, not like a connection refusal —
// and counted as an injected drop: Stats() reports the inner transport's
// counters with Drops increased by the injected count, so the PR 3 stats
// plumbing (node.TransportStats, pubsub.Peer.TransportStats, the
// ringcast-node status line) surfaces injected faults with no extra wiring.
//
// Loss draws come from the injector's own seeded rng, so a live experiment
// is reproducible for a given seed and frame order. All methods are safe
// for concurrent use.
type FaultInjector struct {
	inner Transport

	mu      sync.Mutex
	rng     *rand.Rand
	loss    float64
	delay   time.Duration
	blocked map[string]struct{}

	injected atomic.Int64
	closed   atomic.Bool
}

var _ Transport = (*FaultInjector)(nil)

// WrapFaults wraps inner with a fault injector. seed drives the loss draws.
func WrapFaults(inner Transport, seed int64) *FaultInjector {
	return &FaultInjector{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[string]struct{}),
	}
}

// SetLoss sets the per-frame drop probability (0 disables loss, 1 drops
// everything).
func (fi *FaultInjector) SetLoss(rate float64) {
	fi.mu.Lock()
	fi.loss = rate
	fi.mu.Unlock()
}

// SetDelay adds a fixed delay before frames are handed to the inner
// transport (0 disables). Delayed frames are re-ordered relative to
// non-delayed ones, as on a real degraded path.
func (fi *FaultInjector) SetDelay(d time.Duration) {
	fi.mu.Lock()
	fi.delay = d
	fi.mu.Unlock()
}

// Block partitions this endpoint from the given destination addresses:
// frames to them are black-holed (and counted as injected drops) until
// Unblock or HealAll.
func (fi *FaultInjector) Block(addrs ...string) {
	fi.mu.Lock()
	for _, a := range addrs {
		fi.blocked[a] = struct{}{}
	}
	fi.mu.Unlock()
}

// Unblock restores connectivity to the given destinations.
func (fi *FaultInjector) Unblock(addrs ...string) {
	fi.mu.Lock()
	for _, a := range addrs {
		delete(fi.blocked, a)
	}
	fi.mu.Unlock()
}

// HealAll removes every active partition (loss and delay are unaffected).
func (fi *FaultInjector) HealAll() {
	fi.mu.Lock()
	fi.blocked = make(map[string]struct{})
	fi.mu.Unlock()
}

// InjectedDrops reports how many frames the injector has swallowed
// (partition plus loss) since creation.
func (fi *FaultInjector) InjectedDrops() int64 { return fi.injected.Load() }

// Addr implements Transport.
func (fi *FaultInjector) Addr() string { return fi.inner.Addr() }

// SetHandler implements Transport. Inbound frames are not subject to
// injection (faults are modelled on the sender side, once per link).
func (fi *FaultInjector) SetHandler(h Handler) { fi.inner.SetHandler(h) }

// Send implements Transport, applying partition, loss and delay before
// delegating to the inner transport.
func (fi *FaultInjector) Send(to string, f *wire.Frame) error {
	if fi.closed.Load() {
		return ErrClosed
	}
	fi.mu.Lock()
	_, blocked := fi.blocked[to]
	lost := !blocked && fi.loss > 0 && fi.rng.Float64() < fi.loss
	delay := fi.delay
	fi.mu.Unlock()
	if blocked || lost {
		fi.injected.Add(1)
		return nil
	}
	if delay > 0 {
		time.AfterFunc(delay, func() {
			if fi.closed.Load() {
				fi.injected.Add(1)
				return
			}
			// Best effort: the sender already returned, so a late failure is
			// swallowed like in-flight loss on a real degraded path.
			fi.inner.Send(to, f)
		})
		return nil
	}
	return fi.inner.Send(to, f)
}

// Stats implements Transport: the inner transport's counters with injected
// drops folded into Drops.
func (fi *FaultInjector) Stats() Stats {
	s := fi.inner.Stats()
	s.Drops += fi.injected.Load()
	return s
}

// Close implements Transport: closes the inner transport. Frames still
// held by a pending delay are discarded (counted as injected drops) when
// their timers fire.
func (fi *FaultInjector) Close() error {
	fi.closed.Store(true)
	return fi.inner.Close()
}
