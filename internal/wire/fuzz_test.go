package wire

import (
	"bytes"
	"testing"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

// FuzzUnmarshal drives the decoder with arbitrary bytes: it must never
// panic, and every successfully decoded frame must re-encode to an
// equivalent frame (decode/encode/decode fixpoint).
func FuzzUnmarshal(f *testing.F) {
	seed := [][]byte{
		{},
		{0x01},
		{0xFF, 0x00, 0x01},
	}
	if buf, err := Marshal(&Frame{Kind: KindHello, From: 1, FromAddr: "a"}); err == nil {
		seed = append(seed, buf)
	}
	if buf, err := Marshal(&Frame{
		Kind: KindGossip, From: 2,
		Msg: &Message{ID: MsgID{Origin: 2, Seq: 9}, Hop: 1, Body: []byte("x")},
	}); err == nil {
		seed = append(seed, buf)
	}
	if buf, err := Marshal(&Frame{
		Kind:    KindShuffleRequest,
		From:    3,
		Entries: []view.Entry{{Node: ident.ID(4), Addr: "b", Age: 7}},
	}); err == nil {
		seed = append(seed, buf)
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := Marshal(fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v (%+v)", err, fr)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a fixpoint:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzRoundTrip drives Marshal/Unmarshal with arbitrary field values.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), "addr", "topic", uint64(0), []byte("body"))
	f.Add(uint8(7), uint64(0), "", "", uint64(1<<60), []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, from uint64, addr, topic string, seq uint64, body []byte) {
		fr := &Frame{
			Kind:     Kind(kind),
			From:     ident.ID(from),
			FromAddr: addr,
			Topic:    topic,
			Seq:      seq,
		}
		if len(body) > 0 {
			fr.Msg = &Message{ID: MsgID{Origin: ident.ID(from), Seq: seq}, Body: body}
		}
		buf, err := Marshal(fr)
		if err != nil {
			return // invalid inputs are allowed to fail encoding
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("marshalled frame failed to decode: %v", err)
		}
		if got.Kind != fr.Kind || got.From != fr.From || got.FromAddr != fr.FromAddr ||
			got.Topic != fr.Topic || got.Seq != fr.Seq {
			t.Fatalf("round trip mismatch: %+v vs %+v", fr, got)
		}
	})
}
