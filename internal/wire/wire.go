// Package wire defines the binary message format spoken between live
// RingCast nodes: gossip exchanges (CYCLON shuffles, VICINITY view trades
// — the two layers of the paper's Section 6 architecture), bootstrap
// handshakes, and disseminated application messages.
//
// The encoding is a compact, explicit big-endian format with hard size
// limits, so a malformed or malicious frame cannot cause unbounded
// allocation. It is fully deterministic: Marshal is a pure function of the
// frame (no maps, no randomness), so equal frames produce equal bytes and
// the in-memory transport's codec round trip exercises exactly the bytes
// TCP would carry. Framing (length prefixes on the stream) is the
// transport's job; this package encodes single frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

// Kind discriminates frame types.
type Kind uint8

// Frame kinds. Values are wire-stable; never renumber.
const (
	// KindHello announces a joining node to a bootstrap peer.
	KindHello Kind = iota + 1
	// KindHelloAck answers a Hello with the receiver's identity and a seed
	// of view entries.
	KindHelloAck
	// KindShuffleRequest carries a CYCLON shuffle payload.
	KindShuffleRequest
	// KindShuffleReply answers a shuffle request.
	KindShuffleReply
	// KindVicinityRequest carries a VICINITY view exchange payload.
	KindVicinityRequest
	// KindVicinityReply answers a vicinity request.
	KindVicinityReply
	// KindGossip carries a disseminated application message.
	KindGossip

	maxKind = KindGossip
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "hello-ack"
	case KindShuffleRequest:
		return "shuffle-req"
	case KindShuffleReply:
		return "shuffle-rep"
	case KindVicinityRequest:
		return "vicinity-req"
	case KindVicinityReply:
		return "vicinity-rep"
	case KindGossip:
		return "gossip"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Size and count limits enforced by the codec.
const (
	// MaxEntries bounds the view entries per frame.
	MaxEntries = 1024
	// MaxAddrLen bounds transport address strings.
	MaxAddrLen = 255
	// MaxTopicLen bounds pub/sub topic names.
	MaxTopicLen = 255
	// MaxBodyLen bounds the application payload of a gossip message.
	MaxBodyLen = 1 << 20
	// MaxFrameSize is a safe upper bound on any encoded frame, usable as a
	// transport read limit.
	MaxFrameSize = 1<<21 + 1<<16
)

// Codec errors.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrTooLarge  = errors.New("wire: field exceeds size limit")
	ErrBadKind   = errors.New("wire: unknown frame kind")
)

// MsgID uniquely identifies a disseminated message: the origin, the
// origin's incarnation epoch, and a per-origin sequence number. The epoch
// disambiguates publishes across supervised restarts: a relaunched node
// reuses its seed (and therefore its ring identity), so without the epoch
// its fresh pubSeq counter would reproduce pre-crash MsgIDs and fleet
// dedup caches would silently swallow every post-restart publish. Epoch 0
// encodes exactly as the pre-epoch wire format, so old and new nodes
// interoperate until a restart actually happens.
type MsgID struct {
	Origin ident.ID
	Epoch  uint32
	Seq    uint64
}

// String renders the ID for logs: "origin/seq" for epoch 0 (identical to
// the pre-epoch format, which status lines and tests parse), and
// "origin.epoch/seq" for restarted incarnations.
func (m MsgID) String() string {
	if m.Epoch == 0 {
		return fmt.Sprintf("%s/%d", m.Origin, m.Seq)
	}
	return fmt.Sprintf("%s.%d/%d", m.Origin, m.Epoch, m.Seq)
}

// Message is a disseminated application message.
type Message struct {
	// ID identifies the message for duplicate suppression.
	ID MsgID
	// Hop counts forwarding steps from the origin (0 at generation).
	Hop uint16
	// Body is the opaque application payload.
	Body []byte
}

// Frame is one unit of node-to-node communication.
type Frame struct {
	// Kind discriminates the frame type.
	Kind Kind
	// From is the sender's node ID.
	From ident.ID
	// FromAddr is the sender's listen address (not the ephemeral source
	// port), so receivers can gossip back.
	FromAddr string
	// Topic scopes the frame to a pub/sub topic; empty for the default
	// overlay.
	Topic string
	// Seq correlates a request with its reply.
	Seq uint64
	// Entries carries view entries for gossip exchanges and hello-acks.
	Entries []view.Entry
	// Msg is the application message for KindGossip frames, nil otherwise.
	Msg *Message
}

// Marshal encodes the frame.
func Marshal(f *Frame) ([]byte, error) {
	if f.Kind == 0 || f.Kind > maxKind {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
	}
	if len(f.FromAddr) > MaxAddrLen {
		return nil, fmt.Errorf("%w: addr %d bytes", ErrTooLarge, len(f.FromAddr))
	}
	if len(f.Topic) > MaxTopicLen {
		return nil, fmt.Errorf("%w: topic %d bytes", ErrTooLarge, len(f.Topic))
	}
	if len(f.Entries) > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, len(f.Entries))
	}
	if f.Msg != nil && len(f.Msg.Body) > MaxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(f.Msg.Body))
	}

	for _, e := range f.Entries {
		if len(e.Addr) > MaxAddrLen {
			return nil, fmt.Errorf("%w: entry addr %d bytes", ErrTooLarge, len(e.Addr))
		}
	}

	buf := make([]byte, 0, EncodedSize(f))
	buf = append(buf, byte(f.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.From))
	buf = appendString(buf, f.FromAddr)
	buf = appendString(buf, f.Topic)
	buf = binary.BigEndian.AppendUint64(buf, f.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Entries)))
	for _, e := range f.Entries {
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.Node))
		buf = binary.BigEndian.AppendUint32(buf, e.Age)
		buf = appendString(buf, e.Addr)
	}
	// Message flag: 0 = no message, 1 = epoch-0 message in the original
	// layout (byte-identical to the pre-epoch codec), 2 = message with an
	// explicit 32-bit incarnation epoch after the origin.
	switch {
	case f.Msg == nil:
		buf = append(buf, 0)
	case f.Msg.ID.Epoch == 0:
		buf = append(buf, 1)
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Msg.ID.Origin))
		buf = binary.BigEndian.AppendUint64(buf, f.Msg.ID.Seq)
		buf = binary.BigEndian.AppendUint16(buf, f.Msg.Hop)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Msg.Body)))
		buf = append(buf, f.Msg.Body...)
	default:
		buf = append(buf, 2)
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.Msg.ID.Origin))
		buf = binary.BigEndian.AppendUint32(buf, f.Msg.ID.Epoch)
		buf = binary.BigEndian.AppendUint64(buf, f.Msg.ID.Seq)
		buf = binary.BigEndian.AppendUint16(buf, f.Msg.Hop)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Msg.Body)))
		buf = append(buf, f.Msg.Body...)
	}
	return buf, nil
}

// EncodedSize returns the exact byte length Marshal produces for f,
// assuming f passes Marshal's limit checks. The per-topic transport
// counters use it so topic byte accounting matches the marshalled frame
// size the base transport observes.
func EncodedSize(f *Frame) int {
	size := 1 + 8 + 1 + len(f.FromAddr) + 1 + len(f.Topic) + 8 + 2
	for _, e := range f.Entries {
		size += 8 + 4 + 1 + len(e.Addr)
	}
	size++ // message flag
	if f.Msg != nil {
		size += 8 + 8 + 2 + 4 + len(f.Msg.Body)
		if f.Msg.ID.Epoch != 0 {
			size += 4 // explicit epoch (flag 2 layout)
		}
	}
	return size
}

func appendString(buf []byte, s string) []byte {
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}

// reader is a bounds-checked cursor over an encoded frame.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (byte, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u8()
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.buf) {
		return "", ErrTruncated
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Unmarshal decodes a frame, validating all bounds. Trailing garbage is an
// error: frames must be exactly consumed.
func Unmarshal(buf []byte) (*Frame, error) {
	r := &reader{buf: buf}
	kindByte, err := r.u8()
	if err != nil {
		return nil, err
	}
	kind := Kind(kindByte)
	if kind == 0 || kind > maxKind {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kindByte)
	}
	f := &Frame{Kind: kind}
	from, err := r.u64()
	if err != nil {
		return nil, err
	}
	f.From = ident.ID(from)
	if f.FromAddr, err = r.str(); err != nil {
		return nil, err
	}
	if f.Topic, err = r.str(); err != nil {
		return nil, err
	}
	if f.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	count, err := r.u16()
	if err != nil {
		return nil, err
	}
	if int(count) > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrTooLarge, count)
	}
	if count > 0 {
		f.Entries = make([]view.Entry, 0, count)
		for i := 0; i < int(count); i++ {
			var e view.Entry
			node, err := r.u64()
			if err != nil {
				return nil, err
			}
			e.Node = ident.ID(node)
			if e.Age, err = r.u32(); err != nil {
				return nil, err
			}
			if e.Addr, err = r.str(); err != nil {
				return nil, err
			}
			f.Entries = append(f.Entries, e)
		}
	}
	hasMsg, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch hasMsg {
	case 0:
	case 1, 2:
		m := &Message{}
		origin, err := r.u64()
		if err != nil {
			return nil, err
		}
		m.ID.Origin = ident.ID(origin)
		if hasMsg == 2 {
			if m.ID.Epoch, err = r.u32(); err != nil {
				return nil, err
			}
			// Epoch 0 must use the flag-1 layout; rejecting the redundant
			// encoding keeps Marshal∘Unmarshal a fixpoint on valid frames.
			if m.ID.Epoch == 0 {
				return nil, errors.New("wire: non-canonical epoch 0 in flag-2 message")
			}
		}
		if m.ID.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		if m.Hop, err = r.u16(); err != nil {
			return nil, err
		}
		bodyLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if bodyLen > MaxBodyLen {
			return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, bodyLen)
		}
		if r.off+int(bodyLen) > len(r.buf) {
			return nil, ErrTruncated
		}
		if bodyLen > 0 {
			m.Body = append([]byte(nil), r.buf[r.off:r.off+int(bodyLen)]...)
		}
		r.off += int(bodyLen)
		f.Msg = m
	default:
		return nil, fmt.Errorf("wire: invalid message flag %d", hasMsg)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(buf)-r.off)
	}
	return f, nil
}
