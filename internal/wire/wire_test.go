package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

func sampleFrame() *Frame {
	return &Frame{
		Kind:     KindShuffleRequest,
		From:     0xDEADBEEF,
		FromAddr: "127.0.0.1:9000",
		Topic:    "alerts",
		Seq:      42,
		Entries: []view.Entry{
			{Node: 1, Addr: "127.0.0.1:9001", Age: 3},
			{Node: 2, Addr: "", Age: 0},
		},
	}
}

func TestRoundTripShuffle(t *testing.T) {
	f := sampleFrame()
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", f, got)
	}
}

func TestRoundTripGossip(t *testing.T) {
	f := &Frame{
		Kind:     KindGossip,
		From:     7,
		FromAddr: "a",
		Msg: &Message{
			ID:   MsgID{Origin: 7, Seq: 99},
			Hop:  4,
			Body: []byte("worm alert: patch now"),
		},
	}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", f, got)
	}
}

func TestRoundTripEmptyBody(t *testing.T) {
	f := &Frame{Kind: KindGossip, From: 1, Msg: &Message{ID: MsgID{Origin: 1, Seq: 1}}}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Msg == nil || got.Msg.Body != nil {
		t.Fatalf("empty body mishandled: %+v", got.Msg)
	}
}

func TestMarshalValidation(t *testing.T) {
	cases := []*Frame{
		{Kind: 0},
		{Kind: maxKind + 1},
		{Kind: KindHello, FromAddr: strings.Repeat("x", MaxAddrLen+1)},
		{Kind: KindHello, Topic: strings.Repeat("t", MaxTopicLen+1)},
		{Kind: KindHello, Entries: make([]view.Entry, MaxEntries+1)},
		{Kind: KindGossip, Msg: &Message{Body: make([]byte, MaxBodyLen+1)}},
		{Kind: KindHello, Entries: []view.Entry{{Addr: strings.Repeat("a", 300)}}},
	}
	for i, f := range cases {
		if _, err := Marshal(f); err == nil {
			t.Errorf("case %d: Marshal accepted invalid frame", i)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	buf, err := Marshal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(buf))
		}
	}
}

func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	buf, err := Marshal(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(buf, 0x00)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
}

func TestUnmarshalRejectsBadKindAndFlag(t *testing.T) {
	if _, err := Unmarshal([]byte{0xFF}); err == nil {
		t.Fatal("accepted bad kind")
	}
	buf, _ := Marshal(&Frame{Kind: KindHello})
	buf[len(buf)-1] = 2 // message flag
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("accepted invalid message flag")
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Unmarshal(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every valid frame round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, from uint64, addr, topic string, seq uint64, entryCount uint8, hasMsg bool, hop uint16, body []byte) bool {
		kind := Kind(kindRaw%uint8(maxKind)) + 1
		if len(addr) > MaxAddrLen {
			addr = addr[:MaxAddrLen]
		}
		if len(topic) > MaxTopicLen {
			topic = topic[:MaxTopicLen]
		}
		fr := &Frame{Kind: kind, From: ident.ID(from), FromAddr: addr, Topic: topic, Seq: seq}
		for i := 0; i < int(entryCount%16); i++ {
			fr.Entries = append(fr.Entries, view.Entry{Node: ident.ID(i + 1), Age: uint32(i)})
		}
		if hasMsg {
			if len(body) > MaxBodyLen {
				body = body[:MaxBodyLen]
			}
			var b []byte
			if len(body) > 0 {
				b = body
			}
			fr.Msg = &Message{ID: MsgID{Origin: ident.ID(from), Seq: seq}, Hop: hop, Body: b}
		}
		buf, err := Marshal(fr)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(fr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrameSizeBound(t *testing.T) {
	// A maximal frame must stay under MaxFrameSize.
	entries := make([]view.Entry, MaxEntries)
	for i := range entries {
		entries[i] = view.Entry{Node: ident.ID(i + 1), Addr: strings.Repeat("a", MaxAddrLen), Age: 1}
	}
	f := &Frame{
		Kind:     KindGossip,
		FromAddr: strings.Repeat("a", MaxAddrLen),
		Topic:    strings.Repeat("t", MaxTopicLen),
		Entries:  entries,
		Msg:      &Message{Body: bytes.Repeat([]byte{1}, MaxBodyLen)},
	}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > MaxFrameSize {
		t.Fatalf("maximal frame %d bytes exceeds MaxFrameSize %d", len(buf), MaxFrameSize)
	}
}

func TestKindString(t *testing.T) {
	for k := KindHello; k <= maxKind; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should fall back to numeric")
	}
}

func TestMsgIDString(t *testing.T) {
	if got := (MsgID{Origin: 1, Seq: 2}).String(); !strings.HasSuffix(got, "/2") || strings.Contains(got, ".") {
		t.Errorf("epoch-0 MsgID string %q must keep the legacy origin/seq form", got)
	}
	a := MsgID{Origin: 1, Epoch: 1, Seq: 2}.String()
	b := MsgID{Origin: 1, Epoch: 0, Seq: 2}.String()
	if a == b {
		t.Error("epoch must distinguish MsgID strings")
	}
}

// A message with a non-zero incarnation epoch must survive the codec and
// compare unequal to its epoch-0 twin.
func TestRoundTripEpoch(t *testing.T) {
	f := &Frame{
		Kind:     KindGossip,
		From:     7,
		FromAddr: "a",
		Msg: &Message{
			ID:   MsgID{Origin: 7, Epoch: 3, Seq: 99},
			Hop:  4,
			Body: []byte("post-restart publish"),
		},
	}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedSize(f) {
		t.Fatalf("EncodedSize = %d, marshalled %d", EncodedSize(f), len(buf))
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", f, got)
	}
	if got.Msg.ID == (MsgID{Origin: 7, Seq: 99}) {
		t.Fatal("epoch lost in round trip")
	}
}

// Epoch 0 must encode byte-identically to the pre-epoch codec (flag 1, no
// epoch field), so unrestarted old and new nodes interoperate.
func TestEpochZeroLegacyEncoding(t *testing.T) {
	f := &Frame{
		Kind: KindGossip,
		From: 2,
		Msg:  &Message{ID: MsgID{Origin: 2, Seq: 9}, Hop: 1, Body: []byte("x")},
	}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	epochFrame := &Frame{
		Kind: KindGossip,
		From: 2,
		Msg:  &Message{ID: MsgID{Origin: 2, Epoch: 1, Seq: 9}, Hop: 1, Body: []byte("x")},
	}
	epochBuf, err := Marshal(epochFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochBuf) != len(buf)+4 {
		t.Fatalf("epoch encoding should add exactly 4 bytes: %d vs %d", len(epochBuf), len(buf))
	}
	// The flag byte sits right after the (empty) entries section; locate it
	// by decoding: flag 1 for legacy, flag 2 for epoch frames.
	wantFlagAt := 1 + 8 + 1 + 1 + 8 + 2
	if buf[wantFlagAt] != 1 {
		t.Fatalf("legacy frame flag = %d, want 1", buf[wantFlagAt])
	}
	if epochBuf[wantFlagAt] != 2 {
		t.Fatalf("epoch frame flag = %d, want 2", epochBuf[wantFlagAt])
	}
}

// Flag 2 with epoch 0 is the non-canonical spelling of a flag-1 message;
// the decoder rejects it to keep decode/encode a fixpoint.
func TestUnmarshalRejectsNonCanonicalEpochZero(t *testing.T) {
	f := &Frame{
		Kind: KindGossip,
		From: 2,
		Msg:  &Message{ID: MsgID{Origin: 2, Epoch: 5, Seq: 9}},
	}
	buf, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	flagAt := 1 + 8 + 1 + 1 + 8 + 2
	// Zero the 4 epoch bytes that follow the 8-byte origin after the flag.
	for i := 0; i < 4; i++ {
		buf[flagAt+1+8+i] = 0
	}
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("accepted non-canonical epoch 0 in flag-2 layout")
	}
}

func TestEncodedSizeMatchesMarshal(t *testing.T) {
	frames := []*Frame{
		sampleFrame(),
		{Kind: KindHello, From: 1},
		{Kind: KindGossip, From: 3, Topic: "alerts",
			Msg: &Message{ID: MsgID{Origin: 3, Seq: 1}, Body: []byte("abc")}},
		{Kind: KindGossip, From: 3, Topic: "alerts",
			Msg: &Message{ID: MsgID{Origin: 3, Epoch: 2, Seq: 1}, Body: []byte("abc")}},
	}
	for i, f := range frames {
		buf, err := Marshal(f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(buf) != EncodedSize(f) {
			t.Errorf("case %d: EncodedSize %d != marshalled %d", i, EncodedSize(f), len(buf))
		}
	}
}
