// CSV export: every result type can emit machine-readable series so the
// tables can be re-plotted with external tools (gnuplot produced the
// paper's original figures).
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV emits the fanout sweep as CSV: one row per fanout with both
// protocols' headline metrics.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"fanout",
		"randcast_miss_ratio", "randcast_complete_fraction",
		"randcast_virgin", "randcast_redundant", "randcast_lost", "randcast_mean_hops",
		"ringcast_miss_ratio", "ringcast_complete_fraction",
		"ringcast_virgin", "ringcast_redundant", "ringcast_lost", "ringcast_mean_hops",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Fanout),
			f(row.Rand.MeanMissRatio), f(row.Rand.CompleteFraction),
			f(row.Rand.MeanVirgin), f(row.Rand.MeanRedundant), f(row.Rand.MeanLost), f(row.Rand.MeanHops),
			f(row.Ring.MeanMissRatio), f(row.Ring.CompleteFraction),
			f(row.Ring.MeanVirgin), f(row.Ring.MeanRedundant), f(row.Ring.MeanLost), f(row.Ring.MeanHops),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteProgressCSV emits the per-hop progress curves (Figures 7/10) for the
// given fanouts: hop, then one not-reached column per (protocol, fanout).
func (r *Result) WriteProgressCSV(w io.Writer, fanouts ...int) error {
	cw := csv.NewWriter(w)
	header := []string{"hop"}
	type curve struct {
		name   string
		values []float64
	}
	var curves []curve
	maxLen := 0
	for _, fo := range fanouts {
		row, ok := r.row(fo)
		if !ok {
			continue
		}
		curves = append(curves,
			curve{fmt.Sprintf("randcast_f%d", fo), row.Rand.NotReachedByHop},
			curve{fmt.Sprintf("ringcast_f%d", fo), row.Ring.NotReachedByHop},
		)
	}
	for _, c := range curves {
		header = append(header, c.name)
		if len(c.values) > maxLen {
			maxLen = len(c.values)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for h := 0; h < maxLen; h++ {
		rec := make([]string, 0, len(curves)+1)
		rec = append(rec, strconv.Itoa(h))
		for _, c := range curves {
			rec = append(rec, f(hopValue(c.values, h)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLifetimeCSV emits the Figure 12/13 histograms: lifetime, population
// count, and per-protocol miss counts for the given fanout.
func (c *ChurnResult) WriteLifetimeCSV(w io.Writer, fanout int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lifetime", "nodes", "randcast_misses", "ringcast_misses"}); err != nil {
		return err
	}
	randHist := c.MissedByLifetime["RandCast"][fanout]
	ringHist := c.MissedByLifetime["RingCast"][fanout]
	values := map[int]bool{}
	for _, p := range c.Lifetimes.Sorted() {
		values[p.Value] = true
	}
	if randHist != nil {
		for _, p := range randHist.Sorted() {
			values[p.Value] = true
		}
	}
	if ringHist != nil {
		for _, p := range ringHist.Sorted() {
			values[p.Value] = true
		}
	}
	ordered := make([]int, 0, len(values))
	for v := range values {
		ordered = append(ordered, v)
	}
	sort.Ints(ordered)
	for _, v := range ordered {
		randMiss, ringMiss := 0, 0
		if randHist != nil {
			randMiss = randHist.Count(v)
		}
		if ringHist != nil {
			ringMiss = ringHist.Count(v)
		}
		rec := []string{
			strconv.Itoa(v),
			strconv.Itoa(c.Lifetimes.Count(v)),
			strconv.Itoa(randMiss),
			strconv.Itoa(ringMiss),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float compactly for CSV.
func f(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
