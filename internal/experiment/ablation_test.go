package experiment

import "testing"

func TestFeedAblation(t *testing.T) {
	res, err := RunFeedAblation(200, 600, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithFeedConv != 1.0 {
		t.Fatalf("with feed: convergence %v after %d cycles, want 1.0",
			res.WithFeedConv, res.WithFeedCycles)
	}
	// Without the feed the ring converges much slower (usually not at all
	// within the budget at this scale).
	if res.WithoutFeedConv >= 1.0 && res.WithoutFeedCycles <= res.WithFeedCycles {
		t.Errorf("feed ablation shows no benefit: with=%d cycles, without=%d cycles (conv %v)",
			res.WithFeedCycles, res.WithoutFeedCycles, res.WithoutFeedConv)
	}
}

func TestFeedAblationValidation(t *testing.T) {
	if _, err := RunFeedAblation(1, 10, 1, 0); err == nil {
		t.Error("accepted n < 2")
	}
	if _, err := RunFeedAblation(10, 0, 1, 0); err == nil {
		t.Error("accepted zero cycles")
	}
}

func TestSelectionAblation(t *testing.T) {
	res, err := RunSelectionAblation(300, 60, 0.01, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Age-based selection keeps stale links at or below the level of random
	// selection (the CYCLON paper's core robustness claim).
	if res.StaleFractionOldest > res.StaleFractionRandom+0.02 {
		t.Errorf("oldest-first selection has MORE stale links: %.4f vs %.4f",
			res.StaleFractionOldest, res.StaleFractionRandom)
	}
	if res.StaleFractionOldest > 0.2 {
		t.Errorf("stale fraction %.3f too high even with age-based selection", res.StaleFractionOldest)
	}
}

func TestSelectionAblationValidation(t *testing.T) {
	if _, err := RunSelectionAblation(300, 10, 5.0, 1, 0); err == nil {
		t.Error("accepted churn rate > 1")
	}
}

func TestMultiRingAblation(t *testing.T) {
	rows, err := RunMultiRingAblation(500, 20, 2, []int{1, 2, 3}, 0.10, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More rings -> equal or lower miss ratio after the same failure.
	if rows[1].Agg.MeanMissRatio > rows[0].Agg.MeanMissRatio+1e-9 {
		t.Errorf("2 rings missed more than 1 ring: %v vs %v",
			rows[1].Agg.MeanMissRatio, rows[0].Agg.MeanMissRatio)
	}
	if rows[2].Agg.MeanMissRatio > rows[0].Agg.MeanMissRatio+1e-9 {
		t.Errorf("3 rings missed more than 1 ring: %v vs %v",
			rows[2].Agg.MeanMissRatio, rows[0].Agg.MeanMissRatio)
	}
}

func TestMultiRingAblationValidation(t *testing.T) {
	if _, err := RunMultiRingAblation(2, 1, 1, []int{1}, 0.1, 1, 0); err == nil {
		t.Error("accepted tiny n")
	}
}

func TestMaxAgeAblation(t *testing.T) {
	res, err := RunMaxAgeAblation(300, 80, 0.01, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvWithMaxAge < res.ConvWithoutMaxAge {
		t.Errorf("staleness bound hurt convergence: with=%.3f without=%.3f",
			res.ConvWithMaxAge, res.ConvWithoutMaxAge)
	}
	if res.ConvWithMaxAge < 0.6 {
		t.Errorf("convergence with MaxAge = %.3f, suspiciously low", res.ConvWithMaxAge)
	}
}

func TestDomainRing(t *testing.T) {
	domains := []string{"inf.ethz.ch", "few.vu.nl", "cs.cornell.edu", "dcs.gla.uk"}
	res, err := RunDomainRing(30, domains, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("domain ring did not converge")
	}
	// Section 8: nodes self-organize in a ring sorted by domain — each
	// domain occupies exactly one contiguous arc.
	if res.DomainRuns != len(domains) {
		t.Fatalf("domain runs = %d, want %d (domains contiguous on ring)",
			res.DomainRuns, len(domains))
	}
}

func TestDomainRingValidation(t *testing.T) {
	if _, err := RunDomainRing(0, []string{"a.b"}, 1); err == nil {
		t.Error("accepted zero nodes per domain")
	}
	if _, err := RunDomainRing(3, nil, 1); err == nil {
		t.Error("accepted no domains")
	}
	if _, err := RunDomainRing(1, []string{"x.y"}, 1); err == nil {
		t.Error("accepted single-node network")
	}
}

func TestRunTraceChurn(t *testing.T) {
	cfg := Scaled(250, 5)
	cfg.Fanouts = []int{3}
	res, err := RunTraceChurn(cfg, 60, 1.0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifetimes.Total() != cfg.N {
		t.Fatalf("lifetime total = %d, want %d", res.Lifetimes.Total(), cfg.N)
	}
	if res.ChurnRate <= 0 {
		t.Fatal("expected positive equivalent churn rate")
	}
	row := res.Rows[0]
	// At this gentle churn, RingCast should not be worse than RandCast at F=3.
	if row.Ring.MeanMissRatio > row.Rand.MeanMissRatio+0.01 {
		t.Errorf("trace churn: Ring %v much worse than Rand %v",
			row.Ring.MeanMissRatio, row.Rand.MeanMissRatio)
	}
}

func TestRunTraceChurnValidation(t *testing.T) {
	cfg := Scaled(50, 1)
	if _, err := RunTraceChurn(cfg, 0, 1, 10); err == nil {
		t.Error("accepted zero median")
	}
	if _, err := RunTraceChurn(cfg, 10, 1, 0); err == nil {
		t.Error("accepted zero cycles")
	}
}

func TestRunTimingInvariance(t *testing.T) {
	cfg := Scaled(300, 10)
	cfg.Fanouts = []int{3}
	res, err := RunTimingInvariance(cfg, "randcast", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	ref := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if diff := row.MeanMissRatio - ref.MeanMissRatio; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: miss ratio %v diverges from hop model %v",
				row.Model, row.MeanMissRatio, ref.MeanMissRatio)
		}
		if ratio := row.MeanMsgs / ref.MeanMsgs; ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: msgs %v diverges from hop model %v", row.Model, row.MeanMsgs, ref.MeanMsgs)
		}
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestRunTimingInvarianceValidation(t *testing.T) {
	cfg := Scaled(50, 2)
	if _, err := RunTimingInvariance(cfg, "nope", 3); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := RunTimingInvariance(cfg, "ringcast", 0); err == nil {
		t.Error("zero fanout accepted")
	}
}
