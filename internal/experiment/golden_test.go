package experiment

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ringcast/internal/scenario"
)

// -update regenerates the golden files instead of diffing against them:
//
//	go test ./internal/experiment/ -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenConfig is the small-N setup every golden artifact is produced
// with. It must never change: the files under testdata/golden pin the
// exact output bytes of this configuration, so any hot-path refactor that
// perturbs a single rng draw, fold order, or formatting decision fails
// TestGolden instead of surviving until a manual byte-compare run.
func goldenConfig(parallelism int) Config {
	cfg := Scaled(150, 5)
	cfg.Fanouts = []int{1, 2, 3, 4}
	cfg.Seed = 7
	cfg.Parallelism = parallelism
	return cfg
}

// goldenArtifacts renders every golden artifact at the given parallelism:
// the static sweep, the catastrophic-5% sweep, and two fault scenarios
// (partition-heal and lossy), each as both the human table and the CSV.
func goldenArtifacts(t *testing.T, parallelism int) map[string][]byte {
	t.Helper()
	cfg := goldenConfig(parallelism)
	out := make(map[string][]byte)

	static, err := RunStatic(cfg)
	if err != nil {
		t.Fatalf("static sweep: %v", err)
	}
	var tbl bytes.Buffer
	fmt.Fprint(&tbl, static.MissRatioTable())
	fmt.Fprint(&tbl, static.CompleteTable())
	fmt.Fprint(&tbl, static.OverheadTable())
	fmt.Fprint(&tbl, static.ProgressTable(2, 3))
	out["static.txt"] = append([]byte(nil), tbl.Bytes()...)
	var csvBuf bytes.Buffer
	if err := static.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("static CSV: %v", err)
	}
	out["static.csv"] = append([]byte(nil), csvBuf.Bytes()...)

	cat, err := RunCatastrophic(cfg, 0.05)
	if err != nil {
		t.Fatalf("catastrophic sweep: %v", err)
	}
	tbl.Reset()
	fmt.Fprint(&tbl, cat.MissRatioTable())
	fmt.Fprint(&tbl, cat.CompleteTable())
	fmt.Fprint(&tbl, cat.OverheadTable())
	out["catastrophic.txt"] = append([]byte(nil), tbl.Bytes()...)
	csvBuf.Reset()
	if err := cat.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("catastrophic CSV: %v", err)
	}
	out["catastrophic.csv"] = append([]byte(nil), csvBuf.Bytes()...)

	scs, err := scenario.ByNames([]string{"partition-heal", "lossy"})
	if err != nil {
		t.Fatalf("scenarios: %v", err)
	}
	results, err := RunScenarios(cfg, scs)
	if err != nil {
		t.Fatalf("scenario sweeps: %v", err)
	}
	out["scenarios.txt"] = []byte(ScenariosTable(results, 3))
	csvBuf.Reset()
	if err := WriteScenariosCSV(&csvBuf, results); err != nil {
		t.Fatalf("scenarios CSV: %v", err)
	}
	out["scenarios.csv"] = append([]byte(nil), csvBuf.Bytes()...)

	return out
}

// TestGolden diffs the current output of the static, catastrophic and
// scenario pipelines byte-for-byte against the committed golden files, at
// parallelism 1, 2 and 4 (all three must render the same bytes — the
// engine's determinism contract). Run with -update to regenerate after an
// intentional output change.
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are not -short")
	}
	reference := goldenArtifacts(t, 1)
	for _, p := range []int{2, 4} {
		got := goldenArtifacts(t, p)
		for name, want := range reference {
			if !bytes.Equal(got[name], want) {
				t.Errorf("%s: parallelism %d diverges from parallelism 1", name, p)
			}
		}
	}
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range reference {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name, want := range reference {
		golden, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing golden file %s (run with -update to create): %v", name, err)
		}
		if !bytes.Equal(golden, want) {
			t.Errorf("%s: output diverges from golden file (run with -update if the change is intentional)\n got %d bytes, want %d bytes\n%s",
				name, len(want), len(golden), diffPreview(golden, want))
		}
	}
}

// diffPreview locates the first differing byte and shows a short context
// window from both sides, so a golden failure points at the divergence.
func diffPreview(want, got []byte) string {
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	window := func(b []byte) string {
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		hi := i + 40
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first divergence at byte %d:\n golden: %q\n now:    %q", i, window(want), window(got))
}
