// Process-memory probe for the scale reports: peak resident set from the
// kernel's accounting, with a graceful zero on platforms that do not
// expose it. Deterministic experiment output never depends on these
// numbers — they are reporting-only columns.
package experiment

import (
	"os"
	"strconv"
	"strings"
)

// peakRSSBytes returns the process's peak resident set size in bytes, read
// from /proc/self/status (VmHWM). It returns 0 when the information is
// unavailable (non-Linux platforms); callers must treat 0 as "unknown",
// not "no memory".
func peakRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
