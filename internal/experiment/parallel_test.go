package experiment

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
)

// parallelismLevels are the worker counts every determinism test compares:
// the sequential reference, a fixed multi-worker level, and whatever this
// machine's CPU count resolves to.
func parallelismLevels() []int {
	levels := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		levels = append(levels, n)
	}
	return levels
}

// renderStatic flattens a Result into every user-visible byte stream: the
// CSV series and all tables.
func renderStatic(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteProgressCSV(&buf, 2, 3, 5); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(res.MissRatioTable())
	buf.WriteString(res.CompleteTable())
	buf.WriteString(res.OverheadTable())
	buf.WriteString(res.ProgressTable(2, 3, 5))
	return buf.Bytes()
}

func TestStaticParallelDeterminism(t *testing.T) {
	cfg := Scaled(300, 6)
	cfg.Fanouts = []int{1, 3, 5}
	cfg.Parallelism = 1
	ref, err := RunStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStatic(t, ref)
	for _, p := range parallelismLevels()[1:] {
		cfg.Parallelism = p
		res, err := RunStatic(cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got := renderStatic(t, res); !bytes.Equal(got, want) {
			t.Errorf("P=%d output differs from sequential reference:\n--- P=1 ---\n%s\n--- P=%d ---\n%s", p, want, p, got)
		}
	}
}

func TestCatastrophicParallelDeterminism(t *testing.T) {
	cfg := Scaled(300, 5)
	cfg.Fanouts = []int{2, 4}
	var want []byte
	for _, p := range parallelismLevels() {
		cfg.Parallelism = p
		res, err := RunCatastrophic(cfg, 0.05)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		got := renderStatic(t, res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("P=%d catastrophic output differs from sequential reference", p)
		}
	}
}

func TestChurnParallelDeterminism(t *testing.T) {
	cfg := Scaled(250, 4)
	cfg.Fanouts = []int{3}
	render := func(res *ChurnResult) []byte {
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteLifetimeCSV(&buf, 3); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(res.MissRatioTable())
		buf.WriteString(res.LifetimeTable())
		buf.WriteString(res.MissByLifetimeTable(3))
		return buf.Bytes()
	}
	var want []byte
	for _, p := range parallelismLevels() {
		cfg.Parallelism = p
		res, err := RunChurn(cfg, 0.01, 800)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		got := render(res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("P=%d churn output differs from sequential reference", p)
		}
	}
}

func TestLoadParallelDeterminism(t *testing.T) {
	cfg := Scaled(250, 6)
	cfg.Fanouts = []int{5}
	var want string
	for _, p := range parallelismLevels() {
		cfg.Parallelism = p
		res, err := RunLoad(cfg, 5)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		got := res.Table()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("P=%d load table differs:\n--- P=1 ---\n%s\n--- P=%d ---\n%s", p, want, p, got)
		}
	}
}

func TestTimingParallelDeterminism(t *testing.T) {
	cfg := Scaled(250, 4)
	cfg.Fanouts = []int{3}
	var want string
	for _, p := range parallelismLevels() {
		cfg.Parallelism = p
		res, err := RunTimingInvariance(cfg, "ringcast", 3)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		got := res.Table()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("P=%d timing table differs from sequential reference", p)
		}
	}
}

func TestRunChurnReplicas(t *testing.T) {
	cfg := Scaled(150, 2)
	cfg.Fanouts = []int{3}
	run := func(p int) []*ChurnResult {
		c := cfg
		c.Parallelism = p
		out, err := RunChurnReplicas(c, 0.02, 400, 3)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		return out
	}
	seq := run(1)
	par := run(4)
	if len(seq) != 3 {
		t.Fatalf("got %d replicas, want 3", len(seq))
	}
	for i := range seq {
		if seq[i] == nil || par[i] == nil {
			t.Fatalf("replica %d missing", i)
		}
		var a, b bytes.Buffer
		if err := seq[i].WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := par[i].WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("replica %d differs between parallelism levels", i)
		}
	}
	// Replicas must be statistically independent: derived seeds differ, so
	// at least the turnover trajectories should not all coincide.
	if seq[0].TurnoverCycles == seq[1].TurnoverCycles && seq[1].TurnoverCycles == seq[2].TurnoverCycles &&
		seq[0].Rows[0].Rand.MeanMissRatio == seq[1].Rows[0].Rand.MeanMissRatio {
		t.Error("replicas look identical — per-replica seed derivation broken")
	}
}

func TestRunChurnReplicasValidation(t *testing.T) {
	if _, err := RunChurnReplicas(Scaled(200, 2), 0.01, 100, 0); err == nil {
		t.Error("accepted zero replicas")
	}
}

func TestSweepProgressReporting(t *testing.T) {
	cfg := Scaled(200, 3)
	cfg.Fanouts = []int{2, 4}
	cfg.Parallelism = 2
	var calls, lastDone, total int64
	cfg.Progress = func(done, n int) {
		atomic.AddInt64(&calls, 1)
		atomic.StoreInt64(&lastDone, int64(done))
		atomic.StoreInt64(&total, int64(n))
	}
	if _, err := RunStatic(cfg); err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(len(cfg.Fanouts) * 2 * cfg.Runs)
	if atomic.LoadInt64(&total) != wantTotal {
		t.Errorf("progress total = %d, want %d", total, wantTotal)
	}
	if atomic.LoadInt64(&calls) == 0 || atomic.LoadInt64(&lastDone) != wantTotal {
		t.Errorf("progress did not reach completion: %d calls, last done %d", calls, lastDone)
	}
}

func TestParallelismValidation(t *testing.T) {
	cfg := Scaled(100, 1)
	cfg.Parallelism = -2
	if _, err := RunStatic(cfg); err == nil {
		t.Error("accepted negative parallelism")
	}
}

func TestSweepOverlayValidates(t *testing.T) {
	if _, err := SweepOverlay(nil, Config{}); err == nil {
		t.Error("accepted invalid config")
	}
}
