// Scenario sweeps: the experiment-engine driver for internal/scenario.
// RunScenario executes one fault timeline end to end — warm-up, network
// phase, overlay freeze, timeline compilation, parallel fanout sweep under
// the compiled fault model — and RunScenarios compares a whole catalog,
// with table and CSV output per scenario per protocol. The parallel
// execution contract matches every other sweep: units derive their streams
// from (fanout, run, protocol), fault state is per-unit, folds walk index
// order, so output is bit-identical at any Config.Parallelism.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ringcast/internal/dissem"
	"ringcast/internal/metrics"
	"ringcast/internal/scenario"
)

// ScenarioResult is a Result annotated with scenario bookkeeping.
type ScenarioResult struct {
	Result
	// SetupKilled is how many nodes died to time-zero kill events before
	// the sweep (uniform catastrophes, regional kills at hop 0).
	SetupKilled int
	// Network reports the pre-freeze network phase (flash crowds, churn
	// steps); zero when the timeline has no network-phase events.
	Network scenario.NetworkReport
}

// RunScenario executes one scenario: the network warms up per Section 7.1,
// the scenario's network phase runs (flash crowds, churn steps), the
// overlay freezes, the dissemination timeline compiles against the
// snapshot, time-zero kills apply once from the network's sequential
// stream, and the standard (protocol, fanout, run) sweep executes under the
// compiled fault model.
func RunScenario(cfg Config, sc scenario.Scenario) (*ScenarioResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	nw, cycles, conv, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	rep := scenario.RunNetworkPhase(nw, sc)
	if rep.Cycles > 0 {
		// The network phase moved the membership; report the convergence the
		// sweep actually freezes.
		conv = nw.RingConvergence()
	}
	o := dissem.Snapshot(nw)
	comp, err := scenario.Compile(sc, o)
	if err != nil {
		return nil, err
	}
	killed := comp.ApplySetup(o, nw.Rand())
	all, err := sweepAll(o, cfg, dissem.Options{SkipLoad: true}, comp)
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{
		Result: Result{
			Scenario:    sc.Name,
			N:           cfg.N,
			Runs:        cfg.Runs,
			WarmupUsed:  cycles,
			Convergence: conv,
			Rows:        foldRows(cfg, all),
		},
		SetupKilled: killed,
		Network:     rep,
	}, nil
}

// RunScenarios executes the given scenarios in order, sharing one Config.
// Each scenario warms its own network from cfg.Seed (network phases mutate
// membership, so snapshots cannot be shared), then sweeps in parallel;
// output is bit-identical at any Config.Parallelism.
func RunScenarios(cfg Config, scs []scenario.Scenario) ([]*ScenarioResult, error) {
	if len(scs) == 0 {
		return nil, fmt.Errorf("experiment: at least one scenario required")
	}
	seen := make(map[string]struct{}, len(scs))
	for _, sc := range scs {
		if _, dup := seen[sc.Name]; dup {
			return nil, fmt.Errorf("experiment: duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = struct{}{}
	}
	out := make([]*ScenarioResult, 0, len(scs))
	for _, sc := range scs {
		res, err := RunScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ScenariosTable renders the scenario comparison at one fanout: hit ratio,
// completeness, the overhead split (virgin/redundant/lost/blocked) and the
// completion time in hops, per scenario per protocol. Hops are the
// completion-time axis of the hop-synchronous surface; Section 7.1's timing
// invariance is what makes them proportional to wall-clock completion under
// any latency model.
func ScenariosTable(results []*ScenarioResult, fanout int) string {
	var sb strings.Builder
	if len(results) == 0 {
		return ""
	}
	fmt.Fprintf(&sb, "Scenario comparison — fanout %d, N=%d, %d runs/point\n",
		fanout, results[0].N, results[0].Runs)
	w := newTable(&sb)
	fmt.Fprintln(w, "scenario\tprotocol\thit\tcomplete\tvirgin\tredundant\tlost\tblocked\thops")
	for _, res := range results {
		row, ok := res.row(fanout)
		if !ok {
			fmt.Fprintf(w, "%s\t(fanout %d not in sweep)\n", res.Scenario, fanout)
			continue
		}
		fmt.Fprintf(w, "%s\tRandCast\t%s\t%.0f%%\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
			res.Scenario, pct(1-row.Rand.MeanMissRatio), row.Rand.CompleteFraction*100,
			row.Rand.MeanVirgin, row.Rand.MeanRedundant, row.Rand.MeanLost, row.Rand.MeanBlocked, row.Rand.MeanHops)
		fmt.Fprintf(w, "%s\tRingCast\t%s\t%.0f%%\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\n",
			res.Scenario, pct(1-row.Ring.MeanMissRatio), row.Ring.CompleteFraction*100,
			row.Ring.MeanVirgin, row.Ring.MeanRedundant, row.Ring.MeanLost, row.Ring.MeanBlocked, row.Ring.MeanHops)
	}
	w.Flush()
	return sb.String()
}

// WriteScenariosCSV emits the scenario comparison in long form: one row per
// (scenario, fanout, protocol) with the full metric set. Columns:
//
//	scenario          timeline name
//	fanout            dissemination fanout F
//	protocol          RandCast or RingCast
//	hit_ratio         mean fraction of live nodes reached
//	miss_ratio        1 - hit_ratio
//	complete_fraction share of runs reaching every live node
//	virgin            mean copies delivered to first-time receivers
//	redundant         mean copies delivered to already-notified receivers
//	lost              mean copies addressed to dead nodes
//	blocked           mean copies dropped in flight by partitions/loss
//	mean_hops         mean completion time in hops
//	max_hops          worst completion time in hops
func WriteScenariosCSV(w io.Writer, results []*ScenarioResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "fanout", "protocol",
		"hit_ratio", "miss_ratio", "complete_fraction",
		"virgin", "redundant", "lost", "blocked",
		"mean_hops", "max_hops",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, res := range results {
		for _, row := range res.Rows {
			for _, p := range [2]struct {
				name string
				agg  metrics.Agg
			}{{"RandCast", row.Rand}, {"RingCast", row.Ring}} {
				rec := []string{
					res.Scenario,
					strconv.Itoa(row.Fanout),
					p.name,
					f(1 - p.agg.MeanMissRatio), f(p.agg.MeanMissRatio), f(p.agg.CompleteFraction),
					f(p.agg.MeanVirgin), f(p.agg.MeanRedundant), f(p.agg.MeanLost), f(p.agg.MeanBlocked),
					f(p.agg.MeanHops), strconv.Itoa(p.agg.MaxHops),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
