// Scale sweep: the ten-million-node headline experiment. The paper claims
// the hybrid protocol keeps its 100% hit ratio while hop counts grow only
// logarithmically in N; the figures stop at N=10,000. RunScale extends the
// axis to 1e7: per N it runs the compact shard-parallel bootstrap
// (sim.BuildConverged — the star-bootstrap warm-up is computationally out
// of reach at this scale and Section 7.1 argues frozen-overlay
// dissemination does not depend on it), freezes the arena, wraps it in an
// ID-less position-based overlay (dissem.FromArena — no per-node ident.IDs
// or origin index on the scale path), and sweeps disseminations for each
// protocol with the standard per-unit derived random streams — so every
// table and CSV is bit-identical at any Parallelism. With CheckpointDir
// set, the frozen arena is cached on disk keyed by its build fingerprint,
// and re-runs skip the mixing cycles entirely. Memory columns (peak RSS,
// heap, allocs) are reporting-only and naturally machine-dependent.
package experiment

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ringcast/internal/checkpoint"
	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/runner"
	"ringcast/internal/sim"
	"ringcast/internal/stats"
)

// ScaleProtocols is the protocol axis of the scale sweep, in sweep order:
// the hybrid protocol, its random-links-only half (RandCast over the same
// overlay) and its ring-only half (deterministic flooding over the d-links).
var ScaleProtocols = []string{"ringcast", "rps-only", "ring-only"}

// scaleSelector maps a scale-protocol name to its selector.
func scaleSelector(name string) (core.Selector, error) {
	switch name {
	case "ringcast":
		return core.RingCast{}, nil
	case "rps-only":
		return core.RandCast{}, nil
	case "ring-only":
		return core.DFlood{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown scale protocol %q (have %s)",
			name, strings.Join(ScaleProtocols, ", "))
	}
}

// ScaleConfig parameterizes RunScale.
type ScaleConfig struct {
	// Ns is the population axis, ascending (e.g. 1e3 ... 1e6).
	Ns []int
	// Fanout is the dissemination fanout F every point runs at.
	Fanout int
	// Runs is the number of disseminations per (N, protocol) point.
	Runs int
	// Cycles is how many real gossip cycles mix the converged bootstrap
	// before the overlay freezes (>= 1).
	Cycles int
	// Protocols selects the protocol axis; nil means ScaleProtocols.
	Protocols []string
	// Seed drives all randomness; per-unit streams derive from it exactly
	// as in the figure sweeps.
	Seed int64
	// Parallelism is the sweep worker count (0 = one per CPU); results are
	// bit-identical at any setting.
	Parallelism int
	// CheckpointDir, when non-empty, enables overlay checkpointing: each N's
	// frozen arena is loaded from this directory when a stored checkpoint's
	// fingerprint matches the build parameters exactly, and written there
	// after a fresh build otherwise. Stale or corrupt files are rebuilt and
	// overwritten — never silently reused (checkpoint.ErrStale discipline).
	CheckpointDir string
	// Progress, when non-nil, receives live unit-completion updates.
	Progress runner.Progress
}

// DefaultScaleConfig returns the standard scale axis: N = 1e3..1e6, F=5,
// 10 runs per point, 30 mixing cycles.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Ns:     []int{1_000, 10_000, 100_000, 1_000_000},
		Fanout: 5,
		Runs:   10,
		Cycles: 30,
		Seed:   42,
	}
}

func (c ScaleConfig) validate() error {
	if len(c.Ns) == 0 {
		return fmt.Errorf("experiment: scale sweep needs at least one N")
	}
	for _, n := range c.Ns {
		if n < 2 {
			return fmt.Errorf("experiment: scale N must be >= 2, got %d", n)
		}
	}
	if c.Fanout < 1 {
		return fmt.Errorf("experiment: scale fanout must be >= 1, got %d", c.Fanout)
	}
	if c.Runs < 1 {
		return fmt.Errorf("experiment: scale runs must be >= 1, got %d", c.Runs)
	}
	if c.Cycles < 1 {
		return fmt.Errorf("experiment: scale cycles must be >= 1, got %d", c.Cycles)
	}
	for _, p := range c.Protocols {
		if _, err := scaleSelector(p); err != nil {
			return err
		}
	}
	return nil
}

// ScalePoint is one (N, protocol) data point of the scale figure.
type ScalePoint struct {
	// N and Protocol locate the point; Runs echoes the per-point runs.
	N        int
	Protocol string
	Runs     int
	// HitRatio is the mean fraction of live nodes reached;
	// CompleteFraction the share of runs reaching everyone.
	HitRatio         float64
	CompleteFraction float64
	// Hops summarizes completion time in hops (streamed via Welford —
	// nothing per-run is retained); HopsP50 is the online median sketch.
	Hops    stats.Summary
	HopsP50 float64
	// HopsPerLog2N is Hops.Mean / log2(N) — flat across the axis exactly
	// when dissemination latency is logarithmic in N, the paper's claim.
	HopsPerLog2N float64
	// MsgsPerNode is the mean total point-to-point copies per live node —
	// the per-node network cost, O(F) independent of N.
	MsgsPerNode float64
}

// ScaleStep is the per-N bookkeeping of a scale sweep: build and sweep
// telemetry shared by that N's points.
type ScaleStep struct {
	// N is the population; Convergence the ring convergence at freeze.
	N           int
	Convergence float64
	// ArenaLinks is the total resolved link count of the frozen arena.
	ArenaLinks int
	// HeapBytes is the live heap (runtime.MemStats.HeapAlloc) right after
	// the simulator is released and the compacted snapshot remains — the
	// steady-state footprint of the sweep phase.
	HeapBytes uint64
	// PeakRSSBytes is the process's peak resident set (VmHWM) at the end
	// of this N's phase. The kernel counter is monotonic per process, so
	// with an ascending Ns axis the last step's value is the figure's
	// peak-memory headline; 0 means the platform does not expose it.
	PeakRSSBytes uint64
	// AllocBytes and Allocs are the cumulative allocation volume and count
	// (runtime.MemStats.TotalAlloc / Mallocs deltas) across this N's
	// build+sweep phase.
	AllocBytes uint64
	Allocs     uint64
	// BuildSeconds and SweepSeconds split the wall clock between overlay
	// construction (mixing+freeze, or a checkpoint load) and the
	// dissemination sweep.
	BuildSeconds, SweepSeconds float64
	// Bootstrap records how this N's overlay came to be: "built" (fresh
	// parallel bootstrap, no checkpointing), "built+saved" (fresh build,
	// checkpoint written for next time) or "checkpoint" (loaded from a
	// matching checkpoint — the mixing cycles were skipped entirely).
	Bootstrap string
	// Points holds this N's per-protocol results, in protocol order.
	Points []ScalePoint
}

// ScaleResult is a full scale sweep.
type ScaleResult struct {
	// Fanout, Runs, Cycles and Seed echo the configuration; Protocols is
	// the resolved protocol axis.
	Fanout, Runs, Cycles int
	Seed                 int64
	Protocols            []string
	// Steps holds one entry per N, in Ns order.
	Steps []ScaleStep
}

// scaleRun is the O(1) per-unit record the sweep retains — everything the
// streaming fold needs, with the bulky progress curve already dropped.
type scaleRun struct {
	reached, alive, hops, msgs int
}

// RunScale executes the scale sweep. Memory discipline is the point: per N
// it keeps at most the simulator OR the frozen snapshot alive (the
// simulator is dropped before sweeping and its ID-level links compacted
// away), retains O(1) state per dissemination, and reports the footprint
// per step.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = ScaleProtocols
	}
	res := &ScaleResult{
		Fanout:    cfg.Fanout,
		Runs:      cfg.Runs,
		Cycles:    cfg.Cycles,
		Seed:      cfg.Seed,
		Protocols: protocols,
	}
	for _, n := range cfg.Ns {
		step, err := runScaleStep(cfg, protocols, n)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, *step)
	}
	return res, nil
}

// scaleFingerprint pins the deterministic build of one scale-step overlay:
// the mix config and the checkpoint fingerprint derive from the same
// (n, seed, cycles) triple plus the paper's protocol parameters.
func scaleFingerprint(cfg ScaleConfig, n int) (sim.MixConfig, checkpoint.Fingerprint) {
	mixCfg := sim.DefaultMixConfig(n)
	mixCfg.Seed = cfg.Seed
	mixCfg.Cycles = cfg.Cycles
	mixCfg.Parallelism = cfg.Parallelism
	fp := checkpoint.Fingerprint{
		N: n, Seed: cfg.Seed, Cycles: cfg.Cycles,
		CyclonView: mixCfg.Cyclon.ViewSize, CyclonShuffle: mixCfg.Cyclon.ShuffleLen,
		VicinityView: mixCfg.Vicinity.ViewSize, VicinityGossip: mixCfg.Vicinity.GossipLen,
	}
	return mixCfg, fp
}

// scaleCheckpointPath names one step's checkpoint file inside the cache
// directory. The build parameters are in the name only for human browsing;
// correctness rests on the fingerprint check inside checkpoint.Load.
func scaleCheckpointPath(dir string, fp checkpoint.Fingerprint) string {
	return filepath.Join(dir, fmt.Sprintf("scale-n%d-s%d-c%d.rckp", fp.N, fp.Seed, fp.Cycles))
}

// arenaRingConvergence recomputes a frozen overlay's ring convergence from
// its d-links (the compact engine's positions are ring ranks, so node i's
// true neighbours are i±1 mod n) — used when a checkpoint load skips the
// build that would have reported it. On a built arena it reproduces
// MixResult.Convergence exactly.
func arenaRingConvergence(a *core.PosArena) float64 {
	n := a.N()
	correct := 0
	for i := 0; i < n; i++ {
		d := a.Links(i).D
		if len(d) == 2 && int(d[0]) == (i-1+n)%n && int(d[1]) == (i+1)%n {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// buildScaleOverlay produces one step's frozen arena: a checkpoint load
// when CheckpointDir holds a matching file, the parallel bootstrap
// otherwise (saving the result for next time when checkpointing is on).
// It reports the overlay's convergence and which path ran.
func buildScaleOverlay(cfg ScaleConfig, n int) (*core.PosArena, float64, string, error) {
	mixCfg, fp := scaleFingerprint(cfg, n)
	if cfg.CheckpointDir != "" {
		path := scaleCheckpointPath(cfg.CheckpointDir, fp)
		arena, err := checkpoint.Load(path, fp)
		switch {
		case err == nil:
			return arena, arenaRingConvergence(arena), "checkpoint", nil
		case errors.Is(err, os.ErrNotExist),
			errors.Is(err, checkpoint.ErrStale),
			errors.Is(err, checkpoint.ErrCorrupt):
			// Cache miss, or a file for different build parameters (or torn
			// bytes): rebuild below and overwrite. Reuse is never silent.
		default:
			return nil, 0, "", err
		}
		res, err := sim.BuildConverged(mixCfg)
		if err != nil {
			return nil, 0, "", err
		}
		// Collect the mixer's released state before Encode allocates the
		// serialization buffer (~1.1 GB at 1e7), so the buffer reuses those
		// pages instead of raising the process peak RSS above the build's.
		runtime.GC()
		if err := checkpoint.Save(path, fp, res.Arena); err != nil {
			return nil, 0, "", err
		}
		return res.Arena, res.Convergence, "built+saved", nil
	}
	res, err := sim.BuildConverged(mixCfg)
	if err != nil {
		return nil, 0, "", err
	}
	return res.Arena, res.Convergence, "built", nil
}

// runScaleStep builds (or loads), freezes and sweeps one population size.
func runScaleStep(cfg ScaleConfig, protocols []string, n int) (*ScaleStep, error) {
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	buildStart := time.Now() //lint:detrand wall-clock build timing is a perf diagnostic, never part of simulator output

	arena, convergence, bootstrap, err := buildScaleOverlay(cfg, n)
	if err != nil {
		return nil, err
	}
	step := &ScaleStep{N: n, Convergence: convergence, Bootstrap: bootstrap}
	// The sweep overlay is ID-less: positions are the only node names on the
	// scale path, so no ident.ID slice or origin index is ever materialized.
	o := dissem.FromArena(arena)
	runtime.GC()
	step.ArenaLinks = o.Arena().LinkCount()
	var msMid runtime.MemStats
	runtime.ReadMemStats(&msMid)
	step.HeapBytes = msMid.HeapAlloc
	step.BuildSeconds = time.Since(buildStart).Seconds() //lint:detrand perf diagnostic column, excluded from determinism guarantees

	sweepStart := time.Now() //lint:detrand wall-clock sweep timing is a perf diagnostic, never part of simulator output
	sels := make([]core.Selector, len(protocols))
	for i, p := range protocols {
		if sels[i], err = scaleSelector(p); err != nil {
			return nil, err
		}
	}
	np := len(protocols)
	units := np * cfg.Runs
	records := make([]scaleRun, units)
	err = runner.Map(cfg.Parallelism, units, cfg.Progress, func(u int) error {
		proto := u % np
		run := u / np
		// Paired origins: every protocol of a run disseminates from the
		// same node, like the figure sweeps' paired comparison. Origins are
		// drawn and used as positions — the overlay carries no IDs.
		origin, err := o.RandomAlivePos(runner.UnitRand(cfg.Seed, tagOrigin, tagScale, int64(n), int64(run)))
		if err != nil {
			return err
		}
		rng := runner.UnitRand(cfg.Seed, tagScale, int64(n), int64(run), int64(proto))
		sc := scratchPool.Get().(*dissem.Scratch)
		d, err := dissem.RunScratchPos(o, origin, sels[proto], cfg.Fanout, rng, dissem.Options{SkipLoad: true}, sc)
		scratchPool.Put(sc)
		if err != nil {
			return err
		}
		records[u] = scaleRun{reached: d.Reached, alive: d.AliveTotal, hops: d.Hops(), msgs: d.TotalMsgs()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Streaming fold in (protocol, run) index order: bit-identical at any
	// parallelism because the records are slotted, not raced.
	log2n := math.Log2(float64(n))
	for proto, name := range protocols {
		var hops stats.Welford
		median := stats.NewP2Quantile(0.5)
		var hit float64
		complete, msgs := 0, 0
		for run := 0; run < cfg.Runs; run++ {
			r := records[run*np+proto]
			hops.Add(float64(r.hops))
			median.Add(float64(r.hops))
			if r.alive > 0 {
				hit += float64(r.reached) / float64(r.alive)
			}
			if r.reached == r.alive {
				complete++
			}
			msgs += r.msgs
		}
		runsF := float64(cfg.Runs)
		pt := ScalePoint{
			N:                n,
			Protocol:         name,
			Runs:             cfg.Runs,
			HitRatio:         hit / runsF,
			CompleteFraction: float64(complete) / runsF,
			Hops:             hops.Summary(),
			HopsP50:          median.Value(),
			HopsPerLog2N:     hops.Mean() / log2n,
			MsgsPerNode:      float64(msgs) / runsF / float64(n),
		}
		step.Points = append(step.Points, pt)
	}
	step.SweepSeconds = time.Since(sweepStart).Seconds() //lint:detrand perf diagnostic column, excluded from determinism guarantees
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	step.AllocBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
	step.Allocs = msAfter.Mallocs - msBefore.Mallocs
	step.PeakRSSBytes = peakRSSBytes()
	return step, nil
}

// Table renders the scale comparison: one row per (N, protocol) with the
// headline hit/hops metrics plus the per-step memory telemetry.
func (r *ScaleResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scale sweep — fanout %d, %d runs/point, %d mixing cycles\n", r.Fanout, r.Runs, r.Cycles)
	w := newTable(&sb)
	fmt.Fprintln(w, "N\tprotocol\thit\tcomplete\thops\thops/log2N\tmsgs/node\theap MB\tpeak RSS MB\tbootstrap")
	for _, step := range r.Steps {
		for _, pt := range step.Points {
			fmt.Fprintf(w, "%d\t%s\t%s\t%.0f%%\t%.1f\t%.2f\t%.2f\t%.0f\t%.0f\t%s\n",
				step.N, pt.Protocol, pct(pt.HitRatio), pt.CompleteFraction*100,
				pt.Hops.Mean, pt.HopsPerLog2N, pt.MsgsPerNode,
				float64(step.HeapBytes)/(1<<20), float64(step.PeakRSSBytes)/(1<<20),
				step.Bootstrap)
		}
	}
	w.Flush()
	return sb.String()
}

// HopsVsLogNTable renders the figure's headline series: mean hops per
// protocol against log2(N), flat ratios meaning logarithmic growth.
func (r *ScaleResult) HopsVsLogNTable() string {
	var sb strings.Builder
	sb.WriteString("Hops vs log2(N) — logarithmic-latency check\n")
	w := newTable(&sb)
	header := "N\tlog2(N)"
	for _, p := range r.Protocols {
		header += "\t" + p + " hops\t" + p + "/log2N"
	}
	fmt.Fprintln(w, header)
	for _, step := range r.Steps {
		fmt.Fprintf(w, "%d\t%.1f", step.N, math.Log2(float64(step.N)))
		for _, pt := range step.Points {
			fmt.Fprintf(w, "\t%.1f\t%.2f", pt.Hops.Mean, pt.HopsPerLog2N)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// WriteCSV emits the scale sweep in long form, one row per (N, protocol).
// Columns:
//
//	n                 population
//	protocol          ringcast, rps-only or ring-only
//	runs              disseminations aggregated into the row
//	cycles            gossip mixing cycles before the freeze
//	convergence       ring convergence at freeze time
//	hit_ratio         mean fraction of live nodes reached
//	complete_fraction share of runs reaching every live node
//	mean_hops         mean completion time in hops
//	std_hops          sample standard deviation of hops
//	max_hops          worst completion time in hops
//	p50_hops          online median estimate of hops
//	hops_per_log2n    mean_hops / log2(n)
//	msgs_per_node     mean total copies per live node
//	arena_links       resolved links in the frozen arena
//	heap_bytes        live heap after freeze+compact (sweep steady state)
//	peak_rss_bytes    process peak resident set at end of the step (0 = n/a)
//	alloc_bytes       bytes allocated across the step
//	allocs            allocations across the step
//	build_seconds     build+mix+freeze (or checkpoint load) wall clock
//	sweep_seconds     dissemination sweep wall clock
//	bootstrap         built, built+saved or checkpoint (see ScaleStep)
func (r *ScaleResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"n", "protocol", "runs", "cycles", "convergence",
		"hit_ratio", "complete_fraction",
		"mean_hops", "std_hops", "max_hops", "p50_hops", "hops_per_log2n",
		"msgs_per_node", "arena_links",
		"heap_bytes", "peak_rss_bytes", "alloc_bytes", "allocs",
		"build_seconds", "sweep_seconds", "bootstrap",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, step := range r.Steps {
		for _, pt := range step.Points {
			rec := []string{
				strconv.Itoa(step.N), pt.Protocol, strconv.Itoa(pt.Runs), strconv.Itoa(r.Cycles),
				f(step.Convergence),
				f(pt.HitRatio), f(pt.CompleteFraction),
				f(pt.Hops.Mean), f(pt.Hops.Std), f(pt.Hops.Max), f(pt.HopsP50), f(pt.HopsPerLog2N),
				f(pt.MsgsPerNode), strconv.Itoa(step.ArenaLinks),
				strconv.FormatUint(step.HeapBytes, 10),
				strconv.FormatUint(step.PeakRSSBytes, 10),
				strconv.FormatUint(step.AllocBytes, 10),
				strconv.FormatUint(step.Allocs, 10),
				f(step.BuildSeconds), f(step.SweepSeconds), step.Bootstrap,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
