// Table rendering: every figure runner's result can print itself in the
// shape of the paper's plots, as plain-text series suitable for terminals,
// EXPERIMENTS.md, or piping into a plotting tool.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"ringcast/internal/stats"
)

func newTable(sb *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(sb, 2, 4, 2, ' ', 0)
}

// MissRatioTable renders the miss-ratio-vs-fanout series (Figures 6a, 9
// left, 11 left). Values are percentages of nodes not reached.
func (r *Result) MissRatioTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Miss ratio (%% nodes not reached) — %s, N=%d, %d runs/point\n", r.Scenario, r.N, r.Runs)
	w := newTable(&sb)
	fmt.Fprintln(w, "fanout\tRandCast\tRingCast")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d\t%s\t%s\n", row.Fanout, pct(row.Rand.MeanMissRatio), pct(row.Ring.MeanMissRatio))
	}
	w.Flush()
	return sb.String()
}

// CompleteTable renders the percentage of disseminations that reached every
// node (Figures 6b, 9 right, 11 right).
func (r *Result) CompleteTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Complete disseminations (%% of %d runs) — %s, N=%d\n", r.Runs, r.Scenario, r.N)
	w := newTable(&sb)
	fmt.Fprintln(w, "fanout\tRandCast\tRingCast")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d\t%.0f%%\t%.0f%%\n", row.Fanout, row.Rand.CompleteFraction*100, row.Ring.CompleteFraction*100)
	}
	w.Flush()
	return sb.String()
}

// OverheadTable renders the message-overhead split (Figure 8): mean
// messages to virgin (first-time) and already-notified nodes per
// dissemination, plus messages lost to dead nodes when applicable.
func (r *Result) OverheadTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Message overhead per dissemination — %s, N=%d\n", r.Scenario, r.N)
	w := newTable(&sb)
	fmt.Fprintln(w, "fanout\tRand virgin\tRand redundant\tRand lost\tRing virgin\tRing redundant\tRing lost")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", row.Fanout,
			row.Rand.MeanVirgin, row.Rand.MeanRedundant, row.Rand.MeanLost,
			row.Ring.MeanVirgin, row.Ring.MeanRedundant, row.Ring.MeanLost)
	}
	w.Flush()
	return sb.String()
}

// ProgressTable renders dissemination progress per hop (Figures 7, 10): the
// mean percentage of live nodes not yet reached after each hop, for the
// requested fanouts (the paper shows 2, 3, 5 and 10). Fanouts absent from
// the sweep are skipped.
func (r *Result) ProgressTable(fanouts ...int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dissemination progress (%% nodes not reached yet, per hop) — %s, N=%d\n", r.Scenario, r.N)
	for _, f := range fanouts {
		row, ok := r.row(f)
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "Fanout %d\n", f)
		w := newTable(&sb)
		fmt.Fprintln(w, "hop\tRandCast\tRingCast")
		hops := len(row.Rand.NotReachedByHop)
		if l := len(row.Ring.NotReachedByHop); l > hops {
			hops = l
		}
		for h := 0; h < hops; h++ {
			fmt.Fprintf(w, "%d\t%s\t%s\n", h,
				pct(hopValue(row.Rand.NotReachedByHop, h)),
				pct(hopValue(row.Ring.NotReachedByHop, h)))
		}
		w.Flush()
	}
	return sb.String()
}

func (r *Result) row(fanout int) (Row, bool) {
	for _, row := range r.Rows {
		if row.Fanout == fanout {
			return row, true
		}
	}
	return Row{}, false
}

func hopValue(curve []float64, h int) float64 {
	if len(curve) == 0 {
		return 1
	}
	if h >= len(curve) {
		return curve[len(curve)-1]
	}
	return curve[h]
}

// pct formats a ratio as a percentage with enough precision for the paper's
// log-scale plots (down to 1e-4 %).
func pct(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x < 1e-5:
		return fmt.Sprintf("%.1e%%", x*100)
	case x < 0.001:
		return fmt.Sprintf("%.4f%%", x*100)
	case x < 0.1:
		return fmt.Sprintf("%.3f%%", x*100)
	default:
		return fmt.Sprintf("%.1f%%", x*100)
	}
}

// LifetimeTable renders Figure 12: the distribution of node lifetimes at
// freeze time, log-binned for readability.
func (c *ChurnResult) LifetimeTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Node lifetime distribution — %s, N=%d (log-binned)\n", c.Scenario, c.N)
	w := newTable(&sb)
	fmt.Fprintln(w, "lifetime >=\tnodes")
	for _, p := range c.Lifetimes.LogBinned() {
		fmt.Fprintf(w, "%d\t%d\n", p.Value, p.Count)
	}
	w.Flush()
	return sb.String()
}

// MissByLifetimeTable renders Figure 13 for one fanout: how many
// non-notified nodes had each (log-binned) lifetime, per protocol, summed
// over all runs. New nodes dominating the RingCast column is the paper's
// key qualitative finding.
func (c *ChurnResult) MissByLifetimeTable(fanout int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Non-notified nodes by lifetime — %s, fanout %d, %d runs (log-binned)\n", c.Scenario, fanout, c.Runs)
	randHist, okR := c.MissedByLifetime["RandCast"][fanout]
	ringHist, okG := c.MissedByLifetime["RingCast"][fanout]
	if !okR || !okG {
		return sb.String() + "(fanout not in sweep)\n"
	}
	randBins, ringBins := randHist.LogBinned(), ringHist.LogBinned()
	values := map[int]bool{}
	for _, p := range randBins {
		values[p.Value] = true
	}
	for _, p := range ringBins {
		values[p.Value] = true
	}
	ordered := make([]int, 0, len(values))
	for v := range values {
		ordered = append(ordered, v)
	}
	sort.Ints(ordered)
	lookup := func(bins []stats.Pair, v int) int {
		for _, p := range bins {
			if p.Value == v {
				return p.Count
			}
		}
		return 0
	}
	w := newTable(&sb)
	fmt.Fprintln(w, "lifetime >=\tRandCast misses\tRingCast misses")
	for _, v := range ordered {
		fmt.Fprintf(w, "%d\t%d\t%d\n", v, lookup(randBins, v), lookup(ringBins, v))
	}
	w.Flush()
	return sb.String()
}

// Table renders the load-distribution result.
func (l *LoadResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Load distribution — fanout %d, N=%d, %d runs\n", l.Fanout, l.N, l.Runs)
	w := newTable(&sb)
	fmt.Fprintln(w, "protocol\tsent mean\tsent std\tsent max\trecv mean\trecv std\tGini(sent)")
	for _, name := range []string{"RandCast", "RingCast"} {
		s, rcv := l.Sent[name], l.Recv[name]
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.0f\t%.2f\t%.2f\t%.3f\n",
			name, s.Mean, s.Std, s.Max, rcv.Mean, rcv.Std, l.Gini[name])
	}
	w.Flush()
	return sb.String()
}

// FloodTable renders the Section 3 baseline comparison.
func FloodTable(rows []FloodRow) string {
	var sb strings.Builder
	sb.WriteString("Deterministic flooding overlays (Section 3 baselines)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "overlay\tlinks\tmsgs\thops\tcomplete\tP(complete|1 kill)\tP(complete|2 kills)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\t%.2f\t%.2f\n",
			r.Name, r.Links, r.Msgs, r.Hops, r.Complete, r.SurviveOne, r.SurviveTwo)
	}
	w.Flush()
	return sb.String()
}
