package experiment

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"ringcast/internal/metrics"
	"ringcast/internal/stats"
)

func sampleResult() *Result {
	return &Result{
		Scenario: "static",
		N:        100,
		Runs:     2,
		Rows: []Row{
			{
				Fanout: 2,
				Rand:   metrics.Agg{MeanMissRatio: 0.2, CompleteFraction: 0, MeanVirgin: 80, NotReachedByHop: []float64{1, 0.5, 0.2}},
				Ring:   metrics.Agg{MeanMissRatio: 0, CompleteFraction: 1, MeanVirgin: 99, NotReachedByHop: []float64{1, 0.4, 0}},
			},
			{
				Fanout: 5,
				Rand:   metrics.Agg{MeanMissRatio: 0.01, CompleteFraction: 0.5, MeanVirgin: 99},
				Ring:   metrics.Agg{MeanMissRatio: 0, CompleteFraction: 1, MeanVirgin: 99},
			},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(recs))
	}
	if recs[0][0] != "fanout" || len(recs[0]) != 13 {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "2" || recs[2][0] != "5" {
		t.Fatalf("fanout column wrong: %v / %v", recs[1][0], recs[2][0])
	}
	miss, err := strconv.ParseFloat(recs[1][1], 64)
	if err != nil || miss != 0.2 {
		t.Fatalf("randcast miss = %v (%v)", miss, err)
	}
}

func TestWriteProgressCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult().WriteProgressCSV(&sb, 2, 99); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 hops; fanout 99 skipped.
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if len(recs[0]) != 3 { // hop + 2 curves
		t.Fatalf("header = %v", recs[0])
	}
	if recs[3][2] != "0" {
		t.Fatalf("ringcast final hop = %v, want 0", recs[3][2])
	}
}

func TestWriteLifetimeCSV(t *testing.T) {
	life := stats.NewIntHistogram()
	life.AddAll([]int{1, 1, 5, 9})
	missRand := stats.NewIntHistogram()
	missRand.Add(1)
	missRing := stats.NewIntHistogram()
	missRing.Add(9)
	c := &ChurnResult{
		Result:    Result{Scenario: "churn"},
		Lifetimes: life,
		MissedByLifetime: map[string]map[int]*stats.IntHistogram{
			"RandCast": {3: missRand},
			"RingCast": {3: missRing},
		},
	}
	var sb strings.Builder
	if err := c.WriteLifetimeCSV(&sb, 3); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + lifetimes {1,5,9}
		t.Fatalf("records = %d, want 4:\n%s", len(recs), sb.String())
	}
	if recs[1][0] != "1" || recs[1][1] != "2" || recs[1][2] != "1" || recs[1][3] != "0" {
		t.Fatalf("lifetime-1 row = %v", recs[1])
	}
	if recs[3][0] != "9" || recs[3][3] != "1" {
		t.Fatalf("lifetime-9 row = %v", recs[3])
	}
	// Unswept fanout: still emits population column.
	var sb2 strings.Builder
	if err := c.WriteLifetimeCSV(&sb2, 77); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "lifetime,nodes") {
		t.Fatal("header missing for unswept fanout")
	}
}
