package experiment

import (
	"strings"
	"testing"
)

// testConfig is a small but meaningful scale: big enough for the paper's
// qualitative shapes to appear, small enough for CI.
func testConfig() Config {
	cfg := Scaled(400, 10)
	cfg.Fanouts = []int{1, 2, 3, 5, 10}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 1, Runs: 1, Fanouts: []int{1}, MaxWarmupCycles: 1},
		{N: 10, Runs: 0, Fanouts: []int{1}, MaxWarmupCycles: 1},
		{N: 10, Runs: 1, Fanouts: nil, MaxWarmupCycles: 1},
		{N: 10, Runs: 1, Fanouts: []int{0}, MaxWarmupCycles: 1},
		{N: 10, Runs: 1, Fanouts: []int{1}, WarmupCycles: 5, MaxWarmupCycles: 1},
		{N: 10, Runs: 1, Fanouts: []int{2, 2}, MaxWarmupCycles: 1},
		{N: 10, Runs: 1, Fanouts: []int{1}, MaxWarmupCycles: 1, Parallelism: -1},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := PaperConfig().validate(); err != nil {
		t.Error(err)
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	cfg := PaperConfig()
	if cfg.N != 10000 || cfg.Runs != 100 || cfg.WarmupCycles != 100 {
		t.Fatalf("paper config = %+v", cfg)
	}
	if len(cfg.Fanouts) != 20 || cfg.Fanouts[0] != 1 || cfg.Fanouts[19] != 20 {
		t.Fatalf("fanouts = %v, want 1..20", cfg.Fanouts)
	}
}

func TestRunStaticShapes(t *testing.T) {
	res, err := RunStatic(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Convergence != 1.0 {
		t.Fatalf("static experiment must start from a converged ring, got %v", res.Convergence)
	}
	for _, row := range res.Rows {
		// Headline claim: RingCast misses nothing in a static fail-free
		// network, for any fanout.
		if row.Ring.MeanMissRatio != 0 {
			t.Errorf("F=%d: RingCast miss ratio %v, want 0", row.Fanout, row.Ring.MeanMissRatio)
		}
		if row.Ring.CompleteFraction != 1 {
			t.Errorf("F=%d: RingCast complete fraction %v, want 1", row.Fanout, row.Ring.CompleteFraction)
		}
	}
	// RandCast's miss ratio decays with fanout.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if !(first.Rand.MeanMissRatio > last.Rand.MeanMissRatio) {
		t.Errorf("RandCast miss ratio should fall with fanout: F=%d %v vs F=%d %v",
			first.Fanout, first.Rand.MeanMissRatio, last.Fanout, last.Rand.MeanMissRatio)
	}
	// At F=1 RandCast essentially dies out; at F=10 it reaches nearly all.
	if first.Rand.MeanMissRatio < 0.5 {
		t.Errorf("F=1 RandCast miss ratio %v, want > 0.5", first.Rand.MeanMissRatio)
	}
	if last.Rand.MeanMissRatio > 0.02 {
		t.Errorf("F=10 RandCast miss ratio %v, want < 0.02", last.Rand.MeanMissRatio)
	}
	// Fig 8 shape: overhead ~ F x N for complete disseminations.
	row, _ := res.row(5)
	total := row.Ring.MeanVirgin + row.Ring.MeanRedundant + row.Ring.MeanLost
	if total < 4*float64(res.N) || total > 6*float64(res.N) {
		t.Errorf("F=5 RingCast total msgs = %v, want ~5N = %d", total, 5*res.N)
	}
	// Fig 7 shape: higher fanout disseminates in fewer hops.
	f2, _ := res.row(2)
	f10, _ := res.row(10)
	if !(f10.Ring.MeanHops < f2.Ring.MeanHops) {
		t.Errorf("hops should fall with fanout: F=2 %v, F=10 %v", f2.Ring.MeanHops, f10.Ring.MeanHops)
	}
}

func TestRunCatastrophicShapes(t *testing.T) {
	cfg := testConfig()
	res, err := RunCatastrophic(cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailFraction != 0.05 {
		t.Fatalf("fail fraction = %v", res.FailFraction)
	}
	// RingCast degrades gracefully but beats RandCast at low fanouts.
	for _, f := range []int{2, 3} {
		row, ok := res.row(f)
		if !ok {
			t.Fatalf("missing fanout %d", f)
		}
		if !(row.Ring.MeanMissRatio < row.Rand.MeanMissRatio) {
			t.Errorf("F=%d after 5%% kill: Ring %v !< Rand %v",
				f, row.Ring.MeanMissRatio, row.Rand.MeanMissRatio)
		}
	}
	// With failures neither protocol guarantees 100%.
	row, _ := res.row(2)
	if row.Ring.MeanMissRatio == 0 && row.Rand.MeanMissRatio == 0 {
		t.Log("note: no misses at all after 5% kill at this scale (possible but unusual)")
	}
}

func TestRunCatastrophicValidation(t *testing.T) {
	for _, frac := range []float64{0, 1, -0.5, 2} {
		if _, err := RunCatastrophic(testConfig(), frac); err == nil {
			t.Errorf("accepted fail fraction %v", frac)
		}
	}
}

func TestRunChurnShapes(t *testing.T) {
	cfg := Scaled(300, 8)
	cfg.Fanouts = []int{3, 6}
	// 1% churn: 3 nodes/cycle at N=300; cap turnover to keep the test fast.
	res, err := RunChurn(cfg, 0.01, 800)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TurnoverComplete {
		t.Fatalf("turnover incomplete after %d cycles", res.TurnoverCycles)
	}
	if res.Lifetimes.Total() != cfg.N {
		t.Fatalf("lifetime histogram total = %d, want %d", res.Lifetimes.Total(), cfg.N)
	}
	// Figure 13's qualitative claim: RingCast misses concentrate on young
	// nodes. Compare the share of misses with lifetime <= 20 cycles.
	for _, f := range cfg.Fanouts {
		ring := res.MissedByLifetime["RingCast"][f]
		if ring.Total() == 0 {
			continue // no misses at all: fine
		}
		young := 0
		for _, p := range ring.Sorted() {
			if p.Value <= 20 {
				young += p.Count
			}
		}
		if frac := float64(young) / float64(ring.Total()); frac < 0.5 {
			t.Errorf("F=%d: only %.2f of RingCast misses are young nodes, want majority", f, frac)
		}
	}
	// Tables render.
	if !strings.Contains(res.LifetimeTable(), "lifetime") {
		t.Error("lifetime table empty")
	}
	if !strings.Contains(res.MissByLifetimeTable(3), "RingCast") {
		t.Error("miss-by-lifetime table empty")
	}
}

func TestRunChurnValidation(t *testing.T) {
	if _, err := RunChurn(testConfig(), -1, 10); err == nil {
		t.Error("accepted negative churn rate")
	}
}

func TestRunLoadUniform(t *testing.T) {
	cfg := Scaled(300, 10)
	cfg.Fanouts = []int{5}
	res, err := RunLoad(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RandCast", "RingCast"} {
		g, ok := res.Gini[name]
		if !ok {
			t.Fatalf("missing protocol %s", name)
		}
		// Uniform-load claim: Gini far below a star topology's (~1).
		if g > 0.35 {
			t.Errorf("%s load Gini = %.3f, want <= 0.35 (roughly uniform)", name, g)
		}
	}
	if !strings.Contains(res.Table(), "Gini") {
		t.Error("load table empty")
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(testConfig(), 0); err == nil {
		t.Error("accepted zero fanout")
	}
}

func TestFloodBaselines(t *testing.T) {
	rows, err := RunFloodBaselines(64, 30, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FloodRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if !r.Complete {
			t.Errorf("%s: flooding incomplete on intact overlay", r.Name)
		}
	}
	tree := byName["binary tree"]
	clique := byName["clique"]
	ring := byName["ring (Harary t=2)"]
	star := byName["star (server)"]
	rings2 := byName["2 rings (§8)"]
	// Tree is message-minimal but fragile.
	if tree.Msgs > ring.Msgs {
		t.Errorf("tree msgs %d > ring msgs %d", tree.Msgs, ring.Msgs)
	}
	if tree.SurviveOne > 0.9 {
		t.Errorf("tree survival after 1 kill = %v, should be fragile", tree.SurviveOne)
	}
	// Clique always survives.
	if clique.SurviveTwo < 1 {
		t.Errorf("clique survival after 2 kills = %v, want 1", clique.SurviveTwo)
	}
	// Ring (Harary t=2) survives any single failure but not always two.
	if ring.SurviveOne < 1 {
		t.Errorf("ring survival after 1 kill = %v, want 1", ring.SurviveOne)
	}
	if ring.SurviveTwo >= 1 {
		t.Log("note: ring survived all 2-kill trials (possible with few trials)")
	}
	// Two independent rings beat one on double failures.
	if rings2.SurviveTwo < ring.SurviveTwo {
		t.Errorf("2 rings survival %v < 1 ring %v", rings2.SurviveTwo, ring.SurviveTwo)
	}
	// Star dies whenever the server dies: survival ~ (n-1)/n < 1.
	if star.SurviveOne >= 1 {
		t.Log("note: star survived all 1-kill trials (server never drawn)")
	}
	if !strings.Contains(FloodTable(rows), "clique") {
		t.Error("flood table empty")
	}
}

func TestFloodBaselinesValidation(t *testing.T) {
	if _, err := RunFloodBaselines(5, 10, 1, 0); err == nil {
		t.Error("accepted odd/small n")
	}
	if _, err := RunFloodBaselines(64, 0, 1, 0); err == nil {
		t.Error("accepted zero trials")
	}
}

func TestTablesRender(t *testing.T) {
	cfg := Scaled(200, 3)
	cfg.Fanouts = []int{2, 5}
	res, err := RunStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"miss":     res.MissRatioTable(),
		"complete": res.CompleteTable(),
		"progress": res.ProgressTable(2, 5),
	} {
		if !strings.Contains(s, "RandCast") || !strings.Contains(s, "RingCast") {
			t.Errorf("%s table missing protocol columns:\n%s", name, s)
		}
	}
	if s := res.OverheadTable(); !strings.Contains(s, "Rand virgin") || !strings.Contains(s, "Ring redundant") {
		t.Errorf("overhead table missing columns:\n%s", s)
	}
	// Progress table skips fanouts not swept.
	if s := res.ProgressTable(99); strings.Contains(s, "Fanout 99") {
		t.Error("progress table rendered unswept fanout")
	}
}

func TestMissByLifetimeTableUnsweptFanout(t *testing.T) {
	cfg := Scaled(200, 3)
	cfg.Fanouts = []int{3}
	res, err := RunChurn(cfg, 0.01, 400)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.MissByLifetimeTable(99); !strings.Contains(s, "not in sweep") {
		t.Errorf("unswept fanout not flagged:\n%s", s)
	}
	if s := res.MissByLifetimeTable(3); !strings.Contains(s, "lifetime") {
		t.Errorf("swept fanout not rendered:\n%s", s)
	}
}

func TestResultRowLookup(t *testing.T) {
	res := &Result{Rows: []Row{{Fanout: 2}, {Fanout: 5}}}
	if _, ok := res.row(5); !ok {
		t.Error("existing fanout not found")
	}
	if _, ok := res.row(9); ok {
		t.Error("missing fanout found")
	}
}
