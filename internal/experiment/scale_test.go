package experiment

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"ringcast/internal/checkpoint"
	"ringcast/internal/sim"
)

func testScaleConfig(parallelism int) ScaleConfig {
	return ScaleConfig{
		Ns:          []int{300, 900},
		Fanout:      4,
		Runs:        6,
		Cycles:      8,
		Seed:        21,
		Parallelism: parallelism,
	}
}

// TestRunScaleHeadline checks the paper's scale claims on a small axis:
// the hybrid protocol reaches everyone in every run, its ring-only half
// needs ~N/2 hops, and its random half misses nodes at this fanout.
func TestRunScaleHeadline(t *testing.T) {
	res, err := RunScale(testScaleConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("%d steps", len(res.Steps))
	}
	for _, step := range res.Steps {
		if step.Convergence < 0.99 {
			t.Errorf("N=%d convergence %v", step.N, step.Convergence)
		}
		if step.ArenaLinks == 0 || step.HeapBytes == 0 {
			t.Errorf("N=%d missing telemetry: links %d heap %d", step.N, step.ArenaLinks, step.HeapBytes)
		}
		byName := map[string]ScalePoint{}
		for _, pt := range step.Points {
			byName[pt.Protocol] = pt
		}
		ring := byName["ringcast"]
		if ring.HitRatio != 1 || ring.CompleteFraction != 1 {
			t.Errorf("N=%d ringcast hit %v complete %v", step.N, ring.HitRatio, ring.CompleteFraction)
		}
		ringOnly := byName["ring-only"]
		if ringOnly.Hops.Mean < float64(step.N)/2-1 {
			t.Errorf("N=%d ring-only hops %v, want ~N/2", step.N, ringOnly.Hops.Mean)
		}
		if ring.Hops.Mean >= ringOnly.Hops.Mean {
			t.Errorf("N=%d hybrid (%v hops) not faster than ring-only (%v)", step.N, ring.Hops.Mean, ringOnly.Hops.Mean)
		}
	}
	// Logarithmic latency: hops/log2N of the hybrid protocol must not grow
	// with N (allow slack for the small axis).
	r0, r1 := res.Steps[0].Points[0], res.Steps[1].Points[0]
	if r1.HopsPerLog2N > r0.HopsPerLog2N*1.5 {
		t.Errorf("hops/log2N grew %v -> %v", r0.HopsPerLog2N, r1.HopsPerLog2N)
	}
}

// TestRunScaleParallelDeterminism asserts the experiment-result portion of
// the sweep (everything except wall-clock/memory telemetry) is identical
// at parallelism 1, 2 and 4.
func TestRunScaleParallelDeterminism(t *testing.T) {
	ref, err := RunScale(testScaleConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		got, err := RunScale(testScaleConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		for si := range ref.Steps {
			if got.Steps[si].Convergence != ref.Steps[si].Convergence ||
				got.Steps[si].ArenaLinks != ref.Steps[si].ArenaLinks {
				t.Fatalf("P=%d step %d build diverges", p, si)
			}
			for pi := range ref.Steps[si].Points {
				if got.Steps[si].Points[pi] != ref.Steps[si].Points[pi] {
					t.Fatalf("P=%d point %d/%d diverges:\n %+v\n %+v",
						p, si, pi, got.Steps[si].Points[pi], ref.Steps[si].Points[pi])
				}
			}
		}
	}
}

// TestScaleRendering smoke-tests the table and CSV emitters.
func TestScaleRendering(t *testing.T) {
	cfg := testScaleConfig(0)
	cfg.Ns = []int{200}
	cfg.Runs = 3
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	for _, want := range []string{"ringcast", "rps-only", "ring-only", "hops/log2N"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(res.HopsVsLogNTable(), "log2(N)") {
		t.Error("hops-vs-logN table missing header")
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("CSV rows: %d\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "n,protocol,runs,cycles,convergence,hit_ratio") {
		t.Fatalf("CSV header: %s", lines[0])
	}
}

// scaleStepsEqual compares the experiment-result portion of two sweeps
// (points and convergence — everything except wall-clock/memory telemetry
// and the bootstrap provenance).
func scaleStepsEqual(t *testing.T, a, b *ScaleResult, label string) {
	t.Helper()
	for si := range a.Steps {
		if a.Steps[si].Convergence != b.Steps[si].Convergence {
			t.Fatalf("%s: step %d convergence %v vs %v", label, si,
				a.Steps[si].Convergence, b.Steps[si].Convergence)
		}
		for pi := range a.Steps[si].Points {
			if a.Steps[si].Points[pi] != b.Steps[si].Points[pi] {
				t.Fatalf("%s: point %d/%d diverges:\n %+v\n %+v", label, si, pi,
					a.Steps[si].Points[pi], b.Steps[si].Points[pi])
			}
		}
	}
}

// TestRunScaleCheckpointReuse pins the load-or-build cycle: the first
// checkpointed run builds and saves, the second loads (skipping the mixing
// cycles), and both — plus a checkpoint-free run — produce identical
// results, including the recomputed convergence of the loaded arena.
func TestRunScaleCheckpointReuse(t *testing.T) {
	cfg := testScaleConfig(0)
	cfg.Ns = []int{400}
	cfg.Runs = 4
	cfg.CheckpointDir = t.TempDir()

	first, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Steps[0].Bootstrap; got != "built+saved" {
		t.Fatalf("first run bootstrap %q, want built+saved", got)
	}
	second, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Steps[0].Bootstrap; got != "checkpoint" {
		t.Fatalf("second run bootstrap %q, want checkpoint", got)
	}
	scaleStepsEqual(t, first, second, "checkpoint reuse")

	plain := cfg
	plain.CheckpointDir = ""
	third, err := RunScale(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got := third.Steps[0].Bootstrap; got != "built" {
		t.Fatalf("plain run bootstrap %q, want built", got)
	}
	scaleStepsEqual(t, first, third, "checkpoint vs plain")
}

// TestRunScaleCheckpointStaleAndCorrupt pins that a checkpoint whose
// fingerprint does not match the build (or whose bytes are garbage) is
// rebuilt and overwritten — never silently reused.
func TestRunScaleCheckpointStaleAndCorrupt(t *testing.T) {
	cfg := testScaleConfig(0)
	cfg.Ns = []int{300}
	cfg.Runs = 3
	cfg.CheckpointDir = t.TempDir()
	_, fp := scaleFingerprint(cfg, 300)
	path := scaleCheckpointPath(cfg.CheckpointDir, fp)

	plain := cfg
	plain.CheckpointDir = ""
	want, err := RunScale(plain)
	if err != nil {
		t.Fatal(err)
	}

	// Stale: a structurally valid checkpoint built from a different seed,
	// planted at the exact path this run will probe.
	other := sim.DefaultMixConfig(300)
	other.Seed = cfg.Seed + 1
	other.Cycles = cfg.Cycles
	res, err := sim.BuildConverged(other)
	if err != nil {
		t.Fatal(err)
	}
	staleFP := fp
	staleFP.Seed = other.Seed
	if err := checkpoint.Save(path, staleFP, res.Arena); err != nil {
		t.Fatal(err)
	}
	got, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps[0].Bootstrap != "built+saved" {
		t.Fatalf("stale checkpoint bootstrap %q, want built+saved (rebuild)", got.Steps[0].Bootstrap)
	}
	scaleStepsEqual(t, want, got, "stale rebuild")

	// Corrupt: garbage bytes at the path; again a rebuild, and the rebuild
	// must have overwritten the file so the next run loads cleanly.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps[0].Bootstrap != "built+saved" {
		t.Fatalf("corrupt checkpoint bootstrap %q, want built+saved (rebuild)", got.Steps[0].Bootstrap)
	}
	scaleStepsEqual(t, want, got, "corrupt rebuild")
	got, err = RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps[0].Bootstrap != "checkpoint" {
		t.Fatalf("post-rebuild bootstrap %q, want checkpoint", got.Steps[0].Bootstrap)
	}
	scaleStepsEqual(t, want, got, "post-rebuild reuse")
}

// TestScaleConfigValidation covers the rejection paths.
func TestScaleConfigValidation(t *testing.T) {
	bad := []ScaleConfig{
		{},
		{Ns: []int{1}, Fanout: 1, Runs: 1, Cycles: 1},
		{Ns: []int{10}, Fanout: 0, Runs: 1, Cycles: 1},
		{Ns: []int{10}, Fanout: 1, Runs: 0, Cycles: 1},
		{Ns: []int{10}, Fanout: 1, Runs: 1, Cycles: 0},
		{Ns: []int{10}, Fanout: 1, Runs: 1, Cycles: 1, Protocols: []string{"nope"}},
	}
	for i, cfg := range bad {
		if _, err := RunScale(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestPeakRSS pins the Linux probe: on CI and dev machines it must report
// something plausible (a test process certainly exceeds a megabyte).
func TestPeakRSS(t *testing.T) {
	rss := peakRSSBytes()
	if rss == 0 {
		t.Skip("peak RSS unavailable on this platform")
	}
	if rss < 1<<20 {
		t.Fatalf("implausible peak RSS %d", rss)
	}
}
