// Timing-model robustness: Section 7.1 reports that varying the message
// forwarding time "from zero to several times the gossiping period" has no
// effect on macroscopic dissemination behaviour. This runner repeats that
// check by executing the same workload under the hop-synchronous model and
// under event-driven models with different latency distributions.
package experiment

import (
	"fmt"
	"sync"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/eventsim"
	"ringcast/internal/runner"
)

// eventScratchPool is scratchPool's event-driven counterpart.
var eventScratchPool = sync.Pool{New: func() any { return eventsim.NewScratch() }}

// TimingRow is one latency model's aggregate outcome.
type TimingRow struct {
	// Model names the latency distribution ("hop-synchronous", "constant",
	// "uniform", "exponential").
	Model string
	// MeanMissRatio and MeanMsgs are the macroscopic quantities that must
	// not depend on timing.
	MeanMissRatio float64
	MeanMsgs      float64
}

// TimingResult compares latency models on one frozen overlay.
type TimingResult struct {
	N, Runs  int
	Fanout   int
	Protocol string
	Rows     []TimingRow
}

// RunTimingInvariance executes cfg.Runs disseminations per latency model
// with the given protocol and fanout and reports the macroscopic outcomes.
// The (model, run) unit grid is fanned across the worker pool; per-unit
// sums are folded in run order so the means are bit-identical at any
// Config.Parallelism.
func RunTimingInvariance(cfg Config, protocol string, fanout int) (*TimingResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sel, err := core.ByName(protocol)
	if err != nil {
		return nil, err
	}
	if fanout < 1 {
		return nil, fmt.Errorf("experiment: fanout must be >= 1, got %d", fanout)
	}
	nw, _, _, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	o := dissem.Snapshot(nw)

	// Model 0 is the hop-synchronous reference; the rest are event-driven.
	models := []struct {
		name string
		lat  eventsim.LatencyFunc
	}{
		{"hop-synchronous", nil},
		{"constant", eventsim.ConstantLatency(1)},
		{"uniform[0.1,10)", eventsim.UniformLatency(0.1, 10)},
		{"exponential(mean 3)", eventsim.ExpLatency(3)},
	}

	type outcome struct{ miss, msgs float64 }
	units := make([]outcome, len(models)*cfg.Runs)
	err = runner.Map(cfg.Parallelism, len(units), cfg.Progress, func(u int) error {
		m, run := u/cfg.Runs, u%cfg.Runs
		origin, err := o.RandomAliveOrigin(runner.UnitRand(cfg.Seed, tagOrigin, tagTiming, int64(run)))
		if err != nil {
			return err
		}
		rng := runner.UnitRand(cfg.Seed, tagTiming, int64(m), int64(run))
		if models[m].lat == nil {
			sc := scratchPool.Get().(*dissem.Scratch)
			d, err := dissem.RunScratch(o, origin, sel, fanout, rng, dissem.Options{SkipLoad: true}, sc)
			scratchPool.Put(sc)
			if err != nil {
				return err
			}
			units[u] = outcome{d.MissRatio(), float64(d.TotalMsgs())}
			return nil
		}
		sc := eventScratchPool.Get().(*eventsim.Scratch)
		ev, err := eventsim.RunScratch(o, origin, sel, fanout, models[m].lat, rng, sc)
		eventScratchPool.Put(sc)
		if err != nil {
			return err
		}
		units[u] = outcome{ev.MissRatio(), float64(ev.TotalMsgs())}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TimingResult{N: cfg.N, Runs: cfg.Runs, Fanout: fanout, Protocol: sel.Name()}
	for m := range models {
		var miss, msgs float64
		for run := 0; run < cfg.Runs; run++ {
			miss += units[m*cfg.Runs+run].miss
			msgs += units[m*cfg.Runs+run].msgs
		}
		res.Rows = append(res.Rows, TimingRow{
			Model:         models[m].name,
			MeanMissRatio: miss / float64(cfg.Runs),
			MeanMsgs:      msgs / float64(cfg.Runs),
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r *TimingResult) Table() string {
	s := fmt.Sprintf("Timing-model invariance — %s, F=%d, N=%d, %d runs/model\n",
		r.Protocol, r.Fanout, r.N, r.Runs)
	s += fmt.Sprintf("%-22s %-12s %s\n", "latency model", "miss ratio", "msgs/dissemination")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-22s %-12s %.0f\n", row.Model, pct(row.MeanMissRatio), row.MeanMsgs)
	}
	return s
}
