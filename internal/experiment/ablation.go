// Ablation experiments for the design decisions called out in DESIGN.md:
// the VICINITY candidate feed, CYCLON's age-based peer selection, the
// staleness bound that lets the ring heal, and the multi-ring extension of
// Section 8.
package experiment

import (
	"fmt"
	"math/rand"

	"ringcast/internal/churn"
	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
	"ringcast/internal/metrics"
	"ringcast/internal/overlay"
	"ringcast/internal/runner"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

// FeedAblationResult compares ring-construction speed with and without the
// CYCLON candidate feed into VICINITY merges (the two-layered design of
// Section 6).
type FeedAblationResult struct {
	N int
	// WithFeedCycles / WithoutFeedCycles are the cycles needed to reach
	// full ring convergence (capped at MaxCycles).
	WithFeedCycles, WithoutFeedCycles int
	// WithFeedConv / WithoutFeedConv are the convergence levels reached.
	WithFeedConv, WithoutFeedConv float64
	// MaxCycles is the cap used.
	MaxCycles int
}

// RunFeedAblation measures how many cycles the ring needs to converge with
// and without the peer-sampling feed.
func RunFeedAblation(n, maxCycles int, seed int64, parallelism int) (*FeedAblationResult, error) {
	if n < 2 || maxCycles < 1 {
		return nil, fmt.Errorf("experiment: invalid feed ablation n=%d maxCycles=%d", n, maxCycles)
	}
	res := &FeedAblationResult{N: n, MaxCycles: maxCycles}
	// The two arms are independent networks (same seed, paired comparison),
	// so they run concurrently on the worker pool.
	err := runner.Map(parallelism, 2, nil, func(arm int) error {
		disable := arm == 1
		cfg := sim.DefaultConfig(n)
		cfg.Seed = seed
		cfg.DisableVicinityFeed = disable
		nw, err := sim.New(cfg)
		if err != nil {
			return err
		}
		cycles := 0
		conv := 0.0
		for cycles < maxCycles {
			nw.RunCycles(10)
			cycles += 10
			conv = nw.RingConvergence()
			if conv == 1.0 {
				break
			}
		}
		if disable {
			res.WithoutFeedCycles, res.WithoutFeedConv = cycles, conv
		} else {
			res.WithFeedCycles, res.WithFeedConv = cycles, conv
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SelectionAblationResult compares CYCLON's age-based ("enhanced") peer
// selection against uniform-random ("basic") selection under churn: the
// fraction of stale (dead) links lingering in live views after healing.
type SelectionAblationResult struct {
	N           int
	ChurnCycles int
	// StaleFractionOldest / StaleFractionRandom are the dead-link fractions
	// in CYCLON views at the end.
	StaleFractionOldest, StaleFractionRandom float64
}

// RunSelectionAblation churns two otherwise-identical networks and measures
// stale-link pollution under each CYCLON peer-selection policy.
func RunSelectionAblation(n, churnCycles int, rate float64, seed int64, parallelism int) (*SelectionAblationResult, error) {
	if n < 2 || churnCycles < 1 {
		return nil, fmt.Errorf("experiment: invalid selection ablation n=%d cycles=%d", n, churnCycles)
	}
	model := churn.Model{Rate: rate}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	res := &SelectionAblationResult{N: n, ChurnCycles: churnCycles}
	err := runner.Map(parallelism, 2, nil, func(arm int) error {
		random := arm == 1
		cfg := sim.DefaultConfig(n)
		cfg.Seed = seed
		cfg.Cyclon.RandomPeerSelection = random
		nw, err := sim.New(cfg)
		if err != nil {
			return err
		}
		nw.RunCycles(100)
		armModel := model // private accumulator state per parallel arm
		armModel.Run(nw, churnCycles)
		stale, total := 0, 0
		for _, nd := range nw.Nodes() {
			if !nd.Alive {
				continue
			}
			for _, id := range nd.Cyc.View().IDs() {
				total++
				if peer, ok := nw.NodeByID(id); !ok || !peer.Alive {
					stale++
				}
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(stale) / float64(total)
		}
		if random {
			res.StaleFractionRandom = frac
		} else {
			res.StaleFractionOldest = frac
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MultiRingRow is one (rings, failure-fraction) cell of the multi-ring
// reliability ablation.
type MultiRingRow struct {
	Rings        int
	FailFraction float64
	Agg          metrics.Agg
}

// RunMultiRingAblation evaluates the Section 8 extension: RINGCAST with k
// independent rings (2k d-links per node) after a catastrophic failure,
// using idealized converged overlays (the gossip layer provably converges
// to them; building k VICINITY instances per node would only add noise).
// Fanout stays fixed so that extra reliability is attributable to the
// d-link structure alone.
func RunMultiRingAblation(n, runs, fanout int, ringCounts []int, failFrac float64, seed int64, parallelism int) ([]MultiRingRow, error) {
	if n < 4 || runs < 1 || fanout < 1 {
		return nil, fmt.Errorf("experiment: invalid multi-ring ablation n=%d runs=%d fanout=%d", n, runs, fanout)
	}
	seen := make(map[int]struct{}, len(ringCounts))
	for _, k := range ringCounts {
		// Cell random streams are keyed by ring count, so a duplicate would
		// silently reproduce the same cell rather than replicate it.
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("experiment: duplicate ring count %d", k)
		}
		seen[k] = struct{}{}
	}
	rows := make([]MultiRingRow, len(ringCounts))
	// Each ring count is an independent cell with its own derived random
	// stream, so cells run concurrently and results do not depend on how
	// many cells one call sweeps.
	err := runner.Map(parallelism, len(ringCounts), nil, func(ki int) error {
		k := ringCounts[ki]
		rng := runner.UnitRand(seed, tagMultiRing, int64(k))
		g, err := overlay.KRings(k, n, rng)
		if err != nil {
			return err
		}
		rlinks, err := overlay.RandomOutDegree(n, 20, rng)
		if err != nil {
			return err
		}
		ids := make([]ident.ID, n)
		for i := range ids {
			ids[i] = ident.ID(i + 1)
		}
		links := make([]core.Links, n)
		for i := range links {
			d := make([]ident.ID, 0, len(g.Out(i)))
			for _, v := range g.Out(i) {
				d = append(d, ids[v])
			}
			r := make([]ident.ID, 0, len(rlinks.Out(i)))
			for _, v := range rlinks.Out(i) {
				r = append(r, ids[v])
			}
			links[i] = core.Links{R: r, D: d}
		}
		base, err := dissem.FromLinks(ids, links)
		if err != nil {
			return err
		}
		var acc metrics.Accumulator
		sc := scratchPool.Get().(*dissem.Scratch)
		defer scratchPool.Put(sc)
		for run := 0; run < runs; run++ {
			o := base.Clone()
			o.KillFraction(failFrac, rng)
			origin, err := o.RandomAliveOrigin(rng)
			if err != nil {
				return err
			}
			d, err := dissem.RunScratch(o, origin, core.RingCast{}, fanout, rng, dissem.Options{SkipLoad: true}, sc)
			if err != nil {
				return err
			}
			acc.Add(d)
		}
		rows[ki] = MultiRingRow{Rings: k, FailFraction: failFrac, Agg: acc.Finalize()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// MaxAgeAblationResult compares ring healing under churn with and without
// the VICINITY staleness bound.
type MaxAgeAblationResult struct {
	N           int
	ChurnCycles int
	// ConvWithMaxAge / ConvWithoutMaxAge are the final ring convergences.
	ConvWithMaxAge, ConvWithoutMaxAge float64
}

// RunMaxAgeAblation demonstrates why the staleness bound exists: without
// it, dead entries are endlessly resurrected by gossip partners and the
// ring cannot heal under churn.
func RunMaxAgeAblation(n, churnCycles int, rate float64, seed int64, parallelism int) (*MaxAgeAblationResult, error) {
	if n < 2 || churnCycles < 1 {
		return nil, fmt.Errorf("experiment: invalid max-age ablation n=%d cycles=%d", n, churnCycles)
	}
	model := churn.Model{Rate: rate}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	res := &MaxAgeAblationResult{N: n, ChurnCycles: churnCycles}
	err := runner.Map(parallelism, 2, nil, func(arm int) error {
		disable := arm == 1
		cfg := sim.DefaultConfig(n)
		cfg.Seed = seed
		if disable {
			cfg.Vicinity.MaxAge = 0
		}
		nw, err := sim.New(cfg)
		if err != nil {
			return err
		}
		nw.RunCycles(100)
		armModel := model // private accumulator state per parallel arm
		armModel.Run(nw, churnCycles)
		if disable {
			res.ConvWithoutMaxAge = nw.RingConvergence()
		} else {
			res.ConvWithMaxAge = nw.RingConvergence()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DomainRingResult verifies the Section 8 domain-proximity construction:
// with reversed-domain IDs, the converged ring visits all nodes of one
// domain consecutively.
type DomainRingResult struct {
	N       int
	Domains int
	// Converged reports whether the ring fully formed.
	Converged bool
	// DomainRuns counts maximal runs of consecutive same-domain nodes along
	// the ring; equal to Domains exactly when every domain is contiguous.
	DomainRuns int
}

// RunDomainRing builds a network whose IDs encode reversed domain names and
// checks that nodes self-organize into a domain-sorted ring.
func RunDomainRing(nodesPerDomain int, domains []string, seed int64) (*DomainRingResult, error) {
	if nodesPerDomain < 1 || len(domains) < 1 {
		return nil, fmt.Errorf("experiment: invalid domain ring parameters")
	}
	n := nodesPerDomain * len(domains)
	if n < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, 0, n)
	domainOf := make(map[ident.ID]string, n)
	used := make(map[ident.ID]struct{}, n)
	for _, dom := range domains {
		for i := 0; i < nodesPerDomain; i++ {
			id := ident.DomainID(dom, rng.Uint32())
			for _, dup := used[id]; dup; _, dup = used[id] {
				id = ident.DomainID(dom, rng.Uint32())
			}
			used[id] = struct{}{}
			ids = append(ids, id)
			domainOf[id] = dom
		}
	}
	cfg := sim.Config{
		N:           n,
		Cyclon:      cyclon.DefaultConfig(),
		Vicinity:    vicinity.DefaultConfig(),
		UseVicinity: true,
		Seed:        seed,
		NodeIDs:     ids,
	}
	nw, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	_, conv := nw.WarmUp(100, 1000)

	// Walk the ring in ID order and count domain runs.
	sorted := nw.AliveIDs()
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	runs := 0
	for i := range sorted {
		prev := sorted[(i-1+len(sorted))%len(sorted)]
		if domainOf[sorted[i]] != domainOf[prev] {
			runs++
		}
	}
	return &DomainRingResult{
		N:          n,
		Domains:    len(domains),
		Converged:  conv == 1.0,
		DomainRuns: runs,
	}, nil
}
