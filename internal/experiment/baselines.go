// Flooding-overlay baselines from Section 3 of the paper: trees are
// message-optimal but fragile, stars centralize load and fail with the
// server, cliques are maximally reliable but unmaintainable, and Harary
// graphs give tunable reliability at minimal overhead. RINGCAST's d-link
// structure is the Harary graph of connectivity 2 (the bidirectional ring).
package experiment

import (
	"fmt"
	"math/rand"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/graph"
	"ringcast/internal/ident"
	"ringcast/internal/overlay"
	"ringcast/internal/runner"
)

// FloodRow describes flooding behaviour over one static overlay.
type FloodRow struct {
	// Name identifies the overlay ("ring", "star", ...).
	Name string
	// Links is the total number of directed links maintained.
	Links int
	// Msgs is the number of point-to-point messages in one complete
	// dissemination on the intact overlay.
	Msgs int
	// Hops is the dissemination latency on the intact overlay.
	Hops int
	// Complete reports whether flooding reached all nodes on the intact overlay.
	Complete bool
	// SurviveOne and SurviveTwo are the empirical probabilities that a
	// dissemination still reaches every live node after 1 (resp. 2) random
	// node failures.
	SurviveOne, SurviveTwo float64
}

// RunFloodBaselines floods each Section 3 overlay over n nodes and measures
// overhead, latency and failure resilience (trials random-failure trials per
// overlay).
func RunFloodBaselines(n, trials int, seed int64, parallelism int) ([]FloodRow, error) {
	if n < 6 || n%2 != 0 {
		return nil, fmt.Errorf("experiment: baselines need even n >= 6, got %d", n)
	}
	if trials < 1 {
		return nil, fmt.Errorf("experiment: trials must be >= 1, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))

	tree, err := overlay.Tree(n, 2)
	if err != nil {
		return nil, err
	}
	harary4, err := overlay.Harary(4, n)
	if err != nil {
		return nil, err
	}
	rings2, err := overlay.KRings(2, n, rng)
	if err != nil {
		return nil, err
	}
	overlays := []struct {
		name string
		g    *graph.Directed
	}{
		{"ring (Harary t=2)", overlay.Ring(n)},
		{"star (server)", overlay.Star(n)},
		{"binary tree", tree},
		{"clique", overlay.Clique(n)},
		{"Harary t=4", harary4},
		{"2 rings (§8)", rings2},
	}

	rows := make([]FloodRow, 0, len(overlays))
	for oi, ov := range overlays {
		o, err := graphOverlay(ov.g)
		if err != nil {
			return nil, err
		}
		d, err := dissem.RunOpts(o, o.IDs()[0], core.DFlood{}, 0, rng, dissem.Options{SkipLoad: true})
		if err != nil {
			return nil, err
		}
		links := 0
		for _, deg := range ov.g.OutDegrees() {
			links += deg
		}
		row := FloodRow{
			Name:     ov.name,
			Links:    links,
			Msgs:     d.TotalMsgs(),
			Hops:     d.Hops(),
			Complete: d.Complete(),
		}
		row.SurviveOne, err = survivalRate(o, seed, int64(oi), 1, trials, parallelism)
		if err != nil {
			return nil, err
		}
		row.SurviveTwo, err = survivalRate(o, seed, int64(oi), 2, trials, parallelism)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// graphOverlay converts an adjacency graph into a dissem overlay whose
// d-links are the graph edges.
func graphOverlay(g *graph.Directed) (*dissem.Overlay, error) {
	ids := make([]ident.ID, g.N())
	links := make([]core.Links, g.N())
	for i := 0; i < g.N(); i++ {
		ids[i] = ident.ID(i + 1)
	}
	for i := 0; i < g.N(); i++ {
		out := g.Out(i)
		d := make([]ident.ID, len(out))
		for j, v := range out {
			d[j] = ids[v]
		}
		links[i].D = d
	}
	return dissem.FromLinks(ids, links)
}

// survivalRate estimates the probability that flooding from a random live
// origin reaches every live node after `kills` random failures. Trials are
// independent (each clones the intact overlay and draws its own derived
// random stream), so they fan across the worker pool; the success tally is
// an integer sum and thus parallelism-independent.
func survivalRate(o *dissem.Overlay, seed, ovTag int64, kills, trials, parallelism int) (float64, error) {
	okByTrial := make([]bool, trials)
	err := runner.Map(parallelism, trials, nil, func(t int) error {
		rng := runner.UnitRand(seed, tagFloodTrial, ovTag, int64(kills), int64(t))
		c := o.Clone()
		c.KillFraction(float64(kills)/float64(c.N()), rng)
		// KillFraction truncates; force exact count by killing one at a time
		// if rounding produced too few.
		for c.N()-c.AliveCount() < kills {
			c.KillFraction(1.5/float64(c.AliveCount()), rng)
		}
		origin, err := c.RandomAliveOrigin(rng)
		if err != nil {
			return nil // overlay wiped out: count the trial as failed
		}
		sc := scratchPool.Get().(*dissem.Scratch)
		d, err := dissem.RunScratch(c, origin, core.DFlood{}, 0, rng, dissem.Options{SkipLoad: true}, sc)
		scratchPool.Put(sc)
		if err != nil {
			return err
		}
		okByTrial[t] = d.Complete()
		return nil
	})
	if err != nil {
		return 0, err
	}
	ok := 0
	for _, b := range okByTrial {
		if b {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}
