// Package experiment reproduces the paper's evaluation (Section 7): every
// figure has a runner that regenerates its data series, side by side for
// RANDCAST and RINGCAST, following the paper's methodology — star
// bootstrap, 100 warm-up cycles, frozen overlay, 100 messages from random
// origins per data point.
//
// Runner-to-figure map:
//
//	RunStatic        -> Figures 6a, 6b, 7, 8  (static fail-free network)
//	RunCatastrophic  -> Figures 9, 10          (sudden failure of 1-10%)
//	RunChurn         -> Figures 11, 12, 13     (continuous artificial churn)
//	RunLoad          -> Section 7's uniform-load claim
//	RunFloodBaselines-> Section 3's deterministic-overlay baselines
//	RunScale         -> the logarithmic-latency headline at N up to 1e6
//
// Execution model: warm-up and churn phases are inherently sequential (each
// gossip cycle depends on the previous one), but everything after the
// overlay freezes is embarrassingly parallel. The runners fan the
// (protocol, fanout, run) unit grid of each sweep across a worker pool
// (internal/runner), with per-unit random streams derived from Config.Seed,
// so results are bit-identical at any Config.Parallelism — including 1, the
// reference sequential execution. RunChurnReplicas additionally fans whole
// independent churn replicas across workers.
//
//ringcast:deterministic
package experiment

import (
	"fmt"
	"sync"

	"ringcast/internal/churn"
	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/metrics"
	"ringcast/internal/runner"
	"ringcast/internal/scenario"
	"ringcast/internal/sim"
	"ringcast/internal/stats"
)

// Config parameterizes an experiment sweep.
type Config struct {
	// N is the node population (10,000 in the paper).
	N int
	// Runs is the number of disseminations per data point (100 in the paper).
	Runs int
	// Fanouts are the F values swept (1..20 in the paper).
	Fanouts []int
	// WarmupCycles is the minimum self-organization period (100 in the paper).
	WarmupCycles int
	// MaxWarmupCycles caps the extended warm-up used to guarantee ring
	// convergence before a static experiment.
	MaxWarmupCycles int
	// Seed drives all randomness deterministically: the sequential warm-up
	// uses it directly, and every parallel work unit derives its own
	// decorrelated stream from it (runner.UnitRand), so results do not
	// depend on Parallelism.
	Seed int64
	// Parallelism is the number of worker goroutines the sweep fans work
	// units across. 0 (the default) means one worker per CPU
	// (runtime.GOMAXPROCS); 1 forces the reference sequential execution.
	Parallelism int
	// Progress, when non-nil, receives live (done, total) unit-completion
	// updates during sweeps — see runner.ConsoleProgress for a ready-made
	// stderr reporter.
	Progress runner.Progress
}

// PaperConfig returns the paper's full experimental scale. Running it
// regenerates the figures at original fidelity but takes correspondingly
// long; use Scaled for quick checks.
func PaperConfig() Config {
	return Config{
		N:               10000,
		Runs:            100,
		Fanouts:         fanoutRange(1, 20),
		WarmupCycles:    100,
		MaxWarmupCycles: 1000,
		Seed:            42,
	}
}

// Scaled returns the paper's setup shrunk to n nodes and the given number
// of runs per point, for tests and quick benchmarks.
func Scaled(n, runs int) Config {
	cfg := PaperConfig()
	cfg.N = n
	cfg.Runs = runs
	return cfg
}

func fanoutRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for f := lo; f <= hi; f++ {
		out = append(out, f)
	}
	return out
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("experiment: N must be >= 2, got %d", c.N)
	}
	if c.Runs < 1 {
		return fmt.Errorf("experiment: Runs must be >= 1, got %d", c.Runs)
	}
	if len(c.Fanouts) == 0 {
		return fmt.Errorf("experiment: at least one fanout required")
	}
	seen := make(map[int]struct{}, len(c.Fanouts))
	for _, f := range c.Fanouts {
		if f < 1 {
			return fmt.Errorf("experiment: fanouts must be >= 1, got %d", f)
		}
		// Unit random streams are keyed by fanout value, so a duplicate
		// would silently reproduce the same rows rather than replicate.
		if _, dup := seen[f]; dup {
			return fmt.Errorf("experiment: duplicate fanout %d", f)
		}
		seen[f] = struct{}{}
	}
	if c.WarmupCycles < 0 || c.MaxWarmupCycles < c.WarmupCycles {
		return fmt.Errorf("experiment: warm-up bounds invalid (%d, %d)", c.WarmupCycles, c.MaxWarmupCycles)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("experiment: parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

// Seed-derivation tags: every parallel work-unit family draws from its own
// tag namespace so that streams never collide across sweep kinds. Origin
// draws are tagged (tagOrigin, family, unit coordinates...) — the family
// tag must come before any free-ranging coordinate like a fanout value,
// otherwise a fanout that happens to equal another family's tag would
// alias its streams.
const (
	tagOrigin int64 = iota + 1
	tagSweep
	tagLoad
	tagTiming
	tagFloodTrial
	tagMultiRing
	tagReplica
	tagScale
)

// sweepSelectors fixes the protocol axis of the unit grid: index 0 is
// RANDCAST, index 1 is RINGCAST, matching Row's column order.
var sweepSelectors = [2]core.Selector{core.RandCast{}, core.RingCast{}}

// scratchPool shares dissemination scratch buffers across work units: each
// unit borrows a scratch for its run(s) and returns it, so a sweep performs
// a bounded number of buffer allocations regardless of how many thousand
// units it executes. Scratch contents never influence results, so pooling
// cannot affect determinism.
var scratchPool = sync.Pool{New: func() any { return dissem.NewScratch() }}

// Row is one fanout's aggregated results for both protocols.
type Row struct {
	Fanout int
	Rand   metrics.Agg
	Ring   metrics.Agg
}

// Result is a full fanout sweep under one scenario.
type Result struct {
	// Scenario labels the experiment ("static", "catastrophic-5%", ...).
	Scenario string
	// N and Runs echo the configuration.
	N, Runs int
	// FailFraction is the portion of nodes killed before dissemination
	// (catastrophic scenarios only).
	FailFraction float64
	// WarmupUsed is how many warm-up cycles actually ran.
	WarmupUsed int
	// Convergence is the d-link ring convergence at freeze time.
	Convergence float64
	// Rows holds one entry per fanout.
	Rows []Row
}

// warmNetwork builds and self-organizes a network following Section 7.1.
func warmNetwork(cfg Config) (*sim.Network, int, float64, error) {
	simCfg := sim.DefaultConfig(cfg.N)
	simCfg.Seed = cfg.Seed
	nw, err := sim.New(simCfg)
	if err != nil {
		return nil, 0, 0, err
	}
	cycles, conv := nw.WarmUp(cfg.WarmupCycles, cfg.MaxWarmupCycles)
	return nw, cycles, conv, nil
}

// sweepAll fans the (protocol, fanout, run) unit grid over the frozen
// overlay across the worker pool and returns every unit's record, indexed
// [fanoutIdx][protoIdx][run]. Both protocols of a (fanout, run) pair draw
// the same origin — the paper's paired comparison — while each unit
// disseminates with its own derived random stream.
//
// comp, when non-nil and carrying runtime faults, injects the compiled
// scenario into every unit: each unit borrows a per-run fault State, so the
// shared overlay and compiled timeline stay read-only and results remain
// bit-identical at any parallelism. A scenario whose only events are
// time-zero kills (the classic catastrophe) takes the faults-free fast path
// and consumes exactly the pre-scenario randomness.
func sweepAll(o *dissem.Overlay, cfg Config, opts dissem.Options, comp *scenario.Compiled) ([][2][]*metrics.Dissemination, error) {
	nf, nr := len(cfg.Fanouts), cfg.Runs
	withFaults := comp != nil && comp.NeedsRuntime()
	out := make([][2][]*metrics.Dissemination, nf)
	for i := range out {
		out[i][0] = make([]*metrics.Dissemination, nr)
		out[i][1] = make([]*metrics.Dissemination, nr)
	}
	err := runner.Map(cfg.Parallelism, nf*2*nr, cfg.Progress, func(u int) error {
		proto := u % 2
		run := (u / 2) % nr
		fi := u / (2 * nr)
		f := cfg.Fanouts[fi]
		origin, err := o.RandomAliveOrigin(runner.UnitRand(cfg.Seed, tagOrigin, tagSweep, int64(f), int64(run)))
		if err != nil {
			return err
		}
		rng := runner.UnitRand(cfg.Seed, tagSweep, int64(f), int64(run), int64(proto))
		unitOpts := opts
		var st *scenario.State
		if withFaults {
			st = comp.Get()
			unitOpts.Faults = st
		}
		sc := scratchPool.Get().(*dissem.Scratch)
		d, err := dissem.RunScratch(o, origin, sweepSelectors[proto], f, rng, unitOpts, sc)
		scratchPool.Put(sc)
		if st != nil {
			comp.Put(st)
		}
		if err != nil {
			return err
		}
		out[fi][proto][run] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// foldRows aggregates per-unit records into one Row per fanout, always in
// (fanout, run) index order so floating-point accumulation is bit-identical
// at any parallelism level.
func foldRows(cfg Config, all [][2][]*metrics.Dissemination) []Row {
	rows := make([]Row, 0, len(cfg.Fanouts))
	for fi, f := range cfg.Fanouts {
		var accRand, accRing metrics.Accumulator
		for r := 0; r < cfg.Runs; r++ {
			accRand.Add(all[fi][0][r])
			accRing.Add(all[fi][1][r])
		}
		rows = append(rows, Row{Fanout: f, Rand: accRand.Finalize(), Ring: accRing.Finalize()})
	}
	return rows
}

// SweepOverlay runs the full parallel fanout sweep over an existing frozen
// overlay snapshot and aggregates it per fanout. RunStatic and
// RunCatastrophic are warm-up + SweepOverlay; it is exported for callers
// (and benchmarks) that manage their own warm-up and want to drive the
// engine directly.
func SweepOverlay(o *dissem.Overlay, cfg Config) ([]Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	all, err := sweepAll(o, cfg, dissem.Options{SkipLoad: true}, nil)
	if err != nil {
		return nil, err
	}
	return foldRows(cfg, all), nil
}

// RunStatic reproduces the static fail-free scenario of Section 7.1
// (Figures 6a, 6b, 7 and 8).
func RunStatic(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw, cycles, conv, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	o := dissem.Snapshot(nw)
	rows, err := SweepOverlay(o, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Scenario:    "static",
		N:           cfg.N,
		Runs:        cfg.Runs,
		WarmupUsed:  cycles,
		Convergence: conv,
		Rows:        rows,
	}, nil
}

// RunCatastrophic reproduces Section 7.2 (Figures 9 and 10): after warm-up
// the overlay is frozen, failFraction of the nodes are killed at once, and
// disseminations run over the damaged overlay with no chance to self-heal
// (the paper's deliberate worst case).
//
// Since the scenario engine landed, the catastrophe is just a named
// one-event timeline executed by RunScenario; the port is byte-identical to
// the dedicated implementation it replaced (the time-zero uniform kill
// draws from the same sequential stream, and a kill-only scenario sweeps on
// the faults-free fast path).
func RunCatastrophic(cfg Config, failFraction float64) (*Result, error) {
	if failFraction <= 0 || failFraction >= 1 {
		return nil, fmt.Errorf("experiment: fail fraction must be in (0,1), got %v", failFraction)
	}
	res, err := RunScenario(cfg, scenario.Catastrophic(failFraction))
	if err != nil {
		return nil, err
	}
	res.FailFraction = failFraction
	return &res.Result, nil
}

// ChurnResult extends Result with the lifetime analyses of Figures 12-13.
type ChurnResult struct {
	Result
	// ChurnRate is the per-cycle replacement fraction.
	ChurnRate float64
	// TurnoverCycles is how long it took until every initial node had been
	// replaced (the paper's churn warm-up condition).
	TurnoverCycles int
	// TurnoverComplete indicates full turnover was reached within budget.
	TurnoverComplete bool
	// Lifetimes is the node-lifetime histogram at freeze time (Figure 12).
	Lifetimes *stats.IntHistogram
	// MissedByLifetime[p][f] is the histogram of lifetimes of non-notified
	// nodes for protocol p and fanout f, summed over all runs (Figure 13).
	MissedByLifetime map[string]map[int]*stats.IntHistogram
}

// RunChurn reproduces Section 7.3 (Figures 11, 12, 13): the network churns
// (rate per cycle, paper: 0.2%) until every initial node has been replaced,
// is then frozen, and disseminations run over the frozen overlay. Lifetime
// histograms are collected for the figure-12/13 analyses.
//
// maxChurnCycles bounds the turnover phase (several thousand cycles at the
// paper's rate).
func RunChurn(cfg Config, rate float64, maxChurnCycles int) (*ChurnResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model := churn.Model{Rate: rate}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	nw, cycles, _, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	turnCycles, done := model.RunUntilTurnover(nw, maxChurnCycles)
	res, err := churnSweep(cfg, nw, cycles)
	if err != nil {
		return nil, err
	}
	res.Scenario = fmt.Sprintf("churn-%g%%", rate*100)
	res.ChurnRate = rate
	res.TurnoverCycles = turnCycles
	res.TurnoverComplete = done
	return res, nil
}

// RunChurnReplicas fans `replicas` fully independent copies of RunChurn
// across the worker pool — the churn phase itself cannot be parallelized
// (every cycle depends on the previous one), so statistical confidence at
// churn scale comes from running whole replicas concurrently. Replica i
// derives its seed from cfg.Seed and i; its inner sweep runs sequentially
// (the replicas themselves saturate the workers). Results are returned in
// replica order and are bit-identical at any Parallelism.
func RunChurnReplicas(cfg Config, rate float64, maxChurnCycles, replicas int) ([]*ChurnResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, fmt.Errorf("experiment: replicas must be >= 1, got %d", replicas)
	}
	out := make([]*ChurnResult, replicas)
	err := runner.Map(cfg.Parallelism, replicas, cfg.Progress, func(i int) error {
		rcfg := cfg
		rcfg.Seed = runner.UnitSeed(cfg.Seed, tagReplica, int64(i))
		rcfg.Parallelism = 1
		rcfg.Progress = nil
		res, err := RunChurn(rcfg, rate, maxChurnCycles)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunTraceChurn is RunChurn under the heavy-tailed session model
// (churn.TraceModel) instead of the paper's uniform artificial churn: node
// sessions are lognormal with the given median (in cycles) and shape sigma.
// The network churns for churnCycles cycles before freezing.
func RunTraceChurn(cfg Config, medianSession, sigma float64, churnCycles int) (*ChurnResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if churnCycles < 1 {
		return nil, fmt.Errorf("experiment: churn cycles must be >= 1, got %d", churnCycles)
	}
	model, err := churn.NewTraceModel(medianSession, sigma, cfg.Seed^0x7ace)
	if err != nil {
		return nil, err
	}
	nw, cycles, _, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	model.Attach(nw)
	model.Run(nw, churnCycles)
	res, err := churnSweep(cfg, nw, cycles)
	if err != nil {
		return nil, err
	}
	res.Scenario = fmt.Sprintf("trace-churn-median%g", medianSession)
	res.ChurnRate = model.ExpectedRatePerCycle()
	res.TurnoverCycles = churnCycles
	res.TurnoverComplete = true
	return res, nil
}

// churnSweep freezes a churned network and runs the figure-11/12/13 sweep
// over it: per-fanout dissemination aggregates plus lifetime histograms,
// disseminations fanned across the worker pool.
func churnSweep(cfg Config, nw *sim.Network, warmCycles int) (*ChurnResult, error) {
	conv := nw.RingConvergence()
	o := dissem.Snapshot(nw)

	lifetimes := stats.NewIntHistogram()
	lifetimes.AddAll(churn.Lifetimes(nw))
	byID := churn.LifetimeByID(nw)

	all, err := sweepAll(o, cfg, dissem.Options{SkipLoad: true, RecordMissed: true}, nil)
	if err != nil {
		return nil, err
	}
	missed := map[string]map[int]*stats.IntHistogram{
		"RandCast": make(map[int]*stats.IntHistogram, len(cfg.Fanouts)),
		"RingCast": make(map[int]*stats.IntHistogram, len(cfg.Fanouts)),
	}
	for fi, f := range cfg.Fanouts {
		missRand, missRing := stats.NewIntHistogram(), stats.NewIntHistogram()
		for r := 0; r < cfg.Runs; r++ {
			for _, id := range all[fi][0][r].Missed {
				missRand.Add(byID[id])
			}
			for _, id := range all[fi][1][r].Missed {
				missRing.Add(byID[id])
			}
		}
		missed["RandCast"][f] = missRand
		missed["RingCast"][f] = missRing
	}

	return &ChurnResult{
		Result: Result{
			N:           cfg.N,
			Runs:        cfg.Runs,
			WarmupUsed:  warmCycles,
			Convergence: conv,
			Rows:        foldRows(cfg, all),
		},
		Lifetimes:        lifetimes,
		MissedByLifetime: missed,
	}, nil
}

// LoadResult captures the per-node load distribution for one fanout
// (Section 7: "both algorithms distribute the dissemination load uniformly
// on all participating nodes").
type LoadResult struct {
	Fanout int
	N      int
	Runs   int
	// SentSummary/RecvSummary summarize messages sent/received per node,
	// accumulated over all runs; Gini quantifies imbalance (0 = uniform).
	Sent, Recv map[string]stats.Summary
	Gini       map[string]float64
}

// RunLoad measures the distribution of load over nodes for both protocols
// at the given fanout on a static warmed network. Runs are fanned across
// the worker pool; the per-node tallies are integer sums, so accumulation
// order cannot affect the result.
func RunLoad(cfg Config, fanout int) (*LoadResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if fanout < 1 {
		return nil, fmt.Errorf("experiment: fanout must be >= 1, got %d", fanout)
	}
	nw, _, _, err := warmNetwork(cfg)
	if err != nil {
		return nil, err
	}
	o := dissem.Snapshot(nw)
	var (
		mu   sync.Mutex
		sent = [2][]int{make([]int, o.N()), make([]int, o.N())}
		recv = [2][]int{make([]int, o.N()), make([]int, o.N())}
	)
	err = runner.Map(cfg.Parallelism, 2*cfg.Runs, cfg.Progress, func(u int) error {
		proto, run := u%2, u/2
		origin, err := o.RandomAliveOrigin(runner.UnitRand(cfg.Seed, tagOrigin, tagLoad, int64(run)))
		if err != nil {
			return err
		}
		rng := runner.UnitRand(cfg.Seed, tagLoad, int64(fanout), int64(run), int64(proto))
		sc := scratchPool.Get().(*dissem.Scratch)
		d, err := dissem.RunScratch(o, origin, sweepSelectors[proto], fanout, rng, dissem.Options{}, sc)
		scratchPool.Put(sc)
		if err != nil {
			return err
		}
		mu.Lock()
		for i := range sent[proto] {
			sent[proto][i] += d.SentPerNode[i]
			recv[proto][i] += d.RecvPerNode[i]
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &LoadResult{
		Fanout: fanout,
		N:      cfg.N,
		Runs:   cfg.Runs,
		Sent:   make(map[string]stats.Summary, 2),
		Recv:   make(map[string]stats.Summary, 2),
		Gini:   make(map[string]float64, 2),
	}
	for proto, sel := range sweepSelectors {
		res.Sent[sel.Name()] = stats.SummarizeInts(sent[proto])
		res.Recv[sel.Name()] = stats.SummarizeInts(recv[proto])
		g, err := stats.Gini(sent[proto])
		if err != nil {
			return nil, err
		}
		res.Gini[sel.Name()] = g
	}
	return res, nil
}
