package experiment

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"ringcast/internal/ident"
	"ringcast/internal/scenario"
)

func scenarioTestConfig() Config {
	cfg := Scaled(250, 4)
	cfg.Fanouts = []int{2, 3}
	cfg.Seed = 21
	return cfg
}

// TestRunScenariosParallelDeterminism asserts the acceptance criterion:
// RunScenarios output is bit-identical at any parallelism, including
// scenarios with per-copy loss draws and mid-flight events.
func TestRunScenariosParallelDeterminism(t *testing.T) {
	scs := []scenario.Scenario{
		{Name: "partition-heal", Events: []scenario.Event{scenario.Partition(0, 2), scenario.Heal(4)}},
		{Name: "lossy", Events: []scenario.Event{scenario.Loss(0, 0.2)}},
		{Name: "regional", Events: []scenario.Event{scenario.ArcKill(0, 0.25, ident.Nil)}},
	}
	var outputs []string
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := scenarioTestConfig()
		cfg.Parallelism = p
		results, err := RunScenarios(cfg, scs)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		var buf bytes.Buffer
		if err := WriteScenariosCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(ScenariosTable(results, 3))
		outputs = append(outputs, buf.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("scenario output depends on parallelism:\n--- P=1 ---\n%s\n--- variant %d ---\n%s",
				outputs[0], i, outputs[i])
		}
	}
}

// TestBaselineScenarioMatchesStatic pins the engine to the reference: an
// empty timeline must reproduce the static sweep byte for byte.
func TestBaselineScenarioMatchesStatic(t *testing.T) {
	cfg := scenarioTestConfig()
	static, err := RunStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunScenario(cfg, scenario.Scenario{Name: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := static.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := base.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("baseline scenario != static sweep:\n--- static ---\n%s\n--- baseline ---\n%s", a.String(), b.String())
	}
}

// TestCatastrophicIsScenarioPort guards the port: the public
// RunCatastrophic must stay equivalent to running the named catastrophic
// scenario directly.
func TestCatastrophicIsScenarioPort(t *testing.T) {
	cfg := scenarioTestConfig()
	direct, err := RunCatastrophic(cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := RunScenario(cfg, scenario.Catastrophic(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Scenario != "catastrophic-5%" {
		t.Errorf("scenario label drifted: %q", direct.Scenario)
	}
	if direct.FailFraction != 0.05 {
		t.Errorf("fail fraction not set: %v", direct.FailFraction)
	}
	var a, b bytes.Buffer
	if err := direct.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := viaEngine.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("RunCatastrophic diverged from the scenario engine")
	}
	if direct.MissRatioTable() != viaEngine.MissRatioTable() {
		t.Fatal("catastrophic tables diverged")
	}
}

// TestRunScenarioPartition checks the macroscopic partition semantics
// through the full experiment path.
func TestRunScenarioPartition(t *testing.T) {
	cfg := scenarioTestConfig()
	res, err := RunScenario(cfg, scenario.Scenario{
		Name:   "partition",
		Events: []scenario.Event{scenario.Partition(0, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for _, agg := range []struct {
			name string
			m    float64
			c    float64
			b    float64
		}{
			{"RandCast", row.Rand.MeanMissRatio, row.Rand.CompleteFraction, row.Rand.MeanBlocked},
			{"RingCast", row.Ring.MeanMissRatio, row.Ring.CompleteFraction, row.Ring.MeanBlocked},
		} {
			if agg.c != 0 {
				t.Errorf("F=%d %s: complete disseminations across an unhealed partition", row.Fanout, agg.name)
			}
			if agg.m < 0.3 {
				t.Errorf("F=%d %s: miss ratio %v too low for a 2-way partition", row.Fanout, agg.name, agg.m)
			}
			if agg.b == 0 {
				t.Errorf("F=%d %s: no blocked copies recorded", row.Fanout, agg.name)
			}
		}
	}
}

// TestRunScenarioFlashCrowd checks the network phase integrates joiners
// before the freeze.
func TestRunScenarioFlashCrowd(t *testing.T) {
	cfg := scenarioTestConfig()
	res, err := RunScenario(cfg, scenario.Scenario{
		Name:         "flashcrowd",
		Events:       []scenario.Event{scenario.FlashCrowd(0, 0.25)},
		SettleCycles: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.N / 4; res.Network.Joined != want {
		t.Errorf("joined %d, want %d", res.Network.Joined, want)
	}
	if res.Network.Cycles != 21 {
		t.Errorf("network phase ran %d cycles, want 21", res.Network.Cycles)
	}
	if res.SetupKilled != 0 {
		t.Errorf("flash crowd killed %d nodes", res.SetupKilled)
	}
}

func TestRunScenariosRejectsBadInput(t *testing.T) {
	cfg := scenarioTestConfig()
	if _, err := RunScenarios(cfg, nil); err == nil {
		t.Error("empty scenario list accepted")
	}
	dup := []scenario.Scenario{{Name: "x"}, {Name: "x"}}
	if _, err := RunScenarios(cfg, dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate scenario names accepted: %v", err)
	}
	bad := []scenario.Scenario{{Name: "bad", Events: []scenario.Event{scenario.Heal(0)}}}
	if _, err := RunScenarios(cfg, bad); err == nil || !strings.Contains(err.Error(), "heal") {
		t.Errorf("invalid timeline accepted: %v", err)
	}
}

func TestScenariosTableShape(t *testing.T) {
	cfg := scenarioTestConfig()
	results, err := RunScenarios(cfg, []scenario.Scenario{
		{Name: "baseline"},
		{Name: "lossy", Events: []scenario.Event{scenario.Loss(0, 0.5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := ScenariosTable(results, 3)
	for _, want := range []string{"Scenario comparison", "baseline", "lossy", "RandCast", "RingCast", "blocked"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	var buf bytes.Buffer
	if err := WriteScenariosCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 scenarios x 2 fanouts x 2 protocols.
	if len(lines) != 1+8 {
		t.Errorf("CSV has %d lines, want 9:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,fanout,protocol,hit_ratio") {
		t.Errorf("CSV header drifted: %s", lines[0])
	}
}
