// Built-in scenario catalog: the named timelines exposed on ringcast-bench
// and ringcast-sim. Each is population-independent (kills and crowds are
// fractions, partitions are arc counts), so the same name runs at test
// scale and at the paper's 10,000 nodes.
package scenario

import (
	"fmt"
	"sort"

	"ringcast/internal/ident"
)

// Builtins returns the built-in scenario catalog in presentation order.
func Builtins() []Scenario {
	return []Scenario{
		{
			// The fail-free reference: identical to the static sweep.
			Name: "baseline",
		},
		{
			// Section 7.2's catastrophic failure as a timeline event.
			Name:   "catastrophe",
			Events: []Event{UniformKill(0.05)},
		},
		{
			// Correlated regional failure: one contiguous quarter of the
			// ring dies at once — the worst case for RingCast's d-links,
			// which a uniform kill never produces.
			Name:   "regional",
			Events: []Event{ArcKill(0, 0.25, ident.Nil)},
		},
		{
			// A clean two-way network split for the whole dissemination.
			Name:   "partition",
			Events: []Event{Partition(0, 2)},
		},
		{
			// The split heals at hop 4, while copies are still in flight.
			Name:   "partition-heal",
			Events: []Event{Partition(0, 2), Heal(4)},
		},
		{
			// Uniform 10% per-copy message loss on every link.
			Name:   "lossy",
			Events: []Event{Loss(0, 0.10)},
		},
		{
			// A link-quality collapse mid-dissemination: 1% loss degrades
			// to 30% at hop 3.
			Name:   "lossy-degrade",
			Events: []Event{Loss(0, 0.01), Loss(3, 0.30)},
		},
		{
			// A quarter of the population joins at once, then the network
			// settles briefly before the overlay freezes — young views are
			// still integrating when the message is posted.
			Name:         "flashcrowd",
			Events:       []Event{FlashCrowd(0, 0.25)},
			SettleCycles: 20,
		},
		{
			// Churn at the paper's rate steps up 10x at cycle 20.
			Name:         "churn-surge",
			Events:       []Event{ChurnRate(0, 0.002), ChurnRate(20, 0.02)},
			SettleCycles: 20,
		},
		{
			// Everything at once: a three-way partition under light loss, a
			// regional kill at hop 2, and a heal at hop 5.
			Name: "storm",
			Events: []Event{
				Partition(0, 3),
				Loss(0, 0.02),
				ArcKill(2, 0.10, ident.Nil),
				Heal(5),
			},
		},
	}
}

// Builtin looks a built-in scenario up by name.
func Builtin(name string) (Scenario, bool) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the built-in scenario names in presentation order.
func Names() []string {
	all := Builtins()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return names
}

// ByNames resolves a comma-free list of built-in names ("all" or empty
// resolves the whole catalog, preserving catalog order and input order
// otherwise). Unknown names produce an error listing the catalog.
func ByNames(names []string) ([]Scenario, error) {
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		return Builtins(), nil
	}
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		sc, ok := Builtin(name)
		if !ok {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("scenario: unknown scenario %q (built-ins: %v)", name, known)
		}
		out = append(out, sc)
	}
	return out, nil
}
