package scenario

import (
	"math/rand"
	"sync"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
)

// fuzzOverlay lazily builds one small frozen ring overlay all FuzzCompile
// iterations compile against (Compile never mutates it; setup kills are
// applied to clones).
var fuzzOverlay = sync.OnceValue(func() *dissem.Overlay {
	const n = 24
	gen := ident.NewGenerator(3)
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = gen.Next()
	}
	links := make([]core.Links, n)
	for i := range links {
		links[i].D = []ident.ID{ids[(i+1)%n], ids[(i+n-1)%n]}
		links[i].R = []ident.ID{ids[(i+5)%n], ids[(i+11)%n]}
	}
	o, err := dissem.FromLinks(ids, links)
	if err != nil {
		panic(err)
	}
	return o
})

// decodeTimeline turns arbitrary bytes into a scenario timeline, five bytes
// per event: kind selector (deliberately overflowing into invalid kinds),
// fire time, and three parameter bytes. Every byte pattern must decode to
// *something* — the point of the fuzz target is that no timeline, however
// nonsensical, can panic Validate or Compile.
func decodeTimeline(data []byte) []Event {
	var events []Event
	for i := 0; i+5 <= len(data) && len(events) < 64; i += 5 {
		kind := Kind(data[i] % 10) // 0 and 9 are invalid kinds
		at := int(data[i+1]%12) - 1
		a := float64(data[i+2]) / 255
		b := data[i+3]
		c := data[i+4]
		e := Event{At: at, Kind: kind}
		switch kind {
		case KindPartition:
			e.Groups = int(b%7) - 1
		case KindUniformKill, KindArcKill:
			e.Fraction = a
			e.Start = ident.ID(uint64(b)<<56 | uint64(c))
		case KindPrefixKill:
			e.Prefix = uint64(b)
			e.PrefixBits = int(c%70) - 2
		case KindLoss, KindChurnRate:
			e.Rate = a*1.2 - 0.1 // excursions outside [0,1]
		case KindFlashCrowd:
			e.Count = int(b%5) - 1
			e.Fraction = a - 0.5
		}
		events = append(events, e)
	}
	return events
}

// FuzzCompile feeds arbitrary event timelines to Validate and Compile:
// they must never panic, and every timeline either fails Validate (fine) or
// compiles to node sets that are in range for the overlay — partition
// assignments covering every position with arc indices below the group
// count, and kill sets naming valid positions. The compiled state machine
// is then exercised over its whole timeline.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 0, 0, 3, 0}, 0)                                  // partition at 0
	f.Add([]byte{3, 1, 128, 0, 0}, 1)                                // uniform kill at t=1 (invalid)
	f.Add([]byte{3, 0, 128, 0, 0, 6, 3, 60, 0, 0, 2, 6, 0, 0}, 2)    // kill, loss, heal
	f.Add([]byte{1, 1, 0, 4, 0, 2, 4, 0, 0, 0, 1, 8, 0, 3, 0}, 0)    // partition/heal/partition
	f.Add([]byte{4, 2, 90, 7, 9, 5, 3, 0, 12, 9, 7, 0, 99, 2, 1}, 3) // arc kill, prefix kill, flash crowd
	f.Fuzz(func(t *testing.T, data []byte, settle int) {
		o := fuzzOverlay()
		sc := Scenario{Name: "fuzz", Events: decodeTimeline(data), SettleCycles: settle % 8}
		if err := sc.Validate(); err != nil {
			// Structurally invalid timelines must be *rejected*, not
			// compiled: Compile re-validates.
			if _, cerr := Compile(sc, o); cerr == nil {
				t.Fatalf("Validate rejected (%v) but Compile accepted", err)
			}
			return
		}
		comp, err := Compile(sc, o)
		if err != nil {
			t.Fatalf("Validate accepted but Compile failed: %v", err)
		}
		n := int32(o.N())
		checkKills := func(kills []int32) {
			for _, p := range kills {
				if p < 0 || p >= n {
					t.Fatalf("kill position %d out of range [0,%d)", p, n)
				}
			}
		}
		checkGroups := func(groups []int32, label string) {
			if groups == nil {
				return
			}
			if int32(len(groups)) != n {
				t.Fatalf("%s: %d arc assignments for %d positions", label, len(groups), n)
			}
			for _, g := range groups {
				if g < 0 || int(g) >= o.N() {
					t.Fatalf("%s: arc index %d out of range", label, g)
				}
			}
		}
		for _, e := range comp.setup {
			checkKills(e.kills)
		}
		checkGroups(comp.initialGroups, "initial partition")
		for _, e := range comp.flight {
			checkKills(e.kills)
			checkGroups(e.groups, "in-flight partition")
		}
		// Setup kills apply to a clone without panicking and never kill
		// more nodes than exist.
		clone := o.Clone()
		rng := rand.New(rand.NewSource(1))
		if killed := comp.ApplySetup(clone, rng); killed < 0 || killed > o.N() {
			t.Fatalf("ApplySetup killed %d of %d", killed, o.N())
		}
		// Drive the per-run state machine across the whole timeline.
		st := comp.Get()
		for h := 0; h < 16; h++ {
			st.HopStart(h)
			for i := int32(0); i < n; i++ {
				st.Dead(i)
			}
			st.Deliver(0, n-1, rng)
		}
		comp.Put(st)
	})
}
