// Network phase: a scenario's pre-freeze events — flash-crowd join bursts
// and churn-rate steps — act on the living, gossiping sim.Network, before
// the overlay freezes and the dissemination timeline takes over. The phase
// is inherently sequential (each gossip cycle depends on the previous one,
// exactly like warm-up and the Section 7.3 churn phase) and consumes only
// the network's own seeded stream, so it is deterministic for a given
// scenario, population and seed.
package scenario

import (
	"ringcast/internal/churn"
	"ringcast/internal/sim"
)

// NetworkReport summarizes a scenario's network phase.
type NetworkReport struct {
	// Cycles is how many gossip cycles the phase ran (0 when the scenario
	// has no network-phase events).
	Cycles int
	// Joined counts flash-crowd joiners admitted during the phase.
	Joined int
	// Removed and Replaced count churn departures and arrivals.
	Removed, Replaced int
}

// RunNetworkPhase interleaves the scenario's network-phase events with
// gossip cycles, mirroring the paper's churn methodology ("in each cycle a
// given percentage ... removed, and the same number of new ones join"): at
// each cycle the due events fire (joins happen, the churn rate steps), then
// one churn step runs at the current rate, then one gossip cycle. The phase
// spans the last event's cycle plus SettleCycles; with no network-phase
// events it is a no-op regardless of SettleCycles.
func RunNetworkPhase(nw *sim.Network, sc Scenario) NetworkReport {
	events := sc.sortedEvents(true)
	if len(events) == 0 {
		return NetworkReport{}
	}
	last := events[len(events)-1].At
	total := last + 1 + sc.SettleCycles
	var rep NetworkReport
	var model churn.Model
	next := 0
	for cyc := 0; cyc < total; cyc++ {
		for next < len(events) && events[next].At == cyc {
			e := events[next]
			next++
			switch e.Kind {
			case KindFlashCrowd:
				count := e.Count
				if count == 0 {
					count = int(e.Fraction * float64(nw.AliveCount()))
					if count < 1 {
						count = 1
					}
				}
				for i := 0; i < count; i++ {
					if _, err := nw.Join(); err != nil {
						break // network emptied out; nothing to bootstrap from
					}
					rep.Joined++
				}
			case KindChurnRate:
				model.Rate = e.Rate
			}
		}
		if model.Rate > 0 {
			removed, added := model.Step(nw)
			rep.Removed += len(removed)
			rep.Replaced += len(added)
		}
		nw.Cycle()
		rep.Cycles++
	}
	return rep
}
