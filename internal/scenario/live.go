// Live surface: a Driver programs a fleet of transport.FaultInjector
// wrappers from the same timeline the simulators execute, so one scenario
// definition drives real nodes over real sockets. Time here is a step
// counter the orchestrator advances (typically one step per gossip
// interval); the driver applies each event exactly once, in timeline
// order, when the step counter reaches its At.
package scenario

import (
	"fmt"
	"sort"

	"ringcast/internal/ident"
)

// FaultSurface is the control surface a Driver programs on each member:
// pairwise partitions (black-holed destination addresses) and a per-copy
// loss rate. transport.FaultInjector implements it for in-process members;
// the soak harness (internal/soak) implements it with a remote control
// client for members living in other processes, so one Driver drives both.
// Implementations must be safe for concurrent use.
type FaultSurface interface {
	// Block black-holes frames to the given destination addresses.
	Block(addrs ...string)
	// Unblock restores connectivity to the given destinations.
	Unblock(addrs ...string)
	// HealAll removes every active partition (loss is unaffected).
	HealAll()
	// SetLoss sets the per-frame drop probability (0 disables).
	SetLoss(rate float64)
}

// ParamSurface is the optional runtime-configuration surface a Driver
// pushes set-param events through: the config engine's Set, in process or
// proxied over a soak control connection. Implementations must be safe for
// concurrent use.
type ParamSurface interface {
	// SetParam sets one config-engine key to a raw value. Errors are the
	// member's to report (a live driver has no useful recourse mid-timeline).
	SetParam(key, value string)
}

// Member is one live node under scenario control.
type Member struct {
	// Addr is the node's transport address (FaultInjector.Addr()).
	Addr string
	// ID is the node's ring identifier, used to resolve partition arcs and
	// regional kills exactly as the simulators resolve them.
	ID ident.ID
	// Faults is the node's fault-injection surface: the in-process
	// transport.FaultInjector, or a remote proxy for multi-process fleets.
	Faults FaultSurface
	// Params is the node's config surface for set-param events; nil members
	// are skipped (the event is a no-op for them).
	Params ParamSurface
}

// Driver applies a scenario's dissemination timeline to live members.
type Driver struct {
	sc      Scenario
	members []Member
	// byRing caches members sorted by ID (ring order).
	byRing []int
	next   int
	step   int
	events []Event
	// OnKill, when non-nil, is invoked for every member selected by an
	// arc or prefix kill; the orchestrator owns actually stopping the node
	// (the driver cannot and should not reach into node lifecycles).
	OnKill func(m Member)
	killed map[string]bool
}

// NewDriver validates the scenario and prepares a live driver over the
// given members. Network-phase events (flash crowds, churn steps) are
// orchestration concerns in a live deployment and are ignored here; the
// dissemination timeline (partitions, heals, kills, loss) is applied.
func NewDriver(sc Scenario, members []Member) (*Driver, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	for i, m := range members {
		if m.Faults == nil {
			return nil, fmt.Errorf("scenario: member %d (%s) has no fault injector", i, m.Addr)
		}
	}
	d := &Driver{
		sc:      sc,
		members: members,
		events:  sc.sortedEvents(false),
		killed:  make(map[string]bool),
	}
	d.byRing = make([]int, len(members))
	for i := range members {
		d.byRing[i] = i
	}
	sort.Slice(d.byRing, func(a, b int) bool {
		return members[d.byRing[a]].ID < members[d.byRing[b]].ID
	})
	return d, nil
}

// Step returns the driver's current step counter.
func (d *Driver) Step() int { return d.step }

// Advance moves the step counter to step (monotonic; lower values are
// ignored) and applies every not-yet-applied event with At <= step, in
// timeline order.
func (d *Driver) Advance(step int) {
	if step > d.step {
		d.step = step
	}
	for d.next < len(d.events) && d.events[d.next].At <= d.step {
		d.apply(d.events[d.next])
		d.next++
	}
}

func (d *Driver) apply(e Event) {
	switch e.Kind {
	case KindPartition:
		d.partition(e.Groups)
	case KindHeal:
		for _, m := range d.members {
			m.Faults.HealAll()
		}
	case KindLoss:
		for _, m := range d.members {
			m.Faults.SetLoss(e.Rate)
		}
	case KindArcKill:
		d.kill(d.arcVictims(e.Fraction, e.Start))
	case KindPrefixKill:
		d.kill(d.prefixVictims(e.Prefix, e.PrefixBits))
	case KindUniformKill:
		// A live uniform kill needs a randomness policy the orchestrator
		// should own; kill an arc of equal size instead of guessing one.
		d.kill(d.arcVictims(e.Fraction, ident.Nil))
	case KindSetParam:
		for _, m := range d.members {
			if m.Params != nil {
				m.Params.SetParam(e.Key, e.Value)
			}
		}
	}
}

// partition splits the members into k contiguous ring arcs and blocks
// every cross-arc pair in both directions, mirroring assignArcs.
func (d *Driver) partition(k int) {
	n := len(d.byRing)
	group := make([]int, n) // group[rank] = arc of the rank-th member
	base, extra := n/k, n%k
	idx, bound := 0, 0
	for arc := 0; arc < k; arc++ {
		size := base
		if arc < extra {
			size++
		}
		bound += size
		for ; idx < bound; idx++ {
			group[idx] = arc
		}
	}
	for a, ia := range d.byRing {
		for b, ib := range d.byRing {
			if group[a] != group[b] {
				d.members[ia].Faults.Block(d.members[ib].Addr)
			}
		}
	}
}

func (d *Driver) arcVictims(fraction float64, start ident.ID) []Member {
	n := len(d.byRing)
	if n == 0 {
		return nil
	}
	k := int(fraction * float64(n))
	if k > n {
		k = n
	}
	first := sort.Search(n, func(i int) bool { return d.members[d.byRing[i]].ID >= start })
	victims := make([]Member, 0, k)
	for i := 0; i < k; i++ {
		victims = append(victims, d.members[d.byRing[(first+i)%n]])
	}
	return victims
}

func (d *Driver) prefixVictims(prefix uint64, bits int) []Member {
	shift := uint(64 - bits)
	if bits < 64 {
		prefix &= (1 << uint(bits)) - 1
	}
	var victims []Member
	for _, m := range d.members {
		if uint64(m.ID)>>shift == prefix {
			victims = append(victims, m)
		}
	}
	return victims
}

func (d *Driver) kill(victims []Member) {
	for _, m := range victims {
		if d.killed[m.Addr] {
			continue
		}
		d.killed[m.Addr] = true
		if d.OnKill != nil {
			d.OnKill(m)
		}
	}
}
