// Compilation: a Scenario's dissemination timeline is resolved against one
// frozen overlay snapshot into a Compiled, and each sweep unit then borrows
// a lightweight State (per-run cursor + active-fault flags) from it. All
// node-set resolution — partition arcs, regional victim sets — happens here,
// once, with no randomness, so the per-copy fault checks on the hot path
// are array lookups.
package scenario

import (
	"math/rand"
	"sort"
	"sync"

	"ringcast/internal/dissem"
	"ringcast/internal/eventsim"
	"ringcast/internal/ident"
)

// flightEvent is one resolved in-flight (At > 0) timeline event.
type flightEvent struct {
	at     float64
	kind   Kind
	rate   float64 // KindLoss
	groups []int32 // KindPartition: arc index per overlay position
	kills  []int32 // KindArcKill / KindPrefixKill: victim positions
}

// Compiled is a scenario resolved against one overlay snapshot. It is
// immutable after Compile and safe to share across concurrent sweep units;
// all mutable per-run state lives in States obtained from it.
type Compiled struct {
	sc Scenario
	n  int

	// setup holds the At == 0 kill events in timeline order; applied once to
	// the shared overlay by ApplySetup, exactly as the pre-scenario
	// catastrophic sweep killed before sweeping.
	setup []flightEvent

	// initialLoss and initialGroups are the At == 0 runtime faults (loss
	// rate, partition) every run starts under.
	initialLoss   float64
	initialGroups []int32

	// flight holds the At > 0 events in time order; times mirrors their
	// fire times for the event-driven engine's sentinel scheduling.
	flight []flightEvent
	times  []float64

	flightKills bool // any mid-run kill events (States need a dead bitmap)

	pool sync.Pool // of *State
}

// Compile validates the scenario and resolves its dissemination timeline
// against the overlay snapshot: partition events get a per-position ring-arc
// assignment, regional kills get explicit victim sets. Group and victim
// resolution uses the snapshot's liveness as of compilation; it consumes no
// randomness.
func Compile(sc Scenario, o *dissem.Overlay) (*Compiled, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{sc: sc, n: o.N()}
	for _, e := range sc.sortedEvents(false) {
		if e.Kind == KindSetParam {
			// Runtime re-tunes only exist on the live surface (the Driver
			// pushes them through soak control connections); the simulators'
			// parameters are frozen at compile time. Skipping here keeps a
			// set-param-only scenario on the fail-free fast path.
			continue
		}
		fe := flightEvent{at: float64(e.At), kind: e.Kind, rate: e.Rate}
		switch e.Kind {
		case KindPartition:
			fe.groups = assignArcs(o, e.Groups)
		case KindArcKill:
			fe.kills = arcVictims(o, e.Fraction, e.Start)
		case KindPrefixKill:
			fe.kills = prefixVictims(o, e.Prefix, e.PrefixBits)
		case KindUniformKill:
			fe.rate = e.Fraction // carried to ApplySetup
		}
		switch {
		case e.At == 0 && (e.Kind == KindUniformKill || e.Kind == KindArcKill || e.Kind == KindPrefixKill):
			c.setup = append(c.setup, fe)
		case e.At == 0 && e.Kind == KindLoss:
			c.initialLoss = e.Rate
		case e.At == 0 && e.Kind == KindPartition:
			c.initialGroups = fe.groups
		case e.At == 0 && e.Kind == KindHeal:
			c.initialGroups = nil
		default:
			c.flight = append(c.flight, fe)
			c.times = append(c.times, fe.at)
			if fe.kind == KindArcKill || fe.kind == KindPrefixKill {
				c.flightKills = true
			}
		}
	}
	c.pool.New = func() any { return c.newState() }
	return c, nil
}

// ApplySetup applies the time-zero kill events once to the shared overlay
// and returns how many nodes died. Uniform kills draw their victims from
// rng — the caller's sequential stream, by convention the warmed network's
// own rng, which is exactly how the pre-scenario catastrophic sweep drew
// them. Regional kills are deterministic. Call ApplySetup exactly once,
// before the sweep begins.
func (c *Compiled) ApplySetup(o *dissem.Overlay, rng *rand.Rand) int {
	killed := 0
	for _, e := range c.setup {
		switch e.kind {
		case KindUniformKill:
			killed += o.KillFraction(e.rate, rng)
		case KindArcKill, KindPrefixKill:
			killed += o.KillPositions(e.kills)
		}
	}
	return killed
}

// NeedsRuntime reports whether runs must execute under a fault model: true
// when the scenario has in-flight events or starts under a partition or a
// positive loss rate. When false, the sweep runs the engines' fail-free
// fast path and consumes exactly the pre-scenario randomness — which is
// what makes the catastrophic port byte-identical.
func (c *Compiled) NeedsRuntime() bool {
	return len(c.flight) > 0 || c.initialGroups != nil || c.initialLoss > 0
}

// Scenario returns the compiled scenario.
func (c *Compiled) Scenario() Scenario { return c.sc }

// Get borrows a reset State from the compiled scenario's pool; Put returns
// it. Pooling bounds allocations by worker count rather than unit count,
// mirroring the experiment engine's scratch pools; State contents never
// influence results (Begin resets everything), so pooling cannot perturb
// determinism.
func (c *Compiled) Get() *State {
	st := c.pool.Get().(*State)
	st.Begin()
	return st
}

// Put returns a State obtained from Get to the pool.
func (c *Compiled) Put(st *State) { c.pool.Put(st) }

// State is the per-run fault cursor over a Compiled timeline. It implements
// both dissem.FaultModel (hop boundaries) and eventsim.FaultModel (sentinel
// times), which is what keeps the two simulation surfaces in lockstep: the
// same resolved events, applied at the same logical boundaries, with the
// same randomness. A State must not be shared between concurrent runs.
type State struct {
	c      *Compiled
	next   int
	loss   float64
	groups []int32
	dead   []bool
}

var (
	_ dissem.FaultModel   = (*State)(nil)
	_ eventsim.FaultModel = (*State)(nil)
)

func (c *Compiled) newState() *State {
	st := &State{c: c}
	if c.flightKills {
		st.dead = make([]bool, c.n)
	}
	return st
}

// NewState returns a fresh, reset State. Prefer Get/Put in sweeps.
func (c *Compiled) NewState() *State {
	st := c.newState()
	st.Begin()
	return st
}

// Begin implements dissem.FaultModel and eventsim.FaultModel.
func (st *State) Begin() {
	st.next = 0
	st.loss = st.c.initialLoss
	st.groups = st.c.initialGroups
	if st.dead != nil {
		clear(st.dead)
	}
}

// HopStart implements dissem.FaultModel: hop boundary h fires all events
// scheduled at times <= h.
func (st *State) HopStart(h int) { st.AdvanceTo(float64(h)) }

// EventTimes implements eventsim.FaultModel.
func (st *State) EventTimes() []float64 { return st.c.times }

// AdvanceTo implements eventsim.FaultModel: applies all in-flight events
// with fire times <= t, in timeline order.
func (st *State) AdvanceTo(t float64) {
	for st.next < len(st.c.flight) && st.c.flight[st.next].at <= t {
		e := &st.c.flight[st.next]
		st.next++
		switch e.kind {
		case KindPartition:
			st.groups = e.groups
		case KindHeal:
			st.groups = nil
		case KindLoss:
			st.loss = e.rate
		case KindArcKill, KindPrefixKill:
			for _, p := range e.kills {
				st.dead[p] = true
			}
		}
	}
}

// Dead implements dissem.FaultModel and eventsim.FaultModel.
func (st *State) Dead(i int32) bool { return st.dead != nil && st.dead[i] }

// Deliver implements dissem.FaultModel and eventsim.FaultModel: a copy is
// blocked when an active partition separates the endpoints (no rng
// consumed), otherwise dropped with the active loss rate (one rng draw per
// copy, only while the rate is positive — so a scenario with loss switched
// off consumes exactly the fail-free randomness).
func (st *State) Deliver(from, to int32, rng *rand.Rand) bool {
	if st.groups != nil && st.groups[from] != st.groups[to] {
		return false
	}
	if st.loss > 0 && rng.Float64() < st.loss {
		return false
	}
	return true
}

// assignArcs splits the identifier ring into k contiguous arcs of
// near-equal population (first n mod k arcs get one extra node) and returns
// the arc index of every overlay position. Dead nodes are assigned by their
// ID like everyone else, so a copy addressed to a dead node in the sender's
// own arc still counts as Lost rather than Blocked.
func assignArcs(o *dissem.Overlay, k int) []int32 {
	order := positionsByID(o, false)
	groups := make([]int32, len(order))
	n := len(order)
	base, extra := n/k, n%k
	idx, bound, g := 0, 0, int32(0)
	for arc := 0; arc < k; arc++ {
		size := base
		if arc < extra {
			size++
		}
		bound += size
		for ; idx < bound; idx++ {
			groups[order[idx]] = g
		}
		g++
	}
	return groups
}

// arcVictims resolves a regional arc kill: the int(fraction*live) live
// nodes clockwise from start (Nil starts at the lowest ID), in ring order,
// wrapping.
func arcVictims(o *dissem.Overlay, fraction float64, start ident.ID) []int32 {
	live := positionsByID(o, true)
	if len(live) == 0 {
		return nil
	}
	k := int(fraction * float64(len(live)))
	if k > len(live) {
		k = len(live)
	}
	ids := o.IDs()
	first := sort.Search(len(live), func(i int) bool { return ids[live[i]] >= start })
	victims := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		victims = append(victims, live[(first+i)%len(live)])
	}
	return victims
}

// prefixVictims resolves a prefix kill: every position (live or dead) whose
// top bits identifier bits equal prefix.
func prefixVictims(o *dissem.Overlay, prefix uint64, bits int) []int32 {
	shift := uint(64 - bits)
	if bits < 64 {
		prefix &= (1 << uint(bits)) - 1
	}
	var victims []int32
	for i, id := range o.IDs() {
		if uint64(id)>>shift == prefix {
			victims = append(victims, int32(i))
		}
	}
	return victims
}

// positionsByID returns overlay positions sorted by identifier (ring
// order), optionally restricted to live nodes.
func positionsByID(o *dissem.Overlay, liveOnly bool) []int32 {
	ids := o.IDs()
	out := make([]int32, 0, len(ids))
	for i := range ids {
		if liveOnly && !o.IsAlive(i) {
			continue
		}
		out = append(out, int32(i))
	}
	sort.Slice(out, func(a, b int) bool { return ids[out[a]] < ids[out[b]] })
	return out
}
