package scenario

import (
	"math/rand"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/eventsim"
	"ringcast/internal/ident"
	"ringcast/internal/sim"
)

// warmedOverlay builds and freezes a converged small network, the realistic
// substrate for the invariance checks.
func warmedOverlay(t *testing.T, n int) *dissem.Overlay {
	t.Helper()
	cfg := sim.DefaultConfig(n)
	cfg.Seed = 11
	nw := sim.MustNew(cfg)
	if _, conv := nw.WarmUp(100, 1000); conv < 1 {
		t.Fatalf("ring did not converge: %v", conv)
	}
	return dissem.Snapshot(nw)
}

// TestCrossSurfaceInvariance asserts the issue's core determinism claim:
// the same compiled scenario, driven through the hop-synchronous engine and
// through the event-driven engine at constant unit latency (so delivery
// times coincide with hop indices), produces identical reached counts and
// identical overhead splits — both surfaces consume the same randomness in
// the same order. The zero-latency variant covers scenarios whose events
// all fire at time zero (all deliveries then pop at t=0, before any later
// sentinel could fire).
func TestCrossSurfaceInvariance(t *testing.T) {
	o := warmedOverlay(t, 250)
	scenarios := []Scenario{
		{Name: "partition", Events: []Event{Partition(0, 2)}},
		{Name: "partition-heal", Events: []Event{Partition(0, 2), Heal(4)}},
		{Name: "lossy", Events: []Event{Loss(0, 0.3)}},
		{Name: "lossy-degrade", Events: []Event{Loss(0, 0.05), Loss(3, 0.6)}},
		{Name: "regional-mid-run", Events: []Event{ArcKill(2, 0.25, ident.Nil)}},
		{Name: "storm", Events: []Event{Partition(0, 3), Loss(0, 0.1), ArcKill(2, 0.2, ident.Nil), Heal(5)}},
	}
	for _, sc := range scenarios {
		for _, sel := range []core.Selector{core.RandCast{}, core.RingCast{}} {
			t.Run(sc.Name+"/"+sel.Name(), func(t *testing.T) {
				shared := o.Clone()
				comp, err := Compile(sc, shared)
				if err != nil {
					t.Fatal(err)
				}
				comp.ApplySetup(shared, rand.New(rand.NewSource(5)))
				for run := int64(0); run < 5; run++ {
					origin, err := shared.RandomAliveOrigin(rand.New(rand.NewSource(100 + run)))
					if err != nil {
						t.Fatal(err)
					}
					stHop, stEv := comp.Get(), comp.Get()
					hop, err := dissem.RunScratch(shared, origin, sel, 3,
						rand.New(rand.NewSource(run)),
						dissem.Options{SkipLoad: true, Faults: stHop}, nil)
					if err != nil {
						t.Fatal(err)
					}
					ev, err := eventsim.RunFaults(shared, origin, sel, 3,
						eventsim.ConstantLatency(1), rand.New(rand.NewSource(run)), stEv, nil)
					comp.Put(stHop)
					comp.Put(stEv)
					if err != nil {
						t.Fatal(err)
					}
					if hop.Reached != ev.Reached {
						t.Fatalf("run %d: hop reached %d, event reached %d", run, hop.Reached, ev.Reached)
					}
					if hop.Virgin != ev.Virgin || hop.Redundant != ev.Redundant ||
						hop.Lost != ev.Lost || hop.Blocked != ev.Blocked {
						t.Fatalf("run %d: overhead split diverged: hop {v%d r%d l%d b%d}, event {v%d r%d l%d b%d}",
							run, hop.Virgin, hop.Redundant, hop.Lost, hop.Blocked,
							ev.Virgin, ev.Redundant, ev.Lost, ev.Blocked)
					}
					if hops := float64(hop.Hops()); ev.CompletionTime != hops {
						t.Fatalf("run %d: completion time %v != hop count %v", run, ev.CompletionTime, hops)
					}
				}
			})
		}
	}
}

// TestCrossSurfaceInvarianceZeroLatency pins the zero-latency case from the
// issue: with every event at time zero and ConstantLatency(0), the event
// engine processes all copies at t=0 in emission order — the exact BFS
// order of the hop engine — so reached counts match to the copy.
func TestCrossSurfaceInvarianceZeroLatency(t *testing.T) {
	o := warmedOverlay(t, 200)
	sc := Scenario{Name: "zero", Events: []Event{Partition(0, 2), Loss(0, 0.25)}}
	shared := o.Clone()
	comp, err := Compile(sc, shared)
	if err != nil {
		t.Fatal(err)
	}
	comp.ApplySetup(shared, rand.New(rand.NewSource(5)))
	for run := int64(0); run < 8; run++ {
		origin, err := shared.RandomAliveOrigin(rand.New(rand.NewSource(300 + run)))
		if err != nil {
			t.Fatal(err)
		}
		stHop, stEv := comp.Get(), comp.Get()
		hop, err := dissem.RunScratch(shared, origin, core.RingCast{}, 4,
			rand.New(rand.NewSource(run)),
			dissem.Options{SkipLoad: true, Faults: stHop}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := eventsim.RunFaults(shared, origin, core.RingCast{}, 4,
			eventsim.ConstantLatency(0), rand.New(rand.NewSource(run)), stEv, nil)
		comp.Put(stHop)
		comp.Put(stEv)
		if err != nil {
			t.Fatal(err)
		}
		if hop.Reached != ev.Reached || hop.Blocked != ev.Blocked {
			t.Fatalf("run %d: hop {reached %d, blocked %d} != event {reached %d, blocked %d}",
				run, hop.Reached, hop.Blocked, ev.Reached, ev.Blocked)
		}
	}
}

// TestPartitionConfinesDissemination checks the macroscopic partition
// semantics: an unhealed two-way split confines every copy to the origin's
// arc, while a heal lets late copies cross — so the healed run must reach
// strictly more nodes whenever the dissemination is still alive at heal
// time.
func TestPartitionConfinesDissemination(t *testing.T) {
	o := warmedOverlay(t, 300)
	split := o.Clone()
	comp, err := Compile(Scenario{Name: "p2", Events: []Event{Partition(0, 2)}}, split)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := split.RandomAliveOrigin(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st := comp.Get()
	d, err := dissem.RunScratch(split, origin, core.RingCast{}, 3,
		rand.New(rand.NewSource(2)), dissem.Options{SkipLoad: true, Faults: st}, nil)
	comp.Put(st)
	if err != nil {
		t.Fatal(err)
	}
	// Arcs split 300 nodes into 150/150; the origin's arc bounds the spread.
	if d.Reached > 150 {
		t.Errorf("partitioned dissemination escaped its arc: reached %d > 150", d.Reached)
	}
	if d.Reached < 100 {
		t.Errorf("dissemination did not fill its arc: reached %d", d.Reached)
	}
	if d.Blocked == 0 {
		t.Error("no copies blocked at the partition boundary")
	}
	if d.Complete() {
		t.Error("partitioned dissemination reported complete")
	}
}

// TestNetworkPhase exercises flash crowds and churn steps against a live
// simulated network.
func TestNetworkPhase(t *testing.T) {
	cfg := sim.DefaultConfig(200)
	cfg.Seed = 3
	nw := sim.MustNew(cfg)
	nw.WarmUp(30, 300)

	rep := RunNetworkPhase(nw, Scenario{Name: "none"})
	if rep != (NetworkReport{}) {
		t.Errorf("empty scenario ran a network phase: %+v", rep)
	}

	before := nw.AliveCount()
	rep = RunNetworkPhase(nw, Scenario{
		Name:         "crowd",
		Events:       []Event{FlashCrowd(0, 0.25)},
		SettleCycles: 5,
	})
	if rep.Joined != before/4 {
		t.Errorf("joined %d, want %d", rep.Joined, before/4)
	}
	if rep.Cycles != 6 {
		t.Errorf("cycles %d, want 6", rep.Cycles)
	}
	if nw.AliveCount() != before+rep.Joined {
		t.Errorf("alive %d, want %d", nw.AliveCount(), before+rep.Joined)
	}

	alive := nw.AliveCount()
	rep = RunNetworkPhase(nw, Scenario{
		Name:         "surge",
		Events:       []Event{ChurnRate(0, 0.05), ChurnRate(3, 0.1)},
		SettleCycles: 2,
	})
	if rep.Cycles != 6 {
		t.Errorf("cycles %d, want 6", rep.Cycles)
	}
	if rep.Removed == 0 || rep.Replaced == 0 {
		t.Errorf("churn steps produced no turnover: %+v", rep)
	}
	if nw.AliveCount() != alive-rep.Removed+rep.Replaced {
		t.Errorf("alive %d after churn, want %d", nw.AliveCount(), alive-rep.Removed+rep.Replaced)
	}
}
