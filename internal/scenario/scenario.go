// Package scenario is the deterministic fault-scenario engine: it turns the
// paper's hard-coded robustness experiments (Section 7.2's catastrophic
// failure, Section 7.3's continuous churn) into a composable, declarative
// vocabulary. A Scenario is a timeline of typed events — network partitions
// into ring arcs with optional healing, correlated regional kills (a
// contiguous ring arc or an ident prefix), uniform catastrophic kills,
// per-link message loss, flash-crowd join bursts, and churn-rate steps —
// that compiles against a frozen overlay snapshot and then drives all three
// execution surfaces:
//
//   - the hop-synchronous engine (internal/dissem), events applied at hop
//     boundaries via dissem.FaultModel;
//   - the discrete-event engine (internal/eventsim), events scheduled as
//     sentinel entries on the existing heap via eventsim.FaultModel;
//   - the live runtime, via the fault-injecting transport wrapper
//     (transport.FaultInjector) programmed by a Driver.
//
// Determinism contract: compilation resolves every victim set and partition
// arc against the snapshot with no randomness; the only random draws are
// (a) uniform kills at time zero, applied once to the shared overlay with
// the caller's sequential rng, exactly as Section 7.2's sweep always did,
// and (b) per-copy loss draws, taken from the same per-unit stream as
// target selection. Per-run fault state lives in a State, so parallel sweep
// units never share mutable scenario data and results are bit-identical at
// any parallelism.
//
//ringcast:deterministic
package scenario

import (
	"fmt"
	"sort"

	"ringcast/internal/ident"
)

// Kind discriminates timeline event types.
type Kind int

// Timeline event kinds. Partition, Heal, UniformKill, ArcKill, PrefixKill
// and Loss act on the dissemination surfaces (At is a hop boundary);
// FlashCrowd and ChurnRate act on the pre-freeze network phase (At is a
// gossip cycle).
const (
	// KindPartition splits the network into Groups contiguous ring arcs;
	// message copies crossing arc boundaries are dropped until a Heal.
	KindPartition Kind = iota + 1
	// KindHeal dissolves the active partition.
	KindHeal
	// KindUniformKill kills Fraction of the live nodes uniformly at random —
	// the paper's catastrophic failure (Section 7.2). Only valid at At == 0:
	// the victims are drawn once from the caller's sequential rng before the
	// sweep, which is what keeps parallel sweeps bit-identical.
	KindUniformKill
	// KindArcKill kills a contiguous ring arc covering Fraction of the live
	// nodes, clockwise from Start — a correlated regional failure by ring
	// distance (e.g. one data centre when IDs encode locality, Section 8).
	KindArcKill
	// KindPrefixKill kills every node whose top PrefixBits identifier bits
	// equal Prefix — a correlated regional failure by ident prefix, matching
	// the domain-encoded IDs of ident.DomainID.
	KindPrefixKill
	// KindLoss sets the per-copy message loss rate to Rate (each in-flight
	// copy is dropped independently with probability Rate).
	KindLoss
	// KindFlashCrowd makes Count fresh nodes (or Fraction of the current
	// population when Count is zero) join at once during the network phase.
	KindFlashCrowd
	// KindChurnRate sets the artificial churn rate (churn.Model) to Rate
	// from cycle At of the network phase onward.
	KindChurnRate
	// KindSetParam pushes a runtime parameter step (Key = Value) through the
	// members' config surfaces at step At — scripted re-tuning as a fault,
	// e.g. halving the gossip interval mid-soak. Only the live Driver acts
	// on it; the simulated surfaces, whose parameters are frozen at compile
	// time, ignore it.
	KindSetParam
)

// String names the kind for error messages and tables.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindUniformKill:
		return "uniform-kill"
	case KindArcKill:
		return "arc-kill"
	case KindPrefixKill:
		return "prefix-kill"
	case KindLoss:
		return "loss"
	case KindFlashCrowd:
		return "flash-crowd"
	case KindChurnRate:
		return "churn-rate"
	case KindSetParam:
		return "set-param"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry of a scenario timeline. Only the fields relevant to
// its Kind are consulted; the builder functions (Partition, Loss, ...) fill
// them correctly.
type Event struct {
	// At is when the event fires: a hop boundary for dissemination events
	// (0 = before the origin forwards), a gossip cycle for network events.
	At int
	// Kind selects the event type.
	Kind Kind
	// Groups is the number of ring arcs a partition splits the network into.
	Groups int
	// Fraction parameterizes kills (fraction of live nodes) and flash
	// crowds (fraction of the current population joining).
	Fraction float64
	// Start anchors an arc kill: the first victim is the first live ID
	// clockwise from Start (Nil starts at the lowest ID).
	Start ident.ID
	// Prefix and PrefixBits select prefix-kill victims: nodes whose top
	// PrefixBits bits equal Prefix.
	Prefix     uint64
	PrefixBits int
	// Rate parameterizes loss (per-copy drop probability) and churn steps
	// (per-cycle replacement fraction).
	Rate float64
	// Count is a flash crowd's absolute joiner count (0 = use Fraction).
	Count int
	// Key and Value carry a set-param step: the config-engine key to set and
	// its new raw value.
	Key   string
	Value string
}

// Scenario is a named fault timeline.
type Scenario struct {
	// Name labels the scenario in tables, CSV and CLI flags.
	Name string
	// Events is the timeline; order within one At is preserved.
	Events []Event
	// SettleCycles extends the network phase: after the last network-phase
	// event fires, the network keeps gossiping (and churning at the current
	// rate) for this many extra cycles before the overlay freezes. Ignored
	// when the timeline has no network-phase events.
	SettleCycles int
}

// Partition returns an event splitting the network into groups contiguous
// ring arcs at hop boundary at.
func Partition(at, groups int) Event {
	return Event{At: at, Kind: KindPartition, Groups: groups}
}

// Heal returns an event dissolving the active partition at hop boundary at.
func Heal(at int) Event { return Event{At: at, Kind: KindHeal} }

// UniformKill returns a time-zero catastrophic failure of fraction of the
// live nodes, drawn uniformly at random (Section 7.2).
func UniformKill(fraction float64) Event {
	return Event{Kind: KindUniformKill, Fraction: fraction}
}

// ArcKill returns an event killing a contiguous ring arc covering fraction
// of the live nodes, clockwise from start, at hop boundary at.
func ArcKill(at int, fraction float64, start ident.ID) Event {
	return Event{At: at, Kind: KindArcKill, Fraction: fraction, Start: start}
}

// PrefixKill returns an event killing every node whose top bits identifier
// bits equal prefix, at hop boundary at.
func PrefixKill(at int, prefix uint64, bits int) Event {
	return Event{At: at, Kind: KindPrefixKill, Prefix: prefix, PrefixBits: bits}
}

// Loss returns an event setting the per-copy loss rate from hop boundary at
// onward. Rate 0 switches loss off; rate 1 drops everything.
func Loss(at int, rate float64) Event { return Event{At: at, Kind: KindLoss, Rate: rate} }

// FlashCrowd returns a network-phase event: fraction of the current
// population joins at cycle at.
func FlashCrowd(at int, fraction float64) Event {
	return Event{At: at, Kind: KindFlashCrowd, Fraction: fraction}
}

// FlashCrowdCount is FlashCrowd with an absolute joiner count.
func FlashCrowdCount(at, count int) Event {
	return Event{At: at, Kind: KindFlashCrowd, Count: count}
}

// ChurnRate returns a network-phase event setting the artificial churn rate
// from cycle at onward.
func ChurnRate(at int, rate float64) Event {
	return Event{At: at, Kind: KindChurnRate, Rate: rate}
}

// SetParam returns an event pushing the config-engine step key = value to
// every member with a params surface at step at. Simulated surfaces ignore
// it; the live Driver applies it through soak control connections.
func SetParam(at int, key, value string) Event {
	return Event{At: at, Kind: KindSetParam, Key: key, Value: value}
}

// Catastrophic is the Section 7.2 sweep as a scenario: a single uniform
// kill of failFraction at time zero, named exactly as the experiment
// runners always labelled it, so porting the catastrophic sweep onto the
// scenario engine changes no output byte.
func Catastrophic(failFraction float64) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("catastrophic-%g%%", failFraction*100),
		Events: []Event{UniformKill(failFraction)},
	}
}

// isNetworkKind reports whether k acts on the pre-freeze network phase.
func isNetworkKind(k Kind) bool { return k == KindFlashCrowd || k == KindChurnRate }

// sortedEvents returns the events ordered stably by At (declaration order
// preserved within one At), filtered to network or dissemination kinds.
func (s Scenario) sortedEvents(network bool) []Event {
	out := make([]Event, 0, len(s.Events))
	for _, e := range s.Events {
		if isNetworkKind(e.Kind) == network {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks the timeline for structural errors: parameter ranges,
// uniform kills after time zero, overlapping partitions, and heals with no
// partition to heal.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name must not be empty")
	}
	if s.SettleCycles < 0 {
		return fmt.Errorf("scenario %s: settle cycles must be >= 0, got %d", s.Name, s.SettleCycles)
	}
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("scenario %s: event %d (%s) at negative time %d", s.Name, i, e.Kind, e.At)
		}
		switch e.Kind {
		case KindPartition:
			if e.Groups < 2 {
				return fmt.Errorf("scenario %s: partition needs >= 2 groups, got %d", s.Name, e.Groups)
			}
		case KindHeal:
			// ordering checked below
		case KindUniformKill:
			if e.At != 0 {
				return fmt.Errorf("scenario %s: uniform kill only supported at time 0 (got %d): mid-run victims would need randomness outside the per-unit streams", s.Name, e.At)
			}
			if e.Fraction <= 0 || e.Fraction >= 1 {
				return fmt.Errorf("scenario %s: uniform kill fraction must be in (0,1), got %v", s.Name, e.Fraction)
			}
		case KindArcKill:
			if e.Fraction <= 0 || e.Fraction > 1 {
				return fmt.Errorf("scenario %s: arc kill fraction must be in (0,1], got %v", s.Name, e.Fraction)
			}
		case KindPrefixKill:
			if e.PrefixBits < 1 || e.PrefixBits > 64 {
				return fmt.Errorf("scenario %s: prefix bits must be in 1..64, got %d", s.Name, e.PrefixBits)
			}
		case KindLoss:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("scenario %s: loss rate must be in [0,1], got %v", s.Name, e.Rate)
			}
		case KindFlashCrowd:
			if e.Count < 0 {
				return fmt.Errorf("scenario %s: flash crowd count must be >= 0, got %d", s.Name, e.Count)
			}
			if e.Count == 0 && e.Fraction <= 0 {
				return fmt.Errorf("scenario %s: flash crowd needs a count or a positive fraction", s.Name)
			}
		case KindChurnRate:
			if e.Rate < 0 || e.Rate >= 1 {
				return fmt.Errorf("scenario %s: churn rate must be in [0,1), got %v", s.Name, e.Rate)
			}
		case KindSetParam:
			if e.Key == "" {
				return fmt.Errorf("scenario %s: set-param needs a non-empty key", s.Name)
			}
		default:
			return fmt.Errorf("scenario %s: event %d has unknown kind %d", s.Name, i, int(e.Kind))
		}
	}
	// Partition/heal ordering over the time-sorted dissemination timeline:
	// at most one partition active at a time, and a heal must heal something.
	active := false
	for _, e := range s.sortedEvents(false) {
		switch e.Kind {
		case KindPartition:
			if active {
				return fmt.Errorf("scenario %s: overlapping partitions (second partition at hop %d before a heal)", s.Name, e.At)
			}
			active = true
		case KindHeal:
			if !active {
				return fmt.Errorf("scenario %s: heal at hop %d with no partition to heal", s.Name, e.At)
			}
			active = false
		}
	}
	return nil
}
