package scenario

import (
	"sync"
	"testing"
	"time"

	"ringcast/internal/node"
	"ringcast/internal/transport"
)

// deliveries collects message bodies a live node received.
type deliveries struct {
	mu     sync.Mutex
	bodies map[string]bool
}

func (d *deliveries) add(body []byte) {
	d.mu.Lock()
	d.bodies[string(body)] = true
	d.mu.Unlock()
}

func (d *deliveries) has(body string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bodies[body]
}

// TestLiveTwoNodePartition is the acceptance check for the live injection
// surface: two real nodes over fault-wrapped transports, a scenario-driven
// partition between them, injected drops counted through the transport
// Stats plumbing, and connectivity restored by the heal event.
func TestLiveTwoNodePartition(t *testing.T) {
	fabric := transport.NewInMemNetwork()
	epA, err := fabric.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := fabric.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	fiA, fiB := transport.WrapFaults(epA, 1), transport.WrapFaults(epB, 2)

	mk := func(tr *transport.FaultInjector, seed int64, sink *deliveries) *node.Node {
		cfg := node.DefaultConfig()
		cfg.GossipInterval = 10 * time.Millisecond
		cfg.Seed = seed
		nd, err := node.New(cfg, tr, func(d node.Delivery) { sink.add(d.Msg.Body) })
		if err != nil {
			t.Fatal(err)
		}
		return nd
	}
	sinkA := &deliveries{bodies: make(map[string]bool)}
	sinkB := &deliveries{bodies: make(map[string]bool)}
	nA := mk(fiA, 1, sinkA)
	nB := mk(fiB, 2, sinkB)
	defer nA.Close()
	defer nB.Close()

	if err := nB.Join(nA.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := nA.Start(); err != nil {
		t.Fatal(err)
	}
	if err := nB.Start(); err != nil {
		t.Fatal(err)
	}

	publish := func(from *node.Node, body string) {
		t.Helper()
		if _, err := from.Publish([]byte(body)); err != nil {
			t.Fatalf("publish %q: %v", body, err)
		}
	}
	waitDelivered := func(sink *deliveries, body string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if sink.has(body) {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("message %q never delivered", body)
	}

	// Healthy link first: a publish from A reaches B.
	waitConnected(t, nA, nB)
	publish(nA, "before-partition")
	waitDelivered(sinkB, "before-partition")

	// Scenario: a two-way partition at step 0, healed at step 1.
	drv, err := NewDriver(
		Scenario{Name: "live-split", Events: []Event{Partition(0, 2), Heal(1)}},
		[]Member{
			{Addr: nA.Addr(), ID: nA.ID(), Faults: fiA},
			{Addr: nB.Addr(), ID: nB.ID(), Faults: fiB},
		})
	if err != nil {
		t.Fatal(err)
	}
	drv.Advance(0)

	dropsBefore := fiA.InjectedDrops()
	publish(nA, "during-partition")
	time.Sleep(150 * time.Millisecond)
	if sinkB.has("during-partition") {
		t.Fatal("message crossed an active partition")
	}
	if drops := fiA.InjectedDrops(); drops <= dropsBefore {
		t.Errorf("partition injected no drops at A (before %d, after %d)", dropsBefore, drops)
	}
	// Injected drops must surface through the PR 3 stats plumbing: the
	// node-level transport stats, not just the injector's own counter.
	if s := nA.TransportStats(); s.Drops < fiA.InjectedDrops() {
		t.Errorf("node.TransportStats().Drops = %d, want >= injected %d", s.Drops, fiA.InjectedDrops())
	}

	drv.Advance(1)
	publish(nA, "after-heal")
	waitDelivered(sinkB, "after-heal")
}

// waitConnected blocks until both nodes can see each other (non-empty
// views), so the first publish has a forwarding target.
func waitConnected(t *testing.T, a, b *node.Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.ViewIDs()) > 0 && len(b.ViewIDs()) > 0 {
			if _, _, ok := a.RingNeighbors(); ok {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("nodes never connected")
}
