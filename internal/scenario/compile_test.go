package scenario

import (
	"math/rand"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
)

// testOverlay builds a deterministic overlay of n nodes with evenly spaced
// IDs: node i has ID base*(i+1), a d-link ring in ID order, and a few
// r-links. Evenly spaced IDs make arc and prefix resolution predictable.
func testOverlay(t *testing.T, n int) *dissem.Overlay {
	t.Helper()
	ids := make([]ident.ID, n)
	base := ^uint64(0)/uint64(n) + 1
	for i := range ids {
		// base*i + 1 ascends with i and never wraps or hits Nil, so position
		// order equals ring order.
		ids[i] = ident.ID(base*uint64(i) + 1)
	}
	links := make([]core.Links, n)
	rng := rand.New(rand.NewSource(7))
	for i := range links {
		links[i].D = []ident.ID{ids[(i+n-1)%n], ids[(i+1)%n]}
		for k := 0; k < 5; k++ {
			links[i].R = append(links[i].R, ids[rng.Intn(n)])
		}
	}
	o, err := dissem.FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestCompileEmptyTimeline(t *testing.T) {
	o := testOverlay(t, 40)
	c, err := Compile(Scenario{Name: "empty"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsRuntime() {
		t.Error("empty timeline claims runtime faults")
	}
	if killed := c.ApplySetup(o, rand.New(rand.NewSource(1))); killed != 0 {
		t.Errorf("empty timeline killed %d nodes", killed)
	}
	if o.AliveCount() != 40 {
		t.Errorf("alive count changed: %d", o.AliveCount())
	}
}

func TestCompilePartitionArcs(t *testing.T) {
	o := testOverlay(t, 10)
	c, err := Compile(Scenario{Name: "p", Events: []Event{Partition(0, 3)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NeedsRuntime() {
		t.Fatal("partition at 0 needs runtime faults")
	}
	st := c.NewState()
	// Node IDs ascend with position in testOverlay, so arcs must be
	// contiguous position ranges of sizes 4, 3, 3.
	wantSizes := []int{4, 3, 3}
	sizes := make(map[int32]int)
	prev := int32(0)
	for i := 0; i < 10; i++ {
		g := groupOf(t, st, int32(i))
		if g < prev {
			t.Errorf("arcs not contiguous in ring order: node %d group %d after %d", i, g, prev)
		}
		prev = g
		sizes[g]++
	}
	for g, want := range wantSizes {
		if sizes[int32(g)] != want {
			t.Errorf("arc %d size %d, want %d", g, sizes[int32(g)], want)
		}
	}
	// Cross-arc copies blocked, intra-arc copies delivered.
	rng := rand.New(rand.NewSource(1))
	if st.Deliver(0, 1, rng) != true {
		t.Error("intra-arc copy blocked")
	}
	if st.Deliver(0, 9, rng) != false {
		t.Error("cross-arc copy delivered")
	}
}

// groupOf probes a State's arc assignment via Deliver against itself.
func groupOf(t *testing.T, st *State, i int32) int32 {
	t.Helper()
	if st.groups == nil {
		t.Fatal("no active partition")
	}
	return st.groups[i]
}

func TestCompilePartitionHealedAtZeroIsFaultFree(t *testing.T) {
	o := testOverlay(t, 12)
	c, err := Compile(Scenario{Name: "ph", Events: []Event{Partition(0, 2), Heal(0)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsRuntime() {
		t.Error("partition healed at time zero should compile to the fault-free fast path")
	}
}

func TestCompileLossZeroIsFaultFree(t *testing.T) {
	o := testOverlay(t, 12)
	c, err := Compile(Scenario{Name: "l0", Events: []Event{Loss(0, 0)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsRuntime() {
		t.Error("zero loss rate should compile to the fault-free fast path")
	}
}

func TestCompileLossOneBlocksEverything(t *testing.T) {
	o := testOverlay(t, 30)
	c, err := Compile(Scenario{Name: "l1", Events: []Event{Loss(0, 1)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NeedsRuntime() {
		t.Fatal("full loss needs runtime faults")
	}
	st := c.Get()
	defer c.Put(st)
	rng := rand.New(rand.NewSource(3))
	origin := o.IDs()[0]
	d, err := dissem.RunScratch(o, origin, core.RingCast{}, 3, rng,
		dissem.Options{SkipLoad: true, Faults: st}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reached != 1 {
		t.Errorf("reached %d under total loss, want origin only", d.Reached)
	}
	if d.Virgin != 0 || d.Redundant != 0 || d.Lost != 0 {
		t.Errorf("deliveries leaked through total loss: %+v", d)
	}
	if d.Blocked == 0 {
		t.Error("no copies recorded as blocked")
	}
}

func TestCompileArcKillSetup(t *testing.T) {
	o := testOverlay(t, 40)
	c, err := Compile(Scenario{Name: "arc", Events: []Event{ArcKill(0, 0.25, ident.Nil)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsRuntime() {
		t.Error("time-zero arc kill should not need runtime faults")
	}
	killed := c.ApplySetup(o, rand.New(rand.NewSource(1)))
	if killed != 10 {
		t.Fatalf("killed %d, want 10", killed)
	}
	if o.AliveCount() != 30 {
		t.Fatalf("alive %d, want 30", o.AliveCount())
	}
	// Victims are the lowest-ID quarter (arc start Nil = lowest ID), which
	// in testOverlay are positions 0..9.
	for i := 0; i < 40; i++ {
		wantDead := i < 10
		if o.IsAlive(i) == wantDead {
			t.Errorf("position %d alive=%v, want dead=%v", i, o.IsAlive(i), wantDead)
		}
	}
}

func TestCompileArcKillWholeRing(t *testing.T) {
	o := testOverlay(t, 16)
	c, err := Compile(Scenario{Name: "all", Events: []Event{ArcKill(0, 1, ident.Nil)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if killed := c.ApplySetup(o, rand.New(rand.NewSource(1))); killed != 16 {
		t.Errorf("killed %d, want 16", killed)
	}
	if o.AliveCount() != 0 {
		t.Errorf("alive %d after full arc kill", o.AliveCount())
	}
}

func TestCompileArcKillStartAnchor(t *testing.T) {
	o := testOverlay(t, 8)
	// Anchor at the ID of position 6: victims must be positions 6, 7, 0
	// (wrapping clockwise).
	start := o.IDs()[6]
	c, err := Compile(Scenario{Name: "anchored", Events: []Event{ArcKill(0, 0.375, start)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	c.ApplySetup(o, rand.New(rand.NewSource(1)))
	wantDead := map[int]bool{6: true, 7: true, 0: true}
	for i := 0; i < 8; i++ {
		if o.IsAlive(i) == wantDead[i] {
			t.Errorf("position %d alive=%v, want dead=%v", i, o.IsAlive(i), wantDead[i])
		}
	}
}

func TestCompilePrefixKill(t *testing.T) {
	o := testOverlay(t, 32)
	// testOverlay spaces IDs evenly, so the top 2 bits split positions into
	// quarters; prefix 0b11 selects the top quarter (positions 23..30 hold
	// IDs with top bits 11 — compute instead of guessing).
	want := 0
	for i := 0; i < 32; i++ {
		if uint64(o.IDs()[i])>>62 == 0b11 {
			want++
		}
	}
	c, err := Compile(Scenario{Name: "prefix", Events: []Event{PrefixKill(0, 0b11, 2)}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if killed := c.ApplySetup(o, rand.New(rand.NewSource(1))); killed != want {
		t.Errorf("killed %d, want %d", killed, want)
	}
	for i := 0; i < 32; i++ {
		wantDead := uint64(o.IDs()[i])>>62 == 0b11
		if o.IsAlive(i) == wantDead {
			t.Errorf("position %d (id %v) alive=%v, want dead=%v", i, o.IDs()[i], o.IsAlive(i), wantDead)
		}
	}
}

func TestCompileMidRunKillAndHeal(t *testing.T) {
	o := testOverlay(t, 20)
	sc := Scenario{Name: "mid", Events: []Event{
		Partition(0, 2),
		ArcKill(2, 0.25, ident.Nil),
		Heal(4),
	}}
	c, err := Compile(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Get()
	defer c.Put(st)
	if st.Dead(0) {
		t.Error("victim dead before its event fired")
	}
	rng := rand.New(rand.NewSource(1))
	if st.Deliver(0, 19, rng) {
		t.Error("cross-arc copy delivered before heal")
	}
	st.HopStart(1)
	if st.Dead(0) {
		t.Error("victim dead at hop 1")
	}
	st.HopStart(2)
	if !st.Dead(0) || !st.Dead(4) || st.Dead(5) {
		t.Errorf("arc kill at hop 2 wrong: dead(0)=%v dead(4)=%v dead(5)=%v",
			st.Dead(0), st.Dead(4), st.Dead(5))
	}
	st.HopStart(4)
	if !st.Deliver(0, 19, rng) {
		t.Error("cross-arc copy still blocked after heal")
	}
	// Begin must reset everything for the next pooled run.
	st.Begin()
	if st.Dead(0) {
		t.Error("Begin did not clear mid-run deaths")
	}
	if st.Deliver(0, 19, rng) {
		t.Error("Begin did not restore the initial partition")
	}
}

func TestUniformKillDrawsFromCallerStream(t *testing.T) {
	// The same seed must kill the same nodes the overlay's own KillFraction
	// would, preserving the catastrophic sweep byte-for-byte.
	oA := testOverlay(t, 50)
	oB := testOverlay(t, 50)
	c, err := Compile(Scenario{Name: "kill", Events: []Event{UniformKill(0.2)}}, oA)
	if err != nil {
		t.Fatal(err)
	}
	c.ApplySetup(oA, rand.New(rand.NewSource(99)))
	oB.KillFraction(0.2, rand.New(rand.NewSource(99)))
	for i := 0; i < 50; i++ {
		if oA.IsAlive(i) != oB.IsAlive(i) {
			t.Fatalf("position %d: scenario alive=%v, direct alive=%v", i, oA.IsAlive(i), oB.IsAlive(i))
		}
	}
}
