package scenario

// Satellite of the soak-harness PR: table-driven pinning of the live
// Driver's victim and arc resolution against the hop-sim compiler's
// resolution of the same timeline. Both surfaces resolve node sets over
// ring-ordered identifiers; these tests assert they resolve to the SAME
// sets, so a scenario validated in simulation partitions (or kills) the
// same identities when replayed against a live fleet.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ringcast/internal/ident"
)

// recordingSurface is a FaultSurface that records the programmed state
// instead of injecting faults, so resolution can be inspected.
type recordingSurface struct {
	mu      sync.Mutex
	blocked map[string]bool
	loss    float64
	heals   int
}

func newRecordingSurface() *recordingSurface {
	return &recordingSurface{blocked: make(map[string]bool)}
}

func (s *recordingSurface) Block(addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range addrs {
		s.blocked[a] = true
	}
}

func (s *recordingSurface) Unblock(addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range addrs {
		delete(s.blocked, a)
	}
}

func (s *recordingSurface) HealAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocked = make(map[string]bool)
	s.heals++
}

func (s *recordingSurface) SetLoss(rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loss = rate
}

func (s *recordingSurface) blocks(addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocked[addr]
}

func (s *recordingSurface) blockedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocked)
}

// driverFixture pairs a member list (deliberately NOT in ring order, to
// prove the driver sorts) with the recording surfaces, indexed like the
// members.
type driverFixture struct {
	members  []Member
	surfaces []*recordingSurface
}

// newDriverFixture builds n members with the same evenly spaced IDs as
// testOverlay(t, n), listed in a scrambled order.
func newDriverFixture(t *testing.T, n int) *driverFixture {
	t.Helper()
	base := ^uint64(0)/uint64(n) + 1
	f := &driverFixture{}
	perm := rand.New(rand.NewSource(int64(n))).Perm(n)
	for _, i := range perm {
		s := newRecordingSurface()
		f.surfaces = append(f.surfaces, s)
		f.members = append(f.members, Member{
			Addr:   fmt.Sprintf("m-%03d", i),
			ID:     ident.ID(base*uint64(i) + 1),
			Faults: s,
		})
	}
	return f
}

// groupsByBlocking partitions the member IDs into connectivity groups:
// two members share a group iff neither side blocks the other.
func (f *driverFixture) groupsByBlocking(t *testing.T) map[ident.ID]int {
	t.Helper()
	group := make(map[ident.ID]int)
	next := 0
	for i, m := range f.members {
		if _, seen := group[m.ID]; seen {
			continue
		}
		group[m.ID] = next
		for j := range f.members {
			if i == j {
				continue
			}
			aBlocksB := f.surfaces[i].blocks(f.members[j].Addr)
			bBlocksA := f.surfaces[j].blocks(f.members[i].Addr)
			if aBlocksB != bBlocksA {
				t.Errorf("asymmetric block between %s and %s", f.members[i].Addr, f.members[j].Addr)
			}
			if !aBlocksB && !bBlocksA {
				group[f.members[j].ID] = next
			}
		}
		next++
	}
	return group
}

// sortedGroupSets canonicalizes a per-ID group assignment into sorted
// ID sets, sorted by their smallest member, so two assignments compare
// regardless of group numbering.
func sortedGroupSets(group map[ident.ID]int) [][]ident.ID {
	byGroup := make(map[int][]ident.ID)
	for id, g := range group {
		byGroup[g] = append(byGroup[g], id)
	}
	sets := make([][]ident.ID, 0, len(byGroup))
	for _, ids := range byGroup {
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		sets = append(sets, ids)
	}
	sort.Slice(sets, func(a, b int) bool { return sets[a][0] < sets[b][0] })
	return sets
}

// compiledGroups maps the hop-sim arc assignment (per overlay position)
// onto IDs.
func compiledGroups(t *testing.T, n, k int) map[ident.ID]int {
	t.Helper()
	o := testOverlay(t, n)
	groups := assignArcs(o, k)
	out := make(map[ident.ID]int, n)
	for pos, id := range o.IDs() {
		out[id] = int(groups[pos])
	}
	return out
}

// TestDriverPartitionMatchesCompile pins the live driver's k-arc split
// against assignArcs over an overlay with identical IDs, across population
// sizes that exercise the n mod k remainder distribution.
func TestDriverPartitionMatchesCompile(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 2}, {10, 3}, {16, 2}, {16, 5}, {33, 4}, {33, 7}, {9, 9},
	} {
		t.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(t *testing.T) {
			f := newDriverFixture(t, tc.n)
			drv, err := NewDriver(Scenario{
				Name:   "pin-partition",
				Events: []Event{Partition(0, tc.k)},
			}, f.members)
			if err != nil {
				t.Fatal(err)
			}
			drv.Advance(0)

			live := sortedGroupSets(f.groupsByBlocking(t))
			sim := sortedGroupSets(compiledGroups(t, tc.n, tc.k))
			if len(live) != tc.k {
				t.Fatalf("driver produced %d groups, want %d", len(live), tc.k)
			}
			if fmt.Sprint(live) != fmt.Sprint(sim) {
				t.Errorf("arc assignment diverged:\nlive: %v\nsim:  %v", live, sim)
			}
		})
	}
}

// killVictims runs the driver over a single-kill timeline and returns the
// victim IDs reported through OnKill, sorted.
func killVictims(t *testing.T, n int, e Event) []ident.ID {
	t.Helper()
	f := newDriverFixture(t, n)
	drv, err := NewDriver(Scenario{Name: "pin-kill", Events: []Event{e}}, f.members)
	if err != nil {
		t.Fatal(err)
	}
	var victims []ident.ID
	drv.OnKill = func(m Member) { victims = append(victims, m.ID) }
	drv.Advance(e.At)
	// A second pass over the same step must not re-kill anyone.
	drv.Advance(e.At + 1)
	sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })
	return victims
}

// compiledVictims resolves the same kill event with the hop-sim compiler's
// victim resolution and returns the victim IDs, sorted.
func compiledVictims(t *testing.T, n int, e Event) []ident.ID {
	t.Helper()
	o := testOverlay(t, n)
	var positions []int32
	switch e.Kind {
	case KindArcKill:
		positions = arcVictims(o, e.Fraction, e.Start)
	case KindPrefixKill:
		positions = prefixVictims(o, e.Prefix, e.PrefixBits)
	default:
		t.Fatalf("unsupported kill kind %v", e.Kind)
	}
	ids := o.IDs()
	victims := make([]ident.ID, 0, len(positions))
	for _, p := range positions {
		victims = append(victims, ids[p])
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })
	return victims
}

// TestDriverKillsMatchCompile pins arc-kill and prefix-kill victim sets
// against the compiler, including a wrapped arc (start near the top of the
// ring) and prefix selections at several widths.
func TestDriverKillsMatchCompile(t *testing.T) {
	const n = 32
	base := ^uint64(0)/uint64(n) + 1
	cases := []struct {
		name string
		e    Event
	}{
		{"arc-quarter-from-nil", ArcKill(1, 0.25, ident.Nil)},
		{"arc-half-from-mid", ArcKill(1, 0.5, ident.ID(base*uint64(n/2)+1))},
		{"arc-wrap", ArcKill(1, 0.25, ident.ID(base*uint64(n-2)+1))},
		{"arc-all", ArcKill(1, 1.0, ident.Nil)},
		{"prefix-top-quarter", PrefixKill(1, 3, 2)},
		{"prefix-none", PrefixKill(1, 0x7f, 7)},
		{"prefix-bottom-half", PrefixKill(1, 0, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := killVictims(t, n, tc.e)
			sim := compiledVictims(t, n, tc.e)
			if fmt.Sprint(live) != fmt.Sprint(sim) {
				t.Errorf("victim sets diverged (%d live vs %d sim):\nlive: %v\nsim:  %v",
					len(live), len(sim), live, sim)
			}
		})
	}
}

// TestDriverHealOrdering drives a partition / heal / repartition timeline
// step by step and asserts the heal clears every block on every member
// (via HealAll, exactly once per heal) before the next partition programs
// the new arc assignment.
func TestDriverHealOrdering(t *testing.T) {
	const n = 12
	f := newDriverFixture(t, n)
	drv, err := NewDriver(Scenario{
		Name:   "pin-heal",
		Events: []Event{Partition(0, 2), Heal(1), Partition(2, 3)},
	}, f.members)
	if err != nil {
		t.Fatal(err)
	}

	drv.Advance(0)
	if got := sortedGroupSets(f.groupsByBlocking(t)); len(got) != 2 {
		t.Fatalf("step 0: %d groups, want 2", len(got))
	}

	drv.Advance(1)
	for i, s := range f.surfaces {
		if s.blockedCount() != 0 {
			t.Errorf("step 1: member %d still blocks %d addrs after heal", i, s.blockedCount())
		}
		if s.heals != 1 {
			t.Errorf("step 1: member %d saw %d HealAll calls, want 1", i, s.heals)
		}
	}

	drv.Advance(2)
	live := sortedGroupSets(f.groupsByBlocking(t))
	sim := sortedGroupSets(compiledGroups(t, n, 3))
	if fmt.Sprint(live) != fmt.Sprint(sim) {
		t.Errorf("repartition diverged:\nlive: %v\nsim:  %v", live, sim)
	}

	// Advancing in one leap from a fresh driver applies the whole timeline
	// in order: the terminal state must match the stepped walk.
	f2 := newDriverFixture(t, n)
	drv2, err := NewDriver(Scenario{
		Name:   "pin-heal-leap",
		Events: []Event{Partition(0, 2), Heal(1), Partition(2, 3)},
	}, f2.members)
	if err != nil {
		t.Fatal(err)
	}
	drv2.Advance(10)
	leap := sortedGroupSets(f2.groupsByBlocking(t))
	if fmt.Sprint(leap) != fmt.Sprint(sim) {
		t.Errorf("single-leap advance diverged from stepped walk:\nleap: %v\nsim:  %v", leap, sim)
	}
	for i, s := range f2.surfaces {
		if s.heals != 1 {
			t.Errorf("leap: member %d saw %d HealAll calls, want 1", i, s.heals)
		}
	}
}

// TestDriverLossProgramsEveryMember asserts a loss step reaches every
// member's surface and a rate-0 step clears it.
func TestDriverLossProgramsEveryMember(t *testing.T) {
	f := newDriverFixture(t, 8)
	drv, err := NewDriver(Scenario{
		Name:   "pin-loss",
		Events: []Event{Loss(0, 0.25), Loss(1, 0)},
	}, f.members)
	if err != nil {
		t.Fatal(err)
	}
	drv.Advance(0)
	for i, s := range f.surfaces {
		if s.loss != 0.25 {
			t.Errorf("member %d loss = %v, want 0.25", i, s.loss)
		}
	}
	drv.Advance(1)
	for i, s := range f.surfaces {
		if s.loss != 0 {
			t.Errorf("member %d loss = %v after clear, want 0", i, s.loss)
		}
	}
}

// recordingParams is a ParamSurface that records every (key, value) push.
type recordingParams struct {
	mu    sync.Mutex
	calls [][2]string
}

func (p *recordingParams) SetParam(key, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, [2]string{key, value})
}

func (p *recordingParams) snapshot() [][2]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([][2]string(nil), p.calls...)
}

// TestDriverSetParamDispatch asserts set-param events reach every member
// with a params surface, in timeline order, exactly once — and that members
// without one (Params == nil) are silently skipped rather than rejected at
// NewDriver time.
func TestDriverSetParamDispatch(t *testing.T) {
	f := newDriverFixture(t, 6)
	params := make([]*recordingParams, len(f.members))
	for i := range f.members {
		if i%2 == 1 {
			continue // odd members keep Params nil: legacy agents
		}
		params[i] = &recordingParams{}
		f.members[i].Params = params[i]
	}
	drv, err := NewDriver(Scenario{
		Name: "pin-set-param",
		Events: []Event{
			SetParam(1, "gossip.interval", "25ms"),
			SetParam(3, "gossip.fanout", "5"),
		},
	}, f.members)
	if err != nil {
		t.Fatal(err)
	}
	drv.Advance(0)
	for i, p := range params {
		if p != nil && len(p.snapshot()) != 0 {
			t.Errorf("member %d saw params before their step", i)
		}
	}
	drv.Advance(5) // leaps over both steps; each must fire exactly once
	want := [][2]string{{"gossip.interval", "25ms"}, {"gossip.fanout", "5"}}
	for i, p := range params {
		if p == nil {
			continue
		}
		got := p.snapshot()
		if len(got) != len(want) {
			t.Fatalf("member %d saw %d param calls, want %d: %v", i, len(got), len(want), got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("member %d call %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestSetParamValidation pins the builder, its kind name and the
// empty-key rejection.
func TestSetParamValidation(t *testing.T) {
	if got := KindSetParam.String(); got != "set-param" {
		t.Fatalf("KindSetParam.String() = %q", got)
	}
	sc := Scenario{Name: "bad", Events: []Event{SetParam(0, "", "x")}}
	if err := sc.Validate(); err == nil {
		t.Fatal("empty set-param key validated")
	}
	sc = Scenario{Name: "ok", Events: []Event{SetParam(2, "gossip.interval", "25ms")}}
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid set-param rejected: %v", err)
	}
	e := sc.Events[0]
	if e.At != 2 || e.Kind != KindSetParam || e.Key != "gossip.interval" || e.Value != "25ms" {
		t.Fatalf("builder filled %+v", e)
	}
}

// TestCompileSkipsSetParam asserts a set-param-only scenario compiles to a
// fail-free (no-runtime) timeline: the simulators freeze parameters at
// compile, so the event must not force the fault-model slow path.
func TestCompileSkipsSetParam(t *testing.T) {
	o := testOverlay(t, 16)
	c, err := Compile(Scenario{
		Name:   "retune-only",
		Events: []Event{SetParam(3, "gossip.interval", "25ms")},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NeedsRuntime() {
		t.Fatal("set-param-only scenario forced the runtime fault path")
	}
}
