package scenario

import (
	"strings"
	"testing"

	"ringcast/internal/ident"
)

// TestValidateTable drives Scenario.Validate over the structural edge
// cases: empty timelines, partition/heal ordering, and parameter bounds
// (loss rates 0 and 1 are both legal; everything outside [0,1] is not).
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		sc      Scenario
		wantErr string // empty = valid
	}{
		{"empty timeline", Scenario{Name: "empty"}, ""},
		{"unnamed", Scenario{}, "name"},
		{"negative time", Scenario{Name: "x", Events: []Event{{At: -1, Kind: KindLoss}}}, "negative time"},
		{"loss rate zero", Scenario{Name: "x", Events: []Event{Loss(0, 0)}}, ""},
		{"loss rate one", Scenario{Name: "x", Events: []Event{Loss(0, 1)}}, ""},
		{"loss rate above one", Scenario{Name: "x", Events: []Event{Loss(0, 1.01)}}, "loss rate"},
		{"loss rate negative", Scenario{Name: "x", Events: []Event{Loss(2, -0.5)}}, "loss rate"},
		{"partition ok", Scenario{Name: "x", Events: []Event{Partition(0, 2)}}, ""},
		{"partition one group", Scenario{Name: "x", Events: []Event{Partition(0, 1)}}, ">= 2 groups"},
		{"partition heal partition", Scenario{Name: "x", Events: []Event{Partition(0, 2), Heal(3), Partition(5, 4)}}, ""},
		{"overlapping partitions", Scenario{Name: "x", Events: []Event{Partition(0, 2), Partition(3, 3)}}, "overlapping partitions"},
		{"heal before partition", Scenario{Name: "x", Events: []Event{Heal(2), Partition(5, 2)}}, "no partition to heal"},
		// Declaration order scrambled: sorting by At must drive the
		// ordering check, so the heal at hop 2 still precedes the
		// partition at hop 5.
		{"heal before partition declared late", Scenario{Name: "x", Events: []Event{Partition(5, 2), Heal(2)}}, "no partition to heal"},
		{"heal alone", Scenario{Name: "x", Events: []Event{Heal(0)}}, "no partition to heal"},
		{"uniform kill ok", Scenario{Name: "x", Events: []Event{UniformKill(0.05)}}, ""},
		{"uniform kill mid-run", Scenario{Name: "x", Events: []Event{{At: 3, Kind: KindUniformKill, Fraction: 0.05}}}, "time 0"},
		{"uniform kill full", Scenario{Name: "x", Events: []Event{UniformKill(1)}}, "fraction"},
		{"arc kill full ring", Scenario{Name: "x", Events: []Event{ArcKill(0, 1, ident.Nil)}}, ""},
		{"arc kill zero", Scenario{Name: "x", Events: []Event{ArcKill(0, 0, ident.Nil)}}, "fraction"},
		{"prefix kill ok", Scenario{Name: "x", Events: []Event{PrefixKill(1, 0b101, 3)}}, ""},
		{"prefix kill no bits", Scenario{Name: "x", Events: []Event{PrefixKill(1, 1, 0)}}, "prefix bits"},
		{"prefix kill too many bits", Scenario{Name: "x", Events: []Event{PrefixKill(1, 1, 65)}}, "prefix bits"},
		{"flash crowd fraction", Scenario{Name: "x", Events: []Event{FlashCrowd(0, 0.25)}}, ""},
		{"flash crowd count", Scenario{Name: "x", Events: []Event{FlashCrowdCount(0, 10)}}, ""},
		{"flash crowd empty", Scenario{Name: "x", Events: []Event{{Kind: KindFlashCrowd}}}, "count or a positive fraction"},
		{"churn rate ok", Scenario{Name: "x", Events: []Event{ChurnRate(0, 0.002)}}, ""},
		{"churn rate one", Scenario{Name: "x", Events: []Event{ChurnRate(0, 1)}}, "churn rate"},
		{"negative settle", Scenario{Name: "x", SettleCycles: -1}, "settle"},
		{"unknown kind", Scenario{Name: "x", Events: []Event{{Kind: Kind(99)}}}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestBuiltinsValidateAndResolve(t *testing.T) {
	if len(Builtins()) == 0 {
		t.Fatal("empty builtin catalog")
	}
	for _, sc := range Builtins() {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", sc.Name, err)
		}
		if got, ok := Builtin(sc.Name); !ok || got.Name != sc.Name {
			t.Errorf("builtin %s not resolvable by name", sc.Name)
		}
	}
	if _, ok := Builtin("definitely-not-a-scenario"); ok {
		t.Error("unknown name resolved")
	}
	if _, err := ByNames([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "built-ins") {
		t.Errorf("unknown name in ByNames: %v", err)
	}
	all, err := ByNames(nil)
	if err != nil || len(all) != len(Builtins()) {
		t.Errorf("ByNames(nil) = %d scenarios, err %v", len(all), err)
	}
	two, err := ByNames([]string{"lossy", "baseline"})
	if err != nil || len(two) != 2 || two[0].Name != "lossy" || two[1].Name != "baseline" {
		t.Errorf("ByNames order not preserved: %v, %v", two, err)
	}
}

func TestKindString(t *testing.T) {
	for k := KindPartition; k <= KindChurnRate; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string: %s", Kind(99))
	}
}
