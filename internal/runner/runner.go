// Package runner is the deterministic parallel execution engine behind the
// experiment sweeps: a worker pool that fans independent work units across
// GOMAXPROCS goroutines, plus the seed-derivation scheme that makes results
// bit-identical regardless of worker count.
//
// Determinism contract: a work unit fn(i) must (a) write only to its own
// output slot i, (b) draw all randomness from a *rand.Rand derived via
// UnitRand from the master seed and the unit's logical coordinates (never
// from a stream shared with other units), and (c) not read other units'
// outputs. Under that contract the set of unit outputs is a pure function of
// the master seed, so callers that fold outputs in index order get the same
// bytes at any parallelism level — including 1, which is the reference
// sequential execution.
package runner

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress receives live completion updates as units finish: done units out
// of total. Implementations must tolerate concurrent-looking call patterns
// (calls are serialized by the pool but may come from any worker goroutine)
// and must be cheap — it runs on the workers' critical path.
type Progress func(done, total int)

// Resolve maps a Parallelism configuration knob to an effective worker
// count: values >= 1 are used as-is, anything else (0, the default) means
// one worker per available CPU.
func Resolve(parallelism int) int {
	if parallelism >= 1 {
		return parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Map executes fn(0), fn(1), ... fn(n-1) across Resolve(parallelism)
// worker goroutines and blocks until all units finish. Units are claimed
// dynamically (an atomic cursor), so stragglers do not idle other workers.
//
// Error handling is deterministic: if any units fail, Map returns the error
// of the failing unit with the lowest index, regardless of completion order.
// After the first observed failure, workers stop claiming new units, but
// units already in flight run to completion, so outputs written by
// successful units remain valid.
func Map(parallelism, n int, progress Progress, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Resolve(parallelism)
	if workers > n {
		workers = n
	}
	if workers == 1 && progress == nil {
		// Fast path: the reference sequential execution, no goroutines.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor int64 = -1
		done   int
		failed int32
		wg     sync.WaitGroup
		mu     sync.Mutex // guards done and errs, serializes progress calls
		errs   []indexedError
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if atomic.LoadInt32(&failed) != 0 {
					return
				}
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					atomic.StoreInt32(&failed, 1)
					mu.Lock()
					errs = append(errs, indexedError{i, err})
					mu.Unlock()
					continue
				}
				if progress != nil {
					// The count is incremented under the same lock that
					// serializes the calls, so updates are monotonic and the
					// final delivered update is always (n, n).
					mu.Lock()
					done++
					progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	first := errs[0]
	for _, e := range errs[1:] {
		if e.index < first.index {
			first = e
		}
	}
	return first.err
}

type indexedError struct {
	index int
	err   error
}

// splitmix64 is the SplitMix64 finalizer — a bijective avalanche mixer with
// provably good dispersion, the standard tool for deriving decorrelated
// child seeds from sequential or structured inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// UnitSeed derives a child seed from a master seed and a tag path (the work
// unit's logical coordinates, e.g. scenario, fanout, run, protocol). Nearby
// tag paths yield decorrelated seeds, and the derivation depends only on the
// master seed and the tags — never on execution order or worker identity.
func UnitSeed(master int64, tags ...int64) int64 {
	h := splitmix64(uint64(master))
	for _, t := range tags {
		h = splitmix64(h ^ splitmix64(uint64(t)))
	}
	return int64(h)
}

// UnitRand returns a fresh deterministic random stream for one work unit,
// seeded via UnitSeed.
func UnitRand(master int64, tags ...int64) *rand.Rand {
	return rand.New(rand.NewSource(UnitSeed(master, tags...)))
}

// ConsoleProgress returns a Progress that renders a live single-line status
// ("label: done/total (pct)") to w, throttled so it does not slow the pool
// down; the final update always prints and terminates the line. Intended for
// stderr so it interleaves safely with result tables on stdout.
func ConsoleProgress(w io.Writer, label string) Progress {
	var last time.Time
	return func(done, total int) {
		now := time.Now()
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(w, "\r%s: %d/%d (%.0f%%)", label, done, total, float64(done)/float64(total)*100)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}
