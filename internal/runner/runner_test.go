package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapCoversAllUnitsOnce(t *testing.T) {
	for _, p := range []int{0, 1, 3, 16} {
		n := 137
		counts := make([]int64, n)
		err := Map(p, n, nil, func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: unit %d executed %d times", p, i, c)
			}
		}
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	ran := false
	for _, n := range []int{0, -5} {
		if err := Map(4, n, nil, func(int) error { ran = true; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if ran {
		t.Fatal("fn ran for empty input")
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("unit 3 failed")
	for _, p := range []int{1, 4} {
		err := Map(p, 64, nil, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 40:
				return errors.New("unit 40 failed")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("p=%d: got %v, want the lowest-index error", p, err)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var executed int64
	err := Map(2, 10000, nil, func(i int) error {
		atomic.AddInt64(&executed, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n := atomic.LoadInt64(&executed); n == 10000 {
		t.Error("pool did not stop early after a failure")
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestUnitSeedIsOrderFreeAndTagSensitive(t *testing.T) {
	a := UnitSeed(42, 1, 2, 3)
	if b := UnitSeed(42, 1, 2, 3); a != b {
		t.Fatal("UnitSeed not deterministic")
	}
	distinct := map[int64]string{a: "42/1,2,3"}
	for seed, tags := range map[int64][]int64{
		43: {1, 2, 3}, // different master
		42: {3, 2, 1}, // permuted tags must differ (coordinates are positional)
	} {
		s := UnitSeed(seed, tags...)
		if prev, dup := distinct[s]; dup {
			t.Fatalf("seed collision between %s and %d/%v", prev, seed, tags)
		}
		distinct[s] = fmt.Sprintf("%d/%v", seed, tags)
	}
	// Sequential unit indices must yield decorrelated streams: the first
	// draws of adjacent units should not be adjacent themselves.
	r0 := UnitRand(42, 0).Int63()
	r1 := UnitRand(42, 1).Int63()
	if r0 == r1 || r0+1 == r1 {
		t.Errorf("adjacent unit streams look correlated: %d then %d", r0, r1)
	}
}

func TestUnitRandStreamsAreIndependent(t *testing.T) {
	// Drawing from one unit's stream must not affect another's.
	a := UnitRand(7, 5)
	for i := 0; i < 100; i++ {
		a.Int63()
	}
	b := UnitRand(7, 6)
	want := UnitRand(7, 6).Int63()
	if got := b.Int63(); got != want {
		t.Errorf("unit stream affected by sibling: %d != %d", got, want)
	}
}

func TestMapProgressReachesTotal(t *testing.T) {
	var maxDone int
	total := 50
	err := Map(4, total, func(done, n int) {
		if n != total {
			t.Errorf("total = %d, want %d", n, total)
		}
		if done > maxDone {
			maxDone = done
		}
	}, func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if maxDone != total {
		t.Errorf("final progress %d, want %d", maxDone, total)
	}
}

func TestConsoleProgressPrintsFinalLine(t *testing.T) {
	var sb strings.Builder
	p := ConsoleProgress(&sb, "sweep")
	p(1, 2)
	p(2, 2)
	out := sb.String()
	if !strings.Contains(out, "sweep: 2/2 (100%)") {
		t.Errorf("final progress line missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line not terminated: %q", out)
	}
}
