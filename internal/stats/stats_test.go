package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.Std != 0 || s.Mean != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	if s := SummarizeInts([]int{2, 4}); s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {20, 1}, {50, 3}, {100, 5}, {101, 5}, {-5, 1}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	h.AddAll([]int{3, 3, 1, 7})
	h.Add(3)
	if h.Count(3) != 3 || h.Count(1) != 1 || h.Count(99) != 0 {
		t.Fatalf("counts wrong: %v", h.Sorted())
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d, want 5", h.Total())
	}
	sorted := h.Sorted()
	if len(sorted) != 3 || sorted[0].Value != 1 || sorted[2].Value != 7 {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestLogBinned(t *testing.T) {
	h := NewIntHistogram()
	// values 1 -> bin 1; 2,3 -> bin 2; 4..7 -> bin 4
	h.AddAll([]int{1, 2, 3, 4, 5, 6, 7})
	bins := h.LogBinned()
	want := map[int]int{1: 1, 2: 2, 4: 4}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for _, b := range bins {
		if want[b.Value] != b.Count {
			t.Fatalf("bin %d = %d, want %d", b.Value, b.Count, want[b.Value])
		}
	}
	if NewIntHistogram().LogBinned() != nil {
		t.Error("empty LogBinned should be nil")
	}
}

func TestGini(t *testing.T) {
	if g, err := Gini([]int{5, 5, 5, 5}); err != nil || g != 0 {
		t.Fatalf("uniform Gini = %v err=%v, want 0", g, err)
	}
	g, err := Gini([]int{0, 0, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.7 {
		t.Fatalf("concentrated Gini = %v, want high", g)
	}
	if _, err := Gini([]int{-1}); err == nil {
		t.Fatal("accepted negative value")
	}
	if g, err := Gini(nil); err != nil || g != 0 {
		t.Fatal("empty Gini should be 0")
	}
	if g, err := Gini([]int{0, 0}); err != nil || g != 0 {
		t.Fatal("all-zero Gini should be 0")
	}
}

// Property: Gini is scale-invariant-ish in [0,1) and zero for constants.
func TestGiniBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]int, len(raw))
		for i, r := range raw {
			xs[i] = int(r)
		}
		g, err := Gini(xs)
		if err != nil {
			return false
		}
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(aRaw%101), float64(bRaw%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
