// Package stats provides the small statistical toolkit behind the
// experiment tables: summaries, percentiles, integer histograms (for the
// lifetime distributions of Figures 12–13), and load-balance measures
// (for the paper's uniform-load claim in Section 7).
//
// All computations are deterministic: summaries and Gini coefficients fold
// their inputs in a fixed order and histograms sort on read, so the same
// samples always render the same table bytes regardless of how many
// workers produced them.
//
//ringcast:deterministic
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
}

// Summarize computes descriptive statistics; a nil/empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// SummarizeInts is Summarize over an integer sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sample
// using nearest-rank on a sorted copy. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// IntHistogram counts occurrences of integer values — e.g. "number of nodes
// having a given lifetime" (Figure 12) or "number of non-notified nodes per
// lifetime" (Figure 13).
type IntHistogram struct {
	counts map[int]int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int)}
}

// Add increments the count of value v by one.
func (h *IntHistogram) Add(v int) { h.counts[v]++ }

// AddAll increments every value in vs.
func (h *IntHistogram) AddAll(vs []int) {
	for _, v := range vs {
		h.counts[v]++
	}
}

// Count returns the count for value v.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total returns the sum of all counts.
func (h *IntHistogram) Total() int {
	t := 0
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Pair is one histogram bucket.
type Pair struct {
	Value, Count int
}

// Sorted returns the (value, count) pairs in increasing value order.
func (h *IntHistogram) Sorted() []Pair {
	out := make([]Pair, 0, len(h.counts))
	for v, c := range h.counts {
		out = append(out, Pair{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// LogBinned aggregates the histogram into multiplicative bins
// [1,2), [2,4), [4,8), ... — the natural presentation for the log-log
// lifetime plots. Values below 1 land in the first bin.
func (h *IntHistogram) LogBinned() []Pair {
	if len(h.counts) == 0 {
		return nil
	}
	bins := make(map[int]int)
	for v, c := range h.counts {
		b := 0
		for x := v; x > 1; x >>= 1 {
			b++
		}
		bins[b] += c
	}
	out := make([]Pair, 0, len(bins))
	for b, c := range bins {
		out = append(out, Pair{Value: 1 << uint(b), Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Gini computes the Gini coefficient of a non-negative sample: 0 for a
// perfectly uniform load distribution, approaching 1 for a star-server-like
// concentration. It returns an error for negative inputs and 0 for empty
// or all-zero samples.
func Gini(xs []int) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sorted := make([]float64, len(xs))
	total := 0.0
	for i, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("stats: Gini requires non-negative values, got %d", x)
		}
		sorted[i] = float64(x)
		total += float64(x)
	}
	if total == 0 {
		return 0, nil
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	cum := 0.0
	for i, x := range sorted {
		cum += float64(i+1) * x
	}
	return (2*cum)/(n*total) - (n+1)/n, nil
}
