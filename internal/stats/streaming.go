// Streaming aggregation: one-pass, O(1)-state accumulators for sweeps too
// large to retain their samples — the million-node scale runs fold hop
// counts and ratios through these instead of collecting per-run arrays.
// Both accumulators are deterministic: folding the same values in the same
// order always yields the same result, independent of worker count, because
// the experiment engine folds unit outputs in index order.
package stats

import "math"

// Welford is an online descriptive-statistics accumulator using Welford's
// recurrence for the variance: numerically stable, one pass, O(1) state.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
//
//ringcast:hotpath
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns how many observations have been folded.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Summary renders the accumulator in the same shape Summarize produces
// from a retained sample: n, mean, sample standard deviation, min and max.
func (w *Welford) Summary() Summary {
	s := Summary{N: w.n, Mean: w.mean, Min: w.min, Max: w.max}
	if w.n > 1 {
		s.Std = math.Sqrt(w.m2 / float64(w.n-1))
	}
	return s
}

// P2Quantile estimates a single quantile online with the P-squared
// algorithm (Jain & Chlamtac, 1985): five markers track the running
// quantile with O(1) state and no sample retention, converging to the true
// quantile as observations accumulate. Construct with NewP2Quantile.
type P2Quantile struct {
	p     float64
	count int
	// q are the marker heights, pos their integer positions (1-based
	// observation ranks), want their desired (fractional) positions.
	q    [5]float64
	pos  [5]int
	want [5]float64
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1
// (e.g. 0.5 for the median, 0.99 for the 99th percentile). It panics on an
// out-of-range p: the estimator is built by code, not user input.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	return &P2Quantile{p: p}
}

// Add folds one observation into the estimator.
//
//ringcast:hotpath
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		// Insertion-sort the first five observations into the markers.
		i := e.count
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.count++
		if e.count == 5 {
			for j := range e.pos {
				e.pos[j] = j + 1
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.count++
	// Locate the cell x falls into and bump the end markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for j := k + 1; j < 5; j++ {
		e.pos[j]++
	}
	// Desired positions advance by their fractional increments.
	inc := [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
	for j := range e.want {
		e.want[j] += inc[j]
	}
	// Adjust the three interior markers toward their desired positions.
	for j := 1; j <= 3; j++ {
		d := e.want[j] - float64(e.pos[j])
		if (d >= 1 && e.pos[j+1]-e.pos[j] > 1) || (d <= -1 && e.pos[j-1]-e.pos[j] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			// Parabolic (piecewise-quadratic) prediction; fall back to
			// linear when it would leave the neighbouring markers' order.
			qn := e.parabolic(j, sign)
			if e.q[j-1] < qn && qn < e.q[j+1] {
				e.q[j] = qn
			} else {
				e.q[j] = e.linear(j, sign)
			}
			e.pos[j] += sign
		}
	}
}

// parabolic is the P2 quadratic marker-height prediction for moving marker
// j by sign (+1/-1) positions.
func (e *P2Quantile) parabolic(j, sign int) float64 {
	d := float64(sign)
	np, nm := float64(e.pos[j+1]), float64(e.pos[j-1])
	n := float64(e.pos[j])
	return e.q[j] + d/(np-nm)*((n-nm+d)*(e.q[j+1]-e.q[j])/(np-n)+(np-n-d)*(e.q[j]-e.q[j-1])/(n-nm))
}

// linear is the fallback marker-height prediction along the segment toward
// the neighbour in direction sign.
func (e *P2Quantile) linear(j, sign int) float64 {
	return e.q[j] + float64(sign)*(e.q[j+sign]-e.q[j])/float64(e.pos[j+sign]-e.pos[j])
}

// N returns how many observations have been folded.
func (e *P2Quantile) N() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the nearest-rank quantile of what it has
// (0 when empty).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		rank := int(math.Ceil(e.p*float64(e.count))) - 1
		if rank < 0 {
			rank = 0
		}
		return e.q[rank]
	}
	return e.q[2]
}
