package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestWelfordMatchesSummarize checks the streaming summary against the
// two-pass reference on random samples, via testing/quick.
func TestWelfordMatchesSummarize(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		got, want := w.Summary(), Summarize(clean)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			return false
		}
		return approxEq(got.Mean, want.Mean, 1e-9) && approxEq(got.Std, want.Std, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if s := w.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	w.Add(3.5)
	s := w.Summary()
	if s.N != 1 || s.Mean != 3.5 || s.Std != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
	if w.Mean() != 3.5 || w.N() != 1 {
		t.Fatalf("accessors wrong: mean %v n %d", w.Mean(), w.N())
	}
}

// TestP2QuantileConverges drives the sketch with samples from several
// distributions and compares against the exact percentile of the retained
// sample: the estimate must land within a few percent of the range.
func TestP2QuantileConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := map[string]func() float64{
		"uniform": func() float64 { return rng.Float64() * 100 },
		"normal":  func() float64 { return rng.NormFloat64()*10 + 50 },
		"exp":     func() float64 { return rng.ExpFloat64() * 20 },
	}
	for name, draw := range dists {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			est := NewP2Quantile(p)
			sample := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := draw()
				est.Add(x)
				sample = append(sample, x)
			}
			sort.Float64s(sample)
			exact := Percentile(sample, p*100)
			span := sample[len(sample)-1] - sample[0]
			if diff := math.Abs(est.Value() - exact); diff > 0.05*span {
				t.Errorf("%s p%g: estimate %.3f vs exact %.3f (span %.3f)", name, p*100, est.Value(), exact, span)
			}
			if est.N() != 20000 {
				t.Errorf("%s: N=%d", name, est.N())
			}
		}
	}
}

// TestP2QuantileSmallSamples pins the nearest-rank fallback below five
// observations.
func TestP2QuantileSmallSamples(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimate %v", est.Value())
	}
	est.Add(9)
	if est.Value() != 9 {
		t.Fatalf("one-sample estimate %v", est.Value())
	}
	est.Add(1)
	est.Add(5)
	// nearest-rank median of {1,5,9} is 5
	if est.Value() != 5 {
		t.Fatalf("three-sample median %v", est.Value())
	}
}

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v: no panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
