// Package pubsub implements topic-based publish/subscribe over RingCast
// overlays, following Section 8 of the paper: "Each topic forms its own,
// separate dissemination overlay. Subscribers join the overlay(s) of the
// topics of their interest. Events are multicast by disseminating them in
// the appropriate dissemination overlay."
//
// A Peer owns one transport and runs an independent protocol node (CYCLON +
// VICINITY + dissemination) per subscribed topic, multiplexed over the
// shared transport by topic tags.
package pubsub

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"ringcast/internal/node"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// Event is a message delivered on a subscribed topic.
type Event struct {
	// Topic names the overlay the event arrived on.
	Topic string
	// Msg is the disseminated message.
	Msg wire.Message
}

// EventFunc consumes delivered events; it must not block for long.
type EventFunc func(Event)

// Peer participates in any number of topic overlays over one transport.
type Peer struct {
	mux *transport.Mux
	cfg node.Config

	mu     sync.Mutex
	topics map[string]*node.Node
	// pending reserves topics with a Subscribe in flight: the node
	// construction, bootstrap joins, and start run outside p.mu (node.Close
	// on the error path waits on the gossip goroutine, and no blocking call
	// may run under a held mutex), so the duplicate-subscribe check needs a
	// reservation that outlives the critical section.
	pending map[string]bool
	closed  bool
}

// NewPeer wraps the base transport. cfg is the template node configuration
// applied to every topic overlay; cfg.ID is ignored (each topic draws an
// independent ring ID, as the paper's multi-ring discussion requires).
func NewPeer(base transport.Transport, cfg node.Config) (*Peer, error) {
	if base == nil {
		return nil, errors.New("pubsub: base transport must not be nil")
	}
	return &Peer{
		mux:     transport.NewMux(base),
		cfg:     cfg,
		topics:  make(map[string]*node.Node),
		pending: make(map[string]bool),
	}, nil
}

// Addr returns the peer's transport address, usable as a bootstrap target
// by other peers.
func (p *Peer) Addr() string { return p.mux.Addr() }

// TransportStats returns the shared base transport's counters — outbound
// queue depth, drops, dial failures, frames/bytes sent — aggregated across
// every topic overlay this peer participates in. It reads the base
// aggregate explicitly (Mux.Base); Mux.Stats is now the per-topic sum and
// would miss base-only state like queue depth and framing overhead.
func (p *Peer) TransportStats() transport.Stats { return p.mux.Base() }

// TopicStats returns the send-side counters attributed to one topic's
// overlay: frames, marshalled bytes and queue-full rejects from this
// topic's sends alone. ok is false if the peer is not subscribed.
func (p *Peer) TopicStats(topic string) (transport.Stats, bool) {
	p.mu.Lock()
	nd := p.topics[topic]
	p.mu.Unlock()
	if nd == nil {
		return transport.Stats{}, false
	}
	return nd.TransportStats(), true
}

// StrayFrames reports frames that arrived for topics this peer is not (or
// no longer) subscribed to. A steadily climbing count after an Unsubscribe
// is normal: the overlay keeps forwarding until gossip ages the peer out.
func (p *Peer) StrayFrames() int64 { return p.mux.StrayFrames() }

// Subscribe joins the topic's overlay, bootstrapping from the given peers
// (addresses of other subscribers; may be empty for the first subscriber),
// and starts gossiping. deliver receives every event published on the topic.
func (p *Peer) Subscribe(topic string, bootstrap []string, deliver EventFunc) error {
	if topic == "" {
		return errors.New("pubsub: empty topic")
	}
	// Reserve the topic, then build the node OUTSIDE p.mu: the error path
	// below calls nd.Close, which waits on the node's gossip goroutine —
	// blocking under a held mutex would stall every concurrent Publish and
	// Unsubscribe (the transitive form of the lockio contract).
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("pubsub: peer closed")
	}
	if p.topics[topic] != nil || p.pending[topic] {
		p.mu.Unlock()
		return fmt.Errorf("pubsub: already subscribed to %q", topic)
	}
	p.pending[topic] = true
	tt, err := p.mux.Topic(topic)
	p.mu.Unlock()
	if err != nil {
		p.unreserve(topic)
		return err
	}
	cfg := p.cfg
	cfg.ID = 0 // per-topic random ring ID
	if cfg.Seed != 0 {
		// Derive an independent deterministic seed per topic, otherwise
		// every topic node would draw the same "random" ring ID.
		h := fnv.New64a()
		h.Write([]byte(topic))
		cfg.Seed ^= int64(h.Sum64())
		if cfg.Seed == 0 {
			cfg.Seed = 1
		}
	}
	var cb node.DeliverFunc
	if deliver != nil {
		topicName := topic
		cb = func(d node.Delivery) {
			deliver(Event{Topic: topicName, Msg: d.Msg})
		}
	}
	nd, err := node.New(cfg, tt, cb)
	if err != nil {
		p.unreserve(topic)
		return err
	}
	for _, addr := range bootstrap {
		if addr == p.Addr() {
			continue
		}
		// Best effort: unreachable bootstrap peers are skipped; gossip will
		// find the overlay through any one that answers.
		_ = nd.Join(addr)
	}
	if err := startNode(nd); err != nil {
		p.unreserve(topic)
		nd.Close()
		return err
	}

	p.mu.Lock()
	if p.closed {
		// Close ran while the node was being built; it never saw this node,
		// so shut it down here — after releasing p.mu.
		delete(p.pending, topic)
		p.mu.Unlock()
		nd.Close()
		return errors.New("pubsub: peer closed")
	}
	p.topics[topic] = nd
	delete(p.pending, topic)
	p.mu.Unlock()
	return nil
}

// startNode launches a topic node's gossip loop. It is a test seam: a live
// node's Start only fails after Close, so the Subscribe error path it guards
// (unreserve + node.Close OUTSIDE p.mu — the PR 8 deadlock fix) would
// otherwise be unreachable from a regression test.
var startNode = func(nd *node.Node) error { return nd.Start() }

// unreserve releases a Subscribe reservation on the error path.
func (p *Peer) unreserve(topic string) {
	p.mu.Lock()
	delete(p.pending, topic)
	p.mu.Unlock()
}

// Unsubscribe leaves a topic overlay.
func (p *Peer) Unsubscribe(topic string) error {
	p.mu.Lock()
	nd, ok := p.topics[topic]
	delete(p.topics, topic)
	if ok {
		// Detach the route while still holding p.mu: a concurrent Subscribe
		// to the same topic must get a fresh topicTransport from the mux,
		// not the dying one (which nd.Close is about to mark closed).
		p.mux.CloseTopic(topic)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("pubsub: not subscribed to %q", topic)
	}
	return nd.Close()
}

// Publish disseminates an event on a subscribed topic.
func (p *Peer) Publish(topic string, body []byte) (wire.MsgID, error) {
	p.mu.Lock()
	nd, ok := p.topics[topic]
	p.mu.Unlock()
	if !ok {
		return wire.MsgID{}, fmt.Errorf("pubsub: not subscribed to %q", topic)
	}
	return nd.Publish(body)
}

// Topics returns the subscribed topic names, sorted.
func (p *Peer) Topics() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.topics))
	for t := range p.topics {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Node exposes the protocol node behind one topic, for diagnostics.
func (p *Peer) Node(topic string) (*node.Node, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	nd, ok := p.topics[topic]
	return nd, ok
}

// GossipNow forces one synchronous gossip cycle on every subscribed topic —
// handy in tests and joiner warm-up.
func (p *Peer) GossipNow() {
	p.mu.Lock()
	nodes := p.nodesLocked()
	p.mu.Unlock()
	for _, nd := range nodes {
		nd.GossipNow()
	}
}

// nodesLocked snapshots the per-topic nodes in sorted topic order, so
// multi-topic operations (warm-up gossip, shutdown, error reporting) run in
// a deterministic order rather than map order. Callers hold p.mu.
func (p *Peer) nodesLocked() []*node.Node {
	topics := make([]string, 0, len(p.topics))
	for t := range p.topics {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	nodes := make([]*node.Node, 0, len(topics))
	for _, t := range topics {
		nodes = append(nodes, p.topics[t])
	}
	return nodes
}

// Close leaves all topics and closes the underlying transport.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	nodes := p.nodesLocked()
	p.topics = make(map[string]*node.Node)
	p.mu.Unlock()
	var firstErr error
	for _, nd := range nodes {
		if err := nd.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := p.mux.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
