package pubsub

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringcast/internal/cyclon"
	"ringcast/internal/node"
	"ringcast/internal/transport"
	"ringcast/internal/vicinity"
	"ringcast/internal/wire"
)

func peerConfig(i int) node.Config {
	return node.Config{
		Fanout:         3,
		Cyclon:         cyclon.Config{ViewSize: 6, ShuffleLen: 3},
		Vicinity:       vicinity.Config{ViewSize: 6, GossipLen: 6, Balanced: true, MaxAge: 20},
		GossipInterval: time.Hour, // tests drive GossipNow
		DedupCapacity:  128,
		Seed:           int64(i + 1),
	}
}

type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) count(topic string, mid wire.MsgID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Topic == topic && e.Msg.ID == mid {
			n++
		}
	}
	return n
}

// buildPeers creates n peers; peers with index in subs[topic] subscribe to
// that topic, bootstrapping via the first subscriber.
func buildPeers(t *testing.T, n int, subs map[string][]int) ([]*Peer, []*eventLog) {
	t.Helper()
	net := transport.NewInMemNetwork()
	peers := make([]*Peer, n)
	logs := make([]*eventLog, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("p%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(ep, peerConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		logs[i] = &eventLog{}
	}
	for topic, members := range subs {
		var bootstrap []string
		for _, i := range members {
			lg := logs[i]
			if err := peers[i].Subscribe(topic, bootstrap, lg.add); err != nil {
				t.Fatal(err)
			}
			bootstrap = append(bootstrap, peers[i].Addr())
		}
	}
	// Warm the overlays.
	for cycle := 0; cycle < 50; cycle++ {
		for _, p := range peers {
			p.GossipNow()
		}
		time.Sleep(3 * time.Millisecond)
	}
	return peers, logs
}

func waitCount(t *testing.T, want int, count func() int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for count() < want {
		select {
		case <-deadline:
			t.Fatalf("got %d, want %d", count(), want)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTopicIsolation(t *testing.T) {
	subs := map[string][]int{
		"news":  {0, 1, 2, 3, 4, 5},
		"sport": {4, 5, 6, 7},
	}
	peers, logs := buildPeers(t, 8, subs)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	mid, err := peers[0].Publish("news", []byte("headline"))
	if err != nil {
		t.Fatal(err)
	}
	// All 6 news subscribers (including the publisher) get it.
	total := func() int {
		n := 0
		for _, i := range subs["news"] {
			if logs[i].count("news", mid) > 0 {
				n++
			}
		}
		return n
	}
	waitCount(t, 6, total)
	time.Sleep(30 * time.Millisecond)
	// Non-subscribers never see it.
	for _, i := range []int{6, 7} {
		if logs[i].count("news", mid) != 0 {
			t.Fatalf("peer %d (not subscribed) received news event", i)
		}
	}
}

func TestOverlappingSubscriptions(t *testing.T) {
	subs := map[string][]int{
		"a": {0, 1, 2, 3},
		"b": {0, 1, 2, 3},
	}
	peers, logs := buildPeers(t, 4, subs)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	midA, _ := peers[1].Publish("a", []byte("on a"))
	midB, _ := peers[2].Publish("b", []byte("on b"))
	for i := range peers {
		i := i
		waitCount(t, 1, func() int { return logs[i].count("a", midA) })
		waitCount(t, 1, func() int { return logs[i].count("b", midB) })
	}
	// Events are tagged with the right topic only.
	for i := range peers {
		if logs[i].count("b", midA) != 0 || logs[i].count("a", midB) != 0 {
			t.Fatal("event crossed topics")
		}
	}
}

func TestPublishRequiresSubscription(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("solo")
	p, err := NewPeer(ep, peerConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Publish("ghost", []byte("x")); err == nil {
		t.Fatal("publish to unsubscribed topic succeeded")
	}
}

func TestSubscribeValidation(t *testing.T) {
	net := transport.NewInMemNetwork()
	ep, _ := net.Endpoint("solo")
	p, _ := NewPeer(ep, peerConfig(0))
	defer p.Close()
	if err := p.Subscribe("", nil, nil); err == nil {
		t.Fatal("empty topic accepted")
	}
	if err := p.Subscribe("x", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Subscribe("x", nil, nil); err == nil {
		t.Fatal("double subscription accepted")
	}
	if _, err := NewPeer(nil, peerConfig(0)); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	subs := map[string][]int{"t": {0, 1, 2}}
	peers, logs := buildPeers(t, 3, subs)
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	if err := peers[2].Unsubscribe("t"); err != nil {
		t.Fatal(err)
	}
	if err := peers[2].Unsubscribe("t"); err == nil {
		t.Fatal("double unsubscribe accepted")
	}
	// Let the remaining overlay heal around the departed subscriber.
	for cycle := 0; cycle < 30; cycle++ {
		peers[0].GossipNow()
		peers[1].GossipNow()
		time.Sleep(3 * time.Millisecond)
	}
	mid, err := peers[0].Publish("t", []byte("post-leave"))
	if err != nil {
		t.Fatal(err)
	}
	waitCount(t, 1, func() int { return logs[1].count("t", mid) })
	time.Sleep(30 * time.Millisecond)
	if logs[2].count("t", mid) != 0 {
		t.Fatal("unsubscribed peer still received events")
	}
}

func TestTopicsAndNodeAccessors(t *testing.T) {
	subs := map[string][]int{"a": {0}, "b": {0}}
	peers, _ := buildPeers(t, 1, subs)
	defer peers[0].Close()
	topics := peers[0].Topics()
	if len(topics) != 2 {
		t.Fatalf("topics = %v", topics)
	}
	if _, ok := peers[0].Node("a"); !ok {
		t.Fatal("node accessor failed")
	}
	if _, ok := peers[0].Node("zzz"); ok {
		t.Fatal("node accessor returned unsubscribed topic")
	}
}

func TestPerTopicRingIDsDiffer(t *testing.T) {
	subs := map[string][]int{"a": {0}, "b": {0}}
	peers, _ := buildPeers(t, 1, subs)
	defer peers[0].Close()
	na, _ := peers[0].Node("a")
	nb, _ := peers[0].Node("b")
	if na.ID() == nb.ID() {
		t.Fatal("topic overlays share a ring ID; they must be independent")
	}
}

func TestCloseIdempotent(t *testing.T) {
	subs := map[string][]int{"t": {0, 1}}
	peers, _ := buildPeers(t, 2, subs)
	if err := peers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := peers[0].Subscribe("u", nil, nil); err == nil {
		t.Fatal("subscribe after close accepted")
	}
	peers[1].Close()
}

// TestConcurrentSubscribeUnsubscribePublish hammers one fabric with
// concurrent Subscribe/Unsubscribe/Publish/GossipNow across topics while
// every peer's own gossip timer runs — the -race shard's coverage for the
// pub/sub runtime. Errors like "not subscribed" are expected interleavings;
// panics, deadlocks and data races are what the test exists to catch.
func TestConcurrentSubscribeUnsubscribePublish(t *testing.T) {
	net := transport.NewInMemNetwork()
	const nPeers = 4
	topics := []string{"alpha", "beta", "gamma"}
	peers := make([]*Peer, nPeers)
	var delivered atomic.Int64
	for i := 0; i < nPeers; i++ {
		ep, err := net.Endpoint(fmt.Sprintf("c%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := peerConfig(i)
		cfg.GossipInterval = 2 * time.Millisecond // real timers add interleavings
		p, err := NewPeer(ep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	bootstrap := make([]string, nPeers)
	for i, p := range peers {
		bootstrap[i] = p.Addr()
	}
	deliver := func(Event) { delivered.Add(1) }

	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i + 77)))
			for iter := 0; iter < 150; iter++ {
				topic := topics[rng.Intn(len(topics))]
				switch rng.Intn(4) {
				case 0:
					_ = p.Subscribe(topic, bootstrap, deliver)
				case 1:
					_ = p.Unsubscribe(topic)
				case 2:
					_, _ = p.Publish(topic, []byte("storm"))
				case 3:
					p.GossipNow()
				}
			}
		}(i, p)
	}
	wg.Wait()
	// The fabric must still be fully functional after the storm.
	for _, p := range peers {
		_ = p.Unsubscribe("alpha") // make state deterministic: nobody on alpha
	}
	lg := &eventLog{}
	if err := peers[0].Subscribe("alpha", bootstrap, lg.add); err != nil {
		t.Fatal(err)
	}
	mid, err := peers[0].Publish("alpha", []byte("still alive"))
	if err != nil {
		t.Fatal(err)
	}
	waitCount(t, 1, func() int { return lg.count("alpha", mid) })
	for _, p := range peers {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnsubscribedTopicFramesBecomeStrays pins down what happens to frames
// that arrive for a just-unsubscribed topic: the mux drops them and counts
// them as strays — they must not reach a handler or resubscribe the peer.
func TestUnsubscribedTopicFramesBecomeStrays(t *testing.T) {
	net := transport.NewInMemNetwork()
	eps := make([]*Peer, 2)
	for i := range eps {
		ep, err := net.Endpoint(fmt.Sprintf("s%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPeer(ep, peerConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		eps[i] = p
	}
	lg0, lg1 := &eventLog{}, &eventLog{}
	if err := eps[0].Subscribe("zeta", nil, lg0.add); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Subscribe("zeta", []string{eps[0].Addr()}, lg1.add); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 20; cycle++ {
		eps[0].GossipNow()
		eps[1].GossipNow()
		time.Sleep(2 * time.Millisecond)
	}
	if err := eps[0].Unsubscribe("zeta"); err != nil {
		t.Fatal(err)
	}
	// Peer 1 still has peer 0 in its topic views and keeps forwarding to it;
	// those frames must land in peer 0's stray counter, not a handler.
	deadline := time.Now().Add(5 * time.Second)
	for eps[0].StrayFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no stray frames counted after unsubscribe")
		}
		if _, err := eps[1].Publish("zeta", []byte("late")); err != nil {
			t.Fatal(err)
		}
		eps[1].GossipNow()
		time.Sleep(5 * time.Millisecond)
	}
	lg0.mu.Lock()
	n := len(lg0.events)
	lg0.mu.Unlock()
	if n != 0 {
		t.Fatalf("unsubscribed peer delivered %d events", n)
	}
}
