package pubsub

// Regression test for the PR 8 Subscribe fix: the Start-error path used to
// call node.Close (which blocks in WaitGroup.Wait) while holding p.mu, so a
// storm of failing Subscribes could stall every concurrent Publish,
// Unsubscribe and Topics call behind a held mutex. The fix runs all node
// lifecycle outside p.mu behind a pending-topic reservation; this test
// drives the exact path through the startNode seam and asserts (a) the
// peer stays responsive while Starts are parked, (b) every failing
// Subscribe returns its error, and (c) the pending reservation is released
// so the topic can be subscribed again.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ringcast/internal/node"
	"ringcast/internal/transport"
)

func TestSubscribeStormStartFailure(t *testing.T) {
	const stormSize = 8

	fabric := transport.NewInMemNetwork()
	ep, err := fabric.Endpoint("storm-peer")
	if err != nil {
		t.Fatal(err)
	}
	cfg := node.DefaultConfig()
	cfg.GossipInterval = 5 * time.Millisecond
	cfg.Seed = 42
	p, err := NewPeer(ep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A healthy baseline topic subscribed BEFORE the seam is rigged: the
	// liveness probes below publish on it while the storm is parked.
	if err := p.Subscribe("base", nil, nil); err != nil {
		t.Fatal(err)
	}

	// Rig the seam: every Start parks until the gate closes, then fails.
	// The real Start is restored (and the node actually started) afterwards
	// so the reservation-release check exercises the true success path.
	realStart := startNode
	defer func() { startNode = realStart }()
	gate := make(chan struct{})
	inStart := make(chan struct{}, stormSize)
	errStart := errors.New("rigged start failure")
	startNode = func(nd *node.Node) error {
		inStart <- struct{}{}
		<-gate
		return errStart
	}

	var wg sync.WaitGroup
	stormErrs := make([]error, stormSize)
	for i := 0; i < stormSize; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stormErrs[i] = p.Subscribe(fmt.Sprintf("storm-%d", i), nil, nil)
		}(i)
	}

	// Wait until every storm Subscribe is parked inside its Start.
	for i := 0; i < stormSize; i++ {
		select {
		case <-inStart:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d Subscribes reached Start", i, stormSize)
		}
	}

	// Liveness: with every storm Start parked, p.mu must be free — Publish,
	// Topics and a duplicate-subscribe rejection all complete promptly.
	// Under the pre-fix code these would park behind the held mutex.
	probeDone := make(chan error, 1)
	go func() {
		if _, err := p.Publish("base", []byte("probe")); err != nil {
			probeDone <- err
			return
		}
		p.Topics()
		// The duplicate check must see the pending reservation and refuse
		// without waiting for the parked Start.
		probeDone <- p.Subscribe("storm-0", nil, nil)
	}()
	select {
	case err := <-probeDone:
		if err == nil {
			t.Error("duplicate Subscribe of a pending topic succeeded; want reservation rejection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer wedged while Subscribes were parked in Start: p.mu held across node lifecycle")
	}

	// Release the storm: every Subscribe must surface the rigged error.
	close(gate)
	wg.Wait()
	for i, err := range stormErrs {
		if !errors.Is(err, errStart) {
			t.Errorf("storm Subscribe %d returned %v, want rigged start failure", i, err)
		}
	}

	// The pending reservations must all be released...
	p.mu.Lock()
	pending := len(p.pending)
	subscribed := len(p.topics)
	p.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d pending reservations leaked after failed Starts", pending)
	}
	if subscribed != 1 {
		t.Errorf("%d topics subscribed, want only the baseline", subscribed)
	}

	// ...so the same topics are subscribable again once Start works.
	startNode = realStart
	for i := 0; i < stormSize; i++ {
		if err := p.Subscribe(fmt.Sprintf("storm-%d", i), nil, nil); err != nil {
			t.Errorf("re-Subscribe storm-%d after released reservation: %v", i, err)
		}
	}
}
