package sim

import (
	"sort"
	"testing"

	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/vicinity"
)

func smallConfig(n int, seed int64) Config {
	return Config{
		N:           n,
		Cyclon:      cyclon.Config{ViewSize: 8, ShuffleLen: 4},
		Vicinity:    vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		UseVicinity: true,
		Seed:        seed,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Fatal("accepted N < 2")
	}
}

func TestNewStarBootstrap(t *testing.T) {
	nw := MustNew(smallConfig(10, 1))
	contact := nw.Nodes()[0].ID
	for _, nd := range nw.Nodes()[1:] {
		ids := nd.Cyc.View().IDs()
		if len(ids) != 1 || ids[0] != contact {
			t.Fatalf("node %v bootstrap view = %v, want [%v]", nd.ID, ids, contact)
		}
	}
	if nw.AliveCount() != 10 {
		t.Fatalf("alive = %d, want 10", nw.AliveCount())
	}
}

func TestCyclonViewsFillUp(t *testing.T) {
	nw := MustNew(smallConfig(100, 2))
	nw.RunCycles(30)
	for _, nd := range nw.Nodes() {
		if got := nd.Cyc.View().Len(); got < 4 {
			t.Fatalf("node view only %d entries after 30 cycles", got)
		}
	}
}

func TestRingConverges(t *testing.T) {
	nw := MustNew(smallConfig(200, 3))
	cycles, conv := nw.WarmUp(100, 400)
	if conv != 1.0 {
		t.Fatalf("ring convergence = %.4f after %d cycles, want 1.0", conv, cycles)
	}
}

func TestRingConvergenceDefinition(t *testing.T) {
	nw := MustNew(smallConfig(50, 4))
	nw.WarmUp(100, 400)
	// Cross-check RingConvergence against a direct sorted-ID walk.
	ids := nw.AliveIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		nd, _ := nw.NodeByID(id)
		pred, succ, ok := nd.Vic.RingNeighbors()
		if !ok {
			t.Fatalf("node %v has no ring neighbours", id)
		}
		wantSucc := ids[(i+1)%len(ids)]
		wantPred := ids[(i-1+len(ids))%len(ids)]
		if succ.Node != wantSucc || pred.Node != wantPred {
			t.Fatalf("node %v: pred/succ = %v/%v, want %v/%v",
				id, pred.Node, succ.Node, wantPred, wantSucc)
		}
	}
}

func TestKillAndCounts(t *testing.T) {
	nw := MustNew(smallConfig(20, 5))
	id := nw.Nodes()[3].ID
	if !nw.Kill(id) {
		t.Fatal("Kill returned false for live node")
	}
	if nw.Kill(id) {
		t.Fatal("double kill returned true")
	}
	if nw.AliveCount() != 19 {
		t.Fatalf("alive = %d, want 19", nw.AliveCount())
	}
	if len(nw.AliveIDs()) != 19 {
		t.Fatal("AliveIDs inconsistent")
	}
	if nw.Kill(ident.ID(0xdeadbeef)) {
		t.Fatal("kill of unknown ID returned true")
	}
}

func TestKillFraction(t *testing.T) {
	nw := MustNew(smallConfig(100, 6))
	killed := nw.KillFraction(0.1)
	if len(killed) != 10 {
		t.Fatalf("killed %d, want 10", len(killed))
	}
	if nw.AliveCount() != 90 {
		t.Fatalf("alive = %d, want 90", nw.AliveCount())
	}
	if nw.KillFraction(0) != nil {
		t.Fatal("KillFraction(0) should kill nobody")
	}
}

func TestGossipSurvivesDeadPeers(t *testing.T) {
	nw := MustNew(smallConfig(100, 7))
	nw.RunCycles(20)
	nw.KillFraction(0.3)
	// Must not panic or hang; live nodes keep gossiping around dead links.
	nw.RunCycles(20)
	for _, nd := range nw.Nodes() {
		if !nd.Alive {
			continue
		}
		if nd.Cyc.View().Len() == 0 {
			t.Fatal("live node lost its entire view")
		}
	}
}

func TestSelfHealingAfterFailure(t *testing.T) {
	// With gossip allowed to continue, dead links wash out of CYCLON views.
	nw := MustNew(smallConfig(150, 8))
	nw.WarmUp(100, 400)
	killedList := nw.KillFraction(0.2)
	killed := make(map[ident.ID]bool, len(killedList))
	for _, id := range killedList {
		killed[id] = true
	}
	nw.RunCycles(60)
	stale := 0
	total := 0
	for _, nd := range nw.Nodes() {
		if !nd.Alive {
			continue
		}
		for _, id := range nd.Cyc.View().IDs() {
			total++
			if killed[id] {
				stale++
			}
		}
	}
	if frac := float64(stale) / float64(total); frac > 0.05 {
		t.Fatalf("stale link fraction = %.3f after healing, want <= 0.05", frac)
	}
}

func TestJoin(t *testing.T) {
	nw := MustNew(smallConfig(30, 9))
	nw.RunCycles(10)
	nd, err := nw.Join()
	if err != nil {
		t.Fatal(err)
	}
	if nd.JoinCycle != 10 {
		t.Fatalf("JoinCycle = %d, want 10", nd.JoinCycle)
	}
	if nd.Cyc.View().Len() != 1 {
		t.Fatal("joining node should know exactly one contact")
	}
	if nw.AliveCount() != 31 {
		t.Fatalf("alive = %d, want 31", nw.AliveCount())
	}
	// After some cycles the new node integrates.
	nw.RunCycles(20)
	if nd.Cyc.View().Len() < 4 {
		t.Fatalf("new node view = %d entries, want >= 4", nd.Cyc.View().Len())
	}
}

func TestDeterminism(t *testing.T) {
	a := MustNew(smallConfig(60, 42))
	b := MustNew(smallConfig(60, 42))
	a.RunCycles(30)
	b.RunCycles(30)
	na, nb := a.Nodes(), b.Nodes()
	for i := range na {
		if na[i].ID != nb[i].ID {
			t.Fatal("node IDs diverged under identical seeds")
		}
		va, vb := na[i].Cyc.View().IDs(), nb[i].Cyc.View().IDs()
		if len(va) != len(vb) {
			t.Fatal("views diverged under identical seeds")
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatal("view contents diverged under identical seeds")
			}
		}
	}
}

func TestRandCastOnlyNetwork(t *testing.T) {
	cfg := smallConfig(50, 10)
	cfg.UseVicinity = false
	nw := MustNew(cfg)
	nw.RunCycles(30)
	if nw.RingConvergence() != 0 {
		t.Fatal("vicinity-less network reported ring convergence")
	}
	for _, nd := range nw.Nodes() {
		if nd.Vic != nil {
			t.Fatal("vicinity instance created despite UseVicinity=false")
		}
	}
}

// CYCLON conserves total pointers: sum of view sizes stays constant once
// views are full (a known CYCLON invariant: shuffles swap, never create).
func TestCyclonLinkConservation(t *testing.T) {
	nw := MustNew(smallConfig(80, 11))
	nw.RunCycles(50)
	total1 := 0
	for _, nd := range nw.Nodes() {
		total1 += nd.Cyc.View().Len()
	}
	nw.RunCycles(10)
	total2 := 0
	for _, nd := range nw.Nodes() {
		total2 += nd.Cyc.View().Len()
	}
	if total2 < total1 {
		t.Fatalf("total links shrank from %d to %d in a stable network", total1, total2)
	}
}

func TestRandomAliveOnEmpty(t *testing.T) {
	nw := MustNew(smallConfig(2, 12))
	nw.Kill(nw.Nodes()[0].ID)
	nw.Kill(nw.Nodes()[1].ID)
	if _, ok := nw.RandomAlive(); ok {
		t.Fatal("RandomAlive on empty network returned ok")
	}
	if _, err := nw.Join(); err == nil {
		t.Fatal("Join on empty network succeeded")
	}
}

func TestMultiRingNetwork(t *testing.T) {
	cfg := smallConfig(120, 21)
	cfg.Rings = 3
	nw := MustNew(cfg)
	// Per-ring IDs assigned and indexed.
	for _, nd := range nw.Nodes() {
		if len(nd.RingIDs) != 3 || len(nd.ExtraVics) != 2 {
			t.Fatalf("node has %d ring IDs, %d extra vics", len(nd.RingIDs), len(nd.ExtraVics))
		}
		if nd.RingIDs[0] != nd.ID {
			t.Fatal("RingIDs[0] must equal the primary ID")
		}
		for r := 1; r < 3; r++ {
			got, ok := nw.ResolveRingID(r, nd.RingIDs[r])
			if !ok || got != nd.ID {
				t.Fatalf("ring %d ID %v resolves to %v ok=%v", r, nd.RingIDs[r], got, ok)
			}
		}
	}
	nw.WarmUp(100, 500)
	// Every extra ring converges just like ring 0: check by walking ring 1.
	for r := 1; r < 3; r++ {
		ids := make([]ident.ID, 0, nw.AliveCount())
		for _, nd := range nw.Nodes() {
			if nd.Alive {
				ids = append(ids, nd.RingIDs[r])
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		pos := make(map[ident.ID]int, len(ids))
		for i, id := range ids {
			pos[id] = i
		}
		bad := 0
		for _, nd := range nw.Nodes() {
			pred, succ, ok := nd.ExtraVics[r-1].RingNeighbors()
			if !ok {
				bad++
				continue
			}
			i := pos[nd.RingIDs[r]]
			if succ.Node != ids[(i+1)%len(ids)] || pred.Node != ids[(i-1+len(ids))%len(ids)] {
				bad++
			}
		}
		if bad != 0 {
			t.Fatalf("ring %d: %d nodes unconverged", r, bad)
		}
	}
}

func TestResolveRingIDUnknown(t *testing.T) {
	cfg := smallConfig(10, 22)
	cfg.Rings = 2
	nw := MustNew(cfg)
	if _, ok := nw.ResolveRingID(1, ident.ID(0x1234)); ok {
		t.Fatal("resolved an unknown ring ID")
	}
	if _, ok := nw.ResolveRingID(5, nw.Nodes()[0].ID); ok {
		t.Fatal("resolved an out-of-range ring")
	}
	if got, ok := nw.ResolveRingID(0, nw.Nodes()[3].ID); !ok || got != nw.Nodes()[3].ID {
		t.Fatal("ring 0 resolution broken")
	}
}

// TestRandomAliveAtHeavyMortality exercises the live-index sampling path
// after a 99% catastrophe: every draw must land on a live node with exactly
// one rng draw (the old rejection sampling made O(total/alive) ~ 100
// expected probes per call at this mortality), and sampling must still cover
// the whole survivor set uniformly.
func TestRandomAliveAtHeavyMortality(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Seed = 3
	nw := MustNew(cfg)
	nw.KillFraction(0.99)
	if nw.AliveCount() != 10 {
		t.Fatalf("alive = %d, want 10", nw.AliveCount())
	}
	seen := make(map[ident.ID]int)
	for i := 0; i < 5000; i++ {
		nd, ok := nw.RandomAlive()
		if !ok {
			t.Fatal("RandomAlive failed with 10 live nodes")
		}
		if !nd.Alive {
			t.Fatalf("RandomAlive returned dead node %v", nd.ID)
		}
		seen[nd.ID]++
	}
	if len(seen) != 10 {
		t.Fatalf("sampled %d distinct survivors, want all 10", len(seen))
	}
	// Uniformity sanity check: each survivor expects 500 draws; all should
	// land well within [250, 750].
	for id, n := range seen {
		if n < 250 || n > 750 {
			t.Errorf("survivor %v drawn %d times, want ~500", id, n)
		}
	}
}

// TestRandomAliveAfterChurn verifies the live-index set stays consistent
// through interleaved kills and joins.
func TestRandomAliveAfterChurn(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.Seed = 9
	nw := MustNew(cfg)
	for round := 0; round < 30; round++ {
		nw.KillRandom(3)
		for i := 0; i < 2; i++ {
			if _, err := nw.Join(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			nd, ok := nw.RandomAlive()
			if !ok || !nd.Alive {
				t.Fatalf("round %d: RandomAlive returned dead/none", round)
			}
		}
	}
	// The bookkeeping must agree with a full scan.
	live := 0
	for _, nd := range nw.Nodes() {
		if nd.Alive {
			live++
		}
	}
	if live != nw.AliveCount() {
		t.Fatalf("AliveCount = %d, scan = %d", nw.AliveCount(), live)
	}
}
