// Package sim is the cycle-driven network simulator used for all of the
// paper's experiments — the functional equivalent of PeerSim (paper,
// Section 7) reimplemented in Go.
//
// A Network holds N nodes, each running a CYCLON instance and, when
// configured for RINGCAST, a VICINITY instance. In every cycle each live
// node, in random order, initiates one exchange per protocol — the
// simulator's synchronous stand-in for the independent periodic timers of a
// deployment, exactly as in cycle-driven PeerSim.
//
// The experimental methodology follows the paper precisely: nodes start in a
// star topology (every CYCLON view holds one given contact; VICINITY views
// empty), the network self-organizes for a warm-up period, the overlay is
// then frozen, and messages are disseminated over the frozen overlay
// (Section 7.1 explains why freezing does not affect macroscopic behaviour).
//
//ringcast:deterministic
package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/vicinity"
	"ringcast/internal/view"
)

// maxGossipAttempts bounds how many alternative partners a node tries per
// cycle when selected peers turn out to be dead.
const maxGossipAttempts = 3

// Config parameterizes a simulated network.
type Config struct {
	// N is the initial node population (10,000 in the paper).
	N int
	// Cyclon holds the peer-sampling parameters (view length 20 in the paper).
	Cyclon cyclon.Config
	// Vicinity holds the topology-construction parameters (view length 20).
	Vicinity vicinity.Config
	// UseVicinity enables the VICINITY layer (required for RINGCAST's
	// d-links; RANDCAST-only experiments can disable it).
	UseVicinity bool
	// DisableVicinityFeed cuts the CYCLON-view candidate feed into VICINITY
	// merges — an ablation of the two-layered design (paper, Section 6).
	// Without the feed, VICINITY only learns via its own exchanges and ring
	// convergence slows dramatically.
	DisableVicinityFeed bool
	// Rings is the number of independent rings maintained (Section 8
	// extension: "organize nodes in multiple rings, assigning them a
	// different random ID per ring"). 0 and 1 both mean a single ring.
	// Each extra ring runs its own VICINITY instance over a fresh random
	// ID per node, multiplying gossip traffic accordingly.
	Rings int
	// Seed makes the whole simulation deterministic.
	Seed int64
	// NodeIDs optionally preassigns ring IDs to the initial population
	// (length must equal N). Used for the domain-proximity extension of
	// Section 8, where IDs encode reversed domain names. Nodes joining
	// later always draw random IDs.
	NodeIDs []ident.ID
}

// DefaultConfig returns the paper's experimental setup for a given
// population size.
func DefaultConfig(n int) Config {
	return Config{
		N:           n,
		Cyclon:      cyclon.DefaultConfig(),
		Vicinity:    vicinity.DefaultConfig(),
		UseVicinity: true,
		Seed:        1,
	}
}

func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("sim: N must be >= 2, got %d", c.N)
	}
	if c.NodeIDs != nil {
		if len(c.NodeIDs) != c.N {
			return fmt.Errorf("sim: %d preassigned IDs for N=%d", len(c.NodeIDs), c.N)
		}
		seen := make(map[ident.ID]struct{}, len(c.NodeIDs))
		for _, id := range c.NodeIDs {
			if id.IsNil() {
				return fmt.Errorf("sim: preassigned ID must not be nil")
			}
			if _, dup := seen[id]; dup {
				return fmt.Errorf("sim: duplicate preassigned ID %v", id)
			}
			seen[id] = struct{}{}
		}
	}
	return nil
}

// Node is one simulated participant.
type Node struct {
	// ID is the node's ring sequence ID (ring 0).
	ID ident.ID
	// Cyc is the node's CYCLON instance (always present).
	Cyc *cyclon.Cyclon
	// Vic is the node's VICINITY instance for ring 0; nil when disabled.
	Vic *vicinity.Vicinity
	// RingIDs are the node's per-ring identifiers; RingIDs[0] == ID. Only
	// populated when the network maintains multiple rings.
	RingIDs []ident.ID
	// ExtraVics are the VICINITY instances for rings 1..k-1, each organized
	// by the corresponding RingIDs entry.
	ExtraVics []*vicinity.Vicinity
	// Alive is false once the node has been killed or churned out.
	Alive bool
	// JoinCycle records when the node entered the network (0 for initial
	// population); lifetimes in the churn experiments derive from it.
	JoinCycle int
	// liveSlot is the node's position in the network's live-index set, -1
	// once dead. Maintained by addNodeWithID and Kill.
	liveSlot int
}

// Network is a simulated population of gossiping nodes.
type Network struct {
	cfg   Config
	rng   *rand.Rand
	gen   *ident.Generator
	nodes []*Node
	index map[ident.ID]int
	// ringIndex maps per-ring IDs back to node positions, one map per
	// extra ring (rings 1..k-1); ring 0 uses index.
	ringIndex []map[ident.ID]int
	// livePos lists the positions of all live nodes (order arbitrary), so
	// RandomAlive is one uniform draw instead of rejection sampling over the
	// whole population — O(1) even when nearly everyone is dead.
	livePos []int32
	alive   int
	cycle   int

	// Scratch buffers reused across cycles; Cycle is single-threaded per
	// Network, and none of these escape a single exchange step.
	liveScratch  []*Node
	feedScratch  []view.Entry // stable copy of the initiator's CYCLON view
	sentScratch  []view.Entry // initiator's VICINITY payload
	replyScratch []view.Entry // partner's VICINITY payload
	xfeedScratch []view.Entry // ring-r translation of the initiator's feed
	xpeerScratch []view.Entry // ring-r translation of the partner's feed
}

// New builds a network in the paper's initial state: a star topology in
// which every node's CYCLON view holds a single given contact (the first
// node), and VICINITY views are empty.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := newEmpty(cfg)
	for i := 0; i < cfg.N; i++ {
		if cfg.NodeIDs != nil {
			n.addNodeWithID(cfg.NodeIDs[i])
		} else {
			n.addNode()
		}
	}
	contact := n.nodes[0]
	for _, nd := range n.nodes[1:] {
		nd.Cyc.AddContact(contact.ID, "")
	}
	return n, nil
}

// MustNew is New for statically valid configuration.
func MustNew(cfg Config) *Network {
	nw, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return nw
}

func (n *Network) addNode() *Node {
	id := n.gen.Next()
	for _, dup := n.index[id]; dup; _, dup = n.index[id] {
		id = n.gen.Next() // avoid colliding with preassigned IDs
	}
	return n.addNodeWithID(id)
}

func (n *Network) addNodeWithID(id ident.ID) *Node {
	nd := &Node{
		ID:        id,
		Cyc:       cyclon.MustNew(id, "", n.cfg.Cyclon),
		Alive:     true,
		JoinCycle: n.cycle,
		liveSlot:  len(n.livePos),
	}
	if n.cfg.UseVicinity {
		nd.Vic = vicinity.MustNew(id, "", n.cfg.Vicinity, vicinity.RingDistance)
	}
	pos := len(n.nodes)
	if n.cfg.Rings > 1 && n.cfg.UseVicinity {
		nd.RingIDs = make([]ident.ID, n.cfg.Rings)
		nd.RingIDs[0] = id
		nd.ExtraVics = make([]*vicinity.Vicinity, 0, n.cfg.Rings-1)
		for r := 1; r < n.cfg.Rings; r++ {
			rid := n.gen.Next()
			for _, dup := n.ringIndex[r-1][rid]; dup; _, dup = n.ringIndex[r-1][rid] {
				rid = n.gen.Next()
			}
			nd.RingIDs[r] = rid
			nd.ExtraVics = append(nd.ExtraVics,
				vicinity.MustNew(rid, "", n.cfg.Vicinity, vicinity.RingDistance))
			n.ringIndex[r-1][rid] = pos
		}
	}
	n.index[id] = pos
	n.nodes = append(n.nodes, nd)
	n.livePos = append(n.livePos, int32(pos))
	n.alive++
	return nd
}

// Cycle advances the simulation by one gossip cycle: every live node, in
// random order, initiates one CYCLON shuffle and (when enabled) one VICINITY
// exchange. Exchanges with dead peers fail, causing the initiator to drop
// the stale link and retry with another partner, as a live implementation
// would on a connection error.
func (n *Network) Cycle() {
	live := n.liveScratch[:0]
	for _, nd := range n.nodes {
		if nd.Alive {
			live = append(live, nd)
		}
	}
	n.liveScratch = live
	n.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for _, nd := range live {
		if !nd.Alive {
			continue
		}
		n.cyclonStep(nd)
		if nd.Vic != nil {
			n.vicinityStep(nd)
		}
		for r, vic := range nd.ExtraVics {
			n.extraVicinityStep(nd, r+1, vic)
		}
	}
	n.cycle++
}

// RunCycles advances the simulation by k cycles.
func (n *Network) RunCycles(k int) {
	for i := 0; i < k; i++ {
		n.Cycle()
	}
}

func (n *Network) cyclonStep(nd *Node) {
	sh, ok := nd.Cyc.StartShuffle(n.rng)
	for attempt := 0; ok && attempt < maxGossipAttempts; attempt++ {
		peer := n.byID(sh.Peer.Node)
		if peer != nil && peer.Alive {
			reply := peer.Cyc.HandleRequest(sh.Sent, n.rng)
			nd.Cyc.HandleReply(sh, reply)
			return
		}
		// Dead peer: its entry is already removed; retry with next oldest.
		sh, ok = nd.Cyc.RetryShuffle(n.rng)
	}
}

func (n *Network) vicinityStep(nd *Node) {
	nd.Vic.AgeAll()
	// Copy the initiator's CYCLON view into scratch: a failed attempt below
	// removes the dead peer from that view mid-loop, and the feed offered to
	// later attempts (and the final merge) must be the pre-removal snapshot,
	// exactly as when Entries() allocated a copy.
	cycEntries := nd.Cyc.View().AppendTo(n.feedScratch[:0])
	n.feedScratch = cycEntries
	feed := cycEntries
	if n.cfg.DisableVicinityFeed {
		feed = nil
	}
	for attempt := 0; attempt < maxGossipAttempts; attempt++ {
		peerEntry, ok := nd.Vic.SelectPeer(n.rng, cycEntries)
		if !ok {
			return
		}
		peer := n.byID(peerEntry.Node)
		if peer == nil || !peer.Alive {
			nd.Vic.Remove(peerEntry.Node)
			nd.Cyc.Remove(peerEntry.Node)
			continue
		}
		sent := nd.Vic.PayloadAppend(n.sentScratch[:0])
		n.sentScratch = sent
		reply := peer.Vic.PayloadAppend(n.replyScratch[:0])
		n.replyScratch = reply
		// The partner's feed is read zero-copy: nothing mutates the
		// partner's CYCLON view before the merge consumes it.
		peerFeed := peer.Cyc.View().All()
		if n.cfg.DisableVicinityFeed {
			peerFeed = nil
		}
		peer.Vic.Merge(sent, peerFeed)
		nd.Vic.Merge(reply, feed)
		return
	}
}

// extraVicinityStep runs one exchange for ring r (r >= 1). The candidate
// feed from CYCLON is translated into ring-r identifiers, since each ring
// is organized over its own random ID space (Section 8).
func (n *Network) extraVicinityStep(nd *Node, r int, vic *vicinity.Vicinity) {
	vic.AgeAll()
	feed := n.translateFeed(n.xfeedScratch[:0], nd.Cyc.View().All(), r)
	n.xfeedScratch = feed
	for attempt := 0; attempt < maxGossipAttempts; attempt++ {
		peerEntry, ok := vic.SelectPeer(n.rng, feed)
		if !ok {
			return
		}
		peer := n.byRingID(r, peerEntry.Node)
		if peer == nil || !peer.Alive {
			vic.Remove(peerEntry.Node)
			continue
		}
		peerVic := peer.ExtraVics[r-1]
		sent := vic.PayloadAppend(n.sentScratch[:0])
		n.sentScratch = sent
		reply := peerVic.PayloadAppend(n.replyScratch[:0])
		n.replyScratch = reply
		peerFeed := n.translateFeed(n.xpeerScratch[:0], peer.Cyc.View().All(), r)
		n.xpeerScratch = peerFeed
		peerVic.Merge(sent, peerFeed)
		vic.Merge(reply, feed)
		return
	}
}

// translateFeed appends CYCLON entries (primary IDs) translated to ring-r
// identifiers to dst. It returns nil (not dst) when the feed is disabled,
// preserving the ablation's no-candidates semantics.
func (n *Network) translateFeed(dst []view.Entry, entries []view.Entry, r int) []view.Entry {
	if n.cfg.DisableVicinityFeed {
		return nil
	}
	for _, e := range entries {
		peer := n.byID(e.Node)
		if peer == nil || len(peer.RingIDs) <= r {
			continue
		}
		dst = append(dst, view.Entry{Node: peer.RingIDs[r], Age: e.Age})
	}
	return dst
}

func (n *Network) byID(id ident.ID) *Node {
	if i, ok := n.index[id]; ok {
		return n.nodes[i]
	}
	return nil
}

// byRingID resolves a ring-r identifier (r >= 1) to its node.
func (n *Network) byRingID(r int, id ident.ID) *Node {
	if r == 0 {
		return n.byID(id)
	}
	if r-1 >= len(n.ringIndex) {
		return nil
	}
	if i, ok := n.ringIndex[r-1][id]; ok {
		return n.nodes[i]
	}
	return nil
}

// ResolveRingID returns the primary ID of the node that owns the given
// ring-r identifier (r = 0 returns the ID itself when known).
func (n *Network) ResolveRingID(r int, id ident.ID) (ident.ID, bool) {
	nd := n.byRingID(r, id)
	if nd == nil {
		return ident.Nil, false
	}
	return nd.ID, true
}

// NodeByID returns the node with the given ID, if it exists (dead or alive).
func (n *Network) NodeByID(id ident.ID) (*Node, bool) {
	nd := n.byID(id)
	return nd, nd != nil
}

// Nodes returns all nodes ever created, including dead ones. The slice is
// internal storage; callers must not mutate it.
func (n *Network) Nodes() []*Node { return n.nodes }

// CycleCount returns how many cycles have elapsed.
func (n *Network) CycleCount() int { return n.cycle }

// AliveCount returns the current live population.
func (n *Network) AliveCount() int { return n.alive }

// AliveIDs returns the IDs of all live nodes.
func (n *Network) AliveIDs() []ident.ID {
	out := make([]ident.ID, 0, n.alive)
	for _, nd := range n.nodes {
		if nd.Alive {
			out = append(out, nd.ID)
		}
	}
	return out
}

// RandomAlive returns a uniformly random live node: one draw over the
// live-index set. The previous rejection sampling over the full population
// degenerated to O(total/alive) expected probes after heavy churn or a
// catastrophe (at 99% mortality, ~100 probes per call).
func (n *Network) RandomAlive() (*Node, bool) {
	if len(n.livePos) == 0 {
		return nil, false
	}
	return n.nodes[n.livePos[n.rng.Intn(len(n.livePos))]], true
}

// Kill marks the node dead, reporting whether it was alive. Dead nodes keep
// their state (their entries linger in other views — no self-healing unless
// gossip continues), never rejoin, and never gossip again.
func (n *Network) Kill(id ident.ID) bool {
	nd := n.byID(id)
	if nd == nil || !nd.Alive {
		return false
	}
	nd.Alive = false
	// Swap-remove from the live-index set.
	last := len(n.livePos) - 1
	moved := n.livePos[last]
	n.livePos[nd.liveSlot] = moved
	n.nodes[moved].liveSlot = nd.liveSlot
	n.livePos = n.livePos[:last]
	nd.liveSlot = -1
	n.alive--
	return true
}

// KillFraction kills a uniformly random fraction of the live population
// at once — the catastrophic-failure model of Section 7.2. It returns the
// killed IDs.
func (n *Network) KillFraction(frac float64) []ident.ID {
	if frac <= 0 {
		return nil
	}
	k := int(frac * float64(n.alive))
	return n.KillRandom(k)
}

// KillRandom kills k uniformly random live nodes and returns their IDs.
func (n *Network) KillRandom(k int) []ident.ID {
	live := n.AliveIDs()
	if k > len(live) {
		k = len(live)
	}
	n.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	killed := live[:k]
	for _, id := range killed {
		n.Kill(id)
	}
	return killed
}

// Join adds a brand-new node bootstrapped with one random live contact, as
// in the churn model of Section 7.3 ("new nodes have to join from scratch").
func (n *Network) Join() (*Node, error) {
	contact, ok := n.RandomAlive()
	if !ok {
		return nil, fmt.Errorf("sim: cannot join an empty network")
	}
	nd := n.addNode()
	nd.Cyc.AddContact(contact.ID, "")
	return nd, nil
}

// Rand exposes the simulation's deterministic randomness source so that
// experiment drivers share one stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// RingConvergence returns the fraction of live nodes whose VICINITY-derived
// d-links point at their true live ring neighbours. It is 1.0 exactly when
// the global bidirectional ring is fully formed. Networks without VICINITY
// report 0.
func (n *Network) RingConvergence() float64 {
	if !n.cfg.UseVicinity || n.alive == 0 {
		return 0
	}
	ids := n.AliveIDs()
	slices.Sort(ids)
	pos := make(map[ident.ID]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	correct := 0
	for _, nd := range n.nodes {
		if !nd.Alive {
			continue
		}
		pred, succ, ok := nd.Vic.RingNeighbors()
		if !ok {
			continue
		}
		i := pos[nd.ID]
		wantSucc := ids[(i+1)%len(ids)]
		wantPred := ids[(i-1+len(ids))%len(ids)]
		if succ.Node == wantSucc && pred.Node == wantPred {
			correct++
		}
	}
	return float64(correct) / float64(n.alive)
}

// WarmUp runs the paper's self-organization phase: at least minCycles
// cycles (100 in the paper), then — when VICINITY is enabled — keeps going
// until the ring has fully converged or maxCycles is reached. It returns the
// number of cycles executed and the final convergence.
//
// The paper notes 100 cycles "were more than enough" at N=10,000 with view
// length 20; the maxCycles guard keeps pathological configurations from
// looping forever.
func (n *Network) WarmUp(minCycles, maxCycles int) (cycles int, convergence float64) {
	n.RunCycles(minCycles)
	cycles = minCycles
	if !n.cfg.UseVicinity {
		return cycles, 0
	}
	convergence = n.RingConvergence()
	for convergence < 1.0 && cycles < maxCycles {
		n.RunCycles(10)
		cycles += 10
		convergence = n.RingConvergence()
	}
	return cycles, convergence
}
