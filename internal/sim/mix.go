// Shard-parallel converged bootstrap: the compact mixing engine behind the
// scale figure's 1e7-node axis. BuildConverged produces the same operating
// point NewConverged + RunCycles does — every node's VICINITY view holding
// its true ring neighbours, every CYCLON view a well-mixed random sample —
// but on flat struct-of-arrays state (uint32 ring idents, int32 positions,
// uint16 ages; no per-node objects, views or maps) and with the mixing
// cycles themselves fanned across internal/runner workers.
//
// Determinism contract (the PR 5 arena-build discipline, applied to the
// exchanges): a mixing cycle is three barriers per protocol —
//
//  1. request: every node, in a fixed-size shard fan-out, ages its view,
//     selects its gossip partner and builds its payload, drawing all
//     randomness from a per-node stream derived via runner.UnitSeed from
//     (seed, phase tag, cycle, node) and writing only its own slots;
//  2. reply: requests are grouped by partner with a sequential counting
//     sort (ascending initiator order within each partner — a pure function
//     of the requests), then every partner, shard-parallel, answers its
//     requests in that order, drawing from a per-partner stream and
//     mutating only its own view plus each initiator's private reply slot;
//  3. merge: every initiator, shard-parallel, folds its reply into its own
//     view (no randomness).
//
// Every write is to a slot owned by exactly one work unit and every random
// draw comes from a stream keyed by logical coordinates, never by worker
// identity — so the converged overlay is byte-identical at any Parallelism,
// including 1 (the reference sequential execution). Shard boundaries are
// fixed (mixShardNodes) and never depend on the worker count.
//
// The synchronous-parallel cycle is a deliberate semantic departure from
// Network.Cycle's sequential random-order interleaving: all requests read
// the post-barrier state of the previous phase. Section 7.1's argument —
// dissemination over a frozen overlay is insensitive to how the overlay got
// there — is what licenses swapping one mixing schedule for another.
package sim

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/runner"
	"ringcast/internal/vicinity"
)

// mixShardNodes is the fixed shard granularity of the parallel phases:
// boundaries depend only on N, never on the worker count (one half of the
// bit-identical contract; the other half is the per-unit seed streams).
const mixShardNodes = 4096

// Seed-derivation tags of the mixing engine. They share the master seed
// with the experiment sweeps, but every tuple starts with one of these
// large distinctive constants, so the streams cannot collide with the
// experiment package's small family tags.
const (
	mixTagIDs      int64 = 0x4d495831 + iota // ring-ident generation
	mixTagContacts                           // per-node bootstrap contact draws
	mixTagCycReq                             // CYCLON request phase, per (cycle, node)
	mixTagCycRep                             // CYCLON reply phase, per (cycle, partner)
	mixTagVicReq                             // VICINITY request phase, per (cycle, node)
)

// mixRand is the engine's allocation-free random stream: a SplitMix64
// counter generator. The reply phase derives one stream per partner per
// cycle — at 1e7 nodes a *rand.Rand there would allocate a ~5 KB source
// each, so the engine uses this 8-byte state instead. Draw quality is
// ample for shuffling 20-entry views; determinism is what matters.
type mixRand struct{ s uint64 }

func newMixRand(seed int64) mixRand { return mixRand{s: uint64(seed)} }

func (r *mixRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform draw in [0, n) via the multiply-high reduction
// (bias < 2^-40 for any simulation-scale n — far below measurement noise).
func (r *mixRand) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// MixConfig parameterizes BuildConverged.
type MixConfig struct {
	// N is the node population (>= 2).
	N int
	// Cycles is how many parallel mixing cycles run after the converged
	// seeding (>= 0; the scale figure uses 30).
	Cycles int
	// Seed drives all randomness: ring idents, bootstrap contacts and every
	// per-node exchange stream derive from it via runner.UnitSeed.
	Seed int64
	// Cyclon carries the peer-sampling parameters (view 20, shuffle 8 in
	// the paper). RandomPeerSelection is not supported by the compact
	// engine.
	Cyclon cyclon.Config
	// Vicinity carries the topology parameters (view 20, gossip 20,
	// Balanced). The engine organizes a single ring over the compact
	// uint32 ident space with the circular ring metric.
	Vicinity vicinity.Config
	// Parallelism is the worker count for the sharded phases (0 = one per
	// CPU, 1 = the reference sequential build); the result is
	// byte-identical at any setting.
	Parallelism int
}

// DefaultMixConfig returns the paper's protocol parameters for a given
// population, mirroring DefaultConfig.
func DefaultMixConfig(n int) MixConfig {
	return MixConfig{
		N:        n,
		Cycles:   30,
		Seed:     1,
		Cyclon:   cyclon.DefaultConfig(),
		Vicinity: vicinity.DefaultConfig(),
	}
}

func (c MixConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("sim: mix N must be >= 2, got %d", c.N)
	}
	if c.Cycles < 0 {
		return fmt.Errorf("sim: mix cycles must be >= 0, got %d", c.Cycles)
	}
	if c.Cyclon.ViewSize <= 0 || c.Cyclon.ShuffleLen <= 0 || c.Cyclon.ShuffleLen > c.Cyclon.ViewSize {
		return fmt.Errorf("sim: mix cyclon config invalid (view %d, shuffle %d)", c.Cyclon.ViewSize, c.Cyclon.ShuffleLen)
	}
	if c.Cyclon.RandomPeerSelection {
		return fmt.Errorf("sim: mix engine does not support RandomPeerSelection")
	}
	if c.Vicinity.ViewSize <= 0 || c.Vicinity.GossipLen <= 0 || c.Vicinity.GossipLen > c.Vicinity.ViewSize {
		return fmt.Errorf("sim: mix vicinity config invalid (view %d, gossip %d)", c.Vicinity.ViewSize, c.Vicinity.GossipLen)
	}
	if c.Cyclon.ViewSize > 255 || c.Vicinity.ViewSize > 255 {
		return fmt.Errorf("sim: mix view sizes must be <= 255 (got cyclon %d, vicinity %d)", c.Cyclon.ViewSize, c.Vicinity.ViewSize)
	}
	return nil
}

// MixResult is a frozen converged overlay built by BuildConverged.
type MixResult struct {
	// N echoes the population.
	N int
	// Arena holds every node's frozen links resolved to dense positions:
	// r-links are the node's CYCLON view, d-links its two VICINITY-derived
	// ring neighbours [pred, succ]. Positions 0..N-1 are ring ranks (nodes
	// sorted by ring ident), so d-links of a fully converged overlay are
	// exactly i±1 mod N.
	Arena *core.PosArena
	// Convergence is the fraction of nodes whose d-links point at their
	// true ring neighbours at freeze time (1.0 = fully formed ring).
	Convergence float64
}

// BuildConverged builds a frozen converged overlay for the scale
// experiments: converged seeding (true ring neighbours in every VICINITY
// view, convergedContacts uniform CYCLON contacts per node from per-node
// streams), cfg.Cycles parallel mixing cycles, then an arena freeze. See
// the package comment of this file for the determinism contract.
func BuildConverged(cfg MixConfig) (*MixResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := newMixer(cfg)
	m.seed()
	for c := 0; c < cfg.Cycles; c++ {
		m.cycle(c)
	}
	conv := m.convergence()
	// Release the exchange buffers (request/reply slots, partner grouping —
	// ~2.6 GB at N=1e7) and collect before the freeze allocates the arena,
	// so the arena reuses their pages and the process peak stays at the
	// mixing-phase level instead of stacking arena on top of dead buffers.
	m.releaseExchange()
	runtime.GC()
	return &MixResult{N: cfg.N, Arena: m.freeze(), Convergence: conv}, nil
}

// releaseExchange drops every buffer the freeze does not read: the
// request/reply slots and the partner grouping state. Only the views
// (cycPos/cycLen, vicPos/vicLen, ids) and the small pooled worker
// scratches survive.
func (m *mixer) releaseExchange() {
	m.reqPos, m.reqAge, m.reqLen = nil, nil, nil
	m.repPos, m.repAge, m.repLen = nil, nil, nil
	m.partner, m.groupOff, m.groupCur, m.order = nil, nil, nil, nil
}

// mixer is the flat engine state. Views are struct-of-arrays: node i's
// CYCLON view occupies cycPos/cycAge[i*cv : i*cv+cycLen[i]], its VICINITY
// view the corresponding vic slices. All link values are dense positions
// (ring ranks); ring idents live only in ids and are consulted solely for
// the VICINITY distance metric.
type mixer struct {
	cfg        MixConfig
	n          int
	cv, sl     int // cyclon view size, shuffle length
	vv, gl     int // vicinity view size, gossip length
	maxAge     uint16
	noMaxAge   bool
	stride     int // payload slot stride: max(sl, gl)
	ids        []uint32
	cycPos     []int32
	cycAge     []uint16
	cycLen     []uint16
	vicPos     []int32
	vicAge     []uint16
	vicLen     []uint16
	reqPos     []int32
	reqAge     []uint16
	reqLen     []uint16
	repPos     []int32
	repAge     []uint16
	repLen     []uint16
	partner    []int32
	groupOff   []int32 // n+1 prefix offsets of the per-partner request lists
	groupCur   []int32 // placement cursors (scratch of group())
	order      []int32 // initiators grouped by partner, ascending within each
	scratchers sync.Pool
}

// mixScratch carries one worker's per-exchange buffers. Pooled: scratch
// contents never influence results, so sharing across dynamically claimed
// shards cannot affect determinism.
type mixScratch struct {
	pos    []int32  // view copies for sampling
	age    []uint16 //
	repl   []int32  // replaceable bookkeeping of the cyclon merge
	key    []uint64 // packed pos<<16|age keys of the merge candidates
	own    []uint64 // packed keys of the own view, rotated to pos order
	dpos   []int32  // deduplicated merge pool, pos-ascending
	dage   []uint16 //
	chosen []bool   // balanced-selection bookkeeping over the pool
}

func newMixer(cfg MixConfig) *mixer {
	n := cfg.N
	cv, sl := cfg.Cyclon.ViewSize, cfg.Cyclon.ShuffleLen
	vv, gl := cfg.Vicinity.ViewSize, cfg.Vicinity.GossipLen
	stride := sl
	if gl > stride {
		stride = gl
	}
	maxAge := cfg.Vicinity.MaxAge
	m := &mixer{
		cfg: cfg, n: n, cv: cv, sl: sl, vv: vv, gl: gl,
		noMaxAge: maxAge == 0,
		stride:   stride,
		ids:      make([]uint32, n),
		cycPos:   make([]int32, n*cv),
		cycAge:   make([]uint16, n*cv),
		cycLen:   make([]uint16, n),
		vicPos:   make([]int32, n*vv),
		vicAge:   make([]uint16, n*vv),
		vicLen:   make([]uint16, n),
		reqPos:   make([]int32, n*stride),
		reqAge:   make([]uint16, n*stride),
		reqLen:   make([]uint16, n),
		repPos:   make([]int32, n*stride),
		repAge:   make([]uint16, n*stride),
		repLen:   make([]uint16, n),
		partner:  make([]int32, n),
		groupOff: make([]int32, n+1),
		groupCur: make([]int32, n),
		order:    make([]int32, n),
	}
	if maxAge > 65535 {
		m.noMaxAge = true // ages are uint16; an over-range bound disables eviction
	} else {
		m.maxAge = uint16(maxAge)
	}
	m.scratchers.New = func() any { return new(mixScratch) }
	return m
}

// shards returns the number of fixed-size node shards.
func (m *mixer) shards() int { return (m.n + mixShardNodes - 1) / mixShardNodes }

// shardRange returns shard s's half-open node range.
func (m *mixer) shardRange(s int) (int, int) {
	lo := s * mixShardNodes
	hi := lo + mixShardNodes
	if hi > m.n {
		hi = m.n
	}
	return lo, hi
}

// eachShard fans fn over the fixed node shards. fn must obey the runner
// determinism contract: write only slots owned by its nodes, draw only from
// per-node/per-partner derived streams.
func (m *mixer) eachShard(fn func(lo, hi int, sc *mixScratch)) {
	_ = runner.Map(m.cfg.Parallelism, m.shards(), nil, func(s int) error {
		lo, hi := m.shardRange(s)
		sc := m.scratchers.Get().(*mixScratch)
		fn(lo, hi, sc)
		m.scratchers.Put(sc)
		return nil
	})
}

// seed places the engine directly in the converged operating point:
// unique sorted ring idents (position == ring rank), true ring neighbours
// in every VICINITY view, and convergedContacts uniform CYCLON contacts
// per node drawn from that node's own derived stream — so no draw order
// couples nodes to each other (the same per-node discipline the object
// engine's NewConverged uses).
func (m *mixer) seed() {
	// Ring idents: uniform uint32 draws, sorted ascending, de-duplicated by
	// redrawing clashing slots (the sequential loop is a pure function of
	// the stream; at 1e7 nodes a couple of redraw rounds suffice).
	rng := newMixRand(runner.UnitSeed(m.cfg.Seed, mixTagIDs))
	for i := range m.ids {
		m.ids[i] = uint32(rng.next())
	}
	slices.Sort(m.ids)
	for {
		dups := 0
		for i := 1; i < m.n; i++ {
			if m.ids[i] == m.ids[i-1] {
				m.ids[i] = uint32(rng.next())
				dups++
			}
		}
		if dups == 0 {
			break
		}
		slices.Sort(m.ids)
	}
	m.eachShard(func(lo, hi int, _ *mixScratch) {
		for i := lo; i < hi; i++ {
			// VICINITY: predecessor and successor ring ranks, age 0, stored
			// in clockwise order (successor first — views keep the cw
			// invariant documented on vicinityMerge).
			pred := int32((i - 1 + m.n) % m.n)
			succ := int32((i + 1) % m.n)
			vb := i * m.vv
			m.vicPos[vb] = succ
			m.vicAge[vb] = 0
			m.vicLen[i] = 1
			if succ != pred {
				m.vicPos[vb+1] = pred
				m.vicAge[vb+1] = 0
				m.vicLen[i] = 2
			}
			// CYCLON: per-node contact stream; self and duplicates skipped,
			// exactly as AddContact does.
			crng := newMixRand(runner.UnitSeed(m.cfg.Seed, mixTagContacts, int64(i)))
			cb := i * m.cv
			ln := 0
			for c := 0; c < convergedContacts; c++ {
				p := int32(crng.intn(m.n))
				if int(p) == i || containsPos32(m.cycPos[cb:cb+ln], p) {
					continue
				}
				m.cycPos[cb+ln] = p
				m.cycAge[cb+ln] = 0
				ln++
			}
			m.cycLen[i] = uint16(ln)
		}
	})
}

// containsPos32 reports whether p occurs in s (views are tens of entries —
// linear scan beats any index).
func containsPos32(s []int32, p int32) bool {
	for _, q := range s {
		if q == p {
			return true
		}
	}
	return false
}

// cycle runs one synchronous-parallel mixing cycle: the full CYCLON
// exchange (request, grouped reply, merge), then the full VICINITY
// exchange. VICINITY request feeds therefore read the post-CYCLON views of
// this cycle — a fixed, deterministic schedule.
func (m *mixer) cycle(c int) {
	m.cyclonRequests(c)
	m.group()
	m.cyclonReplies(c)
	m.cyclonMerges()
	m.vicinityRequests(c)
	m.group()
	m.vicinityReplies()
	m.vicinityMerges()
}

// group builds, sequentially, the per-partner request lists: a counting
// sort of initiators by partner. Initiators appear in ascending order
// within each partner's list, so the grouping is a pure function of the
// partner array — independent of worker count.
func (m *mixer) group() {
	off := m.groupOff
	for i := range off {
		off[i] = 0
	}
	for _, p := range m.partner {
		if p >= 0 {
			off[p+1]++
		}
	}
	for i := 1; i <= m.n; i++ {
		off[i] += off[i-1]
	}
	copy(m.groupCur, off[:m.n])
	for i, p := range m.partner {
		if p >= 0 {
			m.order[m.groupCur[p]] = int32(i)
			m.groupCur[p]++
		}
	}
}

// cyclonRequests is the CYCLON request phase: age, select the oldest
// neighbour, remove it, sample the payload (StartShuffle semantics on flat
// state).
func (m *mixer) cyclonRequests(c int) {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for i := lo; i < hi; i++ {
			base := i * m.cv
			ln := int(m.cycLen[i])
			for k := 0; k < ln; k++ {
				m.cycAge[base+k]++
			}
			if ln == 0 {
				m.partner[i] = -1
				m.reqLen[i] = 0
				continue
			}
			rng := newMixRand(runner.UnitSeed(m.cfg.Seed, mixTagCycReq, int64(c), int64(i)))
			// Oldest entry, first index winning ties.
			best := 0
			for k := 1; k < ln; k++ {
				if m.cycAge[base+k] > m.cycAge[base+best] {
					best = k
				}
			}
			m.partner[i] = m.cycPos[base+best]
			// Swap-remove the partner, per the protocol (a dead peer's stale
			// link would already be gone — moot here, but kept for fidelity).
			ln--
			m.cycPos[base+best] = m.cycPos[base+ln]
			m.cycAge[base+best] = m.cycAge[base+ln]
			m.cycLen[i] = uint16(ln)
			// Payload: up to ShuffleLen-1 distinct random entries plus a
			// fresh self entry (partial Fisher-Yates over a scratch copy, so
			// the view's internal order is untouched).
			take := m.sl - 1
			if take > ln {
				take = ln
			}
			sc.pos = append(sc.pos[:0], m.cycPos[base:base+ln]...)
			sc.age = append(sc.age[:0], m.cycAge[base:base+ln]...)
			rb := i * m.stride
			for t := 0; t < take; t++ {
				j := t + rng.intn(ln-t)
				sc.pos[t], sc.pos[j] = sc.pos[j], sc.pos[t]
				sc.age[t], sc.age[j] = sc.age[j], sc.age[t]
				m.reqPos[rb+t] = sc.pos[t]
				m.reqAge[rb+t] = sc.age[t]
			}
			m.reqPos[rb+take] = int32(i)
			m.reqAge[rb+take] = 0
			m.reqLen[i] = uint16(take + 1)
		}
	})
}

// cyclonReplies is the CYCLON reply phase: every partner answers its
// grouped requests in ascending initiator order (HandleRequest semantics:
// the reply is sampled before the merge, and merged-in entries prefer to
// overwrite the entries just shipped back).
func (m *mixer) cyclonReplies(c int) {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for p := lo; p < hi; p++ {
			reqs := m.order[m.groupOff[p]:m.groupOff[p+1]]
			if len(reqs) == 0 {
				continue
			}
			rng := newMixRand(runner.UnitSeed(m.cfg.Seed, mixTagCycRep, int64(c), int64(p)))
			base := p * m.cv
			for _, ii := range reqs {
				i := int(ii)
				// Reply: up to ShuffleLen distinct random entries of the
				// partner's current view.
				ln := int(m.cycLen[p])
				take := m.sl
				if take > ln {
					take = ln
				}
				sc.pos = append(sc.pos[:0], m.cycPos[base:base+ln]...)
				sc.age = append(sc.age[:0], m.cycAge[base:base+ln]...)
				rb := i * m.stride
				for t := 0; t < take; t++ {
					j := t + rng.intn(ln-t)
					sc.pos[t], sc.pos[j] = sc.pos[j], sc.pos[t]
					sc.age[t], sc.age[j] = sc.age[j], sc.age[t]
					m.repPos[rb+t] = sc.pos[t]
					m.repAge[rb+t] = sc.age[t]
				}
				m.repLen[i] = uint16(take)
				// Merge the request payload, replaceable = reply entries.
				qb := i * m.stride
				m.cyclonMerge(p, sc,
					m.reqPos[qb:qb+int(m.reqLen[i])], m.reqAge[qb:qb+int(m.reqLen[i])],
					m.repPos[rb:rb+take])
			}
		}
	})
}

// cyclonMerges is the CYCLON merge phase: every initiator folds its reply
// into its own view, preferring to overwrite the entries it sent out
// (HandleReply semantics).
func (m *mixer) cyclonMerges() {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for i := lo; i < hi; i++ {
			if m.partner[i] < 0 {
				continue
			}
			rb := i * m.stride
			qb := i * m.stride
			m.cyclonMerge(i, sc,
				m.repPos[rb:rb+int(m.repLen[i])], m.repAge[rb:rb+int(m.repLen[i])],
				m.reqPos[qb:qb+int(m.reqLen[i])])
		}
	})
}

// cyclonMerge folds incoming entries into node self's view following the
// CYCLON rules: discard self and already-known nodes, fill empty slots
// first, then replace shipped entries (each at most once), discard when no
// shipped entry remains.
func (m *mixer) cyclonMerge(self int, sc *mixScratch, inPos []int32, inAge []uint16, shipped []int32) {
	repl := sc.repl[:0]
	for _, s := range shipped {
		if int(s) != self {
			repl = append(repl, s)
		}
	}
	base := self * m.cv
	ln := int(m.cycLen[self])
	for k, e := range inPos {
		if int(e) == self || containsPos32(m.cycPos[base:base+ln], e) {
			continue
		}
		if ln < m.cv {
			m.cycPos[base+ln] = e
			m.cycAge[base+ln] = inAge[k]
			ln++
			continue
		}
		for ri, r := range repl {
			if idx := indexPos32(m.cycPos[base:base+ln], r); idx >= 0 {
				// Swap-remove r, then append e (view.Remove + view.Add).
				m.cycPos[base+idx] = m.cycPos[base+ln-1]
				m.cycAge[base+idx] = m.cycAge[base+ln-1]
				m.cycPos[base+ln-1] = e
				m.cycAge[base+ln-1] = inAge[k]
				repl = append(repl[:ri], repl[ri+1:]...)
				break
			}
		}
	}
	m.cycLen[self] = uint16(ln)
	sc.repl = repl[:0]
}

func indexPos32(s []int32, p int32) int {
	for i, q := range s {
		if q == p {
			return i
		}
	}
	return -1
}

// vicinityRequests is the VICINITY request phase: age, select the oldest
// neighbour (falling back to a uniform CYCLON-view draw while the view is
// empty), and build the payload of the GossipLen-1 closest entries plus a
// fresh self entry.
func (m *mixer) vicinityRequests(c int) {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for i := lo; i < hi; i++ {
			base := i * m.vv
			ln := int(m.vicLen[i])
			for k := 0; k < ln; k++ {
				m.vicAge[base+k]++
			}
			if ln > 0 {
				best := 0
				for k := 1; k < ln; k++ {
					if m.vicAge[base+k] > m.vicAge[base+best] {
						best = k
					}
				}
				m.partner[i] = m.vicPos[base+best]
			} else {
				cl := int(m.cycLen[i])
				if cl == 0 {
					m.partner[i] = -1
					m.reqLen[i] = 0
					continue
				}
				rng := newMixRand(runner.UnitSeed(m.cfg.Seed, mixTagVicReq, int64(c), int64(i)))
				m.partner[i] = m.cycPos[i*m.cv+rng.intn(cl)]
			}
			m.reqLen[i] = m.vicinityPayload(i, m.reqPos, m.reqAge, i*m.stride)
		}
	})
}

// sortKeysSmall is an insertion sort for the merge's incoming-key buffers:
// a few dozen elements, where a branch-light insertion sort beats the
// generic sort's pivoting machinery by a wide margin in this engine's
// hottest loop. Same ascending order as slices.Sort.
func sortKeysSmall(k []uint64) {
	for i := 1; i < len(k); i++ {
		v := k[i]
		j := i - 1
		for j >= 0 && k[j] > v {
			k[j+1] = k[j]
			j--
		}
		k[j+1] = v
	}
}

// ringMinDist is the circular ring metric over compact idents (ident.Dist
// on uint32): the shorter way around, wrapping mod 2^32.
func ringMinDist(a, b uint32) uint32 {
	cw := b - a
	ccw := a - b
	if ccw < cw {
		return ccw
	}
	return cw
}

// vicinityPayload writes node i's exchange payload (closest GossipLen-1
// entries by circular ring distance, ties by position, plus a fresh self
// entry) into the outPos/outAge slot at rb, returning the entry count.
//
// No sort: the view is stored clockwise-ascending (the vicinityMerge
// invariant), along which the min-distance is unimodal — ascending from the
// front until the antipode, ascending from the back until the antipode — so
// the (dist, pos) order is a two-pointer merge of the two monotone runs.
// Equal distances only happen across the two pointers (same-side entries
// have distinct cw offsets), resolved by the smaller position.
func (m *mixer) vicinityPayload(i int, outPos []int32, outAge []uint16, rb int) uint16 {
	base := i * m.vv
	ln := int(m.vicLen[i])
	take := m.gl - 1
	if take > ln {
		take = ln
	}
	sid := m.ids[i]
	f, b := 0, ln-1
	for t := 0; t < take; t++ {
		k := f
		if f != b {
			pf, pb := m.vicPos[base+f], m.vicPos[base+b]
			df, db := ringMinDist(sid, m.ids[pf]), ringMinDist(sid, m.ids[pb])
			if df > db || (df == db && pf > pb) {
				k = b
			}
		}
		outPos[rb+t] = m.vicPos[base+k]
		outAge[rb+t] = m.vicAge[base+k]
		if k == f {
			f++
		} else {
			b--
		}
	}
	outPos[rb+take] = int32(i)
	outAge[rb+take] = 0
	return uint16(take + 1)
}

// vicinityReplies is the VICINITY reply phase: every partner answers its
// grouped requests in ascending initiator order — the reply payload is
// built from the partner's current view before the merge, exactly the
// sequential exchange's ordering — and merges each request with its own
// CYCLON view as the candidate feed.
func (m *mixer) vicinityReplies() {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for p := lo; p < hi; p++ {
			reqs := m.order[m.groupOff[p]:m.groupOff[p+1]]
			for _, ii := range reqs {
				i := int(ii)
				m.repLen[i] = m.vicinityPayload(p, m.repPos, m.repAge, i*m.stride)
				qb := i * m.stride
				m.vicinityMerge(p, sc, m.reqPos[qb:qb+int(m.reqLen[i])], m.reqAge[qb:qb+int(m.reqLen[i])])
			}
		}
	})
}

// vicinityMerges is the VICINITY merge phase: every initiator folds its
// reply into its own view with its own CYCLON view as the feed.
func (m *mixer) vicinityMerges() {
	m.eachShard(func(lo, hi int, sc *mixScratch) {
		for i := lo; i < hi; i++ {
			if m.partner[i] < 0 {
				continue
			}
			rb := i * m.stride
			m.vicinityMerge(i, sc, m.repPos[rb:rb+int(m.repLen[i])], m.repAge[rb:rb+int(m.repLen[i])])
		}
	})
}

// vicinityMerge folds candidate entries plus node self's CYCLON feed into
// its VICINITY view, keeping the balanced closest set (vicinity.Merge
// semantics: dedup by node keeping the youngest age, then ViewSize/2
// closest clockwise + ViewSize/2 closest counterclockwise, remainder by
// global distance). The resulting view is stored clockwise-ascending — the
// invariant vicinityPayload, selection and freeze all lean on.
//
// Clockwise order costs no sort: positions are ring ranks, so a
// pos-ascending list splits at self into [below-self block, above-self
// block] and its cw-ascending order is the rotation [above ++ below]. Only
// the incoming candidates + feed (~2·GossipLen entries) are ever sorted;
// the own view enters the dedup merge pre-sorted via that rotation.
func (m *mixer) vicinityMerge(self int, sc *mixScratch, candPos []int32, candAge []uint16) {
	// Incoming keys pos<<16|age: sorting groups each position's entries
	// youngest-first, so keeping the first of every run reproduces the
	// map-based pool (youngest age wins).
	keys := sc.key[:0]
	add := func(pos int32, age uint16) {
		if int(pos) == self {
			return
		}
		if !m.noMaxAge && age > m.maxAge {
			return
		}
		keys = append(keys, uint64(uint32(pos))<<16|uint64(age))
	}
	for k, p := range candPos {
		add(p, candAge[k])
	}
	cb := self * m.cv
	for k := 0; k < int(m.cycLen[self]); k++ {
		add(m.cycPos[cb+k], m.cycAge[cb+k])
	}
	sortKeysSmall(keys)
	sc.key = keys
	// Own view, rotated from cw order back to pos order, same filters.
	base := self * m.vv
	ln := int(m.vicLen[self])
	split := 0 // length of the above-self block (cw order leads with it)
	for split < ln && m.vicPos[base+split] > int32(self) {
		split++
	}
	own := sc.own[:0]
	ownAdd := func(k int) {
		age := m.vicAge[base+k]
		if !m.noMaxAge && age > m.maxAge {
			return
		}
		own = append(own, uint64(uint32(m.vicPos[base+k]))<<16|uint64(age))
	}
	for k := split; k < ln; k++ {
		ownAdd(k)
	}
	for k := 0; k < split; k++ {
		ownAdd(k)
	}
	sc.own = own
	// Dedup merge of the two sorted streams. Within equal positions the
	// smaller packed key (= younger age) comes first; ties between an own
	// entry and an incoming one at the same age resolve to the same entry
	// values either way.
	dpos, dage := sc.dpos[:0], sc.dage[:0]
	a, b := 0, 0
	for a < len(own) || b < len(keys) {
		var key uint64
		if b >= len(keys) || (a < len(own) && own[a] <= keys[b]) {
			key = own[a]
			a++
		} else {
			key = keys[b]
			b++
		}
		pos := int32(key >> 16)
		if len(dpos) > 0 && dpos[len(dpos)-1] == pos {
			continue
		}
		dpos = append(dpos, pos)
		dage = append(dage, uint16(key&0xffff))
	}
	sc.dpos, sc.dage = dpos, dage

	// Selection over the pool, written back in cw order via a chosen
	// bitmap indexed in cw sequence order: cwIdx(j) walks dpos rotated at
	// self (above-self block first).
	np := len(dpos)
	rot := 0 // first pool index above self
	for rot < np && dpos[rot] < int32(self) {
		rot++
	}
	chosen := sc.chosen[:0]
	for k := 0; k < np; k++ {
		chosen = append(chosen, false)
	}
	sc.chosen = chosen
	cwIdx := func(j int) int {
		j += rot
		if j >= np {
			j -= np
		}
		return j
	}
	want := 0
	if m.cfg.Vicinity.Balanced {
		want = m.selectBalanced(self, dpos, chosen, cwIdx)
	} else {
		// Unbalanced: the ViewSize globally closest — the same two-pointer
		// min-distance merge as vicinityPayload, over the cw rotation.
		want = m.vv
		if want > np {
			want = np
		}
		sid := m.ids[self]
		f, bb := 0, np-1
		for t := 0; t < want; t++ {
			k := f
			if f != bb {
				pf, pb := dpos[cwIdx(f)], dpos[cwIdx(bb)]
				df, db := ringMinDist(sid, m.ids[pf]), ringMinDist(sid, m.ids[pb])
				if df > db || (df == db && pf > pb) {
					k = bb
				}
			}
			chosen[cwIdx(k)] = true
			if k == f {
				f++
			} else {
				bb--
			}
		}
	}
	// Write the view in cw sequence order.
	w := 0
	for j := 0; j < np && w < want; j++ {
		k := cwIdx(j)
		if !chosen[k] {
			continue
		}
		m.vicPos[base+w] = dpos[k]
		m.vicAge[base+w] = dage[k]
		w++
	}
	m.vicLen[self] = uint16(w)
}

// selectBalanced marks the kept pool entries in chosen: ViewSize/2 closest
// clockwise plus ViewSize/2 closest counterclockwise (the true ring
// neighbour on each side is always retained), leftover capacity filled with
// the globally closest of the middle rest — vicinity.selectBalanced on the
// cw rotation of the deduplicated pool, with every sort replaced by
// positional walks. Returns how many entries were marked.
func (m *mixer) selectBalanced(self int, dpos []int32, chosen []bool, cwIdx func(int) int) int {
	np := len(dpos)
	half := m.vv / 2
	if half == 0 {
		half = 1
	}
	take := half
	if take > np {
		take = np
	}
	out := 0
	for j := 0; j < take; j++ {
		chosen[cwIdx(j)] = true
		out++
	}
	// Counterclockwise: the cw order walked from the far end, never past
	// the clockwise picks, capped at half picks.
	tail := np
	for tail-1 >= take && out < m.vv && out < 2*half {
		tail--
		chosen[cwIdx(tail)] = true
		out++
	}
	// Remainder: globally closest of the untouched middle run [take, tail).
	// Min distance is unimodal along the cw order, so the (dist, pos) fill
	// is the same two-pointer merge as vicinityPayload over the segment.
	if out < m.vv && take < tail {
		sid := m.ids[self]
		f, b := take, tail-1
		for out < m.vv && f <= b {
			k := f
			if f != b {
				pf, pb := dpos[cwIdx(f)], dpos[cwIdx(b)]
				df, db := ringMinDist(sid, m.ids[pf]), ringMinDist(sid, m.ids[pb])
				if df > db || (df == db && pf > pb) {
					k = b
				}
			}
			chosen[cwIdx(k)] = true
			out++
			if k == f {
				f++
			} else {
				b--
			}
		}
	}
	return out
}

// ringNeighbors returns node i's d-links from its VICINITY view: the
// closest clockwise (successor) and counterclockwise (predecessor) peers.
// The view's cw-ascending invariant makes them its first and last entries
// (they coincide in a single-entry view — the two-node ring case). ok is
// false while the view is empty.
func (m *mixer) ringNeighbors(i int) (pred, succ int32, ok bool) {
	base := i * m.vv
	ln := int(m.vicLen[i])
	if ln == 0 {
		return 0, 0, false
	}
	return m.vicPos[base+ln-1], m.vicPos[base], true
}

// freeze resolves the converged state into a compact arena: r-links are
// each node's CYCLON view in internal order, d-links its [pred, succ] ring
// neighbours. Values are already dense positions, so no ID resolution (and
// no placeholder patching) is needed; the fill is shard-parallel into
// disjoint regions.
func (m *mixer) freeze() *core.PosArena {
	rLens := make([]int, m.n)
	dLens := make([]int, m.n)
	for i := 0; i < m.n; i++ {
		rLens[i] = int(m.cycLen[i])
		if m.vicLen[i] > 0 {
			dLens[i] = 2
		}
	}
	arena := core.NewPosArena(rLens, dLens)
	m.eachShard(func(lo, hi int, _ *mixScratch) {
		for i := lo; i < hi; i++ {
			copy(arena.RSlot(i), m.cycPos[i*m.cv:i*m.cv+rLens[i]])
			if dLens[i] > 0 {
				pred, succ, _ := m.ringNeighbors(i)
				d := arena.DSlot(i)
				d[0], d[1] = pred, succ
			}
		}
	})
	return arena
}

// convergence returns the fraction of nodes whose d-links point at their
// true ring neighbours (positions are ring ranks, so truth is i±1 mod n).
func (m *mixer) convergence() float64 {
	shards := m.shards()
	counts := make([]int, shards)
	_ = runner.Map(m.cfg.Parallelism, shards, nil, func(s int) error {
		lo, hi := m.shardRange(s)
		correct := 0
		for i := lo; i < hi; i++ {
			pred, succ, ok := m.ringNeighbors(i)
			if !ok {
				continue
			}
			if pred == int32((i-1+m.n)%m.n) && succ == int32((i+1)%m.n) {
				correct++
			}
		}
		counts[s] = correct
		return nil
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(m.n)
}
