// Converged bootstrap: building a network directly in its self-organized
// operating point, for experiments at populations where simulating the
// star-bootstrap warm-up of Section 7.1 is computationally out of reach
// (the million-node scale sweeps). The paper's own argument justifies the
// shortcut: dissemination over a frozen overlay is insensitive to how the
// overlay got there (Section 7.1), so the scale experiments only need the
// converged state — the true ring neighbours in every VICINITY view and
// well-mixed random links in every CYCLON view — not the transient that
// produces it. A deterministic seed still drives everything: node IDs, the
// seeded random contacts and the subsequent mixing cycles all derive from
// Config.Seed.
package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"ringcast/internal/ident"
	"ringcast/internal/runner"
	"ringcast/internal/view"
)

// convergedContacts is how many uniform random CYCLON contacts each node is
// bootstrapped with; a handful suffices for the shuffles of the mixing
// cycles to randomize views (CYCLON mixes in O(log N) cycles from any
// connected topology).
const convergedContacts = 5

// tagConvergedContacts derives the per-node contact streams of NewConverged
// from the master seed (shared with the mix engine's tag namespace).
const tagConvergedContacts int64 = 0x434f4e54 // "CONT"

// NewConverged builds a network directly in the converged state the paper's
// warm-up produces: every node's VICINITY view is seeded with its true ring
// neighbours (predecessor and successor in sorted-ID order) and its CYCLON
// view with a few uniform random contacts. Callers typically run a few
// dozen mixing cycles afterwards (real gossip keeps the ring stable — the
// balanced selection always retains the true neighbours — while CYCLON
// randomizes the r-links), then freeze and disseminate. Multi-ring
// configurations are not supported.
func NewConverged(cfg Config) (*Network, error) {
	if cfg.Rings > 1 {
		return nil, fmt.Errorf("sim: NewConverged supports a single ring, got %d", cfg.Rings)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := newEmpty(cfg)
	for i := 0; i < cfg.N; i++ {
		if cfg.NodeIDs != nil {
			n.addNodeWithID(cfg.NodeIDs[i])
		} else {
			n.addNode()
		}
	}
	// Ring order: positions sorted by ID.
	order := make([]int32, len(n.nodes))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if n.nodes[a].ID < n.nodes[b].ID {
			return -1
		}
		return 1
	})
	for r, p := range order {
		nd := n.nodes[p]
		if nd.Vic != nil {
			pred := n.nodes[order[(r-1+len(order))%len(order)]]
			succ := n.nodes[order[(r+1)%len(order)]]
			nd.Vic.View().Add(view.Entry{Node: pred.ID, Age: 0})
			nd.Vic.View().Add(view.Entry{Node: succ.ID, Age: 0})
		}
		// Contacts come from a per-node stream derived from the master seed
		// and the node's insertion position — not from the shared n.rng,
		// whose draw order would couple every node's contacts to the ring
		// iteration order (and make any sharded bootstrap reorder them).
		// Same discipline as the compact mixing engine's seeding.
		crng := rand.New(rand.NewSource(runner.UnitSeed(cfg.Seed, tagConvergedContacts, int64(p))))
		for c := 0; c < convergedContacts; c++ {
			contact := n.nodes[crng.Intn(len(n.nodes))]
			nd.Cyc.AddContact(contact.ID, "") // self/duplicate contacts skipped
		}
	}
	return n, nil
}

// newEmpty allocates a Network shell with no nodes — the shared plumbing of
// New and NewConverged.
func newEmpty(cfg Config) *Network {
	n := &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		gen:   ident.NewGenerator(cfg.Seed ^ 0x5ee0),
		nodes: make([]*Node, 0, cfg.N),
		index: make(map[ident.ID]int, cfg.N),
	}
	for r := 1; r < cfg.Rings; r++ {
		n.ringIndex = append(n.ringIndex, make(map[ident.ID]int, cfg.N))
	}
	return n
}
