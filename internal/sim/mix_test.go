package sim

import (
	"runtime"
	"testing"

	"ringcast/internal/core"
)

// arenaBytes flattens an arena into one comparable slice: per node, the
// r-block then d-block, prefixed by their lengths. Byte-identical arenas
// (the determinism contract of BuildConverged) flatten identically.
func arenaBytes(t *testing.T, a *core.PosArena) []int32 {
	t.Helper()
	out := make([]int32, 0, a.LinkCount()+2*a.N())
	for i := 0; i < a.N(); i++ {
		l := a.Links(i)
		out = append(out, int32(len(l.R)), int32(len(l.D)))
		out = append(out, l.R...)
		out = append(out, l.D...)
	}
	return out
}

func buildAt(t *testing.T, n, workers int) *MixResult {
	t.Helper()
	cfg := DefaultMixConfig(n)
	cfg.Seed = 7
	cfg.Parallelism = workers
	res, err := BuildConverged(cfg)
	if err != nil {
		t.Fatalf("BuildConverged(n=%d, workers=%d): %v", n, workers, err)
	}
	return res
}

// TestBuildConvergedParallelInvariance is the tentpole's determinism
// invariance test: the frozen overlay (arena bytes and ring convergence)
// must be byte-identical at any worker count, both for populations that fit
// one shard and for populations spanning several shards.
func TestBuildConvergedParallelInvariance(t *testing.T) {
	for _, n := range []int{300, mixShardNodes + 1500} {
		ref := buildAt(t, n, 1)
		refBytes := arenaBytes(t, ref.Arena)
		workers := []int{2, 4, runtime.NumCPU()}
		for _, w := range workers {
			got := buildAt(t, n, w)
			if got.Convergence != ref.Convergence {
				t.Errorf("n=%d workers=%d: convergence %v, want %v (sequential)", n, w, got.Convergence, ref.Convergence)
			}
			gotBytes := arenaBytes(t, got.Arena)
			if len(gotBytes) != len(refBytes) {
				t.Fatalf("n=%d workers=%d: arena size %d, want %d", n, w, len(gotBytes), len(refBytes))
			}
			for i := range refBytes {
				if gotBytes[i] != refBytes[i] {
					t.Fatalf("n=%d workers=%d: arena diverges at flat index %d: got %d, want %d", n, w, i, gotBytes[i], refBytes[i])
				}
			}
		}
	}
}

// TestBuildConvergedRing checks the operating point: the converged seeding
// plus 30 mixing cycles must leave every node's d-links on its true ring
// neighbours (balanced selection always retains them), and the r-links
// well mixed — not the bootstrap contacts drawn at seeding time.
func TestBuildConvergedRing(t *testing.T) {
	const n = 2000
	res := buildAt(t, n, 0)
	if res.Convergence != 1.0 {
		t.Fatalf("convergence = %v, want 1.0", res.Convergence)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		d := res.Arena.Links(i).D
		if len(d) != 2 {
			t.Fatalf("node %d: %d d-links, want 2", i, len(d))
		}
		wantPred, wantSucc := int32((i-1+n)%n), int32((i+1)%n)
		if d[0] != wantPred || d[1] != wantSucc {
			t.Errorf("node %d: d-links [%d %d], want [%d %d]", i, d[0], d[1], wantPred, wantSucc)
		}
	}
	// Mixing must fill CYCLON views to capacity and spread targets: with
	// view 20 over 2000 nodes, mean in-degree is 20, and the mixed overlay
	// should leave no node with an empty r-block and nearly all view slots
	// filled.
	total, full := 0, 0
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		r := res.Arena.Links(i).R
		total += len(r)
		if len(r) == 20 {
			full++
		}
		for _, p := range r {
			if p == int32(i) {
				t.Fatalf("node %d holds a self r-link", i)
			}
			indeg[p]++
		}
	}
	if full < n*95/100 {
		t.Errorf("only %d/%d nodes have full CYCLON views after mixing", full, n)
	}
	zero := 0
	for _, d := range indeg {
		if d == 0 {
			zero++
		}
	}
	if zero > n/100 {
		t.Errorf("%d nodes have zero r-link in-degree; mixing did not spread links", zero)
	}
}

// TestBuildConvergedDeterministicAcrossRuns pins that the build is a pure
// function of the config, and that the seed actually matters.
func TestBuildConvergedDeterministicAcrossRuns(t *testing.T) {
	a := buildAt(t, 500, 0)
	b := buildAt(t, 500, 0)
	ab, bb := arenaBytes(t, a.Arena), arenaBytes(t, b.Arena)
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("same config diverges at flat index %d", i)
		}
	}
	cfg := DefaultMixConfig(500)
	cfg.Seed = 8
	c, err := BuildConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cb := arenaBytes(t, c.Arena)
	same := len(cb) == len(ab)
	if same {
		for i := range ab {
			if ab[i] != cb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical overlays")
	}
}

// TestMixConfigValidation covers the rejection paths.
func TestMixConfigValidation(t *testing.T) {
	bad := []func(*MixConfig){
		func(c *MixConfig) { c.N = 1 },
		func(c *MixConfig) { c.Cycles = -1 },
		func(c *MixConfig) { c.Cyclon.ViewSize = 0 },
		func(c *MixConfig) { c.Cyclon.ShuffleLen = 99 },
		func(c *MixConfig) { c.Cyclon.RandomPeerSelection = true },
		func(c *MixConfig) { c.Vicinity.GossipLen = 0 },
		func(c *MixConfig) { c.Vicinity.GossipLen = 99 },
		func(c *MixConfig) { c.Vicinity.ViewSize = 300 },
	}
	for i, mutate := range bad {
		cfg := DefaultMixConfig(100)
		mutate(&cfg)
		if _, err := BuildConverged(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestBuildConvergedTinyPopulations exercises the degenerate rings (the
// two-node ring has pred == succ; three nodes still have distinct ones).
func TestBuildConvergedTinyPopulations(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		cfg := DefaultMixConfig(n)
		cfg.Cycles = 10
		res, err := BuildConverged(cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Convergence != 1.0 {
			t.Errorf("n=%d: convergence %v, want 1.0", n, res.Convergence)
		}
	}
}
