package sim

import (
	"math/rand"
	"testing"

	"ringcast/internal/ident"
	"ringcast/internal/runner"
)

// TestNewConvergedStartsConverged asserts the oracle bootstrap lands
// directly in the operating point: full ring convergence at cycle zero.
func TestNewConvergedStartsConverged(t *testing.T) {
	cfg := DefaultConfig(96)
	cfg.Seed = 4
	nw, err := NewConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if conv := nw.RingConvergence(); conv != 1.0 {
		t.Fatalf("bootstrap convergence %v, want 1.0", conv)
	}
	if nw.AliveCount() != 96 {
		t.Fatalf("alive %d", nw.AliveCount())
	}
}

// TestNewConvergedStableUnderGossip runs mixing cycles and asserts real
// gossip keeps the ring converged (the balanced VICINITY selection retains
// true neighbours) while CYCLON has spread beyond the seeded contacts.
func TestNewConvergedStableUnderGossip(t *testing.T) {
	cfg := DefaultConfig(128)
	cfg.Seed = 9
	nw, err := NewConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw.RunCycles(30)
	if conv := nw.RingConvergence(); conv < 0.99 {
		t.Fatalf("convergence after 30 mixing cycles %v, want ~1.0", conv)
	}
	// CYCLON views should have grown past the seeded contact count.
	grown := 0
	for _, nd := range nw.Nodes() {
		if nd.Cyc.View().Len() > convergedContacts {
			grown++
		}
	}
	if grown < 100 {
		t.Fatalf("only %d/128 cyclon views grew beyond the seeds", grown)
	}
}

// TestNewConvergedDeterministic pins that two builds from one seed are
// identical (same IDs, same seeded views).
func TestNewConvergedDeterministic(t *testing.T) {
	build := func() *Network {
		cfg := DefaultConfig(64)
		cfg.Seed = 11
		nw, err := NewConverged(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.RunCycles(5)
		return nw
	}
	a, b := build(), build()
	na, nb := a.Nodes(), b.Nodes()
	for i := range na {
		if na[i].ID != nb[i].ID {
			t.Fatalf("node %d ID differs", i)
		}
		if na[i].Cyc.View().String() != nb[i].Cyc.View().String() {
			t.Fatalf("node %d cyclon view differs", i)
		}
		if na[i].Vic.View().String() != nb[i].Vic.View().String() {
			t.Fatalf("node %d vicinity view differs", i)
		}
	}
}

// TestNewConvergedPerNodeContactStreams is the regression test for the
// shared-rng coupling bug: bootstrap contacts must come from per-node
// streams derived via runner.UnitSeed from (seed, tag, node position), so a
// node's contact set is a pure function of the seed and its position —
// independent of ring iteration order and of any other node's draws. The
// test pins the derivation by recomputing the expected contact sets
// directly from the streams.
func TestNewConvergedPerNodeContactStreams(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.Seed = 17
	nw, err := NewConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := nw.Nodes()
	for p, nd := range nodes {
		crng := rand.New(rand.NewSource(runner.UnitSeed(cfg.Seed, tagConvergedContacts, int64(p))))
		want := make(map[ident.ID]bool)
		for c := 0; c < convergedContacts; c++ {
			contact := nodes[crng.Intn(len(nodes))]
			if contact.ID != nd.ID {
				want[contact.ID] = true
			}
		}
		for id := range want {
			if !nd.Cyc.View().Contains(id) {
				t.Fatalf("node %d: contact %v from its derived stream missing from the view", p, id)
			}
		}
		for _, e := range nd.Cyc.View().All() {
			if !want[e.Node] {
				t.Fatalf("node %d: view holds %v, not drawn from the node's derived stream", p, e.Node)
			}
		}
	}
}

// TestNewConvergedRejectsMultiRing pins the unsupported configuration.
func TestNewConvergedRejectsMultiRing(t *testing.T) {
	cfg := DefaultConfig(32)
	cfg.Rings = 2
	if _, err := NewConverged(cfg); err == nil {
		t.Fatal("multi-ring NewConverged did not error")
	}
}

// TestNewConvergedJoinAndKill sanity-checks that the usual membership
// operations work on a converged-bootstrap network.
func TestNewConvergedJoinAndKill(t *testing.T) {
	cfg := DefaultConfig(48)
	cfg.Seed = 2
	nw, err := NewConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Join(); err != nil {
		t.Fatal(err)
	}
	killed := nw.KillRandom(5)
	if len(killed) != 5 || nw.AliveCount() != 44 {
		t.Fatalf("killed %d alive %d", len(killed), nw.AliveCount())
	}
	nw.RunCycles(3)
}
