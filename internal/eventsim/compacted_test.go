package eventsim

import (
	"math/rand"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
)

// idOnlySelector forces the ID-path fallback (it is not a core.PosSelector).
type idOnlySelector struct{}

func (idOnlySelector) Name() string { return "id-only" }
func (idOnlySelector) Select(links core.Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	return core.RingCast{}.Select(links, from, fanout, rng)
}

// TestCompactedOverlayForeignSelector pins the guard: a foreign selector on
// a compacted overlay must error instead of silently selecting over empty
// link sets and reporting a one-node "success".
func TestCompactedOverlayForeignSelector(t *testing.T) {
	gen := ident.NewGenerator(1)
	const n = 8
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = gen.Next()
	}
	links := make([]core.Links, n)
	for i := range links {
		links[i].D = []ident.ID{ids[(i+1)%n], ids[(i+n-1)%n]}
	}
	o, err := dissem.FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	o.Compact()
	if _, err := Run(o, ids[0], idOnlySelector{}, 2, ConstantLatency(1), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("foreign selector on compacted overlay did not error")
	}
	// Built-in selectors keep working on the compacted overlay.
	res, err := Run(o, ids[0], core.RingCast{}, 2, ConstantLatency(1), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != n {
		t.Fatalf("ring dissemination reached %d/%d", res.Reached, n)
	}
}
