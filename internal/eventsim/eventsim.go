// Package eventsim is a discrete-event dissemination simulator with
// heterogeneous per-message latencies. It reproduces the robustness check of
// Section 7.1: the paper varied the message forwarding time from zero to
// several times the gossiping period and "recorded no effect whatsoever on
// the macroscopic behavior of disseminations" — the hit ratio and message
// overhead are invariant to timing, because a node forwards a fresh message
// to the same number of targets picked with the same logic regardless of
// when it arrives.
//
// Where internal/dissem advances in lockstep hops (the paper's presentation
// model), eventsim schedules each message copy individually on a priority
// queue with a caller-supplied latency distribution. Hop counts lose meaning
// here; completion time becomes continuous.
//
//ringcast:deterministic
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
)

// LatencyFunc draws the forwarding delay for one message copy.
type LatencyFunc func(rng *rand.Rand) float64

// ConstantLatency returns a LatencyFunc with a fixed delay.
func ConstantLatency(d float64) LatencyFunc {
	return func(*rand.Rand) float64 { return d }
}

// UniformLatency returns delays uniform in [lo, hi).
func UniformLatency(lo, hi float64) LatencyFunc {
	return func(rng *rand.Rand) float64 { return lo + rng.Float64()*(hi-lo) }
}

// ExpLatency returns exponentially distributed delays with the given mean —
// the classic wide-area latency stand-in.
func ExpLatency(mean float64) LatencyFunc {
	return func(rng *rand.Rand) float64 { return rng.ExpFloat64() * mean }
}

// Result records one event-driven dissemination.
type Result struct {
	// AliveTotal and Reached mirror the hop-based simulator's accounting.
	AliveTotal, Reached int
	// Virgin, Redundant and Lost split the message overhead as in Figure 8.
	Virgin, Redundant, Lost int
	// Blocked counts copies dropped in flight by injected faults
	// (partitions, loss) when the run executes under a FaultModel.
	Blocked int
	// CompletionTime is when the last first-time delivery happened.
	CompletionTime float64
	// Deliveries is the total number of message copies delivered.
	Deliveries int
}

// HitRatio is the fraction of live nodes reached.
func (r *Result) HitRatio() float64 {
	if r.AliveTotal == 0 {
		return 0
	}
	return float64(r.Reached) / float64(r.AliveTotal)
}

// MissRatio is 1 - HitRatio.
func (r *Result) MissRatio() float64 { return 1 - r.HitRatio() }

// Complete reports whether every live node was reached.
func (r *Result) Complete() bool { return r.Reached == r.AliveTotal }

// TotalMsgs is the total number of point-to-point messages sent.
func (r *Result) TotalMsgs() int { return r.Virgin + r.Redundant + r.Lost + r.Blocked }

// FaultModel injects scenario faults into an event-driven run. It is the
// continuous-time twin of dissem.FaultModel: instead of hop boundaries, the
// engine schedules one sentinel event per entry of EventTimes on its heap —
// sentinels sort before same-time deliveries — and calls AdvanceTo when a
// sentinel pops. Dead and Deliver follow the hop engine's semantics, and the
// same determinism contract applies: all randomness comes from the run's
// rng, per-run state is reset by Begin, and a model must not be shared
// between concurrent runs. internal/scenario's State implements both fault
// interfaces, which is what makes the cross-surface invariance test
// possible (same scenario, hop engine vs event engine at constant latency,
// identical reached counts).
type FaultModel interface {
	// Begin resets per-run state before a dissemination starts.
	Begin()
	// EventTimes lists the times (ascending) at which timeline events fire;
	// the engine schedules a sentinel heap entry for each.
	EventTimes() []float64
	// AdvanceTo applies all timeline events scheduled at times <= t.
	AdvanceTo(t float64)
	// Dead reports whether node i has been killed by a timeline event.
	Dead(i int32) bool
	// Deliver reports whether the in-flight copy from->to survives the
	// currently active partition and loss faults.
	Deliver(from, to int32, rng *rand.Rand) bool
}

// event is one in-flight message copy. Endpoints are dense overlay
// positions; from is always the forwarding node's position (the origin's
// own sends carry the origin's position — core.NilPos appears only as the
// selection-exclusion argument, never on a scheduled copy), so FaultModel
// implementations may index by from without guarding.
type event struct {
	at   float64
	to   int32
	from int32
	seq  int // tie-breaker for deterministic ordering
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Scratch holds the reusable buffers of the event engine: the notified
// bitmap, the event heap, and the selection buffers. Reusing one Scratch
// across runs within a sweep unit removes all per-run allocation. A Scratch
// must not be shared between concurrent runs; the zero value is ready.
type Scratch struct {
	notified dissem.Bitmap
	q        eventQueue
	targets  []int32
	sel      core.PosScratch
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Run disseminates one message from origin over the frozen overlay with
// per-copy latencies drawn from lat. The selection logic is identical to the
// hop-based simulator; only timing differs.
func Run(o *dissem.Overlay, origin ident.ID, sel core.Selector, fanout int, lat LatencyFunc, rng *rand.Rand) (*Result, error) {
	return RunScratch(o, origin, sel, fanout, lat, rng, nil)
}

// RunScratch is Run with caller-managed scratch buffers (see Scratch). A nil
// scratch allocates a private one.
func RunScratch(o *dissem.Overlay, origin ident.ID, sel core.Selector, fanout int, lat LatencyFunc, rng *rand.Rand, sc *Scratch) (*Result, error) {
	return RunFaults(o, origin, sel, fanout, lat, rng, nil, sc)
}

// sentinelPos marks a heap entry as a fault-timeline sentinel rather than a
// message copy. Real deliveries always target positions >= 0.
const sentinelPos int32 = -1

// RunFaults is RunScratch with an optional fault model: timeline events are
// scheduled as sentinel entries on the engine's event heap and applied in
// time order, interleaved with deliveries (a sentinel sorts before
// same-time deliveries). A nil faults runs the fail-free fast path with
// exactly the pre-scenario randomness consumption.
func RunFaults(o *dissem.Overlay, origin ident.ID, sel core.Selector, fanout int, lat LatencyFunc, rng *rand.Rand, faults FaultModel, sc *Scratch) (*Result, error) {
	if sel == nil {
		return nil, fmt.Errorf("eventsim: selector must not be nil")
	}
	if lat == nil {
		return nil, fmt.Errorf("eventsim: latency function must not be nil")
	}
	oi, ok := o.Pos(origin)
	if !ok {
		return nil, fmt.Errorf("eventsim: unknown origin %v", origin)
	}
	if !o.IsAlive(oi) {
		return nil, fmt.Errorf("eventsim: origin %v is dead", origin)
	}
	if sc == nil {
		sc = NewScratch()
	}
	posSel, _ := sel.(core.PosSelector)
	if posSel == nil && o.Compacted() {
		return nil, fmt.Errorf("eventsim: selector %s needs ID links, but the overlay was compacted", sel.Name())
	}

	res := &Result{AliveTotal: o.AliveCount()}
	sc.notified = sc.notified.Reuse(o.N())
	notified := sc.notified
	notified.Set(int32(oi))
	res.Reached = 1

	q := &sc.q
	*q = (*q)[:0]
	seq := 0
	if faults != nil {
		faults.Begin()
		// Sentinels are pushed before anything else, so at equal times their
		// lower sequence numbers pop them ahead of deliveries — the
		// continuous-time analogue of applying events at a hop boundary
		// before the hop's arrivals are processed.
		for _, t := range faults.EventTimes() {
			seq++
			heap.Push(q, event{at: t, to: sentinelPos, seq: seq})
		}
	}
	emit := func(i, from int32, now float64) {
		sc.targets = sc.targets[:0]
		if posSel != nil {
			sc.targets = posSel.SelectPos(sc.targets, &sc.sel, o.PosLinks(int(i)), from, fanout, rng)
		} else {
			fromID := ident.Nil
			if from >= 0 {
				fromID = o.IDs()[from]
			}
			for _, tgt := range sel.Select(o.Links(int(i)), fromID, fanout, rng) {
				if j, ok := o.Pos(tgt); ok {
					sc.targets = append(sc.targets, int32(j))
				}
			}
		}
		for _, j := range sc.targets {
			if j < 0 {
				continue // link to an unknown node: lost silently
			}
			seq++
			heap.Push(q, event{at: now + lat(rng), to: j, from: i, seq: seq})
		}
	}
	emit(int32(oi), core.NilPos, 0)

	for q.Len() > 0 {
		ev := heap.Pop(q).(event)
		if ev.to == sentinelPos {
			faults.AdvanceTo(ev.at)
			continue
		}
		if faults != nil && !faults.Deliver(ev.from, ev.to, rng) {
			res.Blocked++
			continue
		}
		res.Deliveries++
		if !o.IsAlive(int(ev.to)) || (faults != nil && faults.Dead(ev.to)) {
			res.Lost++
			continue
		}
		if notified.Get(ev.to) {
			res.Redundant++
			continue
		}
		res.Virgin++
		notified.Set(ev.to)
		res.Reached++
		res.CompletionTime = ev.at
		emit(ev.to, ev.from, ev.at)
	}
	return res, nil
}
