package eventsim

import (
	"math/rand"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
)

// ringOverlay builds a perfect ring with rdeg random links, as in the
// dissem tests.
func ringOverlay(t *testing.T, n, rdeg int, seed int64) *dissem.Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = ident.ID(i + 1)
	}
	links := make([]core.Links, n)
	for i := range links {
		links[i].D = []ident.ID{ids[(i-1+n)%n], ids[(i+1)%n]}
		seen := map[int]bool{i: true}
		for len(links[i].R) < rdeg {
			j := rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			links[i].R = append(links[i].R, ids[j])
		}
	}
	o, err := dissem.FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestValidation(t *testing.T) {
	o := ringOverlay(t, 10, 2, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(o, 1, nil, 2, ConstantLatency(1), rng); err == nil {
		t.Error("nil selector accepted")
	}
	if _, err := Run(o, 1, core.RingCast{}, 2, nil, rng); err == nil {
		t.Error("nil latency accepted")
	}
	if _, err := Run(o, 999, core.RingCast{}, 2, ConstantLatency(1), rng); err == nil {
		t.Error("unknown origin accepted")
	}
	dead := o.Clone()
	dead.KillFraction(1, rng)
	if _, err := Run(dead, 1, core.RingCast{}, 2, ConstantLatency(1), rng); err == nil {
		t.Error("dead origin accepted")
	}
}

func TestRingCastCompleteUnderAnyLatency(t *testing.T) {
	// Section 7.1's invariance claim: timing does not change reachability.
	o := ringOverlay(t, 400, 10, 7)
	for name, lat := range map[string]LatencyFunc{
		"constant": ConstantLatency(1),
		"uniform":  UniformLatency(0.1, 10),
		"exp":      ExpLatency(3),
	} {
		rng := rand.New(rand.NewSource(11))
		res, err := Run(o, 1, core.RingCast{}, 2, lat, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Errorf("%s latency: RingCast incomplete (%d/%d)", name, res.Reached, res.AliveTotal)
		}
		if res.CompletionTime <= 0 {
			t.Errorf("%s latency: completion time not recorded", name)
		}
	}
}

func TestMacroscopicInvarianceVsHopModel(t *testing.T) {
	// The same overlay and fanout must give statistically indistinguishable
	// reach in the hop-based and event-driven models. With RingCast the
	// comparison is exact (both complete); with RandCast we compare means
	// over repetitions.
	o := ringOverlay(t, 500, 15, 9)
	const runs = 30
	f := 3

	hopMiss, evMiss := 0.0, 0.0
	hopMsgs, evMsgs := 0.0, 0.0
	rngH := rand.New(rand.NewSource(21))
	rngE := rand.New(rand.NewSource(22))
	for i := 0; i < runs; i++ {
		d, err := dissem.RunOpts(o, 1, core.RandCast{}, f, rngH, dissem.Options{SkipLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		hopMiss += d.MissRatio()
		hopMsgs += float64(d.TotalMsgs())
		r, err := Run(o, 1, core.RandCast{}, f, ExpLatency(5), rngE)
		if err != nil {
			t.Fatal(err)
		}
		evMiss += r.MissRatio()
		evMsgs += float64(r.TotalMsgs())
	}
	hopMiss /= runs
	evMiss /= runs
	hopMsgs /= runs
	evMsgs /= runs
	if diff := hopMiss - evMiss; diff > 0.03 || diff < -0.03 {
		t.Errorf("miss ratio diverged between models: hop %.4f vs event %.4f", hopMiss, evMiss)
	}
	// Message overhead is F x reached in both models.
	if ratio := evMsgs / hopMsgs; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("message overhead diverged: hop %.0f vs event %.0f", hopMsgs, evMsgs)
	}
}

func TestAccountingConsistency(t *testing.T) {
	o := ringOverlay(t, 200, 8, 3)
	rng := rand.New(rand.NewSource(5))
	res, err := Run(o, 1, core.RingCast{}, 3, ExpLatency(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Virgin != res.Reached-1 {
		t.Fatalf("virgin = %d, want %d", res.Virgin, res.Reached-1)
	}
	if res.Deliveries != res.TotalMsgs() {
		t.Fatalf("deliveries %d != total msgs %d", res.Deliveries, res.TotalMsgs())
	}
	if res.Lost != 0 {
		t.Fatal("lost messages in fail-free overlay")
	}
}

func TestLostWithDeadNodes(t *testing.T) {
	o := ringOverlay(t, 200, 8, 4)
	rng := rand.New(rand.NewSource(6))
	o.KillFraction(0.2, rng)
	origin, err := o.RandomAliveOrigin(rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(o, origin, core.RingCast{}, 3, ExpLatency(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("no lost messages despite dead nodes")
	}
	if res.Reached > res.AliveTotal {
		t.Fatal("reached more than alive")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	o := ringOverlay(t, 150, 6, 8)
	r1, err := Run(o, 1, core.RandCast{}, 3, ExpLatency(2), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(o, 1, core.RandCast{}, 3, ExpLatency(2), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reached != r2.Reached || r1.CompletionTime != r2.CompletionTime {
		t.Fatal("identical seeds diverged")
	}
}

func TestLatencyHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if ConstantLatency(4)(rng) != 4 {
		t.Error("constant latency broken")
	}
	for i := 0; i < 100; i++ {
		if d := UniformLatency(2, 3)(rng); d < 2 || d >= 3 {
			t.Fatalf("uniform latency out of range: %v", d)
		}
		if d := ExpLatency(1)(rng); d < 0 {
			t.Fatalf("negative exponential latency: %v", d)
		}
	}
}
