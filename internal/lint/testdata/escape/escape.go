// Package escapefixture is the hotalloc fixture, a standalone module so the
// escape-analysis gate can run a real `go build -gcflags=-m` against it: Hot
// is marked ringcast:hotpath and leaks a local to the heap (must fire), Cool
// leaks but is unmarked (must stay silent), HotClean is marked and
// allocation-free (must stay silent), and HotWaived carries a justified
// hotalloc waiver on its escaping declaration (suppressed).
package escapefixture

// Hot leaks its local to the heap; hotalloc must flag it.
//
//ringcast:hotpath
func Hot() *int {
	x := 42
	return &x
}

// Cool also escapes but carries no marker, so hotalloc stays silent.
func Cool() *int {
	x := 7
	return &x
}

// HotClean is marked and allocation-free.
//
//ringcast:hotpath
func HotClean(a, b int) int {
	return a*31 + b
}

// HotWaived deliberately escapes, with the waiver on the moved-to-heap
// declaration line.
//
//ringcast:hotpath
func HotWaived() *int {
	x := 9 //lint:hotalloc fixture: deliberate escape proving the waiver path
	return &x
}
