// Package helper is the unmarked laundering package of the detflow fixture:
// it wraps wall-clock and global-rand draws that detrand cannot see from the
// marked caller's side.
package helper

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Indirect launders the clock read through one more hop.
func Indirect() int64 {
	return Stamp()
}

// Draw uses the process-global rand source.
func Draw() int {
	return rand.Intn(10)
}

// Pure is deterministic; calling it from a marked package is fine.
func Pure(a int) int {
	return a + 1
}

// Seeded derives its stream explicitly — the sanctioned mechanism, so its
// summary stays clean.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}
