// Package marked is the deterministic caller of the detflow fixture: every
// call chain into the unmarked helper that reaches the clock or global rand
// must be flagged, while pure and explicitly seeded helpers pass.
//
//ringcast:deterministic
package marked

import "detflow/helper"

// Run exercises the tainted and clean helper surfaces.
func Run(seed int64) int64 {
	total := int64(helper.Pure(1))
	total += int64(helper.Seeded(seed))
	total += helper.Stamp()       // want "unmarked package detflow/helper, which reaches time\\.Now"
	total += helper.Indirect()    // want "reaches detflow/helper\\.Stamp → time\\.Now"
	total += int64(helper.Draw()) // want "reaches math/rand\\.Intn"
	return total
}
