// Package nomarker is the negative detrand fixture: no determinism marker
// anywhere, so ambient randomness and the wall clock are legal here (this is
// what the live runtime and CLI layers look like to the analyzer).
package nomarker

import (
	"math/rand"
	"time"
)

func ambient() int {
	t := time.Now()
	time.Sleep(time.Microsecond)
	return rand.Intn(10) + t.Second()
}
