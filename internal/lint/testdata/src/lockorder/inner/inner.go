// Package inner is the callee half of the lockorder fixture: its Store mutex
// participates in a cross-package lock-order cycle through the Notifier
// interface, which dispatches back into the outer package.
package inner

import "sync"

// Notifier is implemented (in the sibling outer package) by a type whose
// Notify acquires its own mutex — the dispatch edge the cycle runs through.
type Notifier interface {
	Notify()
}

// Store guards v with Mu and calls out through N while holding it.
type Store struct {
	Mu sync.Mutex
	N  Notifier
	v  int
}

// Set acquires only Mu; on its own it creates no ordering edge.
func (s *Store) Set(v int) {
	s.Mu.Lock()
	s.v = v
	s.Mu.Unlock()
}

// SetAndNotify calls through the interface while Mu is held: the
// implementation acquires outer's mu, closing the Mu→mu half of the cycle.
func (s *Store) SetAndNotify(v int) {
	s.Mu.Lock()
	s.v = v
	s.N.Notify() // want "lock order cycle"
	s.Mu.Unlock()
}

// Wg lets WaitAll park the caller, making it a may-block summary.
var Wg sync.WaitGroup

// WaitAll blocks on the WaitGroup — the blocking site the outer package
// reaches transitively while holding a lock.
func WaitAll() {
	Wg.Wait()
}
