// Package outer is the caller half of the lockorder fixture: it acquires its
// own mutex before calling into inner (mu→Mu), while inner's notify path
// acquires them in the opposite order (Mu→mu).
package outer

import (
	"sync"

	"lockorder/inner"
)

// Coord pairs its own mutex with an inner.Store.
type Coord struct {
	mu sync.Mutex
	st *inner.Store
}

// Notify implements inner.Notifier; it runs with inner's Mu held and takes
// mu, the second half of the cycle.
func (c *Coord) Notify() {
	c.mu.Lock()
	c.mu.Unlock()
}

// Update acquires mu then calls Set, which acquires Mu: the mu→Mu ordering
// edge. The cycle is reported once, at the inner package's reverse edge.
func (c *Coord) Update() {
	c.mu.Lock()
	c.st.Set(1)
	c.mu.Unlock()
}

// Flush blocks transitively while mu is held: WaitAll's summary says
// may-block, even though no blocking syntax is visible here.
func (c *Coord) Flush() {
	c.mu.Lock()
	inner.WaitAll() // want "calling lockorder/inner\\.WaitAll while mu .* is held .* may block"
	c.mu.Unlock()
}

// Drain releases mu before blocking: no finding.
func (c *Coord) Drain() {
	c.mu.Lock()
	c.mu.Unlock()
	inner.WaitAll()
}
