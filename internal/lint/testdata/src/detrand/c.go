package detrand

import (
	crand "crypto/rand"   // want "deterministic package imports crypto/rand"
	randv2 "math/rand/v2" // want "deterministic package imports math/rand/v2"
)

func banned() int {
	b := make([]byte, 8)
	crand.Read(b)
	return randv2.IntN(3) + int(b[0])
}
