// Package detrand is the detrand analyzer fixture: the package carries the
// determinism marker, so ambient randomness and wall-clock reads must fire.
//
//ringcast:deterministic
package detrand

import (
	"math/rand"
	"time"
)

func globals() int {
	n := rand.Intn(10)                 // want "global math/rand.Intn"
	f := rand.Float64()                // want "global math/rand.Float64"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand.Shuffle"
	t := time.Now()                    // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)       // want "time.Sleep"
	_ = time.Since(t)                  // want "time.Since"
	return n + int(f)
}

func streams(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit stream: legal
	d := 5 * time.Second                // time arithmetic: legal
	_ = d
	return r.Intn(10)
}
