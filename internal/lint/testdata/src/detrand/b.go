package detrand

import "time"

// inherit proves marker inheritance: the marker sits in a.go and this file
// carries none, yet the whole package is covered.
func inherit() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}
