package detrand

import "time"

// waived shows a justified waiver suppressing a finding; the malformed and
// stale waiver shapes live in the waivers fixture, asserted without want
// comments (a want comment would merge into the waiver's own text).
func waived() time.Time {
	return time.Now() //lint:detrand fixture: justified waiver, finding suppressed
}
