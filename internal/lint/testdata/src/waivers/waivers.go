// Package waivers exercises waiver parsing end to end: a justified waiver
// suppresses its finding silently, a waiver without a justification is
// itself reported, and a waiver that suppresses nothing is flagged as stale.
// This fixture is asserted by TestWaiverAudit without want comments, because
// a trailing want comment would merge into the waiver comment's own text.
//
//ringcast:deterministic
package waivers

import "time"

func suppressed() time.Time {
	return time.Now() //lint:detrand fixture: justified waiver suppresses this finding
}

func unjustified() time.Time {
	//lint:detrand
	return time.Now()
}

func stale() int {
	//lint:detrand fixture: nothing on the next line violates detrand
	return 4
}
