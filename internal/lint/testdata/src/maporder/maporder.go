// Package maporder is the maporder analyzer fixture: map iteration whose
// order reaches a slice, an order-sensitive fold, or output must fire;
// collect-then-sort, commutative integer folds, map-to-map rewrites, and
// ranges over slices stay clean.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "order-sensitive fold of sum"
	}
	return sum
}

func intFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func stringConcat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s = s + v // want "order-sensitive accumulation of s"
	}
	return s
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map"
	}
}

func writing(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "b.WriteString inside range over map"
	}
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func reindex(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func perIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2) // declared inside the body: clean
		}
		total += len(local)
	}
	return total
}

func spawned(m map[string]func()) {
	for _, f := range m {
		go func() { f() }() // function literal body: separate scope, clean
	}
}

func waived(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:maporder fixture: consumer sorts downstream
	}
	return keys
}
