// Package lockio is the lockio analyzer fixture. sendLocked reproduces the
// PR 3 transport bug shape — a network write performed while the send mutex
// is held, so one wedged peer stalls every contender — and the rest of the
// file walks the blocking-call taxonomy: channel operations, blocking
// selects, WaitGroup waits, sleeps, dials, promoted embedded-mutex locks,
// and read-locked reads, plus the clean shapes (release-then-block,
// select-with-default, goroutine bodies, justified waivers).
package lockio

import (
	"net"
	"sync"
	"time"
)

type conn struct {
	mu sync.Mutex
	c  net.Conn
}

// sendLocked is the PR 3 wedged-peer shape: the deferred unlock holds mu for
// the whole body, so the network write happens under the lock.
func (s *conn) sendLocked(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.c.Write(b) // want "net.Conn.Write while s.mu is held"
	return err
}

func (s *conn) sendUnlocked(b []byte) error {
	s.mu.Lock()
	buf := append([]byte(nil), b...)
	s.mu.Unlock()
	_, err := s.c.Write(buf)
	return err
}

func channelUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "channel send while mu is held"
	<-ch    // want "channel receive while mu is held"
	mu.Unlock()
	ch <- 2
}

func nonBlockingSelect(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}

func blockingSelect(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	select { // want "select without default while mu is held"
	case v := <-ch:
		_ = v
	}
	mu.Unlock()
}

func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while mu is held"
	mu.Unlock()
}

func sleepUnderLock(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
	mu.Unlock()
}

func dialUnderLock(mu *sync.Mutex) (net.Conn, error) {
	mu.Lock()
	defer mu.Unlock()
	return net.Dial("tcp", "localhost:0") // want "net.Dial while mu is held"
}

func spawnUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() {
		ch <- 1 // separate goroutine: does not block the lock holder
	}()
	mu.Unlock()
}

type server struct {
	sync.Mutex
	l net.Listener
}

// acceptEmbedded exercises promoted-method lock tracking (s.Lock resolves to
// the embedded sync.Mutex) and Accept on a net.Listener.
func (s *server) acceptEmbedded() (net.Conn, error) {
	s.Lock()
	defer s.Unlock()
	return s.l.Accept() // want "net.Listener.Accept while s is held"
}

type store struct {
	mu sync.RWMutex
	c  net.Conn
}

func (st *store) readLocked(b []byte) (int, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.c.Read(b) // want "net.Conn.Read while st.mu is held"
}

func waivedHandoff(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 //lint:lockio fixture: handoff channel buffered to worker count, cannot block
	mu.Unlock()
}
