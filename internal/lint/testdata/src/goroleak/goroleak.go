// Package goroleak exercises the goroutine-leak analyzer: goroutines that
// can park forever on a channel with no reachable cancellation path are
// flagged at the go statement; the three sanctioned shutdown idioms — a
// done-channel select arm, a channel closed by its owner, and a buffered
// handoff — pass.
package goroleak

// LeakSend spawns a sender on an unbuffered channel that nothing ever
// receives from after the first value: the goroutine can park forever.
func LeakSend() int {
	ch := make(chan int)
	go func() { // want "goroutine spawned here can block forever: channel send"
		ch <- 1
	}()
	return <-ch
}

// LeakRecv parks a receiver on a channel that is never closed.
func LeakRecv() {
	ch := make(chan int)
	go func() { // want "goroutine spawned here can block forever: channel receive"
		<-ch
	}()
	ch <- 1
}

// pump is the leaky body of the transitive case: the leak site lives here,
// but the finding lands on the go statement that spawns it.
func pump(ch chan int) {
	ch <- 1
}

// LeakTransitive spawns a named function whose summary carries the leak.
func LeakTransitive() int {
	ch := make(chan int)
	go pump(ch) // want "goroutine spawned here can block forever: channel send"
	return <-ch
}

// OKSelectDone gives the sender a second arm to exit through: no finding.
func OKSelectDone(done chan struct{}) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-done:
		}
	}()
	return <-ch
}

// OKClosedRange ranges over a channel its owner closes: the range terminates
// when the channel drains, so the goroutine cannot park forever.
func OKClosedRange() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	ch <- 1
	close(ch)
}

// OKBufferedHandoff sends the result into a one-slot buffer: the send never
// blocks even if the caller abandons it.
func OKBufferedHandoff() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}
