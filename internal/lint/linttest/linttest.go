// Package linttest is the fixture harness for ringcast's static-analysis
// suite, modeled on golang.org/x/tools/go/analysis/analysistest: a fixture
// is one package of Go files under testdata/src/<name>, and every line that
// should trigger a finding carries a `// want "regexp"` comment (several
// quoted regexps per comment for several findings on one line; patterns are
// double-quoted Go strings, not backticks). Run loads the fixture, executes
// the analyzer through the same driver as cmd/ringcast-lint — so waiver
// suppression and waiver auditing behave exactly as in CI — and fails the
// test on any unmatched finding or unsatisfied expectation. RunModule is
// the interprocedural analogue: its fixture is a *tree*, one package per
// subdirectory cross-importing under "<name>/<sub>" import paths, loaded
// into one shared type universe so call-graph facts flow across the
// packages exactly as they do over the real module. The harness itself is
// deterministic: fixtures typecheck against compiler export data, no
// network, no randomness.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ringcast/internal/lint"
)

// wantRe matches a `// want "re" "re2"` expectation comment and captures the
// quoted regexps blob.
var wantRe = regexp.MustCompile(`//[ \t]*want((?:[ \t]+"(?:[^"\\]|\\.)*")+)`)

// quotedRe extracts the individual quoted regexps from the blob.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one `// want` regexp, anchored to a fixture file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir, runs a (with full waiver filtering
// and auditing, exactly like the ringcast-lint driver), and checks the
// diagnostics against the fixture's `// want` comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	expectations := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(expectations, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected finding at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// RunExpectClean loads the fixture at dir, runs a, and fails on any finding
// at all — for fixtures proving an analyzer stays silent (e.g. a package
// without the determinism marker).
func RunExpectClean(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		t.Errorf("expected no findings, got %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}

// RunModule loads the fixture tree at dir (one package per subdirectory,
// cross-importing under "<base>/<sub>" import paths; a flat directory loads
// as a single package), builds the call graph and facts, runs the module
// analyzers through the shared waiver filter, and checks the diagnostics
// against the tree's `// want` comments — the interprocedural analogue of
// Run.
func RunModule(t *testing.T, dir string, as ...*lint.ModuleAnalyzer) {
	t.Helper()
	pkgs, err := lint.LoadFixtureTree(dir)
	if err != nil {
		t.Fatalf("load fixture tree %s: %v", dir, err)
	}
	m := lint.NewModule(pkgs)
	raw, ran, err := lint.RunModuleAnalyzers(m, as)
	if err != nil {
		t.Fatalf("run module analyzers on %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, nil, raw, ran...)
	if err != nil {
		t.Fatalf("filter diagnostics on %s: %v", dir, err)
	}

	var expectations []*expectation
	for _, pkg := range pkgs {
		expectations = append(expectations, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		if !claim(expectations, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected finding at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants parses every `// want` comment in the fixture into anchored
// expectations.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want") && strings.Contains(c.Text, `"`) {
						t.Fatalf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation on (file, line) whose regexp
// matches message; it reports whether one was found.
func claim(expectations []*expectation, file string, line int, message string) bool {
	for _, e := range expectations {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// Diagnostics is a convenience for bespoke tests (the hotalloc escape
// fixture) that want the raw filtered findings of several analyzers.
func Diagnostics(t *testing.T, dir string, as ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, as, nil)
	if err != nil {
		t.Fatalf("run on %s: %v", dir, err)
	}
	return diags
}

// Describe formats diagnostics for failure messages.
func Describe(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
