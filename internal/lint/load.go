package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one typechecked target of the suite: parsed syntax (non-test
// files, exactly the sources that shape simulator output), type information
// resolved against compiler export data, and the package-scope determinism
// marker state.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Deterministic is true when any file carries the
	// `ringcast:deterministic` directive (package-scoped marker).
	Deterministic bool
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// Load resolves patterns (e.g. "./...") against the module rooted at dir,
// compiles export data for every dependency via `go list -deps -export`, and
// parses + typechecks each in-module package from source. Only in-module
// packages come back as analysis targets; dependencies (including the
// standard library) are imported from export data, so loading needs no
// network and no third-party tooling — just the Go toolchain that built the
// tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Path == modPath {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:       t.ImportPath,
			Dir:           t.Dir,
			Fset:          fset,
			Syntax:        files,
			Types:         pkg,
			TypesInfo:     info,
			Deterministic: hasDeterministicMarker(files),
		})
	}
	return pkgs, nil
}

// LoadFixture parses and typechecks one analysistest-style fixture directory
// (a single package of .go files outside the module build, e.g.
// testdata/src/detrand). Imports are restricted to the standard library and
// resolve through export data produced by `go list -deps -export std-path...`.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imported := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imported[importPathOf(spec)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	exports := map[string]string{}
	if len(imported) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
		for path := range imported {
			args = append(args, path)
		}
		sort.Strings(args[4:])
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list for fixture imports: %v\n%s", err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import only the standard library)", path)
		}
		return os.Open(f)
	})

	name := filepath.Base(dir)
	pkg, info, err := check(name, fset, files, imp)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", dir, err)
	}
	return &Package{
		PkgPath:       name,
		Dir:           dir,
		Fset:          fset,
		Syntax:        files,
		Types:         pkg,
		TypesInfo:     info,
		Deterministic: hasDeterministicMarker(files),
	}, nil
}

// check typechecks one package's files with a fully populated types.Info.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// modulePath reads the module path from `go list -m` so Load can tell
// in-module analysis targets apart from dependencies.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return string(bytes.TrimSpace(out)), nil
}

// importPathOf unquotes an import spec path.
func importPathOf(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}
