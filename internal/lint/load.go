package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one typechecked target of the suite: parsed syntax (non-test
// files, exactly the sources that shape simulator output), type information
// resolved against compiler export data, and the package-scope determinism
// marker state.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Deterministic is true when any file carries the
	// `ringcast:deterministic` directive (package-scoped marker).
	Deterministic bool
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// moduleImporter serves in-module packages from their source-typechecked
// *types.Package and everything else (the standard library) from compiler
// export data. Serving in-module imports from source — rather than from
// export data, as the pre-interprocedural loader did — puts every package in
// ONE type universe: the *types.Func a caller resolves for
// `wire.Marshal` IS the object the wire package's own Syntax defines, so the
// call graph, the facts tables and `types.Implements` checks work across
// package boundaries on plain object identity.
type moduleImporter struct {
	fallback types.Importer
	srcs     map[string]*types.Package
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.srcs[path]; p != nil {
		return p, nil
	}
	return m.fallback.Import(path)
}

// Load resolves patterns (e.g. "./...") against the module rooted at dir,
// compiles export data for every dependency via `go list -deps -export`, and
// parses + typechecks each in-module package from source, in dependency
// order, against the packages already checked — so all targets share one
// type universe (see moduleImporter) and interprocedural analyses can follow
// objects across package boundaries. Only in-module packages come back as
// analysis targets; out-of-module dependencies (the standard library) are
// imported from export data, so loading needs no network and no third-party
// tooling — just the Go toolchain that built the tree. The returned slice is
// sorted by import path regardless of the typechecking order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}

	// `go list -deps` streams dependencies before dependents, so keeping
	// encounter order gives a valid typechecking order for free.
	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Path == modPath {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		srcs: make(map[string]*types.Package, len(targets)),
		fallback: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		imp.srcs[t.ImportPath] = pkg
		pkgs = append(pkgs, &Package{
			PkgPath:       t.ImportPath,
			Dir:           t.Dir,
			Fset:          fset,
			Syntax:        files,
			Types:         pkg,
			TypesInfo:     info,
			Deterministic: hasDeterministicMarker(files),
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadFixture parses and typechecks one analysistest-style fixture directory
// (a single package of .go files outside the module build, e.g.
// testdata/src/detrand). Imports are restricted to the standard library and
// resolve through export data produced by `go list -deps -export std-path...`.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imported := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imported[importPathOf(spec)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	exports, err := stdExports(dir, imported)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import only the standard library)", path)
		}
		return os.Open(f)
	})

	name := filepath.Base(dir)
	pkg, info, err := check(name, fset, files, imp)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", dir, err)
	}
	return &Package{
		PkgPath:       name,
		Dir:           dir,
		Fset:          fset,
		Syntax:        files,
		Types:         pkg,
		TypesInfo:     info,
		Deterministic: hasDeterministicMarker(files),
	}, nil
}

// LoadFixtureTree loads an interprocedural fixture: a directory whose
// immediate subdirectories are each one package, cross-importing each other
// under the import path "<base(dir)>/<subdir>" (e.g. files under
// testdata/src/lockorder/outer import "lockorder/inner"). All packages share
// one FileSet and one type universe — sibling imports resolve to the
// source-typechecked sibling, exactly as Load does for the real module — so
// the call graph and facts layer behave identically on fixtures and on the
// tree. A directory with .go files directly in it loads as a single package,
// so single-package fixtures work through the same entry point. Imports
// outside the tree are restricted to the standard library.
func LoadFixtureTree(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var subdirs []string
	direct := false
	for _, e := range entries {
		switch {
		case e.IsDir():
			subdirs = append(subdirs, e.Name())
		case filepath.Ext(e.Name()) == ".go":
			direct = true
		}
	}
	if direct {
		pkg, err := LoadFixture(dir)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	}
	sort.Strings(subdirs)
	base := filepath.Base(dir)

	// Parse every package first so the stdlib import closure is known before
	// any typechecking starts.
	fset := token.NewFileSet()
	syntax := map[string][]*ast.File{} // import path -> files
	stdImports := map[string]bool{}
	var paths []string
	for _, sub := range subdirs {
		path := base + "/" + sub
		subEntries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			return nil, err
		}
		for _, e := range subEntries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, sub, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			syntax[path] = append(syntax[path], f)
			for _, spec := range f.Imports {
				if p := importPathOf(spec); !strings.HasPrefix(p, base+"/") {
					stdImports[p] = true
				}
			}
		}
		if len(syntax[path]) > 0 {
			paths = append(paths, path)
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no fixture packages", dir)
	}

	exports, err := stdExports(dir, stdImports)
	if err != nil {
		return nil, err
	}
	fallback := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (fixtures may import only the standard library and sibling fixture packages)", path)
		}
		return os.Open(f)
	})

	// Typecheck on demand, recursing into sibling imports first (memoized),
	// so declaration order in the tree never matters.
	checked := map[string]*Package{}
	var build func(path string) (*Package, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if strings.HasPrefix(path, base+"/") {
			p, err := build(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return fallback.Import(path)
	})
	build = func(path string) (*Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		files, ok := syntax[path]
		if !ok {
			return nil, fmt.Errorf("fixture package %q not found under %s", path, dir)
		}
		pkg, info, err := check(path, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck fixture %s: %w", path, err)
		}
		p := &Package{
			PkgPath:       path,
			Dir:           filepath.Join(dir, strings.TrimPrefix(path, base+"/")),
			Fset:          fset,
			Syntax:        files,
			Types:         pkg,
			TypesInfo:     info,
			Deterministic: hasDeterministicMarker(files),
		}
		checked[path] = p
		return p, nil
	}

	var pkgs []*Package
	for _, path := range paths {
		p, err := build(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExports resolves export-data files for a set of standard-library import
// paths via one `go list -deps -export` invocation.
func stdExports(dir string, imported map[string]bool) (map[string]string, error) {
	exports := map[string]string{}
	if len(imported) == 0 {
		return exports, nil
	}
	args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
	for path := range imported {
		args = append(args, path)
	}
	sort.Strings(args[4:])
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list for fixture imports: %v\n%s", err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// check typechecks one package's files with a fully populated types.Info.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// modulePath reads the module path from `go list -m` so Load can tell
// in-module analysis targets apart from dependencies.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return string(bytes.TrimSpace(out)), nil
}

// importPathOf unquotes an import spec path.
func importPathOf(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1]
}
