package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file computes the per-function facts of the interprocedural layer —
// the stdlib-only analogue of x/tools analysis facts. Each FuncNode gets
// conservative summaries (MayBlock, RandClock, Acquires, LeakSites)
// established directly from its body or its external classification, then
// propagated to a fixpoint over the call graph. The propagation rules differ
// by fact, and the difference is the point:
//
//   - MayBlock and Acquires flow over non-go edges only: a `go` statement
//     does not block its spawner and its locks are taken on another
//     goroutine.
//   - RandClock flows over every edge, go included: a spawned goroutine's
//     random draws and clock reads still shape program behavior, which is
//     exactly the laundering hole detflow closes.
//   - LeakSites flow over non-go edges: a nested `go` statement gets its own
//     goroleak verdict at its own spawn site rather than leaking into the
//     outer body's summary.

// leakSiteCap bounds the LeakSites summary per function; one finding per go
// statement is reported anyway, so the tail carries no extra signal.
const leakSiteCap = 8

// computeFacts establishes direct facts and propagates them to a fixpoint.
func computeFacts(g *CallGraph, pkgs []*Package) {
	pre := preScan(pkgs)
	for _, n := range g.Nodes {
		switch {
		case n.Decl != nil:
			scanBody(n, n.Decl.Body, pre)
		case n.Lit != nil:
			scanBody(n, n.Lit.Body, pre)
		default:
			classifyExternal(n, pre)
		}
	}

	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Edges {
				c := e.Callee
				if c.RandClock && !n.RandClock {
					n.RandClock = true
					changed = true
				}
				if e.Go {
					continue
				}
				if c.MayBlock && !n.MayBlock {
					n.MayBlock = true
					changed = true
				}
				for obj, pos := range c.Acquires {
					if _, ok := n.Acquires[obj]; !ok {
						if n.Acquires == nil {
							n.Acquires = map[types.Object]token.Pos{}
						}
						n.Acquires[obj] = pos
						changed = true
					}
				}
				if mergeLeaks(n, c.LeakSites) {
					changed = true
				}
			}
		}
	}
}

// mergeLeaks appends callee leak sites not already present, up to the cap.
func mergeLeaks(n *FuncNode, sites []LeakSite) bool {
	changed := false
	for _, s := range sites {
		if len(n.LeakSites) >= leakSiteCap {
			return changed
		}
		dup := false
		for _, have := range n.LeakSites {
			if have.Pos == s.Pos {
				dup = true
				break
			}
		}
		if !dup {
			n.LeakSites = append(n.LeakSites, s)
			changed = true
		}
	}
	return changed
}

// preScanned carries the module-wide context the body scans consult:
// cancellation evidence for goroleak and the net interfaces for I/O
// classification.
type preScanned struct {
	conn     *types.Interface
	listener *types.Interface
	// closedChans holds every channel object that is the argument of a
	// close() call anywhere in the loaded packages: a receive or range on it
	// has a traceable owner-side shutdown path.
	closedChans map[types.Object]bool
	// bufferedChans holds channel objects assigned from make(chan T, n) with
	// constant n > 0: a single-shot send on a buffered handoff channel
	// cannot park the sender.
	bufferedChans map[types.Object]bool
	// closesConn marks packages that call Close on a net.Conn or
	// net.Listener value: Conn I/O in such a package has an owner able to
	// unblock it.
	closesConn map[*Package]bool
}

// preScan walks every file once to collect the cancellation evidence.
func preScan(pkgs []*Package) *preScanned {
	pre := &preScanned{
		closedChans:   map[types.Object]bool{},
		bufferedChans: map[types.Object]bool{},
		closesConn:    map[*Package]bool{},
	}
	for _, pkg := range pkgs {
		if pre.conn == nil {
			pre.conn, pre.listener = netInterfaces(pkg.Types)
		}
	}
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Syntax {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
							if obj := exprObj(info, n.Args[0]); obj != nil {
								pre.closedChans[obj] = true
							}
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
						if selection := info.Selections[sel]; selection != nil {
							recv := selection.Recv()
							if implementsIface(recv, pre.conn) || implementsIface(recv, pre.listener) {
								pre.closesConn[pkg] = true
							}
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, rhs := range n.Rhs {
							if isBufferedMake(info, rhs) {
								if obj := exprObj(info, n.Lhs[i]); obj != nil {
									pre.bufferedChans[obj] = true
								}
							}
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i, v := range n.Values {
							if isBufferedMake(info, v) {
								if obj := info.Defs[n.Names[i]]; obj != nil {
									pre.bufferedChans[obj] = true
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return pre
}

// isBufferedMake reports whether e is make(chan T, n) with constant n > 0.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if _, isChan := info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	tv := info.Types[call.Args[1]]
	if tv.Value == nil {
		return false
	}
	return tv.Value.String() != "0"
}

// exprObj resolves the types.Object an expression names: an identifier's use,
// or the field/method object of a selector. Returns nil for anything more
// dynamic (index expressions, call results).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// classifyExternal assigns direct facts to out-of-module (and interface
// method) nodes by full name and receiver type — the interprocedural
// generalization of the lockio/detrand classification tables.
func classifyExternal(n *FuncNode, pre *preScanned) {
	if n.Obj == nil {
		return
	}
	full := n.Name
	sig, _ := n.Obj.Type().(*types.Signature)

	// Blocking classification (lockio's table).
	switch {
	case full == "time.Sleep":
		n.setBlock(token.NoPos, "time.Sleep")
	case strings.HasPrefix(full, "net.Dial"):
		n.setBlock(token.NoPos, full)
	case full == "(*sync.WaitGroup).Wait":
		n.setBlock(token.NoPos, "sync.WaitGroup.Wait")
	case full == "(*sync.Cond).Wait":
		n.setBlock(token.NoPos, "sync.Cond.Wait")
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		switch n.Obj.Name() {
		case "Read", "Write":
			if implementsIface(recv, pre.conn) {
				n.setBlock(token.NoPos, "net.Conn."+n.Obj.Name())
			}
		case "Accept":
			if implementsIface(recv, pre.listener) {
				n.setBlock(token.NoPos, "net.Listener.Accept")
			}
		}
	}

	// Rand/clock classification (detrand's tables). Methods on explicit
	// math/rand streams (rand.Rand, rand.Source) stay clean — seeded streams
	// are the sanctioned mechanism, so only package-level draws taint.
	if pkg := n.Obj.Pkg(); pkg != nil {
		name := n.Obj.Name()
		switch pkg.Path() {
		case "math/rand":
			if sig != nil && sig.Recv() == nil && !detrandAllowedRand[name] {
				n.setRand("math/rand." + name)
			}
		case "math/rand/v2", "crypto/rand":
			n.setRand(pkg.Path() + "." + name)
		case "time":
			if sig != nil && sig.Recv() == nil && detrandForbiddenTime[name] {
				n.setRand("time." + name)
			}
		}
	}
}

func (n *FuncNode) setBlock(pos token.Pos, what string) {
	n.MayBlock = true
	if n.blockSite == nil {
		n.blockSite = &factSite{pos: pos, what: what}
	}
}

func (n *FuncNode) setRand(what string) {
	n.RandClock = true
	if n.randSite == nil {
		n.randSite = &factSite{what: what}
	}
}

// scanBody establishes the direct syntactic facts of one in-module function
// body: channel operations (blocking and possibly leaking), select shapes,
// and mutex acquisitions. Calls contribute through graph edges, not here.
// Nested function literals are separate nodes and are skipped.
func scanBody(n *FuncNode, body *ast.BlockStmt, pre *preScanned) {
	if body == nil {
		return
	}
	info := n.Pkg.TypesInfo
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				// The spawned call blocks the goroutine, not this body.
				return false
			case *ast.SelectStmt:
				scanSelect(n, node, pre, walk)
				return false
			case *ast.SendStmt:
				n.setBlock(node.Pos(), "channel send")
				if !pre.bufferedChans[exprObj(info, node.Chan)] {
					n.addLeak(node.Pos(), "channel send")
				}
				return true
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					n.setBlock(node.Pos(), "channel receive")
					if !pre.closedChans[exprObj(info, node.X)] {
						n.addLeak(node.Pos(), "channel receive")
					}
				}
				return true
			case *ast.RangeStmt:
				if tv, ok := info.Types[node.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						n.setBlock(node.Pos(), "range over channel")
						if !pre.closedChans[exprObj(info, node.X)] {
							n.addLeak(node.Pos(), "range over channel")
						}
					}
				}
				return true
			case *ast.CallExpr:
				scanCall(n, node, pre)
				return true
			}
			return true
		})
	}
	walk(body)
}

// scanSelect classifies one select statement. With a default clause the whole
// statement is a non-blocking attempt. Without one it blocks; two or more
// comm clauses mean every arm has a sibling able to unblock the wait (the
// done-channel pattern), so none is a leak site, while a single-clause select
// is just its one operation and inherits the bare-operation leak rules.
func scanSelect(n *FuncNode, sel *ast.SelectStmt, pre *preScanned, walk func(ast.Node)) {
	info := n.Pkg.TypesInfo
	var comms []*ast.CommClause
	hasDefault := false
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		} else {
			comms = append(comms, cc)
		}
	}
	if !hasDefault {
		n.setBlock(sel.Pos(), "select without default")
		if len(comms) == 1 {
			switch comm := comms[0].Comm.(type) {
			case *ast.SendStmt:
				if !pre.bufferedChans[exprObj(info, comm.Chan)] {
					n.addLeak(comm.Pos(), "channel send (single-arm select)")
				}
			case *ast.ExprStmt:
				if ue, ok := comm.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					if !pre.closedChans[exprObj(info, ue.X)] {
						n.addLeak(ue.Pos(), "channel receive (single-arm select)")
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
						if !pre.closedChans[exprObj(info, ue.X)] {
							n.addLeak(ue.Pos(), "channel receive (single-arm select)")
						}
					}
				}
			}
		}
	}
	for _, cc := range comms {
		for _, stmt := range cc.Body {
			walk(stmt)
		}
	}
	if hasDefault {
		// Bodies of the comm clauses still run; the comm operations
		// themselves are non-blocking attempts. Walk bodies only (done
		// above covers comms list; default body too).
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				for _, stmt := range cc.Body {
					walk(stmt)
				}
			}
		}
	}
}

// scanCall handles the direct-fact contributions of one call: mutex
// acquisitions keyed by the receiver object, and Conn/Listener I/O leak
// sites (their blocking classification arrives through the graph edge to the
// external node; the leak verdict needs the package context, so it is
// established here).
func scanCall(n *FuncNode, call *ast.CallExpr, pre *preScanned) {
	info := n.Pkg.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := info.Selections[sel]
	if selection == nil {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	if acquire, isLock := lockMethods[fn.FullName()]; isLock && acquire {
		if obj := exprObj(info, sel.X); obj != nil {
			if n.Acquires == nil {
				n.Acquires = map[types.Object]token.Pos{}
			}
			if _, have := n.Acquires[obj]; !have {
				n.Acquires[obj] = call.Pos()
			}
		}
		return
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Read", "Write":
		if implementsIface(recv, pre.conn) && !pre.closesConn[n.Pkg] {
			n.addLeak(call.Pos(), "net.Conn."+sel.Sel.Name)
		}
	case "Accept":
		if implementsIface(recv, pre.listener) && !pre.closesConn[n.Pkg] {
			n.addLeak(call.Pos(), "net.Listener.Accept")
		}
	}
}

// addLeak records one direct leak site, respecting the cap.
func (n *FuncNode) addLeak(pos token.Pos, what string) {
	if len(n.LeakSites) >= leakSiteCap {
		return
	}
	n.LeakSites = append(n.LeakSites, LeakSite{Pos: pos, What: what})
}

// blockChain renders why n may block as a human-readable call chain ending at
// the establishing site, e.g. "(*node.Node).Close → sync.WaitGroup.Wait".
func blockChain(n *FuncNode) string {
	return factChain(n,
		func(m *FuncNode) *factSite { return m.blockSite },
		func(e CallEdge) bool { return !e.Go && e.Callee.MayBlock })
}

// randChain renders why n is rand/clock-tainted as a call chain.
func randChain(n *FuncNode) string {
	return factChain(n,
		func(m *FuncNode) *factSite { return m.randSite },
		func(e CallEdge) bool { return e.Callee.RandClock })
}

// factChain walks greedily from n along edges satisfying follow until a node
// with a direct site, collecting names.
func factChain(n *FuncNode, site func(*FuncNode) *factSite, follow func(CallEdge) bool) string {
	var parts []string
	seen := map[*FuncNode]bool{}
	cur := n
	for cur != nil && !seen[cur] {
		seen[cur] = true
		if s := site(cur); s != nil {
			// External classifications (NoPos sites) are already named by
			// their what — "sync.WaitGroup.Wait" — so the node name would
			// just repeat it.
			if cur != n && s.pos != token.NoPos {
				parts = append(parts, cur.Name)
			}
			parts = append(parts, s.what)
			return strings.Join(parts, " → ")
		}
		var next *FuncNode
		for _, e := range cur.Edges {
			if follow(e) {
				next = e.Callee
				break
			}
		}
		if next != nil && cur != n {
			parts = append(parts, cur.Name)
		}
		cur = next
	}
	return strings.Join(parts, " → ")
}

// lockName renders a mutex object for messages: its name plus declaration
// site, so "mu" fields of different structs stay distinguishable.
func lockName(fset *token.FileSet, obj types.Object) string {
	pos := fset.Position(obj.Pos())
	return fmt.Sprintf("%s (declared at %s:%d)", obj.Name(), filepath.Base(pos.Filename), pos.Line)
}
