package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringcast/internal/lint"
	"ringcast/internal/lint/linttest"
)

func TestDetrandFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/detrand", lint.Detrand)
}

func TestDetrandUnmarkedPackageIsExempt(t *testing.T) {
	linttest.RunExpectClean(t, "testdata/src/nomarker", lint.Detrand)
}

func TestMaporderFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/maporder", lint.Maporder)
}

func TestLockioFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/lockio", lint.Lockio)
}

// TestWaiverAudit asserts the three waiver behaviours end to end: a
// justified waiver suppresses its finding silently, an unjustified waiver is
// reported even though it suppresses, and a waiver over a clean line is
// flagged as stale. Asserted without want comments: a trailing want comment
// would merge into the waiver comment's own text.
func TestWaiverAudit(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata/src/waivers", lint.Detrand)
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 findings (unjustified + stale waiver), got %d:\n%s",
			len(diags), linttest.Describe(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "waiver" {
			t.Errorf("finding escaped waiver filtering: %s", d)
		}
	}
	if !strings.Contains(diags[0].Message, "no justification") {
		t.Errorf("first finding should flag the unjustified waiver, got: %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "suppresses nothing") {
		t.Errorf("second finding should flag the stale waiver, got: %s", diags[1])
	}
}

// TestHotallocFixture drives the escape-analysis gate against the standalone
// escapefixture module: the marked leaking function fires, the unmarked
// leaking function and the marked clean function stay silent, and the
// justified waiver suppresses its escape.
func TestHotallocFixture(t *testing.T) {
	dir, err := filepath.Abs("testdata/escape")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("load escape fixture: %v", err)
	}
	raw, err := lint.Hotalloc(dir, pkgs)
	if err != nil {
		t.Fatalf("hotalloc: %v", err)
	}
	// Pre-filter: Hot and HotWaived escape, Cool and HotClean never appear.
	if len(raw) != 2 {
		t.Fatalf("want 2 raw escape findings (Hot, HotWaived), got %d:\n%s",
			len(raw), linttest.Describe(raw))
	}
	for _, d := range raw {
		if strings.Contains(d.Message, "Cool") || strings.Contains(d.Message, "HotClean") {
			t.Errorf("escape attributed to the wrong function: %s", d)
		}
	}
	// Post-filter: the waiver on HotWaived's declaration line suppresses it.
	diags, err := lint.RunAnalyzers(pkgs, nil, raw, lint.HotallocName)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 filtered finding (Hot), got %d:\n%s",
			len(diags), linttest.Describe(diags))
	}
	if !strings.Contains(diags[0].Message, "Hot") || !strings.Contains(diags[0].Message, "heap escape") {
		t.Errorf("surviving finding should be Hot's heap escape, got: %s", diags[0])
	}
}

func TestLockorderFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/src/lockorder", lint.Lockorder)
}

func TestGoroleakFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/src/goroleak", lint.Goroleak)
}

func TestDetflowFixture(t *testing.T) {
	linttest.RunModule(t, "testdata/src/detflow", lint.Detflow)
}

// TestAllocBudgetRoundTrip seeds a baseline from the escape fixture with
// -update-baseline semantics and immediately re-checks against it: a
// freshly-recorded tree must gate clean, and the file must carry one sorted
// entry per marked function.
func TestAllocBudgetRoundTrip(t *testing.T) {
	dir, err := filepath.Abs("testdata/escape")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("load escape fixture: %v", err)
	}
	baseline := filepath.Join(t.TempDir(), "allocs.baseline")
	if _, err := lint.AllocBudget(dir, pkgs, baseline, true); err != nil {
		t.Fatalf("update baseline: %v", err)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"escapefixture.Hot ", "escapefixture.HotClean ", "escapefixture.HotWaived "} {
		if !strings.Contains(string(data), key) {
			t.Errorf("baseline missing entry %q:\n%s", key, data)
		}
	}
	diags, err := lint.AllocBudget(dir, pkgs, baseline, false)
	if err != nil {
		t.Fatalf("check against fresh baseline: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("fresh baseline must gate clean, got:\n%s", linttest.Describe(diags))
	}
}

// TestAllocBudgetRegression checks the gate against a deliberately regressed
// baseline: Hot's budget is below its real escape count (regression),
// HotClean is absent (unrecorded marked function), a Gone entry names a
// function that no longer exists (stale), and HotWaived's budget is generous
// (decreases pass silently).
func TestAllocBudgetRegression(t *testing.T) {
	dir, err := filepath.Abs("testdata/escape")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("load escape fixture: %v", err)
	}
	baseline := filepath.Join(t.TempDir(), "allocs.baseline")
	regressed := "# handcrafted regressed baseline\n" +
		"escapefixture.Gone 0\n" +
		"escapefixture.Hot 0\n" +
		"escapefixture.HotWaived 5\n"
	if err := os.WriteFile(baseline, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := lint.AllocBudget(dir, pkgs, baseline, false)
	if err != nil {
		t.Fatalf("allocbudget: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("want 3 findings (regression, unrecorded, stale), got %d:\n%s",
			len(diags), linttest.Describe(diags))
	}
	if !strings.Contains(diags[0].Message, "regression in escapefixture.Hot") ||
		!strings.Contains(diags[0].Message, "baseline allows 0") {
		t.Errorf("first finding should be Hot's regression, got: %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "escapefixture.HotClean has no allocation budget") {
		t.Errorf("second finding should be HotClean's missing entry, got: %s", diags[1])
	}
	if !strings.Contains(diags[2].Message, "stale baseline entry escapefixture.Gone") {
		t.Errorf("third finding should be the stale Gone entry, got: %s", diags[2])
	}
	if diags[2].Pos.Filename != baseline || diags[2].Pos.Line != 2 {
		t.Errorf("stale finding should point into the baseline file at line 2, got %s", diags[2].Pos)
	}
}

// TestRepoIsLintClean runs the full suite over the module, mirroring the CI
// `ringcast-lint ./...` step inside `go test`: the tree must stay free of
// unwaived findings.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	deterministic, hot := 0, 0
	for _, pkg := range pkgs {
		if pkg.Deterministic {
			deterministic++
		}
		hot += len(lint.HotpathFuncs(pkg.Fset, pkg.Syntax))
	}
	if deterministic < 10 {
		t.Errorf("only %d packages carry ringcast:deterministic; the ten contract packages (sim, dissem, eventsim, experiment, scenario, checkpoint, core, stats, metrics, churn) must stay marked", deterministic)
	}
	if hot < 5 {
		t.Errorf("only %d functions carry ringcast:hotpath; the escape gate is not guarding the hot path", hot)
	}
	m := lint.NewModule(pkgs)
	extra, extraRan, err := lint.RunModuleAnalyzers(m,
		[]*lint.ModuleAnalyzer{lint.Lockorder, lint.Goroleak, lint.Detflow})
	if err != nil {
		t.Fatalf("module analyzers: %v", err)
	}
	hotDiags, err := lint.Hotalloc(root, pkgs)
	if err != nil {
		t.Fatalf("hotalloc: %v", err)
	}
	budgetDiags, err := lint.AllocBudget(root, pkgs,
		filepath.Join(root, "internal/lint/allocs.baseline"), false)
	if err != nil {
		t.Fatalf("allocbudget: %v", err)
	}
	extra = append(extra, hotDiags...)
	extra = append(extra, budgetDiags...)
	extraRan = append(extraRan, lint.HotallocName, lint.AllocBudgetName)
	diags, err := lint.RunAnalyzers(pkgs,
		[]*lint.Analyzer{lint.Detrand, lint.Maporder, lint.Lockio},
		extra, extraRan...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
