package lint

// Detflow closes detrand's laundering hole: detrand only sees global
// math/rand draws and wall-clock reads written directly inside a
// `ringcast:deterministic` package, so a marked package could launder
// nondeterminism through a helper in an unmarked package. Detflow follows the
// call graph instead: it reports every call edge from a function in a marked
// package to an in-module function in an *unmarked* package whose transitive
// summary reaches global rand, math/rand/v2, crypto/rand, or the wall clock
// (see facts.go; taint flows through every edge, go statements and interface
// dispatch included). Exactly one finding fires per marked→unmarked tainted
// crossing — chains that stay inside marked packages are the deeper edge's
// report, and direct stdlib calls inside marked packages remain detrand's.
var Detflow = &ModuleAnalyzer{
	Name: "detflow",
	Doc:  "in ringcast:deterministic packages, forbid call chains that reach global rand or the wall clock through unmarked in-module helper packages",
	Run:  runDetflow,
}

func runDetflow(pass *ModulePass) error {
	for _, n := range pass.Module.Graph.Nodes {
		if n.Pkg == nil || !n.Pkg.Deterministic || nodeBody(n) == nil {
			continue
		}
		for _, e := range n.Edges {
			callee := e.Callee
			calleePkg := pass.Module.PkgOf(callee)
			if calleePkg == nil || calleePkg.Deterministic || !callee.RandClock {
				continue
			}
			pass.Reportf(e.Pos,
				"deterministic package calls %s in unmarked package %s, which reaches %s — route the draw through a seeded stream or mark the helper package deterministic",
				callee.Name, calleePkg.PkgPath, randChain(callee))
		}
	}
	return nil
}
