package lint

import (
	"go/token"
)

// Goroleak enforces that every spawned goroutine has a shutdown path: a `go`
// statement whose body — directly or through any chain of non-go calls — can
// block on a channel operation or on net.Conn/Listener I/O must have a
// recognized cancellation route for each such site. The facts layer
// (facts.go) recognizes four routes: a sibling select arm able to unblock the
// wait (the done-channel pattern), a close() of the awaited channel anywhere
// in the loaded packages, a buffered handoff channel for single-shot sends,
// and — for Conn/Listener I/O — a Close call on a Conn/Listener value in the
// owning package. A blocking site with none of these is a leak site, and the
// `go` statement that can reach one is the finding: the lazily spawned
// writer that outlives its transport, the reader pump nothing ever stops.
// Sleeps and WaitGroup waits are out of scope — they end on their own.
var Goroleak = &ModuleAnalyzer{
	Name: "goroleak",
	Doc:  "every `go` statement whose body can block on a channel or net.Conn must have a reachable cancellation path (select arm, traceable close, owner-side Close)",
	Run:  runGoroleak,
}

func runGoroleak(pass *ModulePass) error {
	for _, n := range pass.Module.Graph.Nodes {
		if nodeBody(n) == nil {
			continue
		}
		seen := map[token.Pos]bool{}
		for _, e := range n.Edges {
			if !e.Go || len(e.Callee.LeakSites) == 0 || seen[e.Pos] {
				continue
			}
			seen[e.Pos] = true
			s := e.Callee.LeakSites[0]
			pass.Reportf(e.Pos,
				"goroutine spawned here can block forever: %s at %s has no reachable cancellation path — add a done-channel select arm, close the channel from its owner, or Close the conn on shutdown",
				s.What, pass.Module.Fset.Position(s.Pos))
		}
	}
	return nil
}
