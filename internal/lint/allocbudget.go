package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// AllocBudgetName identifies the allocation-budget gate in diagnostics and
// `//lint:allocbudget` waivers, alongside the AST analyzers' Name fields.
const AllocBudgetName = "allocbudget"

// AllocBudgetDoc describes the gate for -help output.
const AllocBudgetDoc = "per-hotpath-function escape counts must not grow past the checked-in allocs.baseline; refresh a deliberate change with -update-baseline"

// AllocBudget grows hotalloc into a regression ratchet. Hotalloc fails on
// any unwaived escape, but a waived allocation can silently multiply — the
// waiver matches the line, not the count, and a refactor that turns one
// deliberate escape into five ships clean. The budget closes that: the
// checked-in baseline records the RAW compiler escape count (waivers
// included, so the number is stable and honest) for every
// `ringcast:hotpath`-marked function, keyed "<pkgpath>.<func>", and any
// increase over baseline is a finding. So are a marked function missing from
// the baseline and a stale baseline entry whose function lost its marker —
// both mean the file and the tree have drifted. Decreases pass silently;
// tighten the record with -update-baseline when one lands. update rewrites
// the baseline from the current tree instead of checking.
func AllocBudget(dir string, pkgs []*Package, baselinePath string, update bool) ([]Diagnostic, error) {
	type markedFn struct {
		key string
		fn  HotpathFunc
	}
	var marked []markedFn
	for _, pkg := range pkgs {
		for _, fn := range HotpathFuncs(pkg.Fset, pkg.Syntax) {
			marked = append(marked, markedFn{key: pkg.PkgPath + "." + fn.Name, fn: fn})
		}
	}
	if len(marked) == 0 && !update {
		return nil, nil
	}

	out, err := escapeOutput(dir)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, m := range marked {
		counts[m.key] = countEscapes(dir, m.fn, out)
	}

	if update {
		return nil, writeBaseline(baselinePath, counts)
	}

	baseline, lines, err := readBaseline(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("%s: %v (seed it with -update-baseline)", baselinePath, err)
	}

	var diags []Diagnostic
	sort.Slice(marked, func(i, j int) bool { return marked[i].key < marked[j].key })
	for _, m := range marked {
		have, inBaseline := baseline[m.key]
		pos := token.Position{Filename: m.fn.File, Line: m.fn.Start}
		switch {
		case !inBaseline:
			diags = append(diags, Diagnostic{
				Analyzer: AllocBudgetName,
				Pos:      pos,
				Message: fmt.Sprintf("hotpath function %s has no allocation budget in %s; record it with -update-baseline",
					m.key, filepath.Base(baselinePath)),
			})
		case counts[m.key] > have:
			diags = append(diags, Diagnostic{
				Analyzer: AllocBudgetName,
				Pos:      pos,
				Message: fmt.Sprintf("allocation budget regression in %s: %d heap escape(s), baseline allows %d — remove the allocation or deliberately raise the budget with -update-baseline",
					m.key, counts[m.key], have),
			})
		}
	}
	var staleKeys []string
	for key := range baseline {
		if _, stillMarked := counts[key]; !stillMarked {
			staleKeys = append(staleKeys, key)
		}
	}
	sort.Strings(staleKeys)
	for _, key := range staleKeys {
		diags = append(diags, Diagnostic{
			Analyzer: AllocBudgetName,
			Pos:      token.Position{Filename: baselinePath, Line: lines[key]},
			Message: fmt.Sprintf("stale baseline entry %s: no such ringcast:hotpath function in the tree; refresh with -update-baseline",
				key),
		})
	}
	return diags, nil
}

// countEscapes counts raw compiler escape diagnostics inside one marked
// function's body range. buildOutput file paths are relative to dir.
func countEscapes(dir string, fn HotpathFunc, buildOutput string) int {
	count := 0
	for _, line := range strings.Split(buildOutput, "\n") {
		m := escapeLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		if file != fn.File {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		if lineNo >= fn.Start && lineNo <= fn.End {
			count++
		}
	}
	return count
}

// baselineHeader introduces the checked-in budget file.
const baselineHeader = `# ringcast-lint allocation budget: raw -gcflags=-m heap-escape counts per
# ringcast:hotpath function (waived escapes included, so counts stay stable).
# CI fails on any increase. Regenerate after a deliberate change with:
#   go run ./cmd/ringcast-lint -update-baseline ./...
`

// writeBaseline rewrites the budget file, sorted by key.
func writeBaseline(path string, counts map[string]int) error {
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(baselineHeader)
	for _, key := range keys {
		fmt.Fprintf(&b, "%s %d\n", key, counts[key])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaseline parses the budget file into key→count, also returning each
// key's line number for stale-entry positions.
func readBaseline(path string) (map[string]int, map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	counts := map[string]int{}
	lines := map[string]int{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, nil, fmt.Errorf("line %d: want \"<pkgpath>.<func> <count>\", got %q", lineNo, line)
		}
		n, err := strconv.Atoi(line[i+1:])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: bad count in %q", lineNo, line)
		}
		counts[line[:i]] = n
		lines[line[:i]] = lineNo
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return counts, lines, nil
}
