package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags map iteration whose order can reach output. Go randomizes
// map iteration order per run, so any table row, CSV line, slice, or
// order-sensitive fold built inside `range m` is nondeterministic — the bug
// class the golden-file suite exists to catch, flagged here before it ships.
// Inside the body of a `range` over a map (function literals excluded — they
// run elsewhere), the analyzer reports:
//
//   - appends to a slice declared outside the loop, unless that slice is
//     sorted afterwards in the same enclosing block (the canonical
//     collect-keys-then-sort idiom passes clean; a slice declared inside the
//     body is per-iteration state and cannot carry order across iterations);
//   - order-sensitive folds: compound assignments (+=, -=, *=, /=) and
//     self-concatenations whose operand type is float, complex, or string —
//     float addition is not associative and string concatenation is not
//     commutative, so iteration order leaks into the value. Integer and
//     bitwise folds commute and stay legal;
//   - output writes: fmt printing and Write/WriteString/WriteByte/WriteRune
//     method calls, which serialize iteration order directly.
//
// Sites where unordered iteration is genuinely fine carry a
// `//lint:maporder <why>` waiver.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map bodies that append, fold order-sensitively, or write output without sorting first",
	Run:  runMaporder,
}

// maporderSorters recognize the sort calls that launder map iteration order:
// package function name -> true, for sort and slices.
var maporderSorters = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true, "SortStable": true,
	},
}

// maporderPrinters are the fmt functions that emit output.
var maporderPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// maporderWriteMethods are method names that serialize their argument in
// call order.
var maporderWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node carries, for every node kind
// that can directly hold a range statement.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange walks one map-range body and reports order-leaking
// operations; rest is the remainder of the enclosing block, scanned for the
// sorted-afterwards exemption.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, n, rest)
		case *ast.CallExpr:
			checkMapRangeCall(pass, n)
		}
		return true
	})
}

// declaredInside reports whether e's root identifier names an object declared
// within the range body — per-iteration state that cannot accumulate
// iteration order.
func declaredInside(pass *Pass, rs *ast.RangeStmt, e ast.Expr) bool {
	root := e
	for {
		sel, ok := root.(*ast.SelectorExpr)
		if !ok {
			break
		}
		root = sel.X
	}
	ident, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[ident]
	if obj == nil {
		obj = pass.TypesInfo.Uses[ident]
	}
	return obj != nil && obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End()
}

// checkMapRangeAssign flags appends to unsorted slices and order-sensitive
// folds inside a map-range body. Targets declared inside the body are
// per-iteration state and pass clean.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if declaredInside(pass, rs, as.Lhs[i]) {
				continue
			}
			call, ok := rhs.(*ast.CallExpr)
			if ok && isBuiltinAppend(pass, call) {
				target := types.ExprString(as.Lhs[i])
				if !sortedAfter(pass, target, rest) {
					pass.Reportf(as.Pos(),
						"append to %s inside range over map: iteration order reaches the slice; sort %s afterwards or iterate sorted keys",
						target, target)
				}
				continue
			}
			// Self-concatenation spelled longhand: x = x + v.
			if bin, ok := rhs.(*ast.BinaryExpr); ok && bin.Op == token.ADD &&
				orderSensitiveType(pass, as.Lhs[i]) && mentions(bin, types.ExprString(as.Lhs[i])) {
				pass.Reportf(as.Pos(),
					"order-sensitive accumulation of %s inside range over map: iterate sorted keys",
					types.ExprString(as.Lhs[i]))
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && orderSensitiveType(pass, as.Lhs[0]) && !declaredInside(pass, rs, as.Lhs[0]) {
			pass.Reportf(as.Pos(),
				"order-sensitive fold of %s inside range over map: float/string accumulation depends on iteration order; iterate sorted keys",
				types.ExprString(as.Lhs[0]))
		}
	}
}

// checkMapRangeCall flags output writes inside a map-range body.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && maporderPrinters[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"fmt.%s inside range over map writes output in iteration order; iterate sorted keys", sel.Sel.Name)
			}
			return
		}
	}
	if pass.TypesInfo.Selections[sel] != nil && maporderWriteMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(),
			"%s.%s inside range over map serializes iteration order; iterate sorted keys",
			types.ExprString(sel.X), sel.Sel.Name)
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderSensitiveType reports whether e's type makes accumulation depend on
// operand order: floats and complex numbers (non-associative addition) and
// strings (non-commutative concatenation).
func orderSensitiveType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// sortedAfter reports whether a sort/slices sorting call naming target as an
// argument appears in the statements following the range in its enclosing
// block — the collect-then-sort idiom.
func sortedAfter(pass *Pass, target string, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			names := maporderSorters[pn.Imported().Name()]
			if names == nil || !names[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if mentions(arg, target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentions reports whether expression e contains a subexpression rendering
// exactly as target.
func mentions(e ast.Expr, target string) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if hit {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == target {
			hit = true
			return false
		}
		return true
	})
	return hit
}
