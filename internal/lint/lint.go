// Package lint is ringcast's custom static-analysis suite: it turns the
// determinism and concurrency contracts that ARCHITECTURE.md states in prose
// into mechanically enforced policy. Four per-package analyzers encode the
// repository's direct invariants: detrand (packages carrying the
// `ringcast:deterministic` marker must derive every random draw from
// per-unit seeded streams and may not read the wall clock), maporder (map
// iteration order must not reach table/CSV/fold output unsorted), lockio
// (no blocking call — network I/O, channel operation, sleep, WaitGroup wait
// — while a sync mutex is held; the exact bug class the async transport
// rewrite fixed), and hotalloc (functions carrying the `ringcast:hotpath`
// marker must stay free of heap escapes, checked against the compiler's own
// -gcflags=-m escape analysis). Four interprocedural analyzers catch the
// same contracts violated *through a call*, using a module-wide call graph
// and propagated per-function facts (callgraph.go, facts.go, module.go):
// lockorder (cross-package lock-acquisition cycles — potential deadlock —
// and transitive blocking under a lock), goroleak (goroutines that can park
// forever on a channel with no reachable cancellation path), detflow
// (deterministic packages reaching global rand or the wall clock through
// unmarked helper packages), and allocbudget (per-hotpath-function escape
// counts ratcheted against the checked-in allocs.baseline). The framework
// mirrors golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) but
// is built on the standard library alone: packages load via
// `go list -export` and typecheck against compiler export data, so the
// suite needs no dependencies outside the Go toolchain. Sites where a rule
// is deliberately broken carry `//lint:<analyzer> <why>` waivers; a waiver
// without a justification, or one that suppresses nothing, is itself a
// diagnostic, and the full waiver ledger is pinned to the ARCHITECTURE.md
// "Waiver debt" table by the docs gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the upstream framework wholesale if x/tools ever becomes a dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:<name>` waiver comments.
	Name string

	// Doc is a one-paragraph description of the contract the analyzer
	// enforces, shown by `ringcast-lint -help`.
	Doc string

	// Run executes the analyzer against one package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, already resolved to a file position. Findings
// suppressed by a justified `//lint:` waiver never surface as Diagnostics.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding as "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one typechecked package through one analyzer, again in the
// image of analysis.Pass. Analyzers report through Reportf; the driver
// applies waiver filtering afterwards, so analyzers stay oblivious to the
// waiver mechanism.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Deterministic reports whether any file of the package carries the
	// `ringcast:deterministic` marker comment; the marker is
	// package-scoped, so one marked file covers every file (marker
	// inheritance).
	Deterministic bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// markerRe matches the package-scope determinism marker. The marker is a
// directive-style comment (`//ringcast:deterministic`, a space after the
// slashes is tolerated) so it stays out of rendered godoc, exactly like
// //go:build. Prose that merely mentions the marker name mid-sentence does
// not match.
var markerRe = regexp.MustCompile(`^//[ \t]?ringcast:deterministic\b`)

// hotpathRe matches the function-scope hot-path marker used by hotalloc.
var hotpathRe = regexp.MustCompile(`^//[ \t]?ringcast:hotpath\b`)

// waiverRe matches suppression comments: `//lint:<analyzer> <justification>`.
// The justification is mandatory; an empty one is reported by the driver.
var waiverRe = regexp.MustCompile(`^//[ \t]?lint:([a-z]+)\b[ \t]*(.*)$`)

// A waiver is one parsed `//lint:` comment. It suppresses diagnostics from
// the named analyzer on its own line and on the following line (so it can
// trail the offending statement or sit on its own line above it).
type waiver struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectWaivers parses every comment in the package into per-file,
// per-line waiver tables.
func collectWaivers(fset *token.FileSet, files []*ast.File) []*waiver {
	var ws []*waiver
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := waiverRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				ws = append(ws, &waiver{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      fset.Position(c.Pos()),
				})
			}
		}
	}
	return ws
}

// hasDeterministicMarker reports whether any comment in any file is the
// package-scope `ringcast:deterministic` directive.
func hasDeterministicMarker(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if markerRe.MatchString(c.Text) {
					return true
				}
			}
		}
	}
	return false
}

// HotpathFuncs returns the declared functions in files whose doc comment
// carries the `ringcast:hotpath` directive, as printable names with body
// position ranges (used by the hotalloc escape-analysis check).
func HotpathFuncs(fset *token.FileSet, files []*ast.File) []HotpathFunc {
	var out []HotpathFunc
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				if hotpathRe.MatchString(c.Text) {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + name
			}
			out = append(out, HotpathFunc{
				Name:  name,
				File:  fset.Position(fd.Pos()).Filename,
				Start: fset.Position(fd.Body.Lbrace).Line,
				End:   fset.Position(fd.Body.Rbrace).Line,
			})
		}
	}
	return out
}

// A HotpathFunc is one function marked `ringcast:hotpath`: hotalloc fails the
// build if compiler escape analysis reports a heap escape between Start and
// End of File.
type HotpathFunc struct {
	Name       string
	File       string
	Start, End int
}

// RunAnalyzers executes the AST analyzers over the loaded packages, applies
// waiver filtering, and appends meta-diagnostics for malformed (empty-reason)
// and unused waivers. Diagnostics come back sorted by position.
//
// extra carries position-resolved diagnostics produced outside the AST
// passes (the hotalloc escape check); they pass through the same waiver
// filter so `//lint:hotalloc <why>` works like every other waiver. extraRan
// names those non-AST checks that actually executed, so their waivers are
// audited for staleness only when the check ran (the AST-only test harness
// must not flag hotalloc waivers as unused).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, extra []Diagnostic, extraRan ...string) ([]Diagnostic, error) {
	var raw []Diagnostic
	var waivers []*waiver
	for _, pkg := range pkgs {
		waivers = append(waivers, collectWaivers(pkg.Fset, pkg.Syntax)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:      a,
				Fset:          pkg.Fset,
				Files:         pkg.Syntax,
				Pkg:           pkg.Types,
				TypesInfo:     pkg.TypesInfo,
				Deterministic: pkg.Deterministic,
				diags:         &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
	}
	raw = append(raw, extra...)

	ran := map[string]bool{}
	for _, name := range extraRan {
		ran[name] = true
	}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range raw {
		if w := matchWaiver(waivers, d); w != nil {
			w.used = true
			continue
		}
		out = append(out, d)
	}
	for _, w := range waivers {
		if !ran[w.analyzer] {
			continue
		}
		switch {
		case w.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "waiver",
				Pos:      w.pos,
				Message:  fmt.Sprintf("lint:%s waiver has no justification; state why the rule is deliberately broken here", w.analyzer),
			})
		case !w.used:
			out = append(out, Diagnostic{
				Analyzer: "waiver",
				Pos:      w.pos,
				Message:  fmt.Sprintf("lint:%s waiver suppresses nothing; remove it", w.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// matchWaiver finds a waiver for d: same analyzer, same file, on d's line or
// the line directly above.
func matchWaiver(waivers []*waiver, d Diagnostic) *waiver {
	for _, w := range waivers {
		if w.analyzer != d.Analyzer {
			continue
		}
		if w.pos.Filename != d.Pos.Filename {
			continue
		}
		if w.pos.Line == d.Pos.Line || w.pos.Line == d.Pos.Line-1 {
			return w
		}
	}
	return nil
}
