package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder is the interprocedural half of the locking contract, in two
// parts. First, it builds the module-wide lock-acquisition ordering graph:
// whenever lock B is acquired — lexically, or anywhere inside a callee
// reached through non-go call edges — while lock A is held, the graph gains
// the edge A→B. A cycle between two distinct mutex objects means two code
// paths acquire the same pair of locks in opposite orders: a potential
// deadlock that no single-package analysis can see. Second, it makes lockio
// transitive: calling an in-module function whose summary says may-block
// while any mutex is held is a finding, even though the blocking site is
// several calls and packages away. Direct blocking syntax under a lock stays
// lockio's report (one finding per site, not two); lockorder only reports
// call edges into in-module code, which is exactly what lockio cannot see.
//
// Lock identity is the types.Object of the mutex expression, so the same
// struct field on two different instances unifies; for that reason self-edges
// (A→A) are ignored rather than reported — hand-over-hand locking of sibling
// instances is legitimate and instance identity is beyond a static pass.
var Lockorder = &ModuleAnalyzer{
	Name: "lockorder",
	Doc:  "build the cross-package lock-acquisition ordering graph; report order cycles (potential deadlocks) and calls into may-block functions while a mutex is held",
	Run:  runLockorder,
}

// An orderEdge records one observation "to was acquired while from was held".
type orderEdge struct {
	from, to types.Object
	pos      token.Pos // the acquisition or call site that created the edge
	fn       string    // the function the observation was made in
}

func runLockorder(pass *ModulePass) error {
	g := pass.Module.Graph
	var edges []orderEdge
	for _, n := range g.Nodes {
		body := nodeBody(n)
		if body == nil {
			continue
		}
		w := &orderWalker{pass: pass, node: n, edges: &edges}
		w.walk(body)
	}
	reportOrderCycles(pass, edges)
	return nil
}

// nodeBody returns the syntax body of an in-module node, if any.
func nodeBody(n *FuncNode) *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// orderWalker tracks lexically held mutexes through one function body — the
// same source-order discipline as lockio's walker (deferred unlocks hold to
// function end, function literals are separate scopes, go statements run on
// another goroutine) — but keyed by types.Object and feeding the module-wide
// ordering graph instead of reporting blocking syntax.
type orderWalker struct {
	pass  *ModulePass
	node  *FuncNode
	held  []heldObj
	edges *[]orderEdge
}

// heldObj is one lexically held mutex.
type heldObj struct {
	obj types.Object
	pos token.Pos
}

func (w *orderWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal is its own node; its body is walked with its own
			// empty lock state when the node iteration reaches it.
			return false
		case *ast.DeferStmt:
			// Deferred unlocks hold to function end; deferred calls run at
			// return where the lexical held set no longer applies.
			return false
		case *ast.GoStmt:
			// The spawned goroutine acquires its locks on another stack;
			// no ordering relative to the caller's held set.
			return false
		case *ast.CallExpr:
			w.checkCall(n)
			return true
		}
		return true
	})
}

// checkCall does the mutex bookkeeping and, while locks are held, harvests
// the callee summaries: every lock the callee may acquire orders after every
// held lock, and an in-module callee that may block is the transitive-lockio
// finding.
func (w *orderWalker) checkCall(call *ast.CallExpr) {
	info := w.node.Pkg.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection := info.Selections[sel]; selection != nil {
			if fn, ok := selection.Obj().(*types.Func); ok {
				if acquire, isLock := lockMethods[fn.FullName()]; isLock {
					obj := exprObj(info, sel.X)
					if obj == nil {
						return
					}
					if acquire {
						for _, h := range w.held {
							if h.obj != obj {
								*w.edges = append(*w.edges, orderEdge{from: h.obj, to: obj, pos: call.Pos(), fn: w.node.Name})
							}
						}
						w.held = append(w.held, heldObj{obj: obj, pos: call.Pos()})
					} else {
						for i := len(w.held) - 1; i >= 0; i-- {
							if w.held[i].obj == obj {
								w.held = append(w.held[:i], w.held[i+1:]...)
								break
							}
						}
					}
					return
				}
			}
		}
	}

	if len(w.held) == 0 {
		return
	}
	for _, callee := range w.pass.Module.Graph.CalleesOf(call) {
		acquired := make([]types.Object, 0, len(callee.Acquires))
		for obj := range callee.Acquires {
			acquired = append(acquired, obj)
		}
		sort.Slice(acquired, func(i, j int) bool { return acquired[i].Pos() < acquired[j].Pos() })
		for _, h := range w.held {
			for _, obj := range acquired {
				if obj != h.obj {
					*w.edges = append(*w.edges, orderEdge{from: h.obj, to: obj, pos: call.Pos(), fn: w.node.Name})
				}
			}
		}
		// Transitive lockio: only in-module callees (including in-module
		// interface methods, whose summary aggregates every implementation)
		// — a direct call to a blocking stdlib function under a lock is
		// already lockio's finding.
		if callee.MayBlock && w.pass.Module.PkgOf(callee) != nil {
			h := w.held[len(w.held)-1]
			w.pass.Reportf(call.Pos(),
				"calling %s while %s is held (locked at %s): it may block (%s) — blocking under a mutex stalls every contender",
				callee.Name, lockName(w.pass.Module.Fset, h.obj), w.pass.Module.Fset.Position(h.pos), blockChain(callee))
		}
	}
}

// reportOrderCycles finds ordering inversions: pairs of distinct locks A, B
// where A→B is observed and B→…→A is reachable. Each unordered pair is
// reported once, at the earliest edge position, with both witness chains.
func reportOrderCycles(pass *ModulePass, edges []orderEdge) {
	if len(edges) == 0 {
		return
	}
	fset := pass.Module.Fset
	// Deterministic processing order.
	sort.Slice(edges, func(i, j int) bool {
		a, b := fset.Position(edges[i].pos), fset.Position(edges[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		// Several edges can share a call site (one call, several callee
		// locks); order them by lock identity so output stays stable.
		if fi, fj := lockName(fset, edges[i].from), lockName(fset, edges[j].from); fi != fj {
			return fi < fj
		}
		return lockName(fset, edges[i].to) < lockName(fset, edges[j].to)
	})
	adj := map[types.Object][]orderEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	type pairKey struct{ a, b types.Object }
	reported := map[pairKey]bool{}
	for _, e := range edges {
		if reported[pairKey{e.from, e.to}] || reported[pairKey{e.to, e.from}] {
			continue
		}
		back := findPath(adj, e.to, e.from)
		if back == nil {
			continue
		}
		reported[pairKey{e.from, e.to}] = true
		var steps []string
		for _, b := range back {
			steps = append(steps, fmt.Sprintf("%s acquired while %s held in %s at %s",
				lockName(fset, b.to), lockName(fset, b.from), b.fn, fset.Position(b.pos)))
		}
		pass.Reportf(e.pos,
			"lock order cycle: %s is acquired while %s is held in %s, but the reverse order exists — %s; two goroutines taking these paths concurrently can deadlock",
			lockName(fset, e.to), lockName(fset, e.from), e.fn, strings.Join(steps, "; "))
	}
}

// findPath returns the edge path from one lock to another in the ordering
// graph, or nil.
func findPath(adj map[types.Object][]orderEdge, from, to types.Object) []orderEdge {
	seen := map[types.Object]bool{from: true}
	var dfs func(cur types.Object) []orderEdge
	dfs = func(cur types.Object) []orderEdge {
		for _, e := range adj[cur] {
			if e.to == to {
				return []orderEdge{e}
			}
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			if rest := dfs(e.to); rest != nil {
				return append([]orderEdge{e}, rest...)
			}
		}
		return nil
	}
	return dfs(from)
}
