package lint

import (
	"fmt"
	"go/token"
	"go/types"
)

// A Module is the interprocedural view over one load: the packages, their
// shared FileSet, and the call graph with computed facts. Module analyzers
// (lockorder, goroleak, detflow) run against this view rather than one
// package at a time.
type Module struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Graph *CallGraph

	typesPkgs map[*types.Package]*Package
}

// PkgOf returns the analyzed package a node belongs to: its owning package
// for declared functions and literals, the declaring package for an
// in-module interface method (which has no body of its own), nil for
// external callees.
func (m *Module) PkgOf(n *FuncNode) *Package {
	if n.Pkg != nil {
		return n.Pkg
	}
	if n.Obj != nil {
		return m.typesPkgs[n.Obj.Pkg()]
	}
	return nil
}

// NewModule builds the call graph over pkgs and computes the per-function
// facts to a fixpoint. pkgs must come from one Load or LoadFixtureTree call
// so all packages share a type universe and a FileSet.
func NewModule(pkgs []*Package) *Module {
	g := buildCallGraph(pkgs)
	computeFacts(g, pkgs)
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}
	byTypes := make(map[*types.Package]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byTypes[pkg.Types] = pkg
	}
	return &Module{Pkgs: pkgs, Fset: fset, Graph: g, typesPkgs: byTypes}
}

// A ModuleAnalyzer is one whole-program pass over a Module. It mirrors
// Analyzer but sees every package and the call graph at once.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and `//lint:<name>`
	// waivers, exactly like Analyzer.Name.
	Name string

	// Doc is the one-paragraph contract description for -help output.
	Doc string

	// Run executes the analyzer and reports findings through pass.Reportf.
	Run func(pass *ModulePass) error
}

// A ModulePass carries one Module through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModuleAnalyzers executes the module analyzers and returns their raw
// diagnostics plus the analyzer names. The diagnostics are meant to flow
// through RunAnalyzers' extra parameter (with the names as extraRan), so
// `//lint:` waiver filtering and auditing work identically for per-package
// and whole-program findings.
func RunModuleAnalyzers(m *Module, analyzers []*ModuleAnalyzer) ([]Diagnostic, []string, error) {
	var diags []Diagnostic
	var names []string
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Module: m, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		names = append(names, a.Name)
	}
	return diags, names, nil
}
