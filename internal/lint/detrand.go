package lint

import (
	"go/ast"
	"go/types"
)

// Detrand enforces the determinism contract on packages carrying the
// `ringcast:deterministic` marker: every random draw must flow from a
// per-unit seeded stream (runner.UnitSeed / runner.UnitRand derive SplitMix64
// streams from the experiment seed), and nothing may read the wall clock.
// Concretely, in marked packages it forbids:
//
//   - global math/rand functions (rand.Int, rand.Intn, rand.Float64,
//     rand.Shuffle, rand.Perm, rand.Seed, rand.Read, ...), which draw from
//     the process-global, randomly seeded source. Constructing explicit
//     streams stays legal: rand.New, rand.NewSource, rand.NewZipf and the
//     rand.Rand/Source types are the whole point.
//   - importing math/rand/v2 (its top-level functions are auto-seeded and
//     its constructors encourage ambient randomness) and crypto/rand.
//   - the wall clock and timers: time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
//     time.AfterFunc. Pure time arithmetic (time.Duration, unit constants,
//     ParseDuration) stays legal.
//
// Unmarked packages (the live runtime, transports, CLIs) are exempt: wall
// clocks and jitter are their job.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "in ringcast:deterministic packages, forbid global math/rand, the wall clock, and auto-seeded randomness; derive streams from runner.UnitSeed instead",
	Run:  runDetrand,
}

// detrandAllowedRand are the math/rand names that construct or name explicit
// streams rather than drawing from the global source.
var detrandAllowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// detrandForbiddenTime are the time functions that read the wall clock or
// arm real timers.
var detrandForbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// detrandBannedImports may not be imported at all in marked packages.
var detrandBannedImports = map[string]string{
	"math/rand/v2": "math/rand/v2 is auto-seeded; use math/rand streams built from runner.UnitSeed",
	"crypto/rand":  "crypto/rand is nondeterministic by design; derive bytes from a seeded stream",
}

func runDetrand(pass *Pass) error {
	if !pass.Deterministic {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := importPathOf(spec)
			if why, banned := detrandBannedImports[path]; banned {
				pass.Reportf(spec.Pos(), "deterministic package imports %s: %s", path, why)
			}
			if spec.Name != nil && spec.Name.Name == "." && (path == "math/rand" || path == "time") {
				pass.Reportf(spec.Pos(), "deterministic package dot-imports %s; qualified use is required so stream and clock discipline stays checkable", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand":
				if !detrandAllowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global math/rand.%s draws from the process-global source; derive a stream from runner.UnitSeed (rand.New(rand.NewSource(seed))) instead",
						sel.Sel.Name)
				}
			case "time":
				if detrandForbiddenTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a deterministic package; simulator time must come from hop/cycle counters (waive with //lint:detrand only for non-output diagnostics)",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
