package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockio flags blocking operations lexically reachable while a sync.Mutex or
// sync.RWMutex is held — the exact bug class the async transport rewrite
// fixed, where a wedged peer's 10-second network write under sendConn.mu
// stalled every sender. Within one function body (intraprocedurally, in
// source order), after `x.Lock()`/`x.RLock()` and before the matching
// non-deferred unlock (a deferred unlock holds to function end), it reports:
//
//   - channel sends, channel receives, and select statements without a
//     default clause (a select with default is a non-blocking attempt and
//     passes clean, as does everything behind it);
//   - time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait;
//   - net.Dial* calls, Accept on a net.Listener, and Read/Write on any
//     value satisfying net.Conn.
//
// Function literals are separate scopes: a goroutine body spawned under a
// lock does not block the lock holder, and the literal is re-analyzed with
// its own empty lock state. The analysis is lexical, not path-sensitive — a
// site that provably releases first carries a `//lint:lockio <why>` waiver.
var Lockio = &Analyzer{
	Name: "lockio",
	Doc:  "flag blocking calls (network I/O, channel ops, sleeps, waits) reachable while a sync mutex is held",
	Run:  runLockio,
}

// lockMethods classifies sync mutex methods by full name: true = acquire,
// false = release.
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    false,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  false,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": false,
}

// blockingWaits are method calls that park the caller, by full name.
var blockingWaits = map[string]string{
	"(*sync.WaitGroup).Wait": "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":      "sync.Cond.Wait",
}

func runLockio(pass *Pass) error {
	conn, listener := netInterfaces(pass.Pkg)
	lw := &lockWalker{pass: pass, conn: conn, listener: listener}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lw.analyzeScope(fd.Body)
			}
		}
	}
	return nil
}

// netInterfaces resolves net.Conn and net.Listener from the package's import
// graph; both are nil when the package never reaches net.
func netInterfaces(pkg *types.Package) (conn, listener *types.Interface) {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == "net" {
				return imp
			}
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	netPkg := find(pkg)
	if netPkg == nil {
		return nil, nil
	}
	lookup := func(name string) *types.Interface {
		obj := netPkg.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return lookup("Conn"), lookup("Listener")
}

// heldLock records one acquired mutex: the receiver expression it was locked
// through and where.
type heldLock struct {
	key string
	pos token.Pos
}

// lockWalker walks one function body in source order, tracking held mutexes
// and reporting blocking operations. Function literals encountered on the
// way are queued and analyzed as fresh scopes.
type lockWalker struct {
	pass     *Pass
	conn     *types.Interface
	listener *types.Interface
	held     []heldLock
	queue    []*ast.BlockStmt
}

// analyzeScope analyzes one function body with an empty lock state, then
// drains the function literals it discovered.
func (lw *lockWalker) analyzeScope(body *ast.BlockStmt) {
	lw.held = nil
	lw.walk(body)
	for len(lw.queue) > 0 {
		next := lw.queue[0]
		lw.queue = lw.queue[1:]
		lw.held = nil
		lw.walk(next)
	}
}

// walk visits n and its children in source order, maintaining the held set.
func (lw *lockWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lw.queue = append(lw.queue, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the mutex held to function end, so
			// the release bookkeeping must not see it; deferred bodies run
			// at return, outside this lexical scan.
			return false
		case *ast.GoStmt:
			// The spawned goroutine does not block the lock holder; its
			// literal (if any) is queued by the FuncLit case via the walk
			// of the call expression below.
			lw.walk(n.Call.Fun)
			return false
		case *ast.SelectStmt:
			lw.checkSelect(n)
			return false
		case *ast.SendStmt:
			lw.reportBlocked(n.Pos(), "channel send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lw.reportBlocked(n.Pos(), "channel receive")
			}
			return true
		case *ast.CallExpr:
			lw.checkCall(n)
			return true
		}
		return true
	})
}

// checkSelect handles select statements: with a default clause the whole
// statement is a non-blocking attempt and is skipped; without one it blocks,
// and each case body is walked with the current lock state.
func (lw *lockWalker) checkSelect(sel *ast.SelectStmt) {
	hasDefault := false
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		lw.reportBlocked(sel.Pos(), "select without default")
	}
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, stmt := range cc.Body {
			lw.walk(stmt)
		}
	}
}

// checkCall classifies one call: mutex bookkeeping, then the blocking set.
func (lw *lockWalker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}

	// Package-level functions: time.Sleep, net.Dial*.
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := lw.pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
			switch path := pn.Imported().Path(); {
			case path == "time" && sel.Sel.Name == "Sleep":
				lw.reportBlocked(call.Pos(), "time.Sleep")
			case path == "net" && strings.HasPrefix(sel.Sel.Name, "Dial"):
				lw.reportBlocked(call.Pos(), "net."+sel.Sel.Name)
			}
			return
		}
	}

	selection := lw.pass.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	full := fn.FullName()

	if acquire, isLock := lockMethods[full]; isLock {
		key := types.ExprString(sel.X)
		if acquire {
			lw.held = append(lw.held, heldLock{key: key, pos: call.Pos()})
		} else {
			for i := len(lw.held) - 1; i >= 0; i-- {
				if lw.held[i].key == key {
					lw.held = append(lw.held[:i], lw.held[i+1:]...)
					break
				}
			}
		}
		return
	}

	if what, ok := blockingWaits[full]; ok {
		lw.reportBlocked(call.Pos(), what)
		return
	}

	// Read/Write on net.Conn, Accept on net.Listener.
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Read", "Write":
		if implementsIface(recv, lw.conn) {
			lw.reportBlocked(call.Pos(), "net.Conn."+sel.Sel.Name)
		}
	case "Accept":
		if implementsIface(recv, lw.listener) {
			lw.reportBlocked(call.Pos(), "net.Listener.Accept")
		}
	}
}

// implementsIface reports whether t (or *t) satisfies iface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// reportBlocked reports a blocking operation if any mutex is currently held.
func (lw *lockWalker) reportBlocked(pos token.Pos, what string) {
	if len(lw.held) == 0 {
		return
	}
	h := lw.held[len(lw.held)-1]
	lw.pass.Reportf(pos, "%s while %s is held (locked at %s): blocking under a mutex stalls every contender — release first or hand off to a worker",
		what, h.key, lw.pass.Fset.Position(h.pos))
}
