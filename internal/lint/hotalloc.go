package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Hotalloc is the escape-analysis gate: functions carrying the
// `ringcast:hotpath` marker must not allocate on the heap. Unlike the three
// AST analyzers it is not a syntactic pass — it asks the compiler itself, by
// running `go build -gcflags=<module>/...=-m` and parsing the escape
// diagnostics ("escapes to heap", "moved to heap"). Any escape whose
// position falls inside a marked function's body fails the check, so a
// refactor that silently makes a per-unit hot-path function start allocating
// (the regression class the flattened-scratch rewrites eliminated) breaks CI
// instead of shipping as a 10x allocation regression. Waive a deliberate
// allocation with `//lint:hotalloc <why>` on the escaping line.
const HotallocName = "hotalloc"

// HotallocDoc describes the check for -help output alongside the AST
// analyzers' Doc strings.
const HotallocDoc = "functions marked ringcast:hotpath must stay free of heap escapes per compiler -gcflags=-m escape analysis"

// escapeLineRe matches one compiler escape diagnostic:
// "file.go:line:col: x escapes to heap" / "moved to heap: x".
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// Hotalloc runs compiler escape analysis over the module rooted at dir and
// returns one Diagnostic per heap escape inside a `ringcast:hotpath`-marked
// function of pkgs. The returned diagnostics flow through RunAnalyzers'
// shared waiver filter, so `//lint:hotalloc <why>` suppresses them like any
// other finding.
func Hotalloc(dir string, pkgs []*Package) ([]Diagnostic, error) {
	var marked []HotpathFunc
	for _, pkg := range pkgs {
		marked = append(marked, HotpathFuncs(pkg.Fset, pkg.Syntax)...)
	}
	if len(marked) == 0 {
		return nil, nil
	}

	out, err := escapeOutput(dir)
	if err != nil {
		return nil, err
	}
	return matchEscapes(dir, marked, out), nil
}

// escapeOutput runs compiler escape analysis over the module rooted at dir
// and returns the raw -m diagnostics. The output replays from the build
// cache, so the second caller in one lint run (hotalloc, then allocbudget)
// pays nothing extra.
func escapeOutput(dir string) (string, error) {
	modPath, err := modulePath(dir)
	if err != nil {
		return "", err
	}
	cmd := exec.Command("go", "build", "-gcflags="+modPath+"/...=-m", "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.Bytes())
	}
	return out.String(), nil
}

// matchEscapes pairs compiler escape diagnostics with marked function
// ranges. buildOutput is the raw `go build -gcflags=-m` output; file paths
// in it are relative to dir.
func matchEscapes(dir string, marked []HotpathFunc, buildOutput string) []Diagnostic {
	byFile := map[string][]HotpathFunc{}
	for _, fn := range marked {
		byFile[fn.File] = append(byFile[fn.File], fn)
	}
	var diags []Diagnostic
	for _, line := range strings.Split(buildOutput, "\n") {
		m := escapeLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, fn := range byFile[file] {
			if lineNo >= fn.Start && lineNo <= fn.End {
				diags = append(diags, Diagnostic{
					Analyzer: HotallocName,
					Pos:      token.Position{Filename: file, Line: lineNo, Column: col},
					Message: fmt.Sprintf("heap escape in ringcast:hotpath function %s: %s — hot-path functions must not allocate",
						fn.Name, m[4]),
				})
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags
}
