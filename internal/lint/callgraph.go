package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// A FuncNode is one function in the module call graph: a declared function or
// method (Decl != nil), a function literal (Lit != nil), or a callee outside
// the analyzed packages (both nil — standard-library functions and interface
// methods, which exist as nodes so the facts layer can classify them by full
// name and route interface dispatch through them). Fact fields are zero until
// computeFacts runs (see facts.go).
type FuncNode struct {
	// Name is the printable identity: types.Func.FullName for declared and
	// external functions, "<encloser>$func@file:line" for literals.
	Name string
	// Obj is the declared object; nil for function literals.
	Obj *types.Func
	// Decl is the syntax of an in-module declared function; nil otherwise.
	Decl *ast.FuncDecl
	// Lit is the syntax of a function literal; nil otherwise.
	Lit *ast.FuncLit
	// Pkg is the owning in-module package; nil for external callees.
	Pkg *Package
	// Edges are the outgoing calls in source order. An interface method node
	// carries Iface edges to every in-module implementation, so dispatch is
	// one hop through the method node rather than a fan-out at every caller.
	Edges []CallEdge

	// Facts — conservative per-function summaries propagated to a fixpoint
	// over the graph by computeFacts.

	// MayBlock reports that calling this function can park the caller: a
	// channel operation, select without default, net I/O, sleep, or wait,
	// directly or through any non-go call edge.
	MayBlock bool
	// RandClock reports that this function draws from global math/rand,
	// math/rand/v2, crypto/rand, or reads the wall clock / arms real timers,
	// directly or through any call edge (go statements included: a spawned
	// goroutine's draws still shape program behavior).
	RandClock bool
	// Acquires maps each sync mutex object this function may lock — here or
	// through any non-go call edge — to one representative acquisition
	// position. Keys are the types.Object of the mutex expression, so two
	// instances of the same struct field unify (documented imprecision; the
	// lock-order analysis ignores self-edges for exactly this reason).
	Acquires map[types.Object]token.Pos
	// LeakSites are blocking channel/Conn operations, here or through any
	// non-go call edge, with no recognized cancellation path. A `go`
	// statement whose spawned body carries leak sites is a goroleak finding.
	LeakSites []LeakSite

	// blockSite is the first direct blocking site found in this body (or the
	// classification of an external), for building human-readable chains.
	blockSite *factSite
	// randSite is the analogous direct rand/clock classification.
	randSite *factSite
}

// A LeakSite is one blocking operation with no recognized cancellation path:
// no sibling select arm, no traceable close of the channel, no Close call on
// the Conn/Listener in the owning package.
type LeakSite struct {
	Pos  token.Pos
	What string
}

// A factSite records where and why a direct fact was established.
type factSite struct {
	pos  token.Pos
	what string
}

// A CallEdge is one resolved call from a FuncNode.
type CallEdge struct {
	Callee *FuncNode
	// Pos is the call position in the caller; NoPos on the synthetic
	// dispatch edges from an interface method to its implementations.
	Pos token.Pos
	// Go marks an edge from a `go` statement (or a time.AfterFunc callback):
	// the spawned goroutine, not the caller, runs the callee, so may-block,
	// lock and leak facts do not flow back across it — only rand/clock taint
	// does.
	Go bool
	// Iface marks an edge resolved through interface dispatch
	// (types.Implements over every in-module named type).
	Iface bool
}

// A CallGraph is the conservative static call graph over one load: every
// declared function and function literal of the analyzed packages, plus
// external and interface-method nodes reached from them. Calls through plain
// function values (fields, parameters, locals) are NOT resolved — that is the
// documented imprecision of the graph; the two higher-order stdlib idioms the
// tree actually uses, (*sync.Once).Do and time.AfterFunc with a literal
// callback, are special-cased as direct and go edges respectively.
type CallGraph struct {
	// Nodes lists every node in deterministic order: declared functions in
	// package/file/declaration order, then literals and externals in the
	// order the body walk encountered them.
	Nodes []*FuncNode

	funcs map[*types.Func]*FuncNode
	lits  map[*ast.FuncLit]*FuncNode
	calls map[*ast.CallExpr][]*FuncNode

	named []*types.Named // in-module concrete named types, for dispatch
}

// NodeOf returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.funcs[fn.Origin()]
}

// CalleesOf returns the resolved callees of one call expression (empty for
// dynamic calls through function values).
func (g *CallGraph) CalleesOf(call *ast.CallExpr) []*FuncNode {
	return g.calls[call]
}

// graphBuilder accumulates the call graph over one package set.
type graphBuilder struct {
	g     *CallGraph
	owner map[*FuncNode]*Package // current package per body being walked
}

// buildCallGraph constructs the call graph over pkgs. The packages must share
// one type universe (the Load/LoadFixtureTree guarantee) so *types.Func
// identity holds across package boundaries.
func buildCallGraph(pkgs []*Package) *CallGraph {
	b := &graphBuilder{g: &CallGraph{
		funcs: map[*types.Func]*FuncNode{},
		lits:  map[*ast.FuncLit]*FuncNode{},
		calls: map[*ast.CallExpr][]*FuncNode{},
	}}

	// Pass 1: a node per declared function, and the concrete named types
	// that interface dispatch resolves against. Scope().Names() is sorted,
	// and pkgs arrive sorted by import path, so both orders are stable.
	type declared struct {
		node *FuncNode
		pkg  *Package
	}
	var bodies []declared
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Name: obj.FullName(), Obj: obj, Decl: fd, Pkg: pkg}
				b.g.funcs[obj] = n
				b.g.Nodes = append(b.g.Nodes, n)
				if fd.Body != nil {
					bodies = append(bodies, declared{n, pkg})
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.g.named = append(b.g.named, named)
		}
	}

	// Pass 2: resolve every call in every body.
	for _, d := range bodies {
		b.walkBody(d.node, d.pkg, d.node.Decl.Body)
	}
	return b.g
}

// walkBody resolves the calls of one function body (or a sub-expression of
// it), attributing them to owner. Nested function literals become their own
// nodes with their own edges.
func (b *graphBuilder) walkBody(owner *FuncNode, pkg *Package, root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Defining a literal adds no edge by itself; edges appear where
			// it is invoked, spawned, or handed to a special-cased invoker.
			b.litNode(owner, pkg, n)
			return false
		case *ast.GoStmt:
			b.addCall(owner, pkg, n.Call, true)
			for _, arg := range n.Call.Args {
				b.walkBody(owner, pkg, arg)
			}
			return false
		case *ast.CallExpr:
			b.addCall(owner, pkg, n, false)
			return true
		}
		return true
	})
}

// litNode returns (creating on first sight) the node for a function literal
// and walks its body.
func (b *graphBuilder) litNode(owner *FuncNode, pkg *Package, lit *ast.FuncLit) *FuncNode {
	if n := b.g.lits[lit]; n != nil {
		return n
	}
	pos := pkg.Fset.Position(lit.Pos())
	n := &FuncNode{
		Name: fmt.Sprintf("%s$func@%s:%d", owner.Name, filepath.Base(pos.Filename), pos.Line),
		Lit:  lit,
		Pkg:  pkg,
	}
	b.g.lits[lit] = n
	b.g.Nodes = append(b.g.Nodes, n)
	b.walkBody(n, pkg, lit.Body)
	return n
}

// addCall resolves one call expression to graph edges from owner. isGo marks
// edges from `go` statements.
func (b *graphBuilder) addCall(owner *FuncNode, pkg *Package, call *ast.CallExpr, isGo bool) {
	info := pkg.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: foo[T](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}

	link := func(callee *FuncNode, asGo bool) {
		owner.Edges = append(owner.Edges, CallEdge{Callee: callee, Pos: call.Pos(), Go: asGo})
		b.g.calls[call] = append(b.g.calls[call], callee)
	}

	switch fun := fun.(type) {
	case *ast.FuncLit:
		link(b.litNode(owner, pkg, fun), isGo)
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			b.linkResolved(owner, pkg, call, fn, isGo)
		}
		// *types.Var / *types.Builtin: a dynamic call through a function
		// value, or close/len/append — no edge.
	case *ast.SelectorExpr:
		var fn *types.Func
		if selection := info.Selections[fun]; selection != nil {
			fn, _ = selection.Obj().(*types.Func) // nil for func-typed fields
		} else if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			fn = f // qualified package function: pkg.F
		}
		if fn != nil {
			b.linkResolved(owner, pkg, call, fn, isGo)
		}
	}
}

// linkResolved records an edge to a resolved callee and applies the two
// higher-order special cases: (*sync.Once).Do runs its argument synchronously
// (a direct edge) and time.AfterFunc runs it on a timer goroutine (a go
// edge). Everything else that takes a function value is a documented hole.
func (b *graphBuilder) linkResolved(owner *FuncNode, pkg *Package, call *ast.CallExpr, fn *types.Func, isGo bool) {
	callee := b.fnNode(fn)
	owner.Edges = append(owner.Edges, CallEdge{Callee: callee, Pos: call.Pos(), Go: isGo})
	b.g.calls[call] = append(b.g.calls[call], callee)

	var cbArg ast.Expr
	var cbGo bool
	switch callee.Name {
	case "(*sync.Once).Do":
		if len(call.Args) == 1 {
			cbArg, cbGo = call.Args[0], isGo
		}
	case "time.AfterFunc":
		if len(call.Args) == 2 {
			cbArg, cbGo = call.Args[1], true
		}
	}
	if cbArg == nil {
		return
	}
	switch cb := ast.Unparen(cbArg).(type) {
	case *ast.FuncLit:
		owner.Edges = append(owner.Edges, CallEdge{Callee: b.litNode(owner, pkg, cb), Pos: call.Pos(), Go: cbGo})
	case *ast.Ident:
		if f, ok := pkg.TypesInfo.Uses[cb].(*types.Func); ok {
			owner.Edges = append(owner.Edges, CallEdge{Callee: b.fnNode(f), Pos: call.Pos(), Go: cbGo})
		}
	case *ast.SelectorExpr:
		if sel := pkg.TypesInfo.Selections[cb]; sel != nil {
			if f, ok := sel.Obj().(*types.Func); ok {
				owner.Edges = append(owner.Edges, CallEdge{Callee: b.fnNode(f), Pos: call.Pos(), Go: cbGo})
			}
		}
	}
}

// fnNode returns (creating on first sight) the node for a declared, external,
// or interface-method function. An interface method node gets dispatch edges
// to every in-module implementation the moment it is created.
func (b *graphBuilder) fnNode(fn *types.Func) *FuncNode {
	fn = fn.Origin()
	if n := b.g.funcs[fn]; n != nil {
		return n
	}
	n := &FuncNode{Name: fn.FullName(), Obj: fn}
	b.g.funcs[fn] = n
	b.g.Nodes = append(b.g.Nodes, n)
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		b.resolveDispatch(n, sig.Recv().Type())
	}
	return n
}

// resolveDispatch adds Iface edges from an interface method node to the
// corresponding method of every in-module named type that implements the
// interface (via types.Implements, trying both T and *T).
func (b *graphBuilder) resolveDispatch(n *FuncNode, recv types.Type) {
	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		return
	}
	for _, named := range b.g.named {
		var rt types.Type
		switch {
		case types.Implements(named, iface):
			rt = named
		case types.Implements(types.NewPointer(named), iface):
			rt = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(rt, true, n.Obj.Pkg(), n.Obj.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		target := b.fnNode(m)
		if target == n {
			continue
		}
		n.Edges = append(n.Edges, CallEdge{Callee: target, Iface: true})
	}
}
