package vicinity

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

func newNode(t *testing.T, id ident.ID, size int) *Vicinity {
	t.Helper()
	v, err := New(id, "", Config{ViewSize: size, GossipLen: size}, RingDistance)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, "", Config{ViewSize: 0, GossipLen: 1}, RingDistance); err == nil {
		t.Error("accepted zero view size")
	}
	if _, err := New(1, "", Config{ViewSize: 2, GossipLen: 3}, RingDistance); err == nil {
		t.Error("accepted gossip length > view size")
	}
	if _, err := New(1, "", DefaultConfig(), nil); err == nil {
		t.Error("accepted nil distance function")
	}
	if _, err := New(ident.Nil, "", DefaultConfig(), RingDistance); err == nil {
		t.Error("accepted nil self")
	}
}

func TestMergeKeepsClosest(t *testing.T) {
	v := newNode(t, 1000, 3)
	cands := []view.Entry{
		{Node: 900}, {Node: 1100}, {Node: 5000}, {Node: 1001}, {Node: 2000},
	}
	v.Merge(cands, nil)
	ids := v.View().IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	want := []ident.ID{900, 1001, 1100}
	if len(ids) != 3 {
		t.Fatalf("view size = %d, want 3", len(ids))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("view = %v, want %v", ids, want)
		}
	}
}

func TestMergeExcludesSelfAndNil(t *testing.T) {
	v := newNode(t, 10, 4)
	v.Merge([]view.Entry{{Node: 10}, {Node: ident.Nil}, {Node: 11}}, nil)
	if v.View().Contains(10) || v.View().Contains(ident.Nil) {
		t.Fatalf("self or nil entered view: %v", v.View())
	}
	if !v.View().Contains(11) {
		t.Fatal("valid candidate dropped")
	}
}

func TestMergeUsesFeed(t *testing.T) {
	v := newNode(t, 10, 4)
	v.Merge(nil, []view.Entry{{Node: 12}})
	if !v.View().Contains(12) {
		t.Fatal("feed candidate not merged")
	}
}

func TestMergeKeepsYoungestDuplicate(t *testing.T) {
	v := newNode(t, 10, 4)
	v.Merge([]view.Entry{{Node: 12, Age: 9}}, []view.Entry{{Node: 12, Age: 1}})
	e, ok := v.View().Get(12)
	if !ok || e.Age != 1 {
		t.Fatalf("entry = %+v ok=%v, want age 1", e, ok)
	}
}

func TestRingNeighbors(t *testing.T) {
	v := newNode(t, 100, 6)
	v.Merge([]view.Entry{{Node: 90}, {Node: 95}, {Node: 110}, {Node: 105}, {Node: 500}}, nil)
	pred, succ, ok := v.RingNeighbors()
	if !ok {
		t.Fatal("no ring neighbours")
	}
	if pred.Node != 95 {
		t.Errorf("pred = %v, want 95", pred.Node)
	}
	if succ.Node != 105 {
		t.Errorf("succ = %v, want 105", succ.Node)
	}
}

func TestRingNeighborsWraparound(t *testing.T) {
	// self near the top of the ID space: successor wraps to a small ID.
	self := ident.ID(^uint64(0) - 5)
	v := MustNew(self, "", Config{ViewSize: 4, GossipLen: 4}, RingDistance)
	v.Merge([]view.Entry{{Node: 3}, {Node: self - 10}}, nil)
	pred, succ, ok := v.RingNeighbors()
	if !ok {
		t.Fatal("no ring neighbours")
	}
	if succ.Node != 3 {
		t.Errorf("succ = %v, want 3 (wrapped)", succ.Node)
	}
	if pred.Node != self-10 {
		t.Errorf("pred = %v, want %v", pred.Node, self-10)
	}
}

func TestRingNeighborsSinglePeer(t *testing.T) {
	v := newNode(t, 50, 4)
	v.Merge([]view.Entry{{Node: 60}}, nil)
	pred, succ, ok := v.RingNeighbors()
	if !ok || pred.Node != 60 || succ.Node != 60 {
		t.Fatalf("two-node ring: pred=%v succ=%v ok=%v, want both 60", pred.Node, succ.Node, ok)
	}
}

func TestRingNeighborsEmpty(t *testing.T) {
	v := newNode(t, 50, 4)
	if _, _, ok := v.RingNeighbors(); ok {
		t.Fatal("neighbours reported for empty view")
	}
}

func TestPayloadIncludesFreshSelf(t *testing.T) {
	v := newNode(t, 7, 3)
	v.Merge([]view.Entry{{Node: 8, Age: 4}, {Node: 9, Age: 2}, {Node: 20, Age: 1}}, nil)
	p := v.Payload()
	if len(p) > 3 {
		t.Fatalf("payload length %d exceeds gossip length", len(p))
	}
	last := p[len(p)-1]
	if last.Node != 7 || last.Age != 0 {
		t.Fatalf("payload must end with fresh self entry, got %+v", last)
	}
}

func TestSelectPeerFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := newNode(t, 7, 3)
	if _, ok := v.SelectPeer(rng, nil); ok {
		t.Fatal("peer selected from nothing")
	}
	e, ok := v.SelectPeer(rng, []view.Entry{{Node: 7}, {Node: 9}})
	if !ok || e.Node != 9 {
		t.Fatalf("fallback selection = %+v ok=%v, want node 9", e, ok)
	}
	v.Merge([]view.Entry{{Node: 5}}, nil)
	e, ok = v.SelectPeer(rng, nil)
	if !ok || e.Node != 5 {
		t.Fatalf("view selection = %+v ok=%v, want node 5", e, ok)
	}
}

// Property: merge output is exactly the ViewSize closest candidates seen.
func TestMergeOptimalityProperty(t *testing.T) {
	f := func(raw []uint64, seed int64) bool {
		self := ident.ID(1 << 32)
		v := MustNew(self, "", Config{ViewSize: 5, GossipLen: 5}, RingDistance)
		var cands []view.Entry
		uniq := map[ident.ID]bool{}
		for _, r := range raw {
			id := ident.ID(r)
			if id == self || id.IsNil() || uniq[id] {
				continue
			}
			uniq[id] = true
			cands = append(cands, view.Entry{Node: id})
		}
		v.Merge(cands, nil)
		got := v.View().IDs()
		// brute-force expected set
		sort.Slice(cands, func(i, j int) bool {
			di, dj := ident.Dist(self, cands[i].Node), ident.Dist(self, cands[j].Node)
			if di != dj {
				return di < dj
			}
			return cands[i].Node < cands[j].Node
		})
		n := 5
		if n > len(cands) {
			n = len(cands)
		}
		if len(got) != n {
			return false
		}
		want := map[ident.ID]bool{}
		for _, e := range cands[:n] {
			want[e.Node] = true
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAgeAllAndRemove(t *testing.T) {
	v := newNode(t, 7, 3)
	v.Merge([]view.Entry{{Node: 9}}, nil)
	v.AgeAll()
	if e, _ := v.View().Get(9); e.Age != 1 {
		t.Fatalf("age = %d, want 1", e.Age)
	}
	if !v.Remove(9) || v.Remove(9) {
		t.Fatal("Remove semantics broken")
	}
}

func TestBalancedSelectionKeepsBothDirections(t *testing.T) {
	// Dense cluster counterclockwise of self, single peer clockwise: the
	// unbalanced policy would evict the true successor; balanced must not.
	cfg := Config{ViewSize: 4, GossipLen: 4, Balanced: true}
	v := MustNew(1000, "", cfg, RingDistance)
	cands := []view.Entry{
		{Node: 999}, {Node: 998}, {Node: 997}, {Node: 996}, {Node: 995},
		{Node: 5000}, // the only clockwise peer: the true successor
	}
	v.Merge(cands, nil)
	_, succ, ok := v.RingNeighbors()
	if !ok || succ.Node != 5000 {
		t.Fatalf("succ = %v ok=%v, want 5000 retained by balanced selection", succ.Node, ok)
	}
	pred, _, _ := v.RingNeighbors()
	if pred.Node != 999 {
		t.Fatalf("pred = %v, want 999", pred.Node)
	}
	if v.View().Len() != 4 {
		t.Fatalf("view len = %d, want 4", v.View().Len())
	}
}

func TestUnbalancedSelectionCanStarveOneSide(t *testing.T) {
	// Documents why Balanced exists: with the plain closest-k policy the
	// clockwise side is starved in the same scenario.
	cfg := Config{ViewSize: 4, GossipLen: 4, Balanced: false}
	v := MustNew(1000, "", cfg, RingDistance)
	v.Merge([]view.Entry{
		{Node: 999}, {Node: 998}, {Node: 997}, {Node: 996}, {Node: 995},
		{Node: 5000},
	}, nil)
	if v.View().Contains(5000) {
		t.Skip("closest-k unexpectedly kept the clockwise peer")
	}
	if _, succ, ok := v.RingNeighbors(); ok && succ.Node == 5000 {
		t.Fatal("inconsistent: 5000 not in view but reported as successor")
	}
}

func TestBalancedOddViewSize(t *testing.T) {
	cfg := Config{ViewSize: 5, GossipLen: 5, Balanced: true}
	v := MustNew(1000, "", cfg, RingDistance)
	var cands []view.Entry
	for i := 1; i <= 10; i++ {
		cands = append(cands, view.Entry{Node: ident.ID(1000 + i*7)})
		cands = append(cands, view.Entry{Node: ident.ID(1000 - i*7)})
	}
	v.Merge(cands, nil)
	if v.View().Len() != 5 {
		t.Fatalf("view len = %d, want 5", v.View().Len())
	}
	pred, succ, ok := v.RingNeighbors()
	if !ok || pred.Node != 993 || succ.Node != 1007 {
		t.Fatalf("pred/succ = %v/%v, want 993/1007", pred.Node, succ.Node)
	}
}

func TestMaxAgeEvictsStaleEntries(t *testing.T) {
	cfg := Config{ViewSize: 4, GossipLen: 4, MaxAge: 5}
	v := MustNew(100, "", cfg, RingDistance)
	v.Merge([]view.Entry{{Node: 101, Age: 6}, {Node: 102, Age: 5}}, nil)
	if v.View().Contains(101) {
		t.Fatal("entry older than MaxAge entered the view")
	}
	if !v.View().Contains(102) {
		t.Fatal("entry at exactly MaxAge should be kept")
	}
	// Already-held entries age past the limit and are dropped at next merge.
	for i := 0; i < 2; i++ {
		v.AgeAll()
	}
	v.Merge(nil, nil)
	if v.View().Contains(102) {
		t.Fatal("aged-out entry survived a merge")
	}
}

func TestMaxAgeZeroDisablesEviction(t *testing.T) {
	cfg := Config{ViewSize: 4, GossipLen: 4}
	v := MustNew(100, "", cfg, RingDistance)
	v.Merge([]view.Entry{{Node: 101, Age: 1000}}, nil)
	if !v.View().Contains(101) {
		t.Fatal("MaxAge=0 must not evict")
	}
}
