// Package vicinity implements the VICINITY proximity-driven topology
// construction protocol (Voulgaris & van Steen), used by RINGCAST to build
// and maintain the deterministic ring links (d-links); see paper, Section 6.
//
// Every node keeps a small view of the peers closest to itself under a
// pluggable proximity metric. Nodes periodically exchange views; on every
// exchange a node merges the received candidates (plus, crucially, the
// random candidates from its CYCLON view — the two-layered design of the
// VICINITY paper) and keeps only the closest ones. The neighbour set thus
// converges to the globally closest peers, and the two closest peers — one
// on each side in the circular ID space — are the node's ring d-links.
package vicinity

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

// DistanceFunc measures proximity between two node IDs; smaller is closer.
type DistanceFunc func(a, b ident.ID) uint64

// RingDistance is the paper's proximity metric: circular distance between
// sequence IDs, which organizes nodes into a ring.
func RingDistance(a, b ident.ID) uint64 { return ident.Dist(a, b) }

// Config carries the VICINITY parameters.
type Config struct {
	// ViewSize is the partial-view length ("vic" in the paper; 20 in all of
	// the paper's experiments).
	ViewSize int
	// GossipLen bounds how many entries are shipped per exchange. The paper
	// exchanges full views; setting GossipLen = ViewSize reproduces that.
	GossipLen int
	// Balanced makes the selection keep half the view on each side of the
	// ring (closest clockwise and closest counterclockwise peers) instead of
	// the globally closest set. This realizes the paper's "links to a few
	// more peers with gradually higher and lower sequence IDs ... useful in
	// maintaining the ring" and guarantees that the true ring neighbours are
	// retained even when one side of the ID space is locally dense. It only
	// makes sense with a circular metric (RingDistance).
	Balanced bool
	// MaxAge evicts entries older than this many cycles from the merge
	// candidate pool (0 disables eviction). Live nodes keep re-injecting
	// fresh self entries, so their links stay young; a dead node's entries
	// only ever age and are eventually purged everywhere. It bounds how
	// long a dead link can keep being resurrected by gossip partners that
	// still hold it, complementing the primary healing mechanism (probing
	// the oldest entry each cycle, see SelectPeer).
	MaxAge uint32
}

// DefaultConfig returns the parameters used in the paper's evaluation.
func DefaultConfig() Config {
	return Config{ViewSize: 20, GossipLen: 20, Balanced: true, MaxAge: 30}
}

func (c Config) validate() error {
	if c.ViewSize <= 0 {
		return fmt.Errorf("vicinity: ViewSize must be positive, got %d", c.ViewSize)
	}
	if c.GossipLen <= 0 || c.GossipLen > c.ViewSize {
		return fmt.Errorf("vicinity: GossipLen must be in [1,%d], got %d", c.ViewSize, c.GossipLen)
	}
	return nil
}

// Vicinity is the per-node protocol state. Like cyclon.Cyclon it is a pure
// state machine with no I/O and is not safe for concurrent use.
type Vicinity struct {
	self ident.ID
	addr string
	cfg  Config
	dist DistanceFunc
	view *view.View
}

// New constructs the protocol state for one node. dist must not be nil.
func New(self ident.ID, addr string, cfg Config, dist DistanceFunc) (*Vicinity, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if self.IsNil() {
		return nil, fmt.Errorf("vicinity: self ID must not be nil")
	}
	if dist == nil {
		return nil, fmt.Errorf("vicinity: distance function must not be nil")
	}
	return &Vicinity{self: self, addr: addr, cfg: cfg, dist: dist, view: view.New(cfg.ViewSize)}, nil
}

// MustNew is New for statically valid configuration.
func MustNew(self ident.ID, addr string, cfg Config, dist DistanceFunc) *Vicinity {
	v, err := New(self, addr, cfg, dist)
	if err != nil {
		panic(err)
	}
	return v
}

// Self returns the node's own identifier.
func (v *Vicinity) Self() ident.ID { return v.self }

// View exposes the proximity view.
func (v *Vicinity) View() *view.View { return v.view }

// Resize re-tunes the proximity-view length at runtime. The new size must
// still admit the configured GossipLen; shrinking evicts the oldest
// entries first. Callers synchronize externally, as with every other
// method.
func (v *Vicinity) Resize(viewSize int) error {
	if viewSize < v.cfg.GossipLen {
		return fmt.Errorf("vicinity: ViewSize %d below GossipLen %d", viewSize, v.cfg.GossipLen)
	}
	v.cfg.ViewSize = viewSize
	v.view.SetCap(viewSize)
	return nil
}

// AgeAll increments all entry ages; called once per gossip cycle.
func (v *Vicinity) AgeAll() { v.view.AgeAll() }

// SelectPeer picks the gossip partner for this cycle: the oldest entry of
// the vicinity view, exactly as CYCLON does. Gossiping with the stalest
// link either refreshes it (the partner's reply carries a fresh self entry)
// or exposes it as dead so it can be dropped — the mechanism that lets the
// ring heal under churn. The supplied fallback entries (typically the CYCLON
// view) are consulted when the vicinity view is still empty, e.g. right
// after joining.
func (v *Vicinity) SelectPeer(rng *rand.Rand, fallback []view.Entry) (view.Entry, bool) {
	if e, ok := v.view.Oldest(); ok {
		return e, true
	}
	// Count eligible fallback entries, then index the k-th without building
	// a candidate slice — one Intn draw over the same count as before.
	eligible := 0
	for _, e := range fallback {
		if e.Node != v.self && !e.Node.IsNil() {
			eligible++
		}
	}
	if eligible == 0 {
		return view.Entry{}, false
	}
	k := rng.Intn(eligible)
	for _, e := range fallback {
		if e.Node != v.self && !e.Node.IsNil() {
			if k == 0 {
				return e, true
			}
			k--
		}
	}
	return view.Entry{}, false // unreachable
}

// Payload builds the entries shipped in an exchange: the closest GossipLen-1
// view entries plus a fresh self entry, so the receiver learns about us.
// The result is freshly allocated and safe to retain (the live runtime ships
// it asynchronously); the simulator uses PayloadAppend with reusable
// buffers instead.
func (v *Vicinity) Payload() []view.Entry {
	return v.PayloadAppend(make([]view.Entry, 0, v.view.Len()+1))
}

// PayloadAppend appends the exchange payload to dst and returns the extended
// slice — the allocation-free counterpart of Payload for callers with a
// reusable buffer.
func (v *Vicinity) PayloadAppend(dst []view.Entry) []view.Entry {
	base := len(dst)
	dst = v.view.AppendTo(dst)
	v.sortedByDistance(dst[base:])
	n := v.cfg.GossipLen - 1
	if n > len(dst)-base {
		n = len(dst) - base
	}
	dst = dst[:base+n]
	return append(dst, view.Entry{Node: v.self, Addr: v.addr, Age: 0})
}

// mergeScratch carries the reusable buffers of Merge/selectBalanced. Views
// are small (tens of entries), so the buffers stay tiny; a sync.Pool shares
// them across the thousands of Vicinity instances of a simulated network
// without per-instance memory cost, and keeps concurrent live nodes safe.
type mergeScratch struct {
	pool   []view.Entry
	out    []view.Entry
	rest   []view.Entry
	chosen []bool
}

var scratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

// Merge folds candidate entries into the view, keeping the ViewSize closest
// peers to self. feed carries additional candidates from the peer-sampling
// layer (the CYCLON view); passing it on every cycle is what lets distant
// nodes discover their true ring neighbours quickly.
//
// The candidate pool is deduplicated by sorting rather than through a map:
// a stable sort on Node keeps insertion order within each node's run, so
// keeping the first minimum-age entry of every run selects exactly the
// entries the old map-based pool kept (youngest age wins, earliest-offered
// wins ties). The pool order afterwards differs from map iteration order,
// but both selection modes below re-sort under a total order (distance,
// then Node), so the resulting view is identical.
func (v *Vicinity) Merge(candidates, feed []view.Entry) {
	sc := scratchPool.Get().(*mergeScratch)
	pool := sc.pool[:0]
	add := func(e view.Entry) {
		if e.Node == v.self || e.Node.IsNil() {
			return
		}
		if v.cfg.MaxAge > 0 && e.Age > v.cfg.MaxAge {
			return
		}
		pool = append(pool, e)
	}
	for _, e := range v.view.All() {
		add(e)
	}
	for _, e := range candidates {
		add(e)
	}
	for _, e := range feed {
		add(e)
	}
	// Stable generic sort: no reflection, no per-call allocation. Any stable
	// sort yields the same permutation for a given comparator, so swapping
	// the implementation cannot change results.
	slices.SortStableFunc(pool, func(a, b view.Entry) int { return cmp.Compare(a.Node, b.Node) })
	merged := pool[:0]
	for i := 0; i < len(pool); {
		best := pool[i]
		j := i + 1
		for ; j < len(pool) && pool[j].Node == best.Node; j++ {
			if pool[j].Age < best.Age {
				best = pool[j]
			}
		}
		merged = append(merged, best)
		i = j
	}
	if v.cfg.Balanced {
		merged = v.selectBalanced(merged, sc)
	} else {
		merged = v.sortedByDistance(merged)
		if len(merged) > v.cfg.ViewSize {
			merged = merged[:v.cfg.ViewSize]
		}
	}
	v.view.Reset()
	for _, e := range merged {
		v.view.Add(e)
	}
	sc.pool = pool
	scratchPool.Put(sc)
}

// selectBalanced keeps the ViewSize/2 closest peers clockwise and the
// ViewSize/2 closest counterclockwise, filling from the other side when one
// direction has too few candidates. The closest peer in each direction — the
// true ring neighbour — is therefore always retained. entries is mutated in
// place (it is Merge's deduplicated pool); the returned slice is backed by
// sc.out and valid until the next Merge.
func (v *Vicinity) selectBalanced(entries []view.Entry, sc *mergeScratch) []view.Entry {
	cw := entries
	slices.SortStableFunc(cw, func(a, b view.Entry) int {
		da, db := ident.Clockwise(v.self, a.Node), ident.Clockwise(v.self, b.Node)
		if da != db {
			return cmp.Compare(da, db)
		}
		return cmp.Compare(a.Node, b.Node)
	})
	half := v.cfg.ViewSize / 2
	if half == 0 {
		half = 1
	}
	take := half
	if take > len(cw) {
		take = len(cw)
	}
	out := sc.out[:0]
	chosen := sc.chosen[:0]
	for range cw {
		chosen = append(chosen, false)
	}
	sc.chosen = chosen
	for i, e := range cw[:take] {
		out = append(out, e)
		chosen[i] = true
	}
	// Counterclockwise: same list walked from the far end. Entries are
	// unique by node after dedup, so positional bookkeeping replaces the
	// old per-node set.
	for i := len(cw) - 1; i >= 0 && len(out) < v.cfg.ViewSize; i-- {
		if chosen[i] {
			continue
		}
		// Stop taking ccw entries once we have half from each side and the
		// remainder should go to whichever side is closer overall.
		if len(out) >= 2*half {
			break
		}
		chosen[i] = true
		out = append(out, cw[i])
	}
	// Any remaining capacity (odd view size, or one side exhausted): fill
	// with the globally closest of the rest.
	if len(out) < v.cfg.ViewSize && len(out) < len(cw) {
		rest := sc.rest[:0]
		for i, e := range cw {
			if !chosen[i] {
				rest = append(rest, e)
			}
		}
		rest = v.sortedByDistance(rest)
		sc.rest = rest
		for _, e := range rest {
			if len(out) >= v.cfg.ViewSize {
				break
			}
			out = append(out, e)
		}
	}
	sc.out = out
	return out
}

// sortedByDistance orders entries by proximity to self (closest first),
// breaking ties by node ID so the result is deterministic.
func (v *Vicinity) sortedByDistance(entries []view.Entry) []view.Entry {
	slices.SortStableFunc(entries, func(a, b view.Entry) int {
		da, db := v.dist(v.self, a.Node), v.dist(v.self, b.Node)
		if da != db {
			return cmp.Compare(da, db)
		}
		return cmp.Compare(a.Node, b.Node)
	})
	return entries
}

// RingNeighbors returns the node's two d-links: the closest peer clockwise
// (successor) and counterclockwise (predecessor) in the circular ID space.
// In a degenerate view with a single known peer, pred and succ coincide —
// exactly the two-node ring case. ok is false while the view is empty.
//
// RingNeighbors is only meaningful when the protocol was built with
// RingDistance (or another circular metric over IDs).
func (v *Vicinity) RingNeighbors() (pred, succ view.Entry, ok bool) {
	var (
		bestCW, bestCCW uint64
		haveCW, haveCCW bool
		entCW, entCCW   view.Entry
	)
	for _, e := range v.view.All() {
		cw := ident.Clockwise(v.self, e.Node)
		ccw := ident.Clockwise(e.Node, v.self)
		if cw != 0 && (!haveCW || cw < bestCW) {
			bestCW, entCW, haveCW = cw, e, true
		}
		if ccw != 0 && (!haveCCW || ccw < bestCCW) {
			bestCCW, entCCW, haveCCW = ccw, e, true
		}
	}
	if !haveCW || !haveCCW {
		return view.Entry{}, view.Entry{}, false
	}
	return entCCW, entCW, true
}

// Remove drops any entry for id (e.g. after a failed exchange).
func (v *Vicinity) Remove(id ident.ID) bool { return v.view.Remove(id) }
