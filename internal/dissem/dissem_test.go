package dissem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/core"
	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

// idealOverlay builds a perfect ring of n nodes with rdeg random r-links per
// node: a converged RINGCAST overlay without running gossip.
func idealOverlay(t *testing.T, n, rdeg int, seed int64) *Overlay {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = ident.ID(i + 1)
	}
	links := make([]core.Links, n)
	for i := range links {
		links[i].D = []ident.ID{ids[(i-1+n)%n], ids[(i+1)%n]}
		seen := map[int]bool{i: true}
		for len(links[i].R) < rdeg {
			j := rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			links[i].R = append(links[i].R, ids[j])
		}
	}
	o, err := FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFromLinksValidation(t *testing.T) {
	if _, err := FromLinks([]ident.ID{1}, nil); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := FromLinks([]ident.ID{1, 1}, make([]core.Links, 2)); err == nil {
		t.Error("accepted duplicate IDs")
	}
	if _, err := FromLinks([]ident.ID{ident.Nil}, make([]core.Links, 1)); err == nil {
		t.Error("accepted nil ID")
	}
}

func TestRunValidation(t *testing.T) {
	o := idealOverlay(t, 10, 3, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(o, ident.ID(999), core.RingCast{}, 3, rng); err == nil {
		t.Error("accepted unknown origin")
	}
	if _, err := Run(o, 1, nil, 3, rng); err == nil {
		t.Error("accepted nil selector")
	}
	o.KillFraction(1.0, rng)
	if _, err := Run(o, 1, core.RingCast{}, 3, rng); err == nil {
		t.Error("accepted dead origin")
	}
}

func TestRingCastCompleteOnIdealOverlay(t *testing.T) {
	// The headline property: RINGCAST reaches every node in a fail-free
	// static network for ANY fanout, including F=1.
	for _, f := range []int{1, 2, 3, 5} {
		o := idealOverlay(t, 500, 10, 42)
		rng := rand.New(rand.NewSource(int64(f)))
		d, err := Run(o, 1, core.RingCast{}, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Complete() {
			t.Fatalf("F=%d: RingCast incomplete, reached %d/%d", f, d.Reached, d.AliveTotal)
		}
	}
}

func TestRandCastLowFanoutIncomplete(t *testing.T) {
	// With F=1 RandCast dies out almost immediately.
	o := idealOverlay(t, 500, 10, 7)
	rng := rand.New(rand.NewSource(9))
	d, err := Run(o, 1, core.RandCast{}, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Complete() {
		t.Fatal("RandCast F=1 completed on 500 nodes (astronomically unlikely)")
	}
}

func TestVirginCountMatchesReached(t *testing.T) {
	o := idealOverlay(t, 200, 8, 3)
	rng := rand.New(rand.NewSource(4))
	d, err := Run(o, 1, core.RingCast{}, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Virgin != d.Reached-1 {
		t.Fatalf("Virgin = %d, want Reached-1 = %d", d.Virgin, d.Reached-1)
	}
	if d.Lost != 0 {
		t.Fatalf("Lost = %d in fail-free overlay", d.Lost)
	}
	// Message conservation: every send is delivered exactly once.
	sent := 0
	for _, s := range d.SentPerNode {
		sent += s
	}
	if sent != d.TotalMsgs() {
		t.Fatalf("sent %d != virgin+redundant+lost %d", sent, d.TotalMsgs())
	}
	recv := 0
	for _, r := range d.RecvPerNode {
		recv += r
	}
	if recv != sent {
		t.Fatalf("recv %d != sent %d", recv, sent)
	}
}

func TestMessageOverheadIsFanoutTimesHits(t *testing.T) {
	// Paper, Section 7.1: total messages = F x Nhit when every node has
	// enough distinct targets (RandCast with big view).
	o := idealOverlay(t, 300, 20, 5)
	rng := rand.New(rand.NewSource(6))
	f := 5
	d, err := Run(o, 1, core.RandCast{}, f, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.TotalMsgs(), f*d.Reached; got != want {
		t.Fatalf("TotalMsgs = %d, want F*Nhit = %d", got, want)
	}
}

func TestFloodOnRingTakesHalfRingHops(t *testing.T) {
	n := 100
	ids := make([]ident.ID, n)
	links := make([]core.Links, n)
	for i := range ids {
		ids[i] = ident.ID(i + 1)
	}
	for i := range ids {
		links[i].D = []ident.ID{ids[(i-1+n)%n], ids[(i+1)%n]}
	}
	o, err := FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(o, 1, core.DFlood{}, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatal("flood on ring incomplete")
	}
	if d.Hops() != n/2 {
		t.Fatalf("Hops = %d, want %d", d.Hops(), n/2)
	}
}

func TestLostMessagesWithDeadNodes(t *testing.T) {
	o := idealOverlay(t, 200, 8, 8)
	rng := rand.New(rand.NewSource(2))
	killed := o.KillFraction(0.2, rng)
	if killed != 40 {
		t.Fatalf("killed %d, want 40", killed)
	}
	if o.AliveCount() != 160 {
		t.Fatalf("alive = %d, want 160", o.AliveCount())
	}
	origin, err := o.RandomAliveOrigin(rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(o, origin, core.RingCast{}, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.AliveTotal != 160 {
		t.Fatalf("AliveTotal = %d, want 160", d.AliveTotal)
	}
	if d.Lost == 0 {
		t.Fatal("no lost messages despite 20% dead nodes with dangling links")
	}
	if d.Reached > 160 {
		t.Fatal("reached more nodes than alive")
	}
}

func TestCloneIndependence(t *testing.T) {
	o := idealOverlay(t, 50, 5, 9)
	c := o.Clone()
	c.KillFraction(0.5, rand.New(rand.NewSource(1)))
	if o.AliveCount() != 50 {
		t.Fatal("killing the clone affected the original")
	}
	if c.AliveCount() == 50 {
		t.Fatal("clone kill had no effect")
	}
}

func TestSnapshotFromSimNetwork(t *testing.T) {
	cfg := sim.Config{
		N:           150,
		Cyclon:      cyclon.Config{ViewSize: 8, ShuffleLen: 4},
		Vicinity:    vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		UseVicinity: true,
		Seed:        5,
	}
	nw := sim.MustNew(cfg)
	_, conv := nw.WarmUp(100, 500)
	if conv != 1.0 {
		t.Fatalf("warm-up did not converge: %v", conv)
	}
	o := Snapshot(nw)
	if o.N() != 150 || o.AliveCount() != 150 {
		t.Fatalf("snapshot size %d/%d", o.AliveCount(), o.N())
	}
	// The d-link graph of a converged snapshot is exactly a bidirectional
	// ring: strongly connected with every out-degree 2.
	g := o.DGraph()
	if !g.StronglyConnected(nil) {
		t.Fatal("converged d-link graph not strongly connected")
	}
	for i, deg := range g.OutDegrees() {
		if deg != 2 {
			t.Fatalf("node %d d-degree = %d, want 2", i, deg)
		}
	}
	// And RingCast over the real snapshot must be complete for F=1.
	rng := rand.New(rand.NewSource(11))
	d, err := Run(o, o.IDs()[3], core.RingCast{}, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatalf("RingCast on converged snapshot incomplete: %d/%d", d.Reached, d.AliveTotal)
	}
}

func TestRunDeterministic(t *testing.T) {
	o := idealOverlay(t, 100, 6, 13)
	d1, err := Run(o, 1, core.RandCast{}, 3, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Run(o, 1, core.RandCast{}, 3, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Reached != d2.Reached || d1.Redundant != d2.Redundant || d1.Hops() != d2.Hops() {
		t.Fatal("identical seeds produced different disseminations")
	}
}

func TestCumNotifiedMonotone(t *testing.T) {
	o := idealOverlay(t, 300, 10, 21)
	d, err := Run(o, 1, core.RingCast{}, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if d.CumNotified[0] != 1 {
		t.Fatalf("CumNotified[0] = %d, want 1 (the origin)", d.CumNotified[0])
	}
	for h := 1; h < len(d.CumNotified); h++ {
		if d.CumNotified[h] < d.CumNotified[h-1] {
			t.Fatal("CumNotified not monotone")
		}
	}
	if last := d.CumNotified[len(d.CumNotified)-1]; last != d.Reached {
		t.Fatalf("final CumNotified = %d, want Reached = %d", last, d.Reached)
	}
}

func TestSnapshotMultiRing(t *testing.T) {
	cfg := sim.Config{
		N:           120,
		Cyclon:      cyclon.Config{ViewSize: 8, ShuffleLen: 4},
		Vicinity:    vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		UseVicinity: true,
		Seed:        31,
		Rings:       2,
	}
	nw := sim.MustNew(cfg)
	nw.WarmUp(100, 600)
	o := Snapshot(nw)
	// Every node carries 4 d-links (2 rings), all resolving to known nodes.
	for i := 0; i < o.N(); i++ {
		d := o.Links(i).D
		if len(d) != 4 {
			t.Fatalf("node %d has %d d-links, want 4", i, len(d))
		}
	}
	// The d-link graph with two rings survives any two failures.
	g := o.DGraph()
	alive := o.AliveSlice()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		test := append([]bool(nil), alive...)
		a, b := rng.Intn(len(test)), rng.Intn(len(test))
		if a == b {
			continue
		}
		test[a], test[b] = false, false
		if !g.StronglyConnected(test) {
			t.Fatalf("2-ring d-link graph partitioned by killing %d and %d", a, b)
		}
	}
	// RingCast at F=1 over the double ring is still complete.
	d, err := Run(o, o.IDs()[0], core.RingCast{}, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatalf("multi-ring RingCast incomplete: %d/%d", d.Reached, d.AliveTotal)
	}
}

func TestRunOptsSkipLoad(t *testing.T) {
	o := idealOverlay(t, 100, 6, 33)
	rng := rand.New(rand.NewSource(1))
	d, err := RunOpts(o, 1, core.RingCast{}, 3, rng, Options{SkipLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.SentPerNode != nil || d.RecvPerNode != nil {
		t.Fatal("SkipLoad did not skip per-node arrays")
	}
	if !d.Complete() {
		t.Fatal("SkipLoad changed dissemination behaviour")
	}
}

func TestRunOptsRecordMissed(t *testing.T) {
	o := idealOverlay(t, 200, 6, 34)
	rng := rand.New(rand.NewSource(2))
	d, err := RunOpts(o, 1, core.RandCast{}, 1, rng, Options{RecordMissed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Missed) != d.AliveTotal-d.Reached {
		t.Fatalf("Missed = %d entries, want %d", len(d.Missed), d.AliveTotal-d.Reached)
	}
	seen := map[ident.ID]bool{}
	for _, id := range d.Missed {
		if seen[id] {
			t.Fatal("duplicate in Missed")
		}
		seen[id] = true
		if id == d.Origin {
			t.Fatal("origin listed as missed")
		}
	}
	// Without the flag the list stays empty.
	d2, err := RunOpts(o, 1, core.RandCast{}, 1, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Missed != nil {
		t.Fatal("Missed recorded without the flag")
	}
}

func TestRandomAliveOriginErrors(t *testing.T) {
	o := idealOverlay(t, 10, 2, 35)
	rng := rand.New(rand.NewSource(3))
	o.KillFraction(1.0, rng)
	if _, err := o.RandomAliveOrigin(rng); err == nil {
		t.Fatal("origin drawn from dead overlay")
	}
}

// Property: RingCast dissemination is complete on any overlay whose d-link
// graph is strongly connected — the hybrid class's defining guarantee
// (paper, Section 5: "if the set of d-links forms a strongly connected
// directed graph including all nodes, complete dissemination of messages
// is guaranteed").
func TestHybridCompletenessProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 3
		ids := make([]ident.ID, n)
		for i := range ids {
			ids[i] = ident.ID(i + 1)
		}
		links := make([]core.Links, n)
		// Base: a directed Hamiltonian cycle (strongly connected), plus
		// arbitrary extra d-links and random r-links.
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u, v := perm[i], perm[(i+1)%n]
			links[u].D = append(links[u].D, ids[v])
		}
		extra := int(extraRaw % 40)
		for e := 0; e < extra; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				links[u].D = append(links[u].D, ids[v])
			}
		}
		for i := 0; i < n; i++ {
			for r := 0; r < 3; r++ {
				j := rng.Intn(n)
				if j != i {
					links[i].R = append(links[i].R, ids[j])
				}
			}
		}
		o, err := FromLinks(ids, links)
		if err != nil {
			return false
		}
		fanout := int(extraRaw%4) + 1
		d, err := RunOpts(o, ids[rng.Intn(n)], core.RingCast{}, fanout, rng, Options{SkipLoad: true})
		if err != nil {
			return false
		}
		return d.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
