package dissem

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/core"
	"ringcast/internal/ident"
)

// refResolve is the straightforward sequential link resolution the arena
// replaced, kept as the property-test oracle: walk nodes in order, R before
// D, mapping known IDs to their position, nil to NilPos, and distinct
// unknown IDs to distinct placeholders numbered by first occurrence.
func refResolve(ids []ident.ID, links []core.Links) [][2][]int32 {
	index := make(map[ident.ID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	unknown := make(map[ident.ID]int32)
	resolve := func(id ident.ID) int32 {
		if id.IsNil() {
			return core.NilPos
		}
		if i, ok := index[id]; ok {
			return int32(i)
		}
		p, ok := unknown[id]
		if !ok {
			p = int32(-2 - len(unknown))
			unknown[id] = p
		}
		return p
	}
	out := make([][2][]int32, len(links))
	for i, l := range links {
		for _, id := range l.R {
			out[i][0] = append(out[i][0], resolve(id))
		}
		for _, id := range l.D {
			out[i][1] = append(out[i][1], resolve(id))
		}
	}
	return out
}

// randomOverlayInput derives a random small overlay (distinct non-nil IDs,
// link sets mixing known, nil, dangling and duplicate targets) from a seed.
func randomOverlayInput(seed int64) ([]ident.ID, []core.Links) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(59)
	gen := ident.NewGenerator(seed)
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = gen.Next()
	}
	pick := func() ident.ID {
		switch rng.Intn(10) {
		case 0:
			return ident.Nil
		case 1, 2:
			return ident.ID(rng.Uint64() | 1<<63) // likely-dangling foreign ID
		default:
			return ids[rng.Intn(n)]
		}
	}
	links := make([]core.Links, n)
	for i := range links {
		for k := rng.Intn(9); k > 0; k-- {
			links[i].R = append(links[i].R, pick())
		}
		for k := rng.Intn(5); k > 0; k-- {
			links[i].D = append(links[i].D, pick())
		}
	}
	return ids, links
}

// equalPosLinks compares an arena view against the oracle's slices,
// treating nil and empty as equal.
func equalPosLinks(got core.PosLinks, wantR, wantD []int32) bool {
	eq := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(got.R, wantR) && eq(got.D, wantD)
}

// TestArenaMatchesReference is the arena correctness property: for random
// small overlays, the arena-backed PosLinks view of every node equals the
// sequential reference resolution — including nil links, dangling-link
// placeholder numbering, and duplicate targets.
func TestArenaMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		ids, links := randomOverlayInput(seed)
		o, err := FromLinks(ids, links)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := refResolve(ids, links)
		for i := range ids {
			if !equalPosLinks(o.PosLinks(i), want[i][0], want[i][1]) {
				t.Logf("seed %d node %d: arena %v/%v want %v/%v",
					seed, i, o.PosLinks(i).R, o.PosLinks(i).D, want[i][0], want[i][1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestArenaParallelismInvariant is the construction determinism property:
// shard-parallel arena construction at P = 1, 2 and 4 produces identical
// arenas for random overlays.
func TestArenaParallelismInvariant(t *testing.T) {
	f := func(seed int64) bool {
		ids, links := randomOverlayInput(seed)
		ref, err := FromLinksParallel(ids, links, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range []int{2, 4} {
			o, err := FromLinksParallel(ids, links, p)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, p, err)
			}
			for i := range ids {
				if !equalPosLinks(o.PosLinks(i), ref.PosLinks(i).R, ref.PosLinks(i).D) {
					t.Logf("seed %d P=%d node %d differs", seed, p, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaMultiShardParallel exercises the sharded fill across shard
// boundaries (N > arenaShardNodes) with dangling links whose placeholder
// numbering must not depend on the worker count.
func TestArenaMultiShardParallel(t *testing.T) {
	const n = 2*arenaShardNodes + 123
	gen := ident.NewGenerator(5)
	rng := rand.New(rand.NewSource(5))
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = gen.Next()
	}
	links := make([]core.Links, n)
	for i := range links {
		links[i].D = []ident.ID{ids[(i+1)%n], ids[(i+n-1)%n]}
		for k := 0; k < 4; k++ {
			links[i].R = append(links[i].R, ids[rng.Intn(n)])
		}
		if i%97 == 0 { // sprinkle dangling links across shard boundaries
			links[i].R = append(links[i].R, ident.ID(rng.Uint64()|1<<63))
		}
	}
	ref, err := FromLinksParallel(ids, links, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := refResolve(ids, links)
	for i := range ids {
		if !equalPosLinks(ref.PosLinks(i), want[i][0], want[i][1]) {
			t.Fatalf("node %d: sequential arena diverges from reference", i)
		}
	}
	for _, p := range []int{2, 4} {
		o, err := FromLinksParallel(ids, links, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ids {
			if !equalPosLinks(o.PosLinks(i), ref.PosLinks(i).R, ref.PosLinks(i).D) {
				t.Fatalf("P=%d node %d differs from sequential arena", p, i)
			}
		}
	}
}

// TestCompactOverlay pins the Compact contract: built-in selectors keep
// running (identical results), DGraph keeps working, and the foreign
// selector fallback reports a clear error.
func TestCompactOverlay(t *testing.T) {
	ids, links := randomOverlayInput(99)
	a, err := FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}
	b.Compact()
	if got := b.Links(0); len(got.R) != 0 || len(got.D) != 0 {
		t.Fatalf("compacted Links not empty: %+v", got)
	}
	da, err := Run(a, ids[0], core.RingCast{}, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Run(b, ids[0], core.RingCast{}, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if da.Reached != db.Reached || da.Virgin != db.Virgin || da.Redundant != db.Redundant {
		t.Fatalf("compacted run diverges: %+v vs %+v", da, db)
	}
	ga, gb := a.DGraph(), b.DGraph()
	for i := range ids {
		if fmt.Sprint(ga.Out(i)) != fmt.Sprint(gb.Out(i)) {
			t.Fatalf("DGraph differs at node %d", i)
		}
	}
	if _, err := Run(b, ids[0], foreignSelector{}, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("foreign selector on compacted overlay did not error")
	}
}

// foreignSelector is a Selector that is not a PosSelector, forcing the
// ID-path fallback.
type foreignSelector struct{}

func (foreignSelector) Name() string { return "foreign" }
func (foreignSelector) Select(links core.Links, from ident.ID, fanout int, rng *rand.Rand) []ident.ID {
	return core.RingCast{}.Select(links, from, fanout, rng)
}
