package dissem

import (
	"math/rand"
	"slices"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/ident"
	"ringcast/internal/sim"
)

// arenaToLinks re-labels an arena's positions with synthetic IDs (position i
// becomes ident.ID(i+1)) so the same topology can be fed through FromLinks
// and exercised via the ID path.
func arenaToLinks(a *core.PosArena) ([]ident.ID, []core.Links) {
	ids := make([]ident.ID, a.N())
	for i := range ids {
		ids[i] = ident.ID(i + 1)
	}
	links := make([]core.Links, a.N())
	for i := range links {
		pl := a.Links(i)
		for _, v := range pl.R {
			if v >= 0 {
				links[i].R = append(links[i].R, ident.ID(v+1))
			}
		}
		for _, v := range pl.D {
			if v >= 0 {
				links[i].D = append(links[i].D, ident.ID(v+1))
			}
		}
	}
	return ids, links
}

// TestFromArenaMatchesIDOverlay pins the position path's equivalence
// contract: an ID-less FromArena overlay over the same arena, driven by
// RunScratchPos with the same origin position and rng stream, produces
// bit-identical dissemination metrics to RunScratch on the full overlay.
func TestFromArenaMatchesIDOverlay(t *testing.T) {
	cfg := sim.DefaultMixConfig(800)
	cfg.Seed = 13
	res, err := sim.BuildConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	op := FromArena(res.Arena)
	if op.N() != 800 || op.AliveCount() != 800 {
		t.Fatalf("FromArena N=%d alive=%d", op.N(), op.AliveCount())
	}
	if op.IDs() != nil {
		t.Fatal("FromArena overlay should carry no IDs")
	}

	// Reference overlay: same arena re-labelled with synthetic IDs so the
	// ID path can run. ident.ID(i+1) keeps position i == index of ID i+1.
	ids, links := arenaToLinks(res.Arena)
	oid, err := FromLinks(ids, links)
	if err != nil {
		t.Fatal(err)
	}

	sels := []core.Selector{core.RingCast{}, core.RandCast{}, core.DFlood{}}
	for run := 0; run < 5; run++ {
		for si, sel := range sels {
			seed := int64(run*10 + si)
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			pos, err := op.RandomAlivePos(rngA)
			if err != nil {
				t.Fatal(err)
			}
			origin, err := oid.RandomAliveOrigin(rngB)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := oid.Pos(origin); int32(got) != pos {
				t.Fatalf("paired origin draw differs: pos %d vs %d", pos, got)
			}
			da, err := RunScratchPos(op, pos, sel, 4, rngA, Options{SkipLoad: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			db, err := RunScratch(oid, origin, sel, 4, rngB, Options{SkipLoad: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if da.Reached != db.Reached || da.Hops() != db.Hops() ||
				da.Redundant != db.Redundant || da.TotalMsgs() != db.TotalMsgs() ||
				!slices.Equal(da.CumNotified, db.CumNotified) {
				t.Fatalf("%s run %d: position path diverged: %+v vs %+v", sel.Name(), run, da, db)
			}
		}
	}
}

// TestFromArenaRefusesIDEntryPoints pins the clear-error contract of the
// ID-keyed entry points on an ID-less overlay.
func TestFromArenaRefusesIDEntryPoints(t *testing.T) {
	cfg := sim.DefaultMixConfig(64)
	cfg.Cycles = 4
	res, err := sim.BuildConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := FromArena(res.Arena)
	rng := rand.New(rand.NewSource(1))
	if _, err := o.RandomAliveOrigin(rng); err == nil {
		t.Error("RandomAliveOrigin accepted an ID-less overlay")
	}
	if _, err := RunScratch(o, 1, core.RingCast{}, 3, rng, Options{}, nil); err == nil {
		t.Error("RunScratch accepted an ID-less overlay")
	}
	if _, err := RunScratchPos(o, 0, core.RingCast{}, 3, rng, Options{RecordMissed: true}, nil); err == nil {
		t.Error("RecordMissed accepted an ID-less overlay")
	}
	if _, err := RunScratchPos(o, -1, core.RingCast{}, 3, rng, Options{}, nil); err == nil {
		t.Error("accepted negative origin position")
	}
	if _, err := RunScratchPos(o, int32(o.N()), core.RingCast{}, 3, rng, Options{}, nil); err == nil {
		t.Error("accepted out-of-range origin position")
	}
}

// TestFromArenaKillAndClone checks liveness plumbing on an ID-less overlay:
// kills shrink AliveCount, clones stay independent, and a dead origin is
// rejected by position.
func TestFromArenaKillAndClone(t *testing.T) {
	cfg := sim.DefaultMixConfig(200)
	cfg.Cycles = 6
	res, err := sim.BuildConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := FromArena(res.Arena)
	c := o.Clone()
	rng := rand.New(rand.NewSource(3))
	killed := o.KillFraction(0.25, rng)
	if killed != 50 || o.AliveCount() != 150 {
		t.Fatalf("killed %d alive %d", killed, o.AliveCount())
	}
	if c.AliveCount() != 200 {
		t.Fatalf("clone alive %d after killing the original", c.AliveCount())
	}
	var dead int32 = -1
	for i := 0; i < o.N(); i++ {
		if !o.IsAlive(i) {
			dead = int32(i)
			break
		}
	}
	if _, err := RunScratchPos(o, dead, core.RingCast{}, 3, rng, Options{}, nil); err == nil {
		t.Error("accepted a dead origin position")
	}
}
