// Package dissem executes message disseminations over a frozen overlay
// snapshot, following the paper's discrete dissemination model (Section 7):
// the generation of a message is hop 0; at hop h+1 the message reaches the
// gossip targets selected by every node first notified at hop h; a node
// receiving a duplicate ignores it.
//
// The overlay is a snapshot because the paper freezes gossip before
// disseminating (Section 7.1 shows ongoing gossip does not change the
// macroscopic behaviour in static networks, and Section 7.2 deliberately
// disables it after catastrophic failures to study the worst case).
//
//ringcast:deterministic
package dissem

import (
	"fmt"
	"math/rand"

	"ringcast/internal/core"
	"ringcast/internal/graph"
	"ringcast/internal/ident"
	"ringcast/internal/metrics"
	"ringcast/internal/runner"
	"ringcast/internal/sim"
)

// Overlay is an immutable-topology snapshot of a network: every node's
// outgoing links plus liveness flags (liveness is mutable so that
// catastrophic failures can be applied to a shared snapshot cheaply).
type Overlay struct {
	// ids holds per-node ident.IDs. Overlays built FromArena carry none
	// (ids is nil): at ten million nodes the ID slice plus the origin index
	// cost hundreds of megabytes the position-based scale path never reads.
	ids []ident.ID
	// links holds the ID-level link sets. Compact() releases it for
	// large-scale runs that only need the resolved arena.
	links []core.Links
	// arena holds all links resolved to dense positions in one flat int32
	// buffer with per-node offsets (core.PosArena), computed once at
	// Snapshot/FromLinks time so the dissemination hot path never consults
	// the ID index and carries no per-node slice headers. Shared by clones:
	// topology is immutable.
	arena *core.PosArena
	alive []bool
	// live caches the positions of live nodes in ascending order. It is
	// rebuilt eagerly at every liveness change (construction, KillFraction,
	// Clone) — all single-threaded setup points — so the parallel sweep
	// phase only ever reads it: RandomAliveOrigin and AliveCount are O(1)
	// allocation-free on the per-unit hot path.
	live  []int32
	index map[ident.ID]int
}

// rebuildLive recomputes the live-position cache from the alive flags.
func (o *Overlay) rebuildLive() {
	o.live = o.live[:0]
	for i, a := range o.alive {
		if a {
			o.live = append(o.live, int32(i))
		}
	}
}

// arenaShardNodes is the fixed shard granularity of parallel arena
// construction: shard boundaries depend only on N, never on the worker
// count, which is one half of why the built arena is bit-identical at any
// parallelism (the other half is the sequential placeholder patch pass).
const arenaShardNodes = 4096

// unresolvedSlot marks an arena slot whose link ID was absent from the
// snapshot index during the parallel fill; the sequential patch pass
// replaces it with a deterministic per-ID placeholder.
const unresolvedSlot int32 = -1 << 31

// pendingSlot records one arena slot awaiting a dangling-link placeholder.
type pendingSlot struct {
	slot int
	id   ident.ID
}

// resolveLinks builds o.arena from o.links and o.index: all nodes' resolved
// links in one flat []int32 arena with per-node offsets (core.PosArena).
// Every node position fits in int32 (populations beyond 2^31 nodes are out
// of scope). The fill is fanned across the worker pool in fixed-size node
// shards — each shard writes a disjoint arena region, so no synchronization
// is needed — and links pointing at IDs absent from the snapshot are then
// patched sequentially in arena order: distinct unknown IDs get distinct
// placeholders (-2, -3, ...) numbered by first occurrence in node order,
// exactly the numbering the sequential builder always produced, so arenas
// are bit-identical at any parallelism.
func (o *Overlay) resolveLinks(parallelism int) {
	n := len(o.links)
	rLens := make([]int, n)
	dLens := make([]int, n)
	for i, l := range o.links {
		rLens[i] = len(l.R)
		dLens[i] = len(l.D)
	}
	arena := core.NewPosArena(rLens, dLens)
	shards := (n + arenaShardNodes - 1) / arenaShardNodes
	pending := make([][]pendingSlot, shards)
	// The per-shard closure only reads o.index and o.links and writes its
	// own arena region and pending list, so Map's determinism contract
	// holds trivially; errors are impossible.
	_ = runner.Map(parallelism, shards, nil, func(s int) error {
		lo := s * arenaShardNodes
		hi := lo + arenaShardNodes
		if hi > n {
			hi = n
		}
		var pend []pendingSlot
		for i := lo; i < hi; i++ {
			base := arena.SlotBase(i)
			r := arena.RSlot(i)
			for k, id := range o.links[i].R {
				r[k] = o.resolveOne(id, base+k, &pend)
			}
			d := arena.DSlot(i)
			for k, id := range o.links[i].D {
				d[k] = o.resolveOne(id, base+len(r)+k, &pend)
			}
		}
		pending[s] = pend
		return nil
	})
	// Sequential patch pass: shards ascend in node order and each shard's
	// pending list is in slot order, so first-occurrence numbering is a pure
	// function of the links — independent of how many workers filled.
	var unknown map[ident.ID]int32
	for _, pend := range pending {
		for _, p := range pend {
			ph, ok := unknown[p.id]
			if !ok {
				if unknown == nil {
					unknown = make(map[ident.ID]int32)
				}
				ph = int32(-2 - len(unknown))
				unknown[p.id] = ph
			}
			arena.Patch(p.slot, ph)
		}
	}
	o.arena = arena
}

// resolveOne maps one link ID to its arena value: the dense position when
// the ID is in the snapshot, NilPos for nil links, and the unresolved
// sentinel (recorded in pend for the sequential patch pass) for dangling
// links, so distinct unknown IDs end up with distinct placeholders and
// selection dedups them exactly as the ID path would.
func (o *Overlay) resolveOne(id ident.ID, slot int, pend *[]pendingSlot) int32 {
	if id.IsNil() {
		return core.NilPos
	}
	if i, ok := o.index[id]; ok {
		return int32(i)
	}
	*pend = append(*pend, pendingSlot{slot: slot, id: id})
	return unresolvedSlot
}

// Snapshot captures the current overlay of a simulated network: r-links are
// each node's CYCLON view, d-links its VICINITY-derived ring neighbours.
// Dead nodes are captured too (their links no longer matter, but links
// pointing *at* them must keep dangling, as in the paper's no-self-healing
// failure experiments).
func Snapshot(nw *sim.Network) *Overlay {
	return SnapshotParallel(nw, 0)
}

// SnapshotParallel is Snapshot with an explicit worker count for the arena
// construction (0 = one worker per CPU, 1 = the reference sequential build).
// The built overlay is bit-identical at any parallelism; the knob exists for
// callers that must bound snapshot-time goroutines and for the determinism
// property tests.
func SnapshotParallel(nw *sim.Network, parallelism int) *Overlay {
	nodes := nw.Nodes()
	o := &Overlay{
		ids:   make([]ident.ID, len(nodes)),
		links: make([]core.Links, len(nodes)),
		alive: make([]bool, len(nodes)),
		index: make(map[ident.ID]int, len(nodes)),
	}
	for i, nd := range nodes {
		o.ids[i] = nd.ID
		o.alive[i] = nd.Alive
		o.index[nd.ID] = i
		l := core.Links{R: nd.Cyc.View().IDs()}
		if nd.Vic != nil {
			if pred, succ, ok := nd.Vic.RingNeighbors(); ok {
				l.D = []ident.ID{pred.Node, succ.Node}
			}
		}
		// Extra rings (Section 8): translate per-ring neighbour IDs back to
		// primary node IDs.
		for r, vic := range nd.ExtraVics {
			pred, succ, ok := vic.RingNeighbors()
			if !ok {
				continue
			}
			if p, ok := nw.ResolveRingID(r+1, pred.Node); ok {
				l.D = append(l.D, p)
			}
			if s, ok := nw.ResolveRingID(r+1, succ.Node); ok {
				l.D = append(l.D, s)
			}
		}
		o.links[i] = l
	}
	o.resolveLinks(parallelism)
	o.rebuildLive()
	return o
}

// FromLinks builds an overlay directly from per-node links — used for the
// static Section 3 baselines and idealized-topology ablations. ids[i] must
// be unique and non-nil.
func FromLinks(ids []ident.ID, links []core.Links) (*Overlay, error) {
	return FromLinksParallel(ids, links, 0)
}

// FromLinksParallel is FromLinks with an explicit worker count for the
// arena construction, under the same bit-identical contract as
// SnapshotParallel.
func FromLinksParallel(ids []ident.ID, links []core.Links, parallelism int) (*Overlay, error) {
	if len(ids) != len(links) {
		return nil, fmt.Errorf("dissem: %d ids but %d link sets", len(ids), len(links))
	}
	o := &Overlay{
		ids:   append([]ident.ID(nil), ids...),
		links: append([]core.Links(nil), links...),
		alive: make([]bool, len(ids)),
		index: make(map[ident.ID]int, len(ids)),
	}
	for i, id := range ids {
		if id.IsNil() {
			return nil, fmt.Errorf("dissem: node %d has nil ID", i)
		}
		if _, dup := o.index[id]; dup {
			return nil, fmt.Errorf("dissem: duplicate ID %v", id)
		}
		o.index[id] = i
		o.alive[i] = true
	}
	o.resolveLinks(parallelism)
	o.rebuildLive()
	return o, nil
}

// FromArena builds an overlay directly from a resolved position arena,
// with no ID layer at all: nodes are known only by their dense positions.
// This is the scale-path constructor — checkpointed arenas and the compact
// bootstrap engine both speak positions, and materializing ten million
// ident.IDs plus the origin index would cost hundreds of megabytes that
// position-based runs (RunScratchPos) never read. All nodes start alive.
// ID-keyed entry points (RunScratch, RandomAliveOrigin, Pos) refuse to run
// on such an overlay; everything position-based works unchanged.
func FromArena(arena *core.PosArena) *Overlay {
	o := &Overlay{
		arena: arena,
		alive: make([]bool, arena.N()),
	}
	for i := range o.alive {
		o.alive[i] = true
	}
	o.rebuildLive()
	return o
}

// N returns the number of nodes in the snapshot (dead included).
func (o *Overlay) N() int { return len(o.alive) }

// IDs returns the node IDs in snapshot order, or nil for an overlay built
// FromArena. Callers must not mutate.
func (o *Overlay) IDs() []ident.ID { return o.ids }

// Links returns node i's outgoing links. Callers must not mutate. After
// Compact the ID-level links are gone and Links returns the zero value.
func (o *Overlay) Links(i int) core.Links {
	if o.links == nil {
		return core.Links{}
	}
	return o.links[i]
}

// Compact releases the overlay's ID-level link sets, keeping only the
// resolved arena (plus IDs, liveness and the origin index). At a million
// nodes the per-node []ident.ID slices cost hundreds of megabytes that the
// dissemination hot path never touches — the scale runner drops them right
// after the snapshot. A compacted overlay supports every built-in selector
// (they all select over positions); only the foreign-Selector fallback of
// RunScratch, which needs ID links, refuses to run.
func (o *Overlay) Compact() { o.links = nil }

// Compacted reports whether Compact released the ID-level links. Engines
// that fall back to ID selection for foreign selectors must check it and
// refuse instead of silently selecting over empty link sets.
func (o *Overlay) Compacted() bool { return o.links == nil }

// AliveCount returns the number of live nodes.
func (o *Overlay) AliveCount() int { return len(o.live) }

// IsAlive reports node i's liveness.
func (o *Overlay) IsAlive(i int) bool { return o.alive[i] }

// Clone returns a deep copy sharing no mutable state, so failure scenarios
// can be applied independently to one warmed-up snapshot.
func (o *Overlay) Clone() *Overlay {
	c := &Overlay{
		ids:   o.ids,
		links: o.links,
		arena: o.arena,
		alive: append([]bool(nil), o.alive...),
		live:  append([]int32(nil), o.live...),
		index: o.index,
	}
	return c
}

// Pos returns the dense position of id in the snapshot, if present.
func (o *Overlay) Pos(id ident.ID) (int, bool) {
	i, ok := o.index[id]
	return i, ok
}

// PosLinks returns node i's outgoing links resolved to positions — a view
// into the overlay's arena. Callers must not mutate.
func (o *Overlay) PosLinks(i int) core.PosLinks { return o.arena.Links(i) }

// Arena returns the overlay's compact resolved-link arena. Callers must
// treat it as read-only; it is shared by every clone of the overlay.
func (o *Overlay) Arena() *core.PosArena { return o.arena }

// KillFraction marks a uniformly random fraction of live nodes dead —
// the catastrophic failure of Section 7.2 applied to the frozen overlay
// (gossip is not allowed to heal afterwards, the paper's deliberate
// worst case). It returns how many nodes were killed.
func (o *Overlay) KillFraction(frac float64, rng *rand.Rand) int {
	if frac <= 0 {
		return 0
	}
	live := make([]int, 0, len(o.alive))
	for i, a := range o.alive {
		if a {
			live = append(live, i)
		}
	}
	k := int(frac * float64(len(live)))
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for _, i := range live[:k] {
		o.alive[i] = false
	}
	o.rebuildLive()
	return k
}

// KillPositions marks the given snapshot positions dead; positions that
// are already dead (or out of range) are left unchanged and not counted.
// It is the deterministic counterpart of KillFraction, used by the
// scenario engine's correlated regional failures: the victim set is
// resolved at compile time (a ring arc or an ident prefix), so no
// randomness is consumed. It returns how many nodes transitioned from
// live to dead.
func (o *Overlay) KillPositions(pos []int32) int {
	killed := 0
	for _, p := range pos {
		if p >= 0 && int(p) < len(o.alive) && o.alive[p] {
			o.alive[p] = false
			killed++
		}
	}
	if killed > 0 {
		o.rebuildLive()
	}
	return killed
}

// RandomAliveOrigin picks a uniformly random live node to post a message
// from: one draw over the cached live positions (same ascending order the
// old per-call scan built, so draws are bit-identical), with no per-call
// allocation. It needs the ID layer; ID-less overlays use RandomAlivePos.
func (o *Overlay) RandomAliveOrigin(rng *rand.Rand) (ident.ID, error) {
	if o.ids == nil {
		return ident.Nil, fmt.Errorf("dissem: overlay carries no node IDs (built FromArena); use RandomAlivePos")
	}
	p, err := o.RandomAlivePos(rng)
	if err != nil {
		return ident.Nil, err
	}
	return o.ids[p], nil
}

// RandomAlivePos is RandomAliveOrigin for position-based runs: it returns
// the drawn live position itself, consuming exactly one rng draw (the same
// draw RandomAliveOrigin makes, so paired ID- and position-based sweeps
// pick identical origins from identical streams).
func (o *Overlay) RandomAlivePos(rng *rand.Rand) (int32, error) {
	if len(o.live) == 0 {
		return 0, fmt.Errorf("dissem: no live nodes")
	}
	return o.live[rng.Intn(len(o.live))], nil
}

// DGraph projects the overlay's d-links onto a graph.Directed for
// structural analysis (ring partition counting etc.). It reads the resolved
// arena — negative values (nil links and dangling placeholders) are exactly
// the links the old ID-index lookup skipped — so it works on compacted
// overlays too.
func (o *Overlay) DGraph() *graph.Directed {
	n := o.N()
	g := graph.NewDirected(n)
	for i := 0; i < n; i++ {
		for _, d := range o.arena.Links(i).D {
			if d >= 0 {
				g.AddEdge(i, int(d))
			}
		}
	}
	return g
}

// AliveSlice returns a copy of the liveness flags, aligned with IDs().
func (o *Overlay) AliveSlice() []bool { return append([]bool(nil), o.alive...) }

// delivery is one in-flight message copy. Both endpoints are dense overlay
// positions; from is always the forwarding node's position (the origin's
// own sends carry the origin's position — core.NilPos appears only as the
// selection-exclusion argument, never on a queued copy), so FaultModel
// implementations may index by from without guarding.
type delivery struct {
	to   int32
	from int32
}

// Bitmap is a packed per-node bit set: one bit per overlay position in
// []uint64 words, so the notified set of a million-node run costs 125 KB
// instead of a megabyte of bools and clears in a single memclr. Sized once
// per unit via Reuse and pooled with the run scratch.
type Bitmap []uint64

// Reuse returns a zeroed bitmap covering n bits, reusing b's storage when
// it is large enough.
func (b Bitmap) Reuse(n int) Bitmap {
	words := (n + 63) >> 6
	if cap(b) < words {
		return make(Bitmap, words)
	}
	b = b[:words]
	clear(b)
	return b
}

// Get reports whether bit i is set.
//
//ringcast:hotpath
func (b Bitmap) Get(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// Set sets bit i.
//
//ringcast:hotpath
func (b Bitmap) Set(i int32) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Scratch holds the reusable buffers of the dissemination engine: the
// notified bitmap, the two frontier queues, the per-node target buffer and
// the selector's sampling pool. Reusing one Scratch across the runs of a
// sweep unit removes every per-hop and per-forward allocation; only the
// returned metrics are freshly allocated. A Scratch must not be shared
// between concurrent runs. The zero value is ready to use.
type Scratch struct {
	notified Bitmap
	frontier []delivery
	next     []delivery
	targets  []int32
	sel      core.PosScratch
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// FaultModel injects scenario faults into a dissemination run. The engine
// calls HopStart at every hop boundary (0 before the origin forwards, then h
// before the arrivals of hop h are processed), consults Dead for
// scenario-killed nodes on every delivery, and consults Deliver for every
// message copy in flight (partitions and loss). Implementations must be
// deterministic given the run's rng: any randomness they consume (loss
// draws) comes from the same per-unit stream as target selection, so runs
// remain bit-identical at any parallelism. A FaultModel carries per-run
// state and must not be shared between concurrent runs; Begin resets it.
// internal/scenario compiles fault timelines into this interface.
type FaultModel interface {
	// Begin resets per-run state before a dissemination starts.
	Begin()
	// HopStart applies all timeline events scheduled at hop boundaries <= h.
	HopStart(h int)
	// Dead reports whether node i has been killed by a timeline event.
	// Overlay-level liveness is checked separately by the engine.
	Dead(i int32) bool
	// Deliver reports whether the in-flight copy from->to survives the
	// currently active partition and loss faults. A false return means the
	// copy is dropped and counted as Blocked.
	Deliver(from, to int32, rng *rand.Rand) bool
}

// Options tunes what a dissemination run records.
type Options struct {
	// SkipLoad omits the per-node sent/received arrays (O(N) memory per
	// run); large parameter sweeps that only need ratios should set it.
	SkipLoad bool
	// RecordMissed collects the IDs of live nodes that were never notified,
	// for the lifetime-vs-miss analysis of Figure 13.
	RecordMissed bool
	// Faults, when non-nil, injects scenario faults (partitions, loss,
	// correlated kills) into the run. Nil means the fail-free fast path with
	// exactly the pre-scenario randomness consumption.
	Faults FaultModel
}

// Run disseminates one message from origin over the overlay using the given
// selector and fanout, and returns the full measurement record. Messages
// sent to dead nodes are lost; dead nodes never forward. Run never mutates
// the overlay.
func Run(o *Overlay, origin ident.ID, sel core.Selector, fanout int, rng *rand.Rand) (*metrics.Dissemination, error) {
	return RunOpts(o, origin, sel, fanout, rng, Options{})
}

// RunOpts is Run with recording options.
func RunOpts(o *Overlay, origin ident.ID, sel core.Selector, fanout int, rng *rand.Rand, opts Options) (*metrics.Dissemination, error) {
	return RunScratch(o, origin, sel, fanout, rng, opts, nil)
}

// RunScratch is RunOpts with caller-managed scratch buffers: passing the
// same Scratch to every run of a sweep unit makes the engine allocation-free
// apart from the returned metrics. A nil scratch allocates a private one.
// It resolves the origin through the ID index; overlays built FromArena
// carry none and must use RunScratchPos.
func RunScratch(o *Overlay, origin ident.ID, sel core.Selector, fanout int, rng *rand.Rand, opts Options, sc *Scratch) (*metrics.Dissemination, error) {
	if o.ids == nil {
		return nil, fmt.Errorf("dissem: overlay carries no node IDs (built FromArena); use RunScratchPos")
	}
	oi, ok := o.index[origin]
	if !ok {
		return nil, fmt.Errorf("dissem: unknown origin %v", origin)
	}
	return RunScratchPos(o, int32(oi), sel, fanout, rng, opts, sc)
}

// RunScratchPos is RunScratch with the origin given as a dense overlay
// position — the scale-path entry point: no ID resolution, so it runs on
// ID-less FromArena overlays (where it requires a position selector and
// cannot record missed-node IDs). Given the position of the same origin and
// the same rng stream, it is bit-identical to RunScratch.
func RunScratchPos(o *Overlay, origin int32, sel core.Selector, fanout int, rng *rand.Rand, opts Options, sc *Scratch) (*metrics.Dissemination, error) {
	oi := int(origin)
	if oi < 0 || oi >= o.N() {
		return nil, fmt.Errorf("dissem: origin position %d outside [0,%d)", oi, o.N())
	}
	if !o.alive[oi] {
		return nil, fmt.Errorf("dissem: origin position %d is dead", oi)
	}
	if sel == nil {
		return nil, fmt.Errorf("dissem: selector must not be nil")
	}
	if opts.RecordMissed && o.ids == nil {
		return nil, fmt.Errorf("dissem: RecordMissed needs node IDs, but the overlay was built FromArena")
	}
	if sc == nil {
		sc = NewScratch()
	}
	// All built-in selectors choose over resolved positions; foreign
	// Selector implementations fall back to ID selection with a per-target
	// index lookup — which needs the ID-level links a compacted overlay no
	// longer carries.
	posSel, _ := sel.(core.PosSelector)
	if posSel == nil && o.Compacted() {
		return nil, fmt.Errorf("dissem: selector %s needs ID links, but the overlay was compacted", sel.Name())
	}

	d := &metrics.Dissemination{
		AliveTotal: o.AliveCount(),
	}
	if o.ids != nil {
		d.Origin = o.ids[oi]
	}
	if !opts.SkipLoad {
		d.SentPerNode = make([]int, o.N())
		d.RecvPerNode = make([]int, o.N())
	}
	sc.notified = sc.notified.Reuse(o.N())
	notified := sc.notified

	notified.Set(int32(oi))
	d.Reached = 1
	d.CumNotified = append(d.CumNotified, 1)

	// forward lets node i pick targets and appends the resulting deliveries
	// to out. Unknown targets (placeholder positions < 0) are dropped
	// silently, exactly as the ID path drops targets missing from the index.
	forward := func(i, from int32, out []delivery) []delivery {
		sc.targets = sc.targets[:0]
		if posSel != nil {
			sc.targets = posSel.SelectPos(sc.targets, &sc.sel, o.arena.Links(int(i)), from, fanout, rng)
		} else {
			fromID := ident.Nil
			if from >= 0 {
				fromID = o.ids[from]
			}
			for _, tgt := range sel.Select(o.links[i], fromID, fanout, rng) {
				if j, ok := o.index[tgt]; ok {
					sc.targets = append(sc.targets, int32(j))
				}
			}
		}
		for _, j := range sc.targets {
			if j < 0 {
				continue // link to an unknown node: treat as lost silently
			}
			if d.SentPerNode != nil {
				d.SentPerNode[i]++
			}
			out = append(out, delivery{to: j, from: i})
		}
		return out
	}

	faults := opts.Faults
	if faults != nil {
		faults.Begin()
		faults.HopStart(0)
	}
	frontier := forward(int32(oi), core.NilPos, sc.frontier[:0])
	next := sc.next[:0]
	for hop := 1; len(frontier) > 0; hop++ {
		if faults != nil {
			faults.HopStart(hop)
		}
		next = next[:0]
		for _, dl := range frontier {
			if faults != nil && !faults.Deliver(dl.from, dl.to, rng) {
				d.Blocked++
				continue
			}
			if d.RecvPerNode != nil {
				d.RecvPerNode[dl.to]++
			}
			if !o.alive[dl.to] || (faults != nil && faults.Dead(dl.to)) {
				d.Lost++
				continue
			}
			if notified.Get(dl.to) {
				d.Redundant++
				continue
			}
			d.Virgin++
			notified.Set(dl.to)
			d.Reached++
			next = forward(dl.to, dl.from, next)
		}
		d.CumNotified = append(d.CumNotified, d.Reached)
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	// Trim trailing hops where nothing new was notified but messages were
	// still in flight, keeping the last hop at which Reached grew (plus the
	// origin-only hop 0 when nothing ever spread).
	for len(d.CumNotified) > 1 && d.CumNotified[len(d.CumNotified)-1] == d.CumNotified[len(d.CumNotified)-2] {
		d.CumNotified = d.CumNotified[:len(d.CumNotified)-1]
	}
	if opts.RecordMissed {
		for i := range o.ids {
			// Nodes killed mid-run by a fault timeline were not missed — they
			// left the population — so they are excluded like overlay deaths.
			if !notified.Get(int32(i)) && o.alive[i] && (faults == nil || !faults.Dead(int32(i))) {
				d.Missed = append(d.Missed, o.ids[i])
			}
		}
	}
	return d, nil
}
