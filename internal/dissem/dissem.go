// Package dissem executes message disseminations over a frozen overlay
// snapshot, following the paper's discrete dissemination model (Section 7):
// the generation of a message is hop 0; at hop h+1 the message reaches the
// gossip targets selected by every node first notified at hop h; a node
// receiving a duplicate ignores it.
//
// The overlay is a snapshot because the paper freezes gossip before
// disseminating (Section 7.1 shows ongoing gossip does not change the
// macroscopic behaviour in static networks, and Section 7.2 deliberately
// disables it after catastrophic failures to study the worst case).
package dissem

import (
	"fmt"
	"math/rand"

	"ringcast/internal/core"
	"ringcast/internal/graph"
	"ringcast/internal/ident"
	"ringcast/internal/metrics"
	"ringcast/internal/sim"
)

// Overlay is an immutable-topology snapshot of a network: every node's
// outgoing links plus liveness flags (liveness is mutable so that
// catastrophic failures can be applied to a shared snapshot cheaply).
type Overlay struct {
	ids   []ident.ID
	links []core.Links
	alive []bool
	index map[ident.ID]int
}

// Snapshot captures the current overlay of a simulated network: r-links are
// each node's CYCLON view, d-links its VICINITY-derived ring neighbours.
// Dead nodes are captured too (their links no longer matter, but links
// pointing *at* them must keep dangling, as in the paper's no-self-healing
// failure experiments).
func Snapshot(nw *sim.Network) *Overlay {
	nodes := nw.Nodes()
	o := &Overlay{
		ids:   make([]ident.ID, len(nodes)),
		links: make([]core.Links, len(nodes)),
		alive: make([]bool, len(nodes)),
		index: make(map[ident.ID]int, len(nodes)),
	}
	for i, nd := range nodes {
		o.ids[i] = nd.ID
		o.alive[i] = nd.Alive
		o.index[nd.ID] = i
		l := core.Links{R: nd.Cyc.View().IDs()}
		if nd.Vic != nil {
			if pred, succ, ok := nd.Vic.RingNeighbors(); ok {
				l.D = []ident.ID{pred.Node, succ.Node}
			}
		}
		// Extra rings (Section 8): translate per-ring neighbour IDs back to
		// primary node IDs.
		for r, vic := range nd.ExtraVics {
			pred, succ, ok := vic.RingNeighbors()
			if !ok {
				continue
			}
			if p, ok := nw.ResolveRingID(r+1, pred.Node); ok {
				l.D = append(l.D, p)
			}
			if s, ok := nw.ResolveRingID(r+1, succ.Node); ok {
				l.D = append(l.D, s)
			}
		}
		o.links[i] = l
	}
	return o
}

// FromLinks builds an overlay directly from per-node links — used for the
// static Section 3 baselines and idealized-topology ablations. ids[i] must
// be unique and non-nil.
func FromLinks(ids []ident.ID, links []core.Links) (*Overlay, error) {
	if len(ids) != len(links) {
		return nil, fmt.Errorf("dissem: %d ids but %d link sets", len(ids), len(links))
	}
	o := &Overlay{
		ids:   append([]ident.ID(nil), ids...),
		links: append([]core.Links(nil), links...),
		alive: make([]bool, len(ids)),
		index: make(map[ident.ID]int, len(ids)),
	}
	for i, id := range ids {
		if id.IsNil() {
			return nil, fmt.Errorf("dissem: node %d has nil ID", i)
		}
		if _, dup := o.index[id]; dup {
			return nil, fmt.Errorf("dissem: duplicate ID %v", id)
		}
		o.index[id] = i
		o.alive[i] = true
	}
	return o, nil
}

// N returns the number of nodes in the snapshot (dead included).
func (o *Overlay) N() int { return len(o.ids) }

// IDs returns the node IDs in snapshot order. Callers must not mutate.
func (o *Overlay) IDs() []ident.ID { return o.ids }

// Links returns node i's outgoing links. Callers must not mutate.
func (o *Overlay) Links(i int) core.Links { return o.links[i] }

// AliveCount returns the number of live nodes.
func (o *Overlay) AliveCount() int {
	n := 0
	for _, a := range o.alive {
		if a {
			n++
		}
	}
	return n
}

// IsAlive reports node i's liveness.
func (o *Overlay) IsAlive(i int) bool { return o.alive[i] }

// Clone returns a deep copy sharing no mutable state, so failure scenarios
// can be applied independently to one warmed-up snapshot.
func (o *Overlay) Clone() *Overlay {
	c := &Overlay{
		ids:   o.ids,
		links: o.links,
		alive: append([]bool(nil), o.alive...),
		index: o.index,
	}
	return c
}

// KillFraction marks a uniformly random fraction of live nodes dead —
// the catastrophic failure of Section 7.2 applied to the frozen overlay
// (gossip is not allowed to heal afterwards, the paper's deliberate
// worst case). It returns how many nodes were killed.
func (o *Overlay) KillFraction(frac float64, rng *rand.Rand) int {
	if frac <= 0 {
		return 0
	}
	live := make([]int, 0, len(o.alive))
	for i, a := range o.alive {
		if a {
			live = append(live, i)
		}
	}
	k := int(frac * float64(len(live)))
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for _, i := range live[:k] {
		o.alive[i] = false
	}
	return k
}

// RandomAliveOrigin picks a uniformly random live node to post a message from.
func (o *Overlay) RandomAliveOrigin(rng *rand.Rand) (ident.ID, error) {
	live := make([]int, 0, len(o.alive))
	for i, a := range o.alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return ident.Nil, fmt.Errorf("dissem: no live nodes")
	}
	return o.ids[live[rng.Intn(len(live))]], nil
}

// DGraph projects the overlay's d-links onto a graph.Directed for
// structural analysis (ring partition counting etc.).
func (o *Overlay) DGraph() *graph.Directed {
	g := graph.NewDirected(len(o.ids))
	for i, l := range o.links {
		for _, d := range l.D {
			if j, ok := o.index[d]; ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// AliveSlice returns a copy of the liveness flags, aligned with IDs().
func (o *Overlay) AliveSlice() []bool { return append([]bool(nil), o.alive...) }

// delivery is one in-flight message copy.
type delivery struct {
	to   int
	from ident.ID
}

// Options tunes what a dissemination run records.
type Options struct {
	// SkipLoad omits the per-node sent/received arrays (O(N) memory per
	// run); large parameter sweeps that only need ratios should set it.
	SkipLoad bool
	// RecordMissed collects the IDs of live nodes that were never notified,
	// for the lifetime-vs-miss analysis of Figure 13.
	RecordMissed bool
}

// Run disseminates one message from origin over the overlay using the given
// selector and fanout, and returns the full measurement record. Messages
// sent to dead nodes are lost; dead nodes never forward. Run never mutates
// the overlay.
func Run(o *Overlay, origin ident.ID, sel core.Selector, fanout int, rng *rand.Rand) (*metrics.Dissemination, error) {
	return RunOpts(o, origin, sel, fanout, rng, Options{})
}

// RunOpts is Run with recording options.
func RunOpts(o *Overlay, origin ident.ID, sel core.Selector, fanout int, rng *rand.Rand, opts Options) (*metrics.Dissemination, error) {
	oi, ok := o.index[origin]
	if !ok {
		return nil, fmt.Errorf("dissem: unknown origin %v", origin)
	}
	if !o.alive[oi] {
		return nil, fmt.Errorf("dissem: origin %v is dead", origin)
	}
	if sel == nil {
		return nil, fmt.Errorf("dissem: selector must not be nil")
	}

	d := &metrics.Dissemination{
		AliveTotal: o.AliveCount(),
		Origin:     origin,
	}
	if !opts.SkipLoad {
		d.SentPerNode = make([]int, len(o.ids))
		d.RecvPerNode = make([]int, len(o.ids))
	}
	notified := make([]bool, len(o.ids))

	notified[oi] = true
	d.Reached = 1
	d.CumNotified = append(d.CumNotified, 1)

	frontier := forward(o, d, oi, ident.Nil, sel, fanout, rng)
	for len(frontier) > 0 {
		var next []delivery
		for _, dl := range frontier {
			if d.RecvPerNode != nil {
				d.RecvPerNode[dl.to]++
			}
			if !o.alive[dl.to] {
				d.Lost++
				continue
			}
			if notified[dl.to] {
				d.Redundant++
				continue
			}
			d.Virgin++
			notified[dl.to] = true
			d.Reached++
			next = append(next, forward(o, d, dl.to, dl.from, sel, fanout, rng)...)
		}
		d.CumNotified = append(d.CumNotified, d.Reached)
		frontier = next
	}
	// Trim trailing hops where nothing new was notified but messages were
	// still in flight, keeping the last hop at which Reached grew (plus the
	// origin-only hop 0 when nothing ever spread).
	for len(d.CumNotified) > 1 && d.CumNotified[len(d.CumNotified)-1] == d.CumNotified[len(d.CumNotified)-2] {
		d.CumNotified = d.CumNotified[:len(d.CumNotified)-1]
	}
	if opts.RecordMissed {
		for i, n := range notified {
			if !n && o.alive[i] {
				d.Missed = append(d.Missed, o.ids[i])
			}
		}
	}
	return d, nil
}

// forward lets node i pick targets and emits the resulting deliveries.
func forward(o *Overlay, d *metrics.Dissemination, i int, from ident.ID, sel core.Selector, fanout int, rng *rand.Rand) []delivery {
	targets := sel.Select(o.links[i], from, fanout, rng)
	if len(targets) == 0 {
		return nil
	}
	out := make([]delivery, 0, len(targets))
	for _, tgt := range targets {
		j, ok := o.index[tgt]
		if !ok {
			continue // link to an unknown node: treat as lost silently
		}
		if d.SentPerNode != nil {
			d.SentPerNode[i]++
		}
		out = append(out, delivery{to: j, from: o.ids[i]})
	}
	return out
}
