package churn

import (
	"sort"
	"testing"
)

func TestNewTraceModelValidation(t *testing.T) {
	if _, err := NewTraceModel(0, 1, 1); err == nil {
		t.Error("accepted zero median")
	}
	if _, err := NewTraceModel(10, -1, 1); err == nil {
		t.Error("accepted negative sigma")
	}
	if _, err := NewTraceModel(10, 1, 1); err != nil {
		t.Error(err)
	}
}

func TestSampleSessionDistribution(t *testing.T) {
	m, err := NewTraceModel(100, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 20000
	xs := make([]int, samples)
	for i := range xs {
		xs[i] = m.SampleSession()
		if xs[i] < 1 {
			t.Fatal("session below 1 cycle")
		}
	}
	sort.Ints(xs)
	median := float64(xs[samples/2])
	if median < 80 || median > 125 {
		t.Fatalf("sample median = %v, want ~100", median)
	}
	// Heavy tail: p99 far above the median.
	p99 := float64(xs[samples*99/100])
	if p99 < 5*median {
		t.Fatalf("p99/median = %.1f, want heavy tail (>5)", p99/median)
	}
}

func TestTraceStepKeepsPopulation(t *testing.T) {
	nw := testNet(t, 200, 8)
	nw.RunCycles(10)
	m, err := NewTraceModel(20, 1.0, 9) // short sessions: immediate churn
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(nw)
	m.Run(nw, 100)
	if nw.AliveCount() != 200 {
		t.Fatalf("alive = %d, want 200", nw.AliveCount())
	}
	// With a 20-cycle median over 100 cycles, most initial nodes must have
	// been replaced.
	initial := 0
	for _, nd := range nw.Nodes() {
		if nd.Alive && nd.JoinCycle <= 10 {
			initial++
		}
	}
	if initial > 60 {
		t.Fatalf("%d initial nodes still alive after 5 median sessions", initial)
	}
}

func TestTraceChurnNetworkStaysFunctional(t *testing.T) {
	nw := testNet(t, 200, 10)
	nw.WarmUp(100, 400)
	m, err := NewTraceModel(200, 1.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(nw)
	m.Run(nw, 100)
	if conv := nw.RingConvergence(); conv < 0.8 {
		t.Fatalf("ring convergence under trace churn = %.3f, want >= 0.8", conv)
	}
}

func TestExpectedRatePerCycle(t *testing.T) {
	m, err := NewTraceModel(360, 0, 1) // sigma 0: deterministic sessions
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ExpectedRatePerCycle(); got < 1.0/361 || got > 1.0/359 {
		t.Fatalf("rate = %v, want ~1/360", got)
	}
	m2, _ := NewTraceModel(360, 1.5, 1)
	if m2.ExpectedRatePerCycle() >= m.ExpectedRatePerCycle() {
		t.Fatal("heavier tail must lower the per-cycle rate (higher mean)")
	}
}
