package churn

import (
	"testing"

	"ringcast/internal/cyclon"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

func testNet(t *testing.T, n int, seed int64) *sim.Network {
	t.Helper()
	return sim.MustNew(sim.Config{
		N:           n,
		Cyclon:      cyclon.Config{ViewSize: 8, ShuffleLen: 4},
		Vicinity:    vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		UseVicinity: true,
		Seed:        seed,
	})
}

func TestValidate(t *testing.T) {
	if err := (Model{Rate: -0.1}).Validate(); err == nil {
		t.Error("accepted negative rate")
	}
	if err := (Model{Rate: 1}).Validate(); err == nil {
		t.Error("accepted rate 1")
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Error(err)
	}
	if DefaultModel().Rate != 0.002 {
		t.Errorf("default rate = %v, want 0.002 (paper §7.3)", DefaultModel().Rate)
	}
}

func TestStepKeepsPopulationConstant(t *testing.T) {
	nw := testNet(t, 500, 1)
	nw.RunCycles(5)
	m := Model{Rate: 0.01}
	removed, added := m.Step(nw)
	if len(removed) != 5 || len(added) != 5 {
		t.Fatalf("removed/added = %d/%d, want 5/5", len(removed), len(added))
	}
	if nw.AliveCount() != 500 {
		t.Fatalf("alive = %d, want 500", nw.AliveCount())
	}
}

func TestStepZeroRate(t *testing.T) {
	nw := testNet(t, 100, 2)
	m := Model{}
	removed, added := m.Step(nw)
	if len(removed) != 0 || len(added) != 0 {
		t.Fatal("zero-rate churn changed the network")
	}
}

func TestRunAdvancesCycles(t *testing.T) {
	nw := testNet(t, 100, 3)
	m := Model{Rate: 0.02}
	m.Run(nw, 10)
	if nw.CycleCount() != 10 {
		t.Fatalf("cycles = %d, want 10", nw.CycleCount())
	}
	if nw.AliveCount() != 100 {
		t.Fatalf("alive = %d, want 100", nw.AliveCount())
	}
}

func TestRunUntilTurnover(t *testing.T) {
	nw := testNet(t, 60, 4)
	m := Model{Rate: 0.05} // 3 nodes per cycle: turnover quickly
	cycles, done := m.RunUntilTurnover(nw, 2000)
	if !done {
		t.Fatalf("turnover not reached in %d cycles", cycles)
	}
	for _, nd := range nw.Nodes() {
		if nd.Alive && nd.JoinCycle == 0 {
			t.Fatal("initial node still alive after reported turnover")
		}
	}
	// All live nodes joined strictly after cycle 0.
	for _, lt := range Lifetimes(nw) {
		if lt >= nw.CycleCount() {
			t.Fatalf("lifetime %d >= total cycles %d", lt, nw.CycleCount())
		}
	}
}

func TestRunUntilTurnoverRespectsMax(t *testing.T) {
	nw := testNet(t, 200, 5)
	// 0.2 nodes per cycle at N=200: ~10 replacements in 50 cycles, nowhere
	// near full turnover of the 200 initial nodes.
	m := Model{Rate: 0.001}
	cycles, done := m.RunUntilTurnover(nw, 50)
	if done {
		t.Fatal("impossible turnover reported done")
	}
	if cycles != 50 {
		t.Fatalf("cycles = %d, want 50", cycles)
	}
}

// TestFractionalRateAccumulates is the regression test for the truncation
// bug: at N=400 and the paper's 0.002/cycle, Rate*alive = 0.8, which
// int-truncated to k=0 forever — churn sweeps at sub-one-node-per-cycle
// rates silently ran zero churn. The fractional-remainder accumulator must
// yield the correct long-run turnover instead.
func TestFractionalRateAccumulates(t *testing.T) {
	nw := testNet(t, 400, 8)
	nw.RunCycles(5)
	m := Model{Rate: 0.002}
	const steps = 1000
	totalRemoved := 0
	for i := 0; i < steps; i++ {
		removed, added := m.Step(nw)
		if len(removed) != len(added) {
			t.Fatalf("step %d: removed %d != added %d", i, len(removed), len(added))
		}
		totalRemoved += len(removed)
	}
	// Expected turnover: 0.002 * 400 * 1000 = 800 nodes, exact up to the
	// +-1 carried in the accumulator.
	if totalRemoved < 799 || totalRemoved > 801 {
		t.Fatalf("long-run turnover = %d nodes over %d steps, want ~800 (old truncation bug gives 0)", totalRemoved, steps)
	}
	if nw.AliveCount() != 400 {
		t.Fatalf("alive = %d, want 400", nw.AliveCount())
	}
}

func TestLifetimes(t *testing.T) {
	nw := testNet(t, 50, 6)
	nw.RunCycles(7)
	lts := Lifetimes(nw)
	if len(lts) != 50 {
		t.Fatalf("got %d lifetimes, want 50", len(lts))
	}
	for _, lt := range lts {
		if lt != 7 {
			t.Fatalf("initial node lifetime = %d, want 7", lt)
		}
	}
	nd, err := nw.Join()
	if err != nil {
		t.Fatal(err)
	}
	nw.RunCycles(3)
	if got := Lifetime(nw, nd); got != 3 {
		t.Fatalf("joiner lifetime = %d, want 3", got)
	}
	byID := LifetimeByID(nw)
	if byID[nd.ID] != 3 {
		t.Fatalf("LifetimeByID = %d, want 3", byID[nd.ID])
	}
	if len(byID) != 51 {
		t.Fatalf("LifetimeByID size = %d, want 51", len(byID))
	}
}

func TestChurnedNetworkStaysFunctional(t *testing.T) {
	// One node of 300 replaced per cycle: ~2.5x the paper's relative churn
	// (0.2% of 10k with view 20). The ring cannot be perfect under churn —
	// newly joined nodes and freshly dead neighbours leave a staleness
	// window — but the overwhelming majority must stay converged.
	nw := testNet(t, 300, 7)
	nw.WarmUp(100, 400)
	m := Model{Rate: 0.005}
	m.Run(nw, 100)
	if conv := nw.RingConvergence(); conv < 0.85 {
		t.Fatalf("ring convergence under churn = %.3f, want >= 0.85", conv)
	}
}
