// Package churn implements the dynamic-membership models of the paper's
// evaluation: the artificial churn of Section 7.3 (a fixed percentage of
// random nodes replaced by fresh joiners every cycle — the rate 0.2%/cycle
// corresponds to the Gnutella churn measured by Saroiu et al. at a 10 s
// gossip period) and node-lifetime bookkeeping for Figures 12 and 13.
//
//ringcast:deterministic
package churn

import (
	"fmt"

	"ringcast/internal/ident"
	"ringcast/internal/sim"
)

// Model is the artificial churn model: every cycle, Rate*N random live
// nodes are removed forever and the same number of brand-new nodes join
// from scratch — the paper's worst case (departed nodes never return, dead
// links never revalidate).
type Model struct {
	// Rate is the per-cycle fraction of the population replaced
	// (0.002 in the paper).
	Rate float64

	// frac carries the fractional remainder of Rate*alive across cycles.
	// Without it, truncation makes k = int(Rate*alive) zero forever when
	// Rate*alive < 1 (e.g. N=400 at the paper's 0.002/cycle), so churn
	// sweeps silently run zero churn.
	frac float64
}

// DefaultModel returns the paper's churn rate of 0.2% per cycle.
func DefaultModel() Model { return Model{Rate: 0.002} }

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.Rate < 0 || m.Rate >= 1 {
		return fmt.Errorf("churn: rate must be in [0,1), got %v", m.Rate)
	}
	return nil
}

// Step applies one churn round to the network: kill Rate*alive random live
// nodes, then admit the same number of fresh joiners. It returns the
// affected IDs. The fractional part of Rate*alive is carried between calls,
// so a sub-one-node-per-cycle rate still produces its long-run turnover
// (4 nodes every 5 cycles at N=400, Rate=0.002) instead of rounding to
// zero churn forever.
func (m *Model) Step(nw *sim.Network) (removed, added []ident.ID) {
	m.frac += m.Rate * float64(nw.AliveCount())
	k := int(m.frac)
	m.frac -= float64(k)
	removed = nw.KillRandom(k)
	added = make([]ident.ID, 0, k)
	for i := 0; i < k; i++ {
		nd, err := nw.Join()
		if err != nil {
			break // network emptied out; nothing left to bootstrap from
		}
		added = append(added, nd.ID)
	}
	return removed, added
}

// Run interleaves churn and gossip for the given number of cycles: each
// cycle applies one churn step and then one gossip cycle, matching the
// paper's "in each cycle a given percentage ... removed, and the same
// number of new ones join".
func (m *Model) Run(nw *sim.Network, cycles int) {
	for i := 0; i < cycles; i++ {
		m.Step(nw)
		nw.Cycle()
	}
}

// RunUntilTurnover churns the network until every member of the initial
// population (JoinCycle == 0) has been removed at least once — the paper's
// warm-up condition for the churn experiments ("until every node had been
// removed and reinserted at least once"). It stops after maxCycles
// regardless and returns the number of cycles executed and whether full
// turnover was reached.
func (m *Model) RunUntilTurnover(nw *sim.Network, maxCycles int) (cycles int, done bool) {
	for cycles = 0; cycles < maxCycles; cycles++ {
		if initialRemaining(nw) == 0 {
			return cycles, true
		}
		m.Step(nw)
		nw.Cycle()
	}
	return cycles, initialRemaining(nw) == 0
}

func initialRemaining(nw *sim.Network) int {
	n := 0
	for _, nd := range nw.Nodes() {
		if nd.Alive && nd.JoinCycle == 0 {
			n++
		}
	}
	return n
}

// Lifetime returns a live node's age in cycles.
func Lifetime(nw *sim.Network, nd *sim.Node) int {
	return nw.CycleCount() - nd.JoinCycle
}

// Lifetimes returns the lifetime (cycles since join) of every live node,
// aligned with the order of nw.Nodes() restricted to live nodes — the raw
// data behind Figure 12.
func Lifetimes(nw *sim.Network) []int {
	out := make([]int, 0, nw.AliveCount())
	for _, nd := range nw.Nodes() {
		if nd.Alive {
			out = append(out, Lifetime(nw, nd))
		}
	}
	return out
}

// LifetimeByID returns a map from live node ID to lifetime, used to
// attribute dissemination misses to node ages (Figure 13).
func LifetimeByID(nw *sim.Network) map[ident.ID]int {
	out := make(map[ident.ID]int, nw.AliveCount())
	for _, nd := range nw.Nodes() {
		if nd.Alive {
			out[nd.ID] = Lifetime(nw, nd)
		}
	}
	return out
}
