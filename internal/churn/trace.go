package churn

import (
	"fmt"
	"math"
	"math/rand"

	"ringcast/internal/ident"
	"ringcast/internal/sim"
)

// TraceModel is a session-based churn model: every node lives for a session
// drawn from a heavy-tailed (lognormal) distribution and is replaced by a
// fresh joiner when its session expires.
//
// This is the synthetic stand-in for the Saroiu et al. Gnutella
// measurements the paper calibrates its churn rate against: peer session
// times are heavy-tailed (many short-lived peers, a long tail of stable
// ones). The paper itself simulates the *uniform* artificial model
// (churn.Model); TraceModel lets the same experiments run under the more
// realistic skewed distribution, where the uniform model's single rate is
// replaced by a median session length.
type TraceModel struct {
	// MedianSession is the median node session length in gossip cycles.
	// At the paper's 10 s cycle, the Gnutella median of ~60 minutes is 360
	// cycles.
	MedianSession float64
	// Sigma is the lognormal shape parameter; larger means heavier tail.
	// Measurement studies of Gnutella-era networks fit sigma in [1, 2.5].
	Sigma float64

	rng      *rand.Rand
	deadline map[ident.ID]int
}

// NewTraceModel returns a session-based churn model.
func NewTraceModel(medianSession, sigma float64, seed int64) (*TraceModel, error) {
	if medianSession <= 0 {
		return nil, fmt.Errorf("churn: median session must be positive, got %v", medianSession)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("churn: sigma must be non-negative, got %v", sigma)
	}
	return &TraceModel{
		MedianSession: medianSession,
		Sigma:         sigma,
		rng:           rand.New(rand.NewSource(seed)),
		deadline:      make(map[ident.ID]int),
	}, nil
}

// SampleSession draws one session length in cycles (at least 1).
func (m *TraceModel) SampleSession() int {
	s := m.MedianSession * math.Exp(m.Sigma*m.rng.NormFloat64())
	if s < 1 {
		return 1
	}
	return int(s)
}

// Attach schedules a death deadline for every currently live node that does
// not have one yet. Call once after building the network (and it is called
// implicitly by Step for late joiners).
func (m *TraceModel) Attach(nw *sim.Network) {
	now := nw.CycleCount()
	for _, nd := range nw.Nodes() {
		if !nd.Alive {
			continue
		}
		if _, ok := m.deadline[nd.ID]; !ok {
			m.deadline[nd.ID] = now + m.SampleSession()
		}
	}
}

// Step expires every session due at the current cycle and admits one fresh
// joiner (with its own sampled session) per expiry, keeping the population
// constant. It returns the replaced IDs.
func (m *TraceModel) Step(nw *sim.Network) (removed, added []ident.ID) {
	m.Attach(nw)
	now := nw.CycleCount()
	for _, nd := range nw.Nodes() {
		if !nd.Alive {
			continue
		}
		due, ok := m.deadline[nd.ID]
		if !ok || due > now {
			continue
		}
		if !nw.Kill(nd.ID) {
			continue
		}
		delete(m.deadline, nd.ID)
		removed = append(removed, nd.ID)
		joiner, err := nw.Join()
		if err != nil {
			break
		}
		m.deadline[joiner.ID] = now + m.SampleSession()
		added = append(added, joiner.ID)
	}
	return removed, added
}

// Run interleaves session-driven churn and gossip for the given number of
// cycles.
func (m *TraceModel) Run(nw *sim.Network, cycles int) {
	for i := 0; i < cycles; i++ {
		m.Step(nw)
		nw.Cycle()
	}
}

// ExpectedRatePerCycle estimates the equivalent uniform churn rate: the
// fraction of the population expiring per cycle, 1/mean-session. The
// lognormal mean is median * exp(sigma^2 / 2).
func (m *TraceModel) ExpectedRatePerCycle() float64 {
	mean := m.MedianSession * math.Exp(m.Sigma*m.Sigma/2)
	return 1 / mean
}
